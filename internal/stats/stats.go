// Package stats computes the schema-agnostic statistics MinoanER derives
// from a pair of KBs (§2 of the paper): Entity Frequency of tokens (the IDF
// analogue behind valueSim), relation support / discriminability / importance
// (Defs. 2.2–2.4), per-entity top-N neighbors and their reverse index, and
// the global top-k name attributes whose values act as entity names.
//
// All statistics are produced by data-parallel passes over the KB through
// the parallel engine, mirroring the Spark stages of §4.1. Since the schema
// axis is interned at KB build time (kb.PredID / kb.AttrID / kb.ValueID over
// a kb.Schema) and every entity's relations and attribute statements are
// stored as ID-sorted columnar spans, the whole stage runs as flat counting
// passes over dense-ID arrays — no string hashing, no per-triple tuple
// materialization, no maps on the hot path.
package stats

import (
	"cmp"
	"context"
	"math"
	"slices"
	"sync/atomic"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// EFIndex holds the Entity Frequency of every token in one KB: the number of
// entity descriptions whose values contain the token (Def. 2.1). Counts are
// columnar — a flat array indexed by the KB's interned TokenIDs — so both
// construction and lookup avoid string hashing.
type EFIndex struct {
	dict     *kb.Interner
	counts   []int32
	distinct int
}

// BuildEFCtx computes the EF index with a parallel count-by-token-ID pass,
// honoring cancellation. Each worker counts into its own local array — one
// static span per worker — and the partials are summed in span order, so the
// pass is free of atomic contention on hot tokens (integer sums make the
// merge trivially deterministic).
func BuildEFCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) (*EFIndex, error) {
	dict := k.TokenDict()
	n := 0
	if dict != nil {
		n = dict.Len()
	}
	counts, err := efCountsLocal(ctx, e, k, n)
	if err != nil {
		return nil, err
	}
	ix := &EFIndex{dict: dict, counts: counts}
	for _, c := range counts {
		if c > 0 {
			ix.distinct++
		}
	}
	return ix, nil
}

// efCountsLocal is the per-worker-local counting pass behind BuildEFCtx.
// Static spans (not the chunked scheduler) keep the transient memory at one
// count array per worker; the per-entity walk is cheap enough that static
// partitioning does not straggle.
func efCountsLocal(ctx context.Context, e *parallel.Engine, k *kb.KB, n int) ([]int32, error) {
	locals, err := parallel.MapSpansCtx(ctx, e, k.Len(), func(s parallel.Span) ([]int32, error) {
		counts := make([]int32, n)
		for i := s.Lo; i < s.Hi; i++ {
			for _, id := range k.Entity(kb.EntityID(i)).TokenIDs() {
				counts[id]++
			}
		}
		return counts, nil
	})
	if err != nil {
		return nil, err
	}
	if len(locals) == 0 {
		return make([]int32, n), nil
	}
	counts := locals[0]
	for _, l := range locals[1:] {
		addCounts(counts, l)
	}
	return counts, nil
}

// efCountsAtomic is the pre-refactor counting pass (shared array, one atomic
// add per token occurrence). Kept unexported as the reference side of
// BenchmarkBuildEF's before/after comparison.
func efCountsAtomic(ctx context.Context, e *parallel.Engine, k *kb.KB, n int) ([]int32, error) {
	counts := make([]int32, n)
	err := e.Chunked().ForCtx(ctx, k.Len(), func(i int) error {
		for _, id := range k.Entity(kb.EntityID(i)).TokenIDs() {
			atomic.AddInt32(&counts[id], 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// BuildEF is BuildEFCtx without cancellation.
func BuildEF(e *parallel.Engine, k *kb.KB) *EFIndex {
	ix, _ := BuildEFCtx(context.Background(), e, k)
	return ix
}

// EF returns the entity frequency of token t (0 if the token never occurs).
func (ix *EFIndex) EF(t string) int {
	if ix.dict == nil {
		return 0
	}
	id, ok := ix.dict.Lookup(t)
	if !ok {
		return 0
	}
	return ix.EFByID(id)
}

// EFByID returns the entity frequency of an interned token of Dict(). IDs
// interned after the index was built (the dictionary may be shared and keep
// growing) were not seen by the counting pass and report 0.
func (ix *EFIndex) EFByID(id kb.TokenID) int {
	if int(id) >= len(ix.counts) {
		return 0
	}
	return int(ix.counts[id])
}

// Dict returns the token dictionary the index counts against.
func (ix *EFIndex) Dict() *kb.Interner { return ix.dict }

// DistinctTokens returns the number of distinct tokens in the KB. (The
// dictionary may be shared with another KB; only tokens that actually occur
// in this KB are counted.)
func (ix *EFIndex) DistinctTokens() int { return ix.distinct }

// RelationStat carries the support, discriminability and importance of one
// relation predicate (Defs. 2.2–2.4).
type RelationStat struct {
	Predicate string
	// ID is the predicate's dense schema ID in the KB's kb.Schema.
	ID kb.PredID
	// Instances is |instances(p)|: the number of distinct (subject, object)
	// pairs connected by p.
	Instances int
	// Objects is |objects(p)|: the number of distinct objects of p.
	Objects int
	// Support = |instances(p)| / |E|².
	Support float64
	// Discriminability = |objects(p)| / |instances(p)|.
	Discriminability float64
	// Importance is the harmonic mean of Support and Discriminability.
	Importance float64
}

// RelationImportancesCtx computes per-predicate statistics for all relations
// of the KB. The returned slice is sorted by decreasing importance, breaking
// ties by predicate name so the global order (Algorithm 1 line 37) is
// deterministic.
//
// The computation is three flat passes over the columnar relation spans,
// mirroring blocking.TokenIndex: (1) chunked per-span local instance counts
// (per-entity spans are (PredID, Object)-sorted, so duplicate statements are
// adjacent and distinct (subject, object) pairs cost one comparison each),
// merged in span order; (2) a scatter fill grouping the distinct instances'
// objects by predicate; (3) a per-predicate sort+compact counting distinct
// objects. No string keys, no per-triple tuples, no maps.
func RelationImportancesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) ([]RelationStat, error) {
	sch := k.Schema()
	nPred := sch.Preds()
	if nPred == 0 || k.Len() == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []RelationStat{}, nil
	}
	ce := e.Chunked()
	// Pass 1: distinct-instance counts per predicate, per-span local arrays
	// merged in span order (the schema axis is tiny, so a local array per
	// chunk costs nothing and removes all write sharing).
	locals, err := parallel.MapSpansCtx(ctx, ce, k.Len(), func(s parallel.Span) ([]int32, error) {
		counts := make([]int32, nPred)
		for i := s.Lo; i < s.Hi; i++ {
			preds, objs := k.RelationColumns(kb.EntityID(i))
			for j := range preds {
				if j > 0 && preds[j] == preds[j-1] && objs[j] == objs[j-1] {
					continue // duplicate (s, p, o) statement
				}
				counts[preds[j]]++
			}
		}
		return counts, nil
	})
	if err != nil {
		return nil, err
	}
	inst := locals[0]
	for _, l := range locals[1:] {
		addCounts(inst, l)
	}
	// Pass 2: group the distinct instances' objects by predicate (CSR
	// counting pass + atomic-cursor scatter fill).
	off := prefixSums(inst)
	objsByPred := make([]kb.EntityID, off[nPred])
	cur := slices.Clone(off[:nPred])
	err = ce.ForCtx(ctx, k.Len(), func(i int) error {
		preds, objs := k.RelationColumns(kb.EntityID(i))
		for j := range preds {
			if j > 0 && preds[j] == preds[j-1] && objs[j] == objs[j-1] {
				continue
			}
			objsByPred[atomic.AddInt32(&cur[preds[j]], 1)-1] = objs[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Pass 3: distinct objects per predicate via sort+compact of its group.
	objCount := make([]int32, nPred)
	err = ce.ForCtx(ctx, nPred, func(p int) error {
		group := objsByPred[off[p]:off[p+1]]
		slices.Sort(group)
		objCount[p] = countDistinctSorted(group)
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := float64(k.Len())
	stats := make([]RelationStat, 0, nPred)
	for p := 0; p < nPred; p++ {
		if inst[p] == 0 {
			continue // predicate absent from this KB (shared schema dictionary)
		}
		st := RelationStat{
			Predicate: sch.Pred(kb.PredID(p)),
			ID:        kb.PredID(p),
			Instances: int(inst[p]),
			Objects:   int(objCount[p]),
		}
		if n > 0 {
			st.Support = float64(st.Instances) / (n * n)
		}
		st.Discriminability = float64(st.Objects) / float64(st.Instances)
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		stats = append(stats, st)
	}
	slices.SortFunc(stats, func(a, b RelationStat) int {
		if a.Importance != b.Importance {
			return cmp.Compare(b.Importance, a.Importance)
		}
		return cmp.Compare(a.Predicate, b.Predicate)
	})
	return stats, nil
}

// addCounts accumulates the span-local counts of src into dst element-wise —
// the deterministic (integer-sum) reduce behind every per-worker-local
// counting pass in this package.
func addCounts(dst, src []int32) {
	for i, c := range src {
		dst[i] += c
	}
}

// countDistinctSorted returns the number of distinct values in a sorted
// slice via adjacent comparison, without modifying it.
func countDistinctSorted[T comparable](group []T) int32 {
	if len(group) == 0 {
		return 0
	}
	d := int32(1)
	for j := 1; j < len(group); j++ {
		if group[j] != group[j-1] {
			d++
		}
	}
	return d
}

// prefixSums turns per-ID counts into CSR offsets (len(counts)+1 entries).
func prefixSums(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	var sum int32
	for i, c := range counts {
		off[i] = sum
		sum += c
	}
	off[len(counts)] = sum
	return off
}

// RelationImportances is RelationImportancesCtx without cancellation.
func RelationImportances(e *parallel.Engine, k *kb.KB) []RelationStat {
	out, _ := RelationImportancesCtx(context.Background(), e, k)
	return out
}

func harmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// GlobalRelationOrder maps each predicate to its rank in the importance
// order (0 = most important). It is the globalOrder of Algorithm 1 as a
// string-keyed map — the compatibility view; the pipeline itself uses the
// dense RelationRanks array.
func GlobalRelationOrder(stats []RelationStat) map[string]int {
	order := make(map[string]int, len(stats))
	for i, s := range stats {
		order[s.Predicate] = i
	}
	return order
}

// RelationRanks is the columnar globalOrder of Algorithm 1 (line 37): a flat
// array indexed by kb.PredID giving each predicate's position in the
// importance order (0 = most important). Predicates absent from stats (a
// shared schema dictionary may hold the other KB's predicates) rank last.
func RelationRanks(k *kb.KB, stats []RelationStat) []int32 {
	ranks := make([]int32, k.Schema().Preds())
	for p := range ranks {
		ranks[p] = int32(len(stats))
	}
	for i, s := range stats {
		ranks[s.ID] = int32(i)
	}
	return ranks
}

// ranksFromOrder converts a string-keyed globalOrder map into the dense
// rank array, preserving the historical map semantics: a predicate missing
// from the map ranks 0, exactly as order[p] reads for an absent key.
func ranksFromOrder(k *kb.KB, order map[string]int) []int32 {
	sch := k.Schema()
	ranks := make([]int32, sch.Preds())
	for p := range ranks {
		ranks[p] = int32(order[sch.Pred(kb.PredID(p))])
	}
	return ranks
}

// TopNeighborsCtx returns, for every entity of the KB, its top neighbors:
// the objects of its top-N most important relations (localOrder of
// Algorithm 1, lines 36–43). Neighbor lists are deduplicated and sorted by
// entity ID. This is the map-keyed compatibility wrapper over
// TopNeighborsRanksCtx.
func TopNeighborsCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, order map[string]int, n int) ([][]kb.EntityID, error) {
	return TopNeighborsRanksCtx(ctx, e, k, ranksFromOrder(k, order), n)
}

// TopNeighborsRanksCtx is TopNeighborsCtx over the dense RelationRanks
// array — the pipeline's path.
func TopNeighborsRanksCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, ranks []int32, n int) ([][]kb.EntityID, error) {
	return TopNeighborsRanksSpanCtx(ctx, e, k, ranks, n, parallel.Span{Lo: 0, Hi: k.Len()})
}

// TopNeighborsSpanCtx computes the top-neighbor rows for one contiguous
// entity span only, returning s.Len() rows (row i describes entity s.Lo+i).
// Rows are computed independently per entity, so concatenating the rows of a
// partition of [0, |E|) in span order reproduces TopNeighborsCtx exactly —
// the property the sharded pipeline relies on to bound the transient state
// of statistics extraction per shard.
func TopNeighborsSpanCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, order map[string]int, n int, s parallel.Span) ([][]kb.EntityID, error) {
	return TopNeighborsRanksSpanCtx(ctx, e, k, ranksFromOrder(k, order), n, s)
}

// TopNeighborsRanksSpanCtx is TopNeighborsSpanCtx over the dense rank array.
func TopNeighborsRanksSpanCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, ranks []int32, n int, s parallel.Span) ([][]kb.EntityID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return make([][]kb.EntityID, s.Len()), nil
	}
	return parallel.MapCtx(ctx, e, s.Len(), func(i int) ([]kb.EntityID, error) {
		return topNeighborRow(k, ranks, n, s.Lo+i), nil
	})
}

// predSpan is one distinct predicate's subrange of an entity's relation span.
type predSpan struct {
	rank   int32
	lo, hi int32
}

// topNeighborRow computes localOrder(e) and the resulting deduplicated,
// ID-sorted top-neighbor list of one entity — an allocation-lean walk over
// the entity's pre-sorted relation span: distinct predicates are adjacent
// runs, localOrder is a sort of those few runs by global rank, and the
// neighbor set is one gather + sort + compact. No maps.
func topNeighborRow(k *kb.KB, ranks []int32, n, i int) []kb.EntityID {
	preds, objs := k.RelationColumns(kb.EntityID(i))
	if len(preds) == 0 {
		return nil
	}
	var spansBuf [8]predSpan
	spans := spansBuf[:0]
	lo := 0
	for j := 1; j <= len(preds); j++ {
		if j == len(preds) || preds[j] != preds[lo] {
			spans = append(spans, predSpan{ranks[preds[lo]], int32(lo), int32(j)})
			lo = j
		}
	}
	return gatherTopSpans(spans, objs, n)
}

// gatherTopSpans applies localOrder selection to pre-built predicate spans:
// keep the n most important spans (sorting only when there are more than n,
// exactly like the historical inline code, so tie handling under the
// unstable sort is reproduced operation for operation) and gather their
// deduplicated, ID-sorted objects. Shared by the per-entity columnar row and
// the synthetic-entity query path, which is what keeps the two bit-identical.
func gatherTopSpans(spans []predSpan, objs []kb.EntityID, n int) []kb.EntityID {
	if len(spans) > n {
		// localOrder(e): distinct relations by global importance rank.
		slices.SortFunc(spans, func(a, b predSpan) int { return cmp.Compare(a.rank, b.rank) })
		spans = spans[:n]
	}
	total := 0
	for _, sp := range spans {
		total += int(sp.hi - sp.lo)
	}
	out := make([]kb.EntityID, 0, total)
	for _, sp := range spans {
		out = append(out, objs[sp.lo:sp.hi]...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// TopNeighborsOf computes the top-neighbor list of one SYNTHETIC entity —
// a description that is not a member of the KB, as the per-entity query path
// sees it — from its relation statements given as parallel slices: groups
// assigns statements of the same predicate the same key (ascending, the way
// the columnar relation spans are predicate-sorted), ranks gives each
// statement its predicate's RelationRanks position, and objs the resolved
// neighbor entities. Statements must be sorted by group. For an entity whose
// statements mirror a KB member's relation columns, the result is identical
// to that entity's TopNeighborsRanksCtx row.
func TopNeighborsOf(groups, ranks []int32, objs []kb.EntityID, n int) []kb.EntityID {
	if n <= 0 || len(groups) == 0 {
		return nil
	}
	var spansBuf [8]predSpan
	spans := spansBuf[:0]
	lo := 0
	for j := 1; j <= len(groups); j++ {
		if j == len(groups) || groups[j] != groups[lo] {
			spans = append(spans, predSpan{ranks[lo], int32(lo), int32(j)})
			lo = j
		}
	}
	return gatherTopSpans(spans, objs, n)
}

// TopNeighbors is TopNeighborsCtx without cancellation.
func TopNeighbors(e *parallel.Engine, k *kb.KB, order map[string]int, n int) [][]kb.EntityID {
	out, _ := TopNeighborsCtx(context.Background(), e, k, order, n)
	return out
}

// TopInNeighbors reverses a TopNeighbors index: result[e] lists the entities
// that have e among their top neighbors (Algorithm 1, lines 44–47). Lists
// are sorted by entity ID. The reversal is a counting pass + scatter fill
// into one flat array (mirroring blocking.TokenIndex): sources are visited
// in ascending order, so every per-entity list comes out sorted without a
// sort step, and the result is |E| slice views over a single allocation.
func TopInNeighbors(top [][]kb.EntityID) [][]kb.EntityID {
	counts := make([]int32, len(top))
	total := 0
	for _, neighbors := range top {
		total += len(neighbors)
		for _, dst := range neighbors {
			counts[dst]++
		}
	}
	flat := make([]kb.EntityID, total)
	off := prefixSums(counts)
	cur := off[:len(top)] // reuse: advanced as the sequential fill cursor
	for src, neighbors := range top {
		for _, dst := range neighbors {
			flat[cur[dst]] = kb.EntityID(src)
			cur[dst]++
		}
	}
	in := make([][]kb.EntityID, len(top))
	lo := int32(0)
	for dst := range in {
		hi := cur[dst]
		if hi > lo {
			in[dst] = flat[lo:hi]
		}
		lo = hi
	}
	return in
}

// ValueSim computes Def. 2.1 directly from the two descriptions and EF
// indices:
//
//	valueSim(ei, ej) = Σ_{t ∈ tokens(ei) ∩ tokens(ej)} 1 / log2(EF₁(t)·EF₂(t) + 1)
//
// The production pipeline derives the same quantity from token-block sizes
// (Algorithm 1 line 14); this direct form is the reference implementation
// used by tests and by Figure 2.
func ValueSim(di, dj *kb.Description, ef1, ef2 *EFIndex) float64 {
	ti, tj := di.TokenIDs(), dj.TokenIDs()
	d1, d2 := di.Dict(), dj.Dict()
	sum := 0.0
	// Both token-ID slices are ordered by token string: linear merge
	// intersection over dictionary strings, no per-call materialization.
	a, b := 0, 0
	for a < len(ti) && b < len(tj) {
		sa, sb := d1.TokenString(ti[a]), d2.TokenString(tj[b])
		switch {
		case sa < sb:
			a++
		case sa > sb:
			b++
		default:
			sum += TokenWeight(EFOf(ef1, d1, ti[a], sa), EFOf(ef2, d2, tj[b], sb))
			a++
			b++
		}
	}
	return sum
}

// EFOf resolves an entity frequency from an interned ID when the index was
// built over the same dictionary, falling back to the string lookup when the
// caller mixed dictionaries. It is the one place the "ID fast path vs string
// fallback" rule lives; every EF consumer should go through it.
func EFOf(ix *EFIndex, dict *kb.Interner, id kb.TokenID, s string) int {
	if ix.dict == dict {
		return ix.EFByID(id)
	}
	return ix.EF(s)
}

// TokenWeight is the contribution of one shared token: 1/log2(EF₁·EF₂+1).
// A token unique to both KBs (EF₁·EF₂ = 1) contributes 1, the paper's
// maximum per-token contribution. Frequencies below 1 are clamped so the
// weight stays finite even for degenerate indices.
func TokenWeight(ef1, ef2 int) float64 {
	if ef1 < 1 {
		ef1 = 1
	}
	if ef2 < 1 {
		ef2 = 1
	}
	prod := float64(ef1) * float64(ef2)
	return 1 / math.Log2(prod+1)
}
