// Package stats computes the schema-agnostic statistics MinoanER derives
// from a pair of KBs (§2 of the paper): Entity Frequency of tokens (the IDF
// analogue behind valueSim), relation support / discriminability / importance
// (Defs. 2.2–2.4), per-entity top-N neighbors and their reverse index, and
// the global top-k name attributes whose values act as entity names.
//
// All statistics are produced by data-parallel passes over the KB through
// the parallel engine, mirroring the Spark stages of §4.1.
package stats

import (
	"context"
	"math"
	"sort"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// EFIndex holds the Entity Frequency of every token in one KB: the number of
// entity descriptions whose values contain the token (Def. 2.1).
type EFIndex struct {
	counts map[string]int
}

// BuildEFCtx computes the EF index with a parallel count-by-token pass,
// honoring cancellation.
func BuildEFCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) (*EFIndex, error) {
	counts, err := parallel.CountByCtx(ctx, e, k.Len(), func(i int, yield func(string)) {
		for _, t := range k.Entity(kb.EntityID(i)).Tokens() {
			yield(t)
		}
	})
	if err != nil {
		return nil, err
	}
	return &EFIndex{counts: counts}, nil
}

// BuildEF is BuildEFCtx without cancellation.
func BuildEF(e *parallel.Engine, k *kb.KB) *EFIndex {
	ix, _ := BuildEFCtx(context.Background(), e, k)
	return ix
}

// EF returns the entity frequency of token t (0 if the token never occurs).
func (ix *EFIndex) EF(t string) int { return ix.counts[t] }

// DistinctTokens returns the number of distinct tokens in the KB.
func (ix *EFIndex) DistinctTokens() int { return len(ix.counts) }

// RelationStat carries the support, discriminability and importance of one
// relation predicate (Defs. 2.2–2.4).
type RelationStat struct {
	Predicate string
	// Instances is |instances(p)|: the number of distinct (subject, object)
	// pairs connected by p.
	Instances int
	// Objects is |objects(p)|: the number of distinct objects of p.
	Objects int
	// Support = |instances(p)| / |E|².
	Support float64
	// Discriminability = |objects(p)| / |instances(p)|.
	Discriminability float64
	// Importance is the harmonic mean of Support and Discriminability.
	Importance float64
}

type pair struct {
	s kb.EntityID
	o kb.EntityID
}

// RelationImportancesCtx computes per-predicate statistics for all relations
// of the KB. The returned slice is sorted by decreasing importance, breaking
// ties by predicate name so the global order (Algorithm 1 line 37) is
// deterministic.
func RelationImportancesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) ([]RelationStat, error) {
	grouped, err := parallel.GroupByCtx(ctx, e, k.Len(), func(i int, yield func(string, pair)) {
		d := k.Entity(kb.EntityID(i))
		for _, r := range d.Relations {
			yield(r.Predicate, pair{kb.EntityID(i), r.Object})
		}
	})
	if err != nil {
		return nil, err
	}
	n := float64(k.Len())
	stats := make([]RelationStat, 0, len(grouped))
	for p, pairs := range grouped {
		instSet := make(map[pair]struct{}, len(pairs))
		objSet := make(map[kb.EntityID]struct{})
		for _, pr := range pairs {
			instSet[pr] = struct{}{}
			objSet[pr.o] = struct{}{}
		}
		st := RelationStat{Predicate: p, Instances: len(instSet), Objects: len(objSet)}
		if n > 0 {
			st.Support = float64(st.Instances) / (n * n)
		}
		if st.Instances > 0 {
			st.Discriminability = float64(st.Objects) / float64(st.Instances)
		}
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Importance != stats[j].Importance {
			return stats[i].Importance > stats[j].Importance
		}
		return stats[i].Predicate < stats[j].Predicate
	})
	return stats, nil
}

// RelationImportances is RelationImportancesCtx without cancellation.
func RelationImportances(e *parallel.Engine, k *kb.KB) []RelationStat {
	out, _ := RelationImportancesCtx(context.Background(), e, k)
	return out
}

func harmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// GlobalRelationOrder maps each predicate to its rank in the importance
// order (0 = most important). It is the globalOrder of Algorithm 1.
func GlobalRelationOrder(stats []RelationStat) map[string]int {
	order := make(map[string]int, len(stats))
	for i, s := range stats {
		order[s.Predicate] = i
	}
	return order
}

// TopNeighborsCtx returns, for every entity of the KB, its top neighbors:
// the objects of its top-N most important relations (localOrder of
// Algorithm 1, lines 36–43). Neighbor lists are deduplicated and sorted by
// entity ID.
func TopNeighborsCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, order map[string]int, n int) ([][]kb.EntityID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return make([][]kb.EntityID, k.Len()), nil
	}
	return parallel.MapCtx(ctx, e, k.Len(), func(i int) ([]kb.EntityID, error) {
		d := k.Entity(kb.EntityID(i))
		if len(d.Relations) == 0 {
			return nil, nil
		}
		// localOrder(e): the entity's distinct relations sorted by the
		// global importance order.
		rels := make([]string, 0, len(d.Relations))
		seen := make(map[string]bool, len(d.Relations))
		for _, r := range d.Relations {
			if !seen[r.Predicate] {
				seen[r.Predicate] = true
				rels = append(rels, r.Predicate)
			}
		}
		sort.Slice(rels, func(a, b int) bool { return order[rels[a]] < order[rels[b]] })
		if len(rels) > n {
			rels = rels[:n]
		}
		top := make(map[string]bool, len(rels))
		for _, p := range rels {
			top[p] = true
		}
		nset := make(map[kb.EntityID]struct{})
		for _, r := range d.Relations {
			if top[r.Predicate] {
				nset[r.Object] = struct{}{}
			}
		}
		out := make([]kb.EntityID, 0, len(nset))
		for id := range nset {
			out = append(out, id)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out, nil
	})
}

// TopNeighbors is TopNeighborsCtx without cancellation.
func TopNeighbors(e *parallel.Engine, k *kb.KB, order map[string]int, n int) [][]kb.EntityID {
	out, _ := TopNeighborsCtx(context.Background(), e, k, order, n)
	return out
}

// TopInNeighbors reverses a TopNeighbors index: result[e] lists the entities
// that have e among their top neighbors (Algorithm 1, lines 44–47). Lists
// are sorted by entity ID.
func TopInNeighbors(top [][]kb.EntityID) [][]kb.EntityID {
	in := make([][]kb.EntityID, len(top))
	for src, neighbors := range top {
		for _, dst := range neighbors {
			in[dst] = append(in[dst], kb.EntityID(src))
		}
	}
	for i := range in {
		sort.Slice(in[i], func(a, b int) bool { return in[i][a] < in[i][b] })
	}
	return in
}

// ValueSim computes Def. 2.1 directly from the two descriptions and EF
// indices:
//
//	valueSim(ei, ej) = Σ_{t ∈ tokens(ei) ∩ tokens(ej)} 1 / log2(EF₁(t)·EF₂(t) + 1)
//
// The production pipeline derives the same quantity from token-block sizes
// (Algorithm 1 line 14); this direct form is the reference implementation
// used by tests and by Figure 2.
func ValueSim(di, dj *kb.Description, ef1, ef2 *EFIndex) float64 {
	ti, tj := di.Tokens(), dj.Tokens()
	sum := 0.0
	// Both token slices are sorted: linear merge intersection.
	a, b := 0, 0
	for a < len(ti) && b < len(tj) {
		switch {
		case ti[a] < tj[b]:
			a++
		case ti[a] > tj[b]:
			b++
		default:
			sum += TokenWeight(ef1.EF(ti[a]), ef2.EF(tj[b]))
			a++
			b++
		}
	}
	return sum
}

// TokenWeight is the contribution of one shared token: 1/log2(EF₁·EF₂+1).
// A token unique to both KBs (EF₁·EF₂ = 1) contributes 1, the paper's
// maximum per-token contribution. Frequencies below 1 are clamped so the
// weight stays finite even for degenerate indices.
func TokenWeight(ef1, ef2 int) float64 {
	if ef1 < 1 {
		ef1 = 1
	}
	if ef2 < 1 {
		ef2 = 1
	}
	prod := float64(ef1) * float64(ef2)
	return 1 / math.Log2(prod+1)
}
