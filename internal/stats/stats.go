// Package stats computes the schema-agnostic statistics MinoanER derives
// from a pair of KBs (§2 of the paper): Entity Frequency of tokens (the IDF
// analogue behind valueSim), relation support / discriminability / importance
// (Defs. 2.2–2.4), per-entity top-N neighbors and their reverse index, and
// the global top-k name attributes whose values act as entity names.
//
// All statistics are produced by data-parallel passes over the KB through
// the parallel engine, mirroring the Spark stages of §4.1.
package stats

import (
	"cmp"
	"context"
	"math"
	"slices"
	"sync/atomic"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// EFIndex holds the Entity Frequency of every token in one KB: the number of
// entity descriptions whose values contain the token (Def. 2.1). Counts are
// columnar — a flat array indexed by the KB's interned TokenIDs — so both
// construction and lookup avoid string hashing.
type EFIndex struct {
	dict     *kb.Interner
	counts   []int32
	distinct int
}

// BuildEFCtx computes the EF index with a parallel count-by-token-ID pass,
// honoring cancellation.
func BuildEFCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) (*EFIndex, error) {
	dict := k.TokenDict()
	n := 0
	if dict != nil {
		n = dict.Len()
	}
	counts := make([]int32, n)
	// Chunked scheduling: per-entity token counts are power-law skewed, so
	// static spans would straggle behind the heavy entities.
	err := e.Chunked().ForCtx(ctx, k.Len(), func(i int) error {
		for _, id := range k.Entity(kb.EntityID(i)).TokenIDs() {
			atomic.AddInt32(&counts[id], 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ix := &EFIndex{dict: dict, counts: counts}
	for _, c := range counts {
		if c > 0 {
			ix.distinct++
		}
	}
	return ix, nil
}

// BuildEF is BuildEFCtx without cancellation.
func BuildEF(e *parallel.Engine, k *kb.KB) *EFIndex {
	ix, _ := BuildEFCtx(context.Background(), e, k)
	return ix
}

// EF returns the entity frequency of token t (0 if the token never occurs).
func (ix *EFIndex) EF(t string) int {
	if ix.dict == nil {
		return 0
	}
	id, ok := ix.dict.Lookup(t)
	if !ok {
		return 0
	}
	return ix.EFByID(id)
}

// EFByID returns the entity frequency of an interned token of Dict(). IDs
// interned after the index was built (the dictionary may be shared and keep
// growing) were not seen by the counting pass and report 0.
func (ix *EFIndex) EFByID(id kb.TokenID) int {
	if int(id) >= len(ix.counts) {
		return 0
	}
	return int(ix.counts[id])
}

// Dict returns the token dictionary the index counts against.
func (ix *EFIndex) Dict() *kb.Interner { return ix.dict }

// DistinctTokens returns the number of distinct tokens in the KB. (The
// dictionary may be shared with another KB; only tokens that actually occur
// in this KB are counted.)
func (ix *EFIndex) DistinctTokens() int { return ix.distinct }

// RelationStat carries the support, discriminability and importance of one
// relation predicate (Defs. 2.2–2.4).
type RelationStat struct {
	Predicate string
	// Instances is |instances(p)|: the number of distinct (subject, object)
	// pairs connected by p.
	Instances int
	// Objects is |objects(p)|: the number of distinct objects of p.
	Objects int
	// Support = |instances(p)| / |E|².
	Support float64
	// Discriminability = |objects(p)| / |instances(p)|.
	Discriminability float64
	// Importance is the harmonic mean of Support and Discriminability.
	Importance float64
}

type pair struct {
	s kb.EntityID
	o kb.EntityID
}

// RelationImportancesCtx computes per-predicate statistics for all relations
// of the KB. The returned slice is sorted by decreasing importance, breaking
// ties by predicate name so the global order (Algorithm 1 line 37) is
// deterministic.
func RelationImportancesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) ([]RelationStat, error) {
	grouped, err := parallel.GroupByCtx(ctx, e, k.Len(), func(i int, yield func(string, pair)) {
		d := k.Entity(kb.EntityID(i))
		for _, r := range d.Relations {
			yield(r.Predicate, pair{kb.EntityID(i), r.Object})
		}
	})
	if err != nil {
		return nil, err
	}
	n := float64(k.Len())
	stats := make([]RelationStat, 0, len(grouped))
	for p, pairs := range grouped {
		instSet := make(map[pair]struct{}, len(pairs))
		objSet := make(map[kb.EntityID]struct{})
		for _, pr := range pairs {
			instSet[pr] = struct{}{}
			objSet[pr.o] = struct{}{}
		}
		st := RelationStat{Predicate: p, Instances: len(instSet), Objects: len(objSet)}
		if n > 0 {
			st.Support = float64(st.Instances) / (n * n)
		}
		if st.Instances > 0 {
			st.Discriminability = float64(st.Objects) / float64(st.Instances)
		}
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		stats = append(stats, st)
	}
	slices.SortFunc(stats, func(a, b RelationStat) int {
		if a.Importance != b.Importance {
			return cmp.Compare(b.Importance, a.Importance)
		}
		return cmp.Compare(a.Predicate, b.Predicate)
	})
	return stats, nil
}

// RelationImportances is RelationImportancesCtx without cancellation.
func RelationImportances(e *parallel.Engine, k *kb.KB) []RelationStat {
	out, _ := RelationImportancesCtx(context.Background(), e, k)
	return out
}

func harmonicMean(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// GlobalRelationOrder maps each predicate to its rank in the importance
// order (0 = most important). It is the globalOrder of Algorithm 1.
func GlobalRelationOrder(stats []RelationStat) map[string]int {
	order := make(map[string]int, len(stats))
	for i, s := range stats {
		order[s.Predicate] = i
	}
	return order
}

// TopNeighborsCtx returns, for every entity of the KB, its top neighbors:
// the objects of its top-N most important relations (localOrder of
// Algorithm 1, lines 36–43). Neighbor lists are deduplicated and sorted by
// entity ID.
func TopNeighborsCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, order map[string]int, n int) ([][]kb.EntityID, error) {
	return TopNeighborsSpanCtx(ctx, e, k, order, n, parallel.Span{Lo: 0, Hi: k.Len()})
}

// TopNeighborsSpanCtx computes the top-neighbor rows for one contiguous
// entity span only, returning s.Len() rows (row i describes entity s.Lo+i).
// Rows are computed independently per entity, so concatenating the rows of a
// partition of [0, |E|) in span order reproduces TopNeighborsCtx exactly —
// the property the sharded pipeline relies on to bound the transient state
// of statistics extraction per shard.
func TopNeighborsSpanCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, order map[string]int, n int, s parallel.Span) ([][]kb.EntityID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return make([][]kb.EntityID, s.Len()), nil
	}
	return parallel.MapCtx(ctx, e, s.Len(), func(i int) ([]kb.EntityID, error) {
		return topNeighborRow(k, order, n, s.Lo+i), nil
	})
}

// topNeighborRow computes localOrder(e) and the resulting deduplicated,
// ID-sorted top-neighbor list of one entity.
func topNeighborRow(k *kb.KB, order map[string]int, n, i int) []kb.EntityID {
	d := k.Entity(kb.EntityID(i))
	if len(d.Relations) == 0 {
		return nil
	}
	// localOrder(e): the entity's distinct relations sorted by the
	// global importance order.
	rels := make([]string, 0, len(d.Relations))
	seen := make(map[string]bool, len(d.Relations))
	for _, r := range d.Relations {
		if !seen[r.Predicate] {
			seen[r.Predicate] = true
			rels = append(rels, r.Predicate)
		}
	}
	slices.SortFunc(rels, func(a, b string) int { return cmp.Compare(order[a], order[b]) })
	if len(rels) > n {
		rels = rels[:n]
	}
	top := make(map[string]bool, len(rels))
	for _, p := range rels {
		top[p] = true
	}
	nset := make(map[kb.EntityID]struct{})
	for _, r := range d.Relations {
		if top[r.Predicate] {
			nset[r.Object] = struct{}{}
		}
	}
	out := make([]kb.EntityID, 0, len(nset))
	for id := range nset {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// TopNeighbors is TopNeighborsCtx without cancellation.
func TopNeighbors(e *parallel.Engine, k *kb.KB, order map[string]int, n int) [][]kb.EntityID {
	out, _ := TopNeighborsCtx(context.Background(), e, k, order, n)
	return out
}

// TopInNeighbors reverses a TopNeighbors index: result[e] lists the entities
// that have e among their top neighbors (Algorithm 1, lines 44–47). Lists
// are sorted by entity ID.
func TopInNeighbors(top [][]kb.EntityID) [][]kb.EntityID {
	in := make([][]kb.EntityID, len(top))
	for src, neighbors := range top {
		for _, dst := range neighbors {
			in[dst] = append(in[dst], kb.EntityID(src))
		}
	}
	for i := range in {
		slices.Sort(in[i])
	}
	return in
}

// ValueSim computes Def. 2.1 directly from the two descriptions and EF
// indices:
//
//	valueSim(ei, ej) = Σ_{t ∈ tokens(ei) ∩ tokens(ej)} 1 / log2(EF₁(t)·EF₂(t) + 1)
//
// The production pipeline derives the same quantity from token-block sizes
// (Algorithm 1 line 14); this direct form is the reference implementation
// used by tests and by Figure 2.
func ValueSim(di, dj *kb.Description, ef1, ef2 *EFIndex) float64 {
	ti, tj := di.TokenIDs(), dj.TokenIDs()
	d1, d2 := di.Dict(), dj.Dict()
	sum := 0.0
	// Both token-ID slices are ordered by token string: linear merge
	// intersection over dictionary strings, no per-call materialization.
	a, b := 0, 0
	for a < len(ti) && b < len(tj) {
		sa, sb := d1.TokenString(ti[a]), d2.TokenString(tj[b])
		switch {
		case sa < sb:
			a++
		case sa > sb:
			b++
		default:
			sum += TokenWeight(EFOf(ef1, d1, ti[a], sa), EFOf(ef2, d2, tj[b], sb))
			a++
			b++
		}
	}
	return sum
}

// EFOf resolves an entity frequency from an interned ID when the index was
// built over the same dictionary, falling back to the string lookup when the
// caller mixed dictionaries. It is the one place the "ID fast path vs string
// fallback" rule lives; every EF consumer should go through it.
func EFOf(ix *EFIndex, dict *kb.Interner, id kb.TokenID, s string) int {
	if ix.dict == dict {
		return ix.EFByID(id)
	}
	return ix.EF(s)
}

// TokenWeight is the contribution of one shared token: 1/log2(EF₁·EF₂+1).
// A token unique to both KBs (EF₁·EF₂ = 1) contributes 1, the paper's
// maximum per-token contribution. Frequencies below 1 are clamped so the
// weight stays finite even for degenerate indices.
func TokenWeight(ef1, ef2 int) float64 {
	if ef1 < 1 {
		ef1 = 1
	}
	if ef2 < 1 {
		ef2 = 1
	}
	prod := float64(ef1) * float64(ef2)
	return 1 / math.Log2(prod+1)
}
