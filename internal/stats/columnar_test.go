package stats

// Property tests pinning the columnar statistics substrate to a naive
// string-keyed reference (the pre-columnar semantics), plus the before/after
// microbenchmark of the EF counting pass (per-worker local arrays vs one
// shared atomic array).

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// randomKB builds a KB with rng-chosen predicates, attributes, values and
// object URIs. Roughly half the object statements resolve into relations
// (their URI names a described entity); duplicates of every kind are
// injected on purpose, since the statistics definitions hinge on exactly
// which duplicates count.
func randomKB(rng *rand.Rand, n int) *kb.KB {
	b := kb.NewBuilder("random")
	preds := []string{"knows", "cites", "partOf", "sameTopicAs", "advises"}
	attrs := []string{"label", "title", "year", "note", "comment", "Label"}
	for i := 0; i < n; i++ {
		b.AddEntity(fmt.Sprintf("e%d", i))
	}
	for i := 0; i < n; i++ {
		id := kb.EntityID(i)
		for s := rng.Intn(6); s > 0; s-- {
			a := attrs[rng.Intn(len(attrs))]
			// Values collide frequently across attributes and entities, and
			// some normalize to the empty string.
			v := [...]string{"alpha beta", "Alpha-Beta!", "gamma", fmt.Sprintf("v%d", rng.Intn(8)), "--", ""}[rng.Intn(6)]
			b.AddLiteral(id, a, v)
		}
		for s := rng.Intn(5); s > 0; s-- {
			p := preds[rng.Intn(len(preds))]
			// Half the objects name described entities (resolving into
			// relations, with deliberate duplicate (s, p, o) statements),
			// half stay literal.
			if rng.Intn(2) == 0 {
				obj := fmt.Sprintf("e%d", rng.Intn(n))
				b.AddObject(id, p, obj)
				if rng.Intn(3) == 0 {
					b.AddObject(id, p, obj)
				}
			} else {
				b.AddObject(id, p, fmt.Sprintf("external%d", rng.Intn(4)))
			}
		}
	}
	return b.Build()
}

// naiveRelationImportances recomputes Defs. 2.2–2.4 with the pre-columnar
// string-keyed grouping semantics.
func naiveRelationImportances(k *kb.KB) []RelationStat {
	type pair struct {
		s kb.EntityID
		o kb.EntityID
	}
	inst := map[string]map[pair]struct{}{}
	objs := map[string]map[kb.EntityID]struct{}{}
	for i := 0; i < k.Len(); i++ {
		for _, r := range k.Entity(kb.EntityID(i)).Relations {
			if inst[r.Predicate] == nil {
				inst[r.Predicate] = map[pair]struct{}{}
				objs[r.Predicate] = map[kb.EntityID]struct{}{}
			}
			inst[r.Predicate][pair{kb.EntityID(i), r.Object}] = struct{}{}
			objs[r.Predicate][r.Object] = struct{}{}
		}
	}
	n := float64(k.Len())
	var out []RelationStat
	for p, ps := range inst {
		st := RelationStat{Predicate: p, Instances: len(ps), Objects: len(objs[p])}
		if n > 0 {
			st.Support = float64(st.Instances) / (n * n)
		}
		if st.Instances > 0 {
			st.Discriminability = float64(st.Objects) / float64(st.Instances)
		}
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		out = append(out, st)
	}
	return out
}

// naiveAttributeImportances recomputes the §2.2 name-worthiness statistics
// with the pre-columnar semantics (instances count raw statements; values
// are compared after NormalizeName, empty form included).
func naiveAttributeImportances(k *kb.KB) []AttributeStat {
	subj := map[string]map[kb.EntityID]struct{}{}
	vals := map[string]map[string]struct{}{}
	instances := map[string]int{}
	for i := 0; i < k.Len(); i++ {
		for _, av := range k.Entity(kb.EntityID(i)).Attrs {
			if subj[av.Attribute] == nil {
				subj[av.Attribute] = map[kb.EntityID]struct{}{}
				vals[av.Attribute] = map[string]struct{}{}
			}
			subj[av.Attribute][kb.EntityID(i)] = struct{}{}
			vals[av.Attribute][kb.NormalizeName(av.Value)] = struct{}{}
			instances[av.Attribute]++
		}
	}
	n := float64(k.Len())
	var out []AttributeStat
	for a, ss := range subj {
		st := AttributeStat{
			Attribute:      a,
			Subjects:       len(ss),
			Instances:      instances[a],
			DistinctValues: len(vals[a]),
		}
		if n > 0 {
			st.Support = float64(st.Subjects) / n
		}
		if st.Instances > 0 {
			st.Discriminability = float64(st.DistinctValues) / float64(st.Instances)
		}
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		out = append(out, st)
	}
	return out
}

func TestRelationImportancesMatchNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomKB(rand.New(rand.NewSource(seed)), 40)
		got := RelationImportances(seq, k)
		wantByPred := map[string]RelationStat{}
		for _, st := range naiveRelationImportances(k) {
			wantByPred[st.Predicate] = st
		}
		if len(got) != len(wantByPred) {
			t.Fatalf("seed %d: %d predicates, want %d", seed, len(got), len(wantByPred))
		}
		for i, st := range got {
			want := wantByPred[st.Predicate]
			want.ID = st.ID // the reference has no schema IDs
			if st != want {
				t.Errorf("seed %d: %s: got %+v, want %+v", seed, st.Predicate, st, want)
			}
			if i > 0 && got[i-1].Importance < st.Importance {
				t.Errorf("seed %d: importance order violated at %d", seed, i)
			}
		}
	}
}

func TestAttributeImportancesMatchNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomKB(rand.New(rand.NewSource(100+seed)), 40)
		got := AttributeImportances(seq, k)
		wantByAttr := map[string]AttributeStat{}
		for _, st := range naiveAttributeImportances(k) {
			wantByAttr[st.Attribute] = st
		}
		if len(got) != len(wantByAttr) {
			t.Fatalf("seed %d: %d attributes, want %d", seed, len(got), len(wantByAttr))
		}
		for i, st := range got {
			want := wantByAttr[st.Attribute]
			want.ID = st.ID
			if st != want {
				t.Errorf("seed %d: %s: got %+v, want %+v", seed, st.Attribute, st, want)
			}
			if i > 0 && got[i-1].Importance < st.Importance {
				t.Errorf("seed %d: importance order violated at %d", seed, i)
			}
		}
	}
}

// The columnar statistics must also be independent of the worker count and
// scheduler (the determinism contract of every pipeline stage).
func TestColumnarStatsParallelDeterminism(t *testing.T) {
	k := randomKB(rand.New(rand.NewSource(7)), 120)
	refR := RelationImportances(seq, k)
	refA := AttributeImportances(seq, k)
	for _, workers := range []int{2, 5, 8} {
		e := parallel.New(workers)
		if got := RelationImportances(e, k); !reflect.DeepEqual(got, refR) {
			t.Fatalf("workers=%d: RelationImportances differ", workers)
		}
		if got := AttributeImportances(e, k); !reflect.DeepEqual(got, refA) {
			t.Fatalf("workers=%d: AttributeImportances differ", workers)
		}
	}
}

// NameLookup must agree with the per-call NamesOf reference for every entity
// and any subset of name attributes (including attributes the KB has never
// seen).
func TestNameLookupMatchesNamesOf(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		k := randomKB(rng, 30)
		nameAttrs := [][]string{
			nil,
			{"label"},
			{"label", "title"},
			{"Label", "label", "unseen-attribute"},
			{"note", "comment", "year", "title"},
		}[rng.Intn(5)]
		nl := NewNameLookup(k, nameAttrs)
		for i := 0; i < k.Len(); i++ {
			want := NamesOf(k.Entity(kb.EntityID(i)), nameAttrs)
			got := nl.Names(kb.EntityID(i))
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d entity %d attrs %v: Names = %v, want %v", seed, i, nameAttrs, got, want)
			}
		}
	}
}

// BenchmarkBuildEF compares the EF counting pass before and after the
// contention fix: one shared array with an atomic add per token occurrence
// (the pre-refactor path, kept as efCountsAtomic) vs per-worker local arrays
// merged in span order (the BuildEFCtx path).
func BenchmarkBuildEF(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.RexaDBLP(), 0.5))
	if err != nil {
		b.Fatal(err)
	}
	k := d.K2
	n := k.TokenDict().Len()
	eng := parallel.New(0)
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := efCountsLocal(context.Background(), eng, k, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := efCountsAtomic(context.Background(), eng, k, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The two EF counting strategies must agree exactly.
func TestEFCountStrategiesAgree(t *testing.T) {
	k := randomKB(rand.New(rand.NewSource(42)), 80)
	n := k.TokenDict().Len()
	for _, workers := range []int{1, 4} {
		e := parallel.New(workers)
		local, err := efCountsLocal(context.Background(), e, k, n)
		if err != nil {
			t.Fatal(err)
		}
		atomicCounts, err := efCountsAtomic(context.Background(), e, k, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(local, atomicCounts) {
			t.Fatalf("workers=%d: counting strategies disagree", workers)
		}
	}
}
