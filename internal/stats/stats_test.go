package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

func TestBuildEF(t *testing.T) {
	w, _ := testkb.Figure1()
	ef := BuildEF(seq, w)
	// "lake" appears in one Wikidata description (the chef).
	if got := ef.EF("lake"); got != 1 {
		t.Errorf(`EF("lake") = %d, want 1`, got)
	}
	// "the" appears only in Restaurant1's values.
	if got := ef.EF("the"); got != 1 {
		t.Errorf(`EF("the") = %d, want 1`, got)
	}
	// "berkshire" appears in Bray's description.
	if got := ef.EF("berkshire"); got != 1 {
		t.Errorf(`EF("berkshire") = %d, want 1`, got)
	}
	if got := ef.EF("nonexistent-token"); got != 0 {
		t.Errorf("EF(missing) = %d, want 0", got)
	}
	if ef.DistinctTokens() == 0 {
		t.Error("DistinctTokens = 0")
	}
}

func TestEFParallelMatchesSequential(t *testing.T) {
	w, _ := testkb.Figure1()
	ref := BuildEF(seq, w)
	for _, workers := range []int{2, 4, 8} {
		got := BuildEF(parallel.New(workers), w)
		if got.DistinctTokens() != ref.DistinctTokens() {
			t.Fatalf("workers=%d: distinct tokens differ", workers)
		}
		for _, tok := range []string{"lake", "fat", "duck", "bray", "berkshire"} {
			if got.EF(tok) != ref.EF(tok) {
				t.Fatalf("workers=%d: EF(%q) differs", workers, tok)
			}
		}
	}
}

func TestTokenWeight(t *testing.T) {
	// A token unique in both KBs contributes exactly 1 (paper §2.1 note ii).
	if got := TokenWeight(1, 1); got != 1 {
		t.Errorf("TokenWeight(1,1) = %v, want 1", got)
	}
	// Frequent tokens contribute little.
	if w := TokenWeight(1000, 1000); w > 0.06 {
		t.Errorf("TokenWeight(1000,1000) = %v, want small", w)
	}
	// Monotone decreasing in frequency.
	if TokenWeight(2, 2) <= TokenWeight(10, 10) {
		t.Error("TokenWeight must decrease with frequency")
	}
	// Degenerate inputs stay finite.
	if w := TokenWeight(0, 0); math.IsInf(w, 0) || math.IsNaN(w) {
		t.Errorf("TokenWeight(0,0) = %v, want finite", w)
	}
}

func TestValueSimSharedTokens(t *testing.T) {
	w, d := testkb.Figure1()
	ef1, ef2 := BuildEF(seq, w), BuildEF(seq, d)
	chef1 := w.Entity(w.Lookup("w:JohnLakeA"))
	chef2 := d.Entity(d.Lookup("d:JonnyLake"))
	// Shared tokens: "lake", "j" (from "J. Lake"). Both infrequent.
	sim := ValueSim(chef1, chef2, ef1, ef2)
	if sim <= 0 {
		t.Fatalf("ValueSim(chefs) = %v, want > 0", sim)
	}
	// No shared tokens → 0.
	uk := w.Entity(w.Lookup("w:UK"))
	if got := ValueSim(uk, chef2, ef1, ef2); got != 0 {
		t.Errorf("ValueSim(UK, chef) = %v, want 0", got)
	}
}

// Prop. 1 (partial): valueSim is symmetric and self-similarity dominates
// cross-similarity.
func TestValueSimMetricProperties(t *testing.T) {
	w, d := testkb.Figure1()
	ef1, ef2 := BuildEF(seq, w), BuildEF(seq, d)
	for i := 0; i < w.Len(); i++ {
		di := w.Entity(kb.EntityID(i))
		for j := 0; j < d.Len(); j++ {
			dj := d.Entity(kb.EntityID(j))
			ab := ValueSim(di, dj, ef1, ef2)
			ba := ValueSim(dj, di, ef2, ef1)
			if math.Abs(ab-ba) > 1e-12 {
				t.Fatalf("symmetry violated: %v vs %v", ab, ba)
			}
			if ab < 0 {
				t.Fatalf("negative similarity %v", ab)
			}
			// valueSim(ei,ei) >= valueSim(ei,ej), computed within E1's EF.
			self := ValueSim(di, di, ef1, ef1)
			cross := ValueSim(di, dj, ef1, ef1)
			if self+1e-12 < cross {
				t.Fatalf("self-similarity %v < cross %v", self, cross)
			}
		}
	}
}

func TestRelationImportancesOrdering(t *testing.T) {
	// Hand-checkable KB: 10 entities.
	//   "type": 6 instances, 1 object  → support .06, discr 1/6,  imp ≈ .0882
	//   "knows": 3 instances, 3 objects → support .03, discr 1,   imp ≈ .0583
	//   "owns": 1 instance, 1 object   → support .01, discr 1,    imp ≈ .0198
	b := kb.NewBuilder("X")
	ids := make([]kb.EntityID, 10)
	for i := range ids {
		ids[i] = b.AddEntity(string(rune('a' + i)))
	}
	for i := 0; i < 6; i++ {
		b.AddObject(ids[i], "type", "j") // ids[9] has URI "j"
	}
	b.AddObject(ids[0], "knows", "b")
	b.AddObject(ids[1], "knows", "c")
	b.AddObject(ids[2], "knows", "d")
	b.AddObject(ids[3], "owns", "e")
	k := b.Build()

	stats := RelationImportances(seq, k)
	if len(stats) != 3 {
		t.Fatalf("got %d relations, want 3", len(stats))
	}
	if stats[0].Predicate != "type" || stats[1].Predicate != "knows" || stats[2].Predicate != "owns" {
		t.Fatalf("order = %s,%s,%s; want type,knows,owns",
			stats[0].Predicate, stats[1].Predicate, stats[2].Predicate)
	}
	ty := stats[0]
	if ty.Instances != 6 || ty.Objects != 1 {
		t.Errorf("type stats = %+v", ty)
	}
	if math.Abs(ty.Support-0.06) > 1e-12 {
		t.Errorf("support(type) = %v, want 0.06", ty.Support)
	}
	if math.Abs(ty.Discriminability-1.0/6) > 1e-12 {
		t.Errorf("discriminability(type) = %v, want 1/6", ty.Discriminability)
	}
	wantImp := 2 * 0.06 * (1.0 / 6) / (0.06 + 1.0/6)
	if math.Abs(ty.Importance-wantImp) > 1e-12 {
		t.Errorf("importance(type) = %v, want %v", ty.Importance, wantImp)
	}
}

func TestRelationImportancesDuplicateEdges(t *testing.T) {
	// The same (subject, object) pair stated twice counts once: instances
	// is a set of pairs (Def. 2.2).
	b := kb.NewBuilder("X")
	a := b.AddEntity("a")
	b.AddEntity("b")
	b.AddObject(a, "p", "b")
	b.AddObject(a, "p", "b")
	k := b.Build()
	st := RelationImportances(seq, k)
	if st[0].Instances != 1 {
		t.Errorf("Instances = %d, want 1 (deduplicated)", st[0].Instances)
	}
}

func TestRelationImportancesEmpty(t *testing.T) {
	k := kb.NewBuilder("X").Build()
	if got := RelationImportances(seq, k); len(got) != 0 {
		t.Errorf("importances of empty KB = %v", got)
	}
}

func TestGlobalRelationOrder(t *testing.T) {
	stats := []RelationStat{{Predicate: "a"}, {Predicate: "b"}, {Predicate: "c"}}
	order := GlobalRelationOrder(stats)
	if order["a"] != 0 || order["b"] != 1 || order["c"] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestTopNeighbors(t *testing.T) {
	w, _ := testkb.Figure1()
	rel := RelationImportances(seq, w)
	order := GlobalRelationOrder(rel)
	top := TopNeighbors(seq, w, order, 2)
	r1 := w.Lookup("w:Restaurant1")
	got := top[r1]
	if len(got) != 2 {
		t.Fatalf("top2neighbors(Restaurant1) = %v, want 2 entities", got)
	}
	// With N=3 all three neighbors appear.
	top3 := TopNeighbors(seq, w, order, 3)
	if len(top3[r1]) != 3 {
		t.Fatalf("top3neighbors(Restaurant1) = %v, want 3", top3[r1])
	}
	// N=0 disables neighbor evidence.
	top0 := TopNeighbors(seq, w, order, 0)
	if top0[r1] != nil {
		t.Errorf("top0neighbors = %v, want nil", top0[r1])
	}
	// Entities without relations have no top neighbors.
	if got := top[w.Lookup("w:UK")]; len(got) != 0 {
		t.Errorf("UK top neighbors = %v, want none", got)
	}
}

func TestTopInNeighborsReverses(t *testing.T) {
	w, _ := testkb.Figure1()
	rel := RelationImportances(seq, w)
	order := GlobalRelationOrder(rel)
	top := TopNeighbors(seq, w, order, 3)
	in := TopInNeighbors(top)
	r1 := w.Lookup("w:Restaurant1")
	chef := w.Lookup("w:JohnLakeA")
	found := false
	for _, e := range in[chef] {
		if e == r1 {
			found = true
		}
	}
	if !found {
		t.Errorf("inNeighbors(chef) = %v, want to contain Restaurant1", in[chef])
	}
	// Exact inversion property: src ∈ in[dst] ⇔ dst ∈ top[src].
	for src, ns := range top {
		for _, dst := range ns {
			ok := false
			for _, back := range in[dst] {
				if int(back) == src {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("in-neighbor index not the inverse of top-neighbor index")
			}
		}
	}
}

func TestTopNeighborsParallelDeterminism(t *testing.T) {
	w, _ := testkb.Figure1()
	rel := RelationImportances(seq, w)
	order := GlobalRelationOrder(rel)
	ref := TopNeighbors(seq, w, order, 2)
	for _, workers := range []int{2, 4} {
		got := TopNeighbors(parallel.New(workers), w, order, 2)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: TopNeighbors differ", workers)
		}
	}
}

func TestHarmonicMeanProperty(t *testing.T) {
	// Support and discriminability both live in [0, 1], so the property is
	// checked on that domain: 0 ≤ h(a,b) ≤ max(a,b), and h = 0 iff either
	// argument is 0.
	f := func(ra, rb uint32) bool {
		a := float64(ra) / float64(math.MaxUint32)
		b := float64(rb) / float64(math.MaxUint32)
		h := harmonicMean(a, b)
		hi := math.Max(a, b)
		if h < 0 || h > hi+1e-12 {
			return false
		}
		if (a == 0 || b == 0) != (h == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
