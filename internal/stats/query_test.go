package stats

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// TopNeighborsOf is the query-path analogue of the per-entity top-neighbor
// row: feeding it an existing entity's relation columns must reproduce that
// entity's TopNeighborsRanksCtx row exactly, including the unstable-sort tie
// handling when more than n predicate spans compete.
func TestTopNeighborsOfMatchesBatchRow(t *testing.T) {
	eng := parallel.New(4)
	for seed := int64(0); seed < 5; seed++ {
		k := randomKB(rand.New(rand.NewSource(300+seed)), 60)
		ri, err := RelationImportancesCtx(context.Background(), eng, k)
		if err != nil {
			t.Fatal(err)
		}
		ranks := RelationRanks(k, ri)
		for _, n := range []int{0, 1, 2, 3, 8} {
			rows, err := TopNeighborsRanksCtx(context.Background(), eng, k, ranks, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k.Len(); i++ {
				preds, objs := k.RelationColumns(kb.EntityID(i))
				groups := make([]int32, len(preds))
				rranks := make([]int32, len(preds))
				for j, p := range preds {
					groups[j] = int32(p)
					rranks[j] = ranks[p]
				}
				got := TopNeighborsOf(groups, rranks, objs, n)
				if !reflect.DeepEqual(got, rows[i]) {
					t.Fatalf("seed=%d n=%d entity=%d: TopNeighborsOf = %v, batch row = %v",
						seed, n, i, got, rows[i])
				}
			}
		}
	}
}

func TestTopNeighborsOfEmpty(t *testing.T) {
	if got := TopNeighborsOf(nil, nil, nil, 3); got != nil {
		t.Fatalf("TopNeighborsOf(nil) = %v, want nil", got)
	}
}
