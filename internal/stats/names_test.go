package stats

import (
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/testkb"
)

func TestAttributeImportances(t *testing.T) {
	// "label": on all 4 entities, 4 distinct values → support 1, discr 1.
	// "category": on all 4 entities, 1 shared value → support 1, discr .25.
	// "note": on 1 entity → support .25, discr 1.
	b := kb.NewBuilder("X")
	for i, name := range []string{"Alpha", "Beta", "Gamma", "Delta"} {
		id := b.AddEntity(name)
		b.AddLiteral(id, "label", name)
		b.AddLiteral(id, "category", "Thing")
		if i == 0 {
			b.AddLiteral(id, "note", "special")
		}
	}
	k := b.Build()
	stats := AttributeImportances(seq, k)
	if len(stats) != 3 {
		t.Fatalf("got %d attributes, want 3", len(stats))
	}
	if stats[0].Attribute != "label" {
		t.Fatalf("top attribute = %q, want label (stats: %+v)", stats[0].Attribute, stats)
	}
	if stats[0].Support != 1 || stats[0].Discriminability != 1 || stats[0].Importance != 1 {
		t.Errorf("label stats = %+v, want support=discr=imp=1", stats[0])
	}
	// category: support 1, discr 1/4 → harmonic mean 0.4.
	var cat AttributeStat
	for _, s := range stats {
		if s.Attribute == "category" {
			cat = s
		}
	}
	if cat.Importance != 0.4 {
		t.Errorf("importance(category) = %v, want 0.4", cat.Importance)
	}
}

func TestNameAttributesTopK(t *testing.T) {
	w, _ := testkb.Figure1()
	attrs := NameAttributes(seq, w, 2)
	if len(attrs) != 2 {
		t.Fatalf("NameAttributes k=2 = %v", attrs)
	}
	// "label" is on all entities with distinct values: must be selected.
	found := false
	for _, a := range attrs {
		if a == "label" {
			found = true
		}
	}
	if !found {
		t.Errorf("NameAttributes = %v, want to include label", attrs)
	}
	// k larger than attribute count returns all.
	all := NameAttributes(seq, w, 100)
	if len(all) != w.Attributes() {
		t.Errorf("NameAttributes k=100 returned %d of %d", len(all), w.Attributes())
	}
	// k=0 returns none.
	if got := NameAttributes(seq, w, 0); len(got) != 0 {
		t.Errorf("NameAttributes k=0 = %v", got)
	}
}

func TestNamesOf(t *testing.T) {
	w, d := testkb.Figure1()
	wAttrs := NameAttributes(seq, w, 2)
	dAttrs := NameAttributes(seq, d, 2)
	chef1 := w.Entity(w.Lookup("w:JohnLakeA"))
	chef2 := d.Entity(d.Lookup("d:JonnyLake"))
	n1 := NamesOf(chef1, wAttrs)
	n2 := NamesOf(chef2, dAttrs)
	// Example 3.4: the two chefs share the unique normalized name "j lake".
	if !contains(n1, "j lake") {
		t.Errorf("names(JohnLakeA) = %v, want to contain %q", n1, "j lake")
	}
	if !contains(n2, "j lake") {
		t.Errorf("names(JonnyLake) = %v, want to contain %q", n2, "j lake")
	}
}

func TestNamesOfEdgeCases(t *testing.T) {
	b := kb.NewBuilder("X")
	e := b.AddEntity("e")
	b.AddLiteral(e, "label", "!!!") // normalizes to empty → dropped
	b.AddLiteral(e, "label", "Twice")
	b.AddLiteral(e, "label", "twice") // duplicate after normalization
	k := b.Build()
	got := NamesOf(k.Entity(e), []string{"label"})
	if !reflect.DeepEqual(got, []string{"twice"}) {
		t.Errorf("NamesOf = %v, want [twice]", got)
	}
	if got := NamesOf(k.Entity(e), nil); len(got) != 0 {
		t.Errorf("NamesOf with no name attributes = %v, want empty", got)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
