package stats

import (
	"cmp"
	"context"
	"slices"
	"sync/atomic"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// AttributeStat carries the name-worthiness statistics of one literal
// attribute (§2.2, "Entity Names"). Following [32] as cited by the paper,
// for name attributes support is defined over subjects:
//
//	support(p) = |subjects(p)| / |E|
//	discriminability(p) = |values(p)| / |instances(p)|
//	importance(p) = harmonic mean of the two
//
// High support means the attribute is present on most entities; high
// discriminability means its values are near-unique — exactly what makes a
// value usable as a name.
type AttributeStat struct {
	Attribute string
	// ID is the attribute's dense schema ID in the KB's kb.Schema.
	ID               kb.AttrID
	Subjects         int
	Instances        int
	DistinctValues   int
	Support          float64
	Discriminability float64
	Importance       float64
}

// attrCounts is one span's local tally: per-attribute raw statement count,
// per-attribute subject count (entities carrying the attribute), and
// per-attribute count of entity-distinct (attribute, value) rows — the
// elements pass 2 groups for the global distinct-value count.
type attrCounts struct {
	instances []int32
	subjects  []int32
	pairs     []int32
}

// AttributeImportancesCtx computes name-worthiness statistics for every
// literal attribute of the KB, sorted by decreasing importance (ties broken
// by attribute name).
//
// Like RelationImportancesCtx, the computation is flat counting over the
// columnar attribute spans: values were normalized and interned at KB build
// time (kb.ValueID), and each entity's statements are (AttrID,
// ValueID)-sorted, so subjects and per-entity distinct values are adjacency
// checks, and the global distinct-value count is a per-attribute
// sort+compact after a scatter fill — no tuple materialization, no maps.
func AttributeImportancesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) ([]AttributeStat, error) {
	sch := k.Schema()
	nAttr := sch.Attrs()
	if nAttr == 0 || k.Len() == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []AttributeStat{}, nil
	}
	ce := e.Chunked()
	// Pass 1: span-local counts merged in span order.
	locals, err := parallel.MapSpansCtx(ctx, ce, k.Len(), func(s parallel.Span) (attrCounts, error) {
		c := attrCounts{
			instances: make([]int32, nAttr),
			subjects:  make([]int32, nAttr),
			pairs:     make([]int32, nAttr),
		}
		for i := s.Lo; i < s.Hi; i++ {
			attrs, vals := k.AttributeColumns(kb.EntityID(i))
			for j, a := range attrs {
				c.instances[a]++
				if j == 0 || a != attrs[j-1] {
					c.subjects[a]++
				}
				if j == 0 || a != attrs[j-1] || vals[j] != vals[j-1] {
					c.pairs[a]++
				}
			}
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	agg := locals[0]
	for _, l := range locals[1:] {
		addCounts(agg.instances, l.instances)
		addCounts(agg.subjects, l.subjects)
		addCounts(agg.pairs, l.pairs)
	}
	// Pass 2: group the entity-distinct values by attribute, then count the
	// globally distinct ones per attribute with a sort+compact.
	off := prefixSums(agg.pairs)
	valsByAttr := make([]kb.ValueID, off[nAttr])
	cur := slices.Clone(off[:nAttr])
	err = ce.ForCtx(ctx, k.Len(), func(i int) error {
		attrs, vals := k.AttributeColumns(kb.EntityID(i))
		for j, a := range attrs {
			if j > 0 && a == attrs[j-1] && vals[j] == vals[j-1] {
				continue
			}
			valsByAttr[atomic.AddInt32(&cur[a], 1)-1] = vals[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	distinct := make([]int32, nAttr)
	err = ce.ForCtx(ctx, nAttr, func(a int) error {
		group := valsByAttr[off[a]:off[a+1]]
		slices.Sort(group)
		distinct[a] = countDistinctSorted(group)
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := float64(k.Len())
	out := make([]AttributeStat, 0, nAttr)
	for a := 0; a < nAttr; a++ {
		if agg.instances[a] == 0 {
			continue // attribute absent from this KB (shared schema dictionary)
		}
		st := AttributeStat{
			Attribute:      sch.Attr(kb.AttrID(a)),
			ID:             kb.AttrID(a),
			Subjects:       int(agg.subjects[a]),
			Instances:      int(agg.instances[a]),
			DistinctValues: int(distinct[a]),
		}
		if n > 0 {
			st.Support = float64(st.Subjects) / n
		}
		st.Discriminability = float64(st.DistinctValues) / float64(st.Instances)
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		out = append(out, st)
	}
	slices.SortFunc(out, func(a, b AttributeStat) int {
		if a.Importance != b.Importance {
			return cmp.Compare(b.Importance, a.Importance)
		}
		return cmp.Compare(a.Attribute, b.Attribute)
	})
	return out, nil
}

// AttributeImportances is AttributeImportancesCtx without cancellation.
func AttributeImportances(e *parallel.Engine, k *kb.KB) []AttributeStat {
	out, _ := AttributeImportancesCtx(context.Background(), e, k)
	return out
}

// NameAttributesCtx returns the global top-k attributes of highest
// importance; their literal values act as entity names (§2.2).
func NameAttributesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, topK int) ([]string, error) {
	stats, err := AttributeImportancesCtx(ctx, e, k)
	if err != nil {
		return nil, err
	}
	if topK > len(stats) {
		topK = len(stats)
	}
	names := make([]string, 0, topK)
	for _, s := range stats[:topK] {
		names = append(names, s.Attribute)
	}
	return names, nil
}

// NameAttributes is NameAttributesCtx without cancellation.
func NameAttributes(e *parallel.Engine, k *kb.KB, topK int) []string {
	out, _ := NameAttributesCtx(context.Background(), e, k, topK)
	return out
}

// NameLookup is the resolve-scoped evaluator of the name(e_i) function
// (§2.2): the name-attribute membership test is built ONCE per (KB,
// nameAttrs) pair as a flat bitset over kb.AttrID — not once per entity, as
// the historical NamesOf did with a fresh map — and per-entity evaluation
// walks the pre-normalized columnar span, so no normalization and no maps
// happen per call. Name blocking consults it for every entity of both KBs.
type NameLookup struct {
	k      *kb.KB
	isName []bool
	// empty/hasEmpty cache the ValueID of the empty normalized value, so the
	// ID-level walk can drop it without a string comparison per statement.
	empty    kb.ValueID
	hasEmpty bool
}

// NewNameLookup builds the lookup for one KB and its discovered name
// attributes. Attributes unknown to the KB's schema are ignored (they can
// match no statement).
func NewNameLookup(k *kb.KB, nameAttrs []string) *NameLookup {
	sch := k.Schema()
	isName := make([]bool, sch.Attrs())
	for _, a := range nameAttrs {
		if id, ok := sch.LookupAttr(a); ok {
			isName[id] = true
		}
	}
	nl := &NameLookup{k: k, isName: isName}
	nl.empty, nl.hasEmpty = sch.LookupValue("")
	return nl
}

// KB returns the KB the lookup was built for.
func (nl *NameLookup) KB() *kb.KB { return nl.k }

// Names returns the normalized name values of one entity — the same
// contract as NamesOf: empty normalized values dropped, duplicates removed,
// sorted for determinism.
func (nl *NameLookup) Names(id kb.EntityID) []string {
	attrs, vals := nl.k.AttributeColumns(id)
	sch := nl.k.Schema()
	var out []string
	for j, a := range attrs {
		if int(a) >= len(nl.isName) || !nl.isName[a] {
			continue
		}
		if j > 0 && a == attrs[j-1] && vals[j] == vals[j-1] {
			continue // adjacent duplicate within the sorted span
		}
		if s := sch.Value(vals[j]); s != "" {
			out = append(out, s)
		}
	}
	if len(out) < 2 {
		return out
	}
	// The same normalized value can appear under two different name
	// attributes; sort+compact handles the cross-attribute duplicates.
	slices.Sort(out)
	return slices.Compact(out)
}

// AppendNameValueIDs appends the deduplicated name ValueIDs of one entity to
// dst and returns the extended slice — the ID-level form of Names: the same
// statements qualify (name attribute, non-empty normalized value, duplicates
// removed), but values stay interned, so callers can count them into dense
// arrays without materializing a string per statement. The appended IDs are
// sorted numerically; Names sorts the corresponding strings, so the SETS
// agree while the orders differ.
func (nl *NameLookup) AppendNameValueIDs(dst []kb.ValueID, id kb.EntityID) []kb.ValueID {
	attrs, vals := nl.k.AttributeColumns(id)
	base := len(dst)
	for j, a := range attrs {
		if int(a) >= len(nl.isName) || !nl.isName[a] {
			continue
		}
		if j > 0 && a == attrs[j-1] && vals[j] == vals[j-1] {
			continue // adjacent duplicate within the sorted span
		}
		if nl.hasEmpty && vals[j] == nl.empty {
			continue
		}
		dst = append(dst, vals[j])
	}
	if len(dst)-base < 2 {
		return dst
	}
	// The same value can appear under two different name attributes;
	// sort+compact handles the cross-attribute duplicates (cf. Names).
	tail := dst[base:]
	slices.Sort(tail)
	return dst[:base+len(slices.Compact(tail))]
}

// NamesOf returns the normalized name values of one entity under the given
// name attributes (function name(e_i) of §2.2). Empty normalized values are
// dropped; duplicates are removed; order is sorted for determinism.
//
// This is the per-call compatibility form (it re-normalizes values and
// rebuilds the attribute set every time); resolve-scoped callers iterate a
// NameLookup instead.
func NamesOf(d *kb.Description, nameAttrs []string) []string {
	isName := make(map[string]bool, len(nameAttrs))
	for _, a := range nameAttrs {
		isName[a] = true
	}
	set := make(map[string]struct{})
	for _, av := range d.Attrs {
		if !isName[av.Attribute] {
			continue
		}
		n := kb.NormalizeName(av.Value)
		if n != "" {
			set[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}
