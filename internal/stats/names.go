package stats

import (
	"cmp"
	"context"
	"slices"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// AttributeStat carries the name-worthiness statistics of one literal
// attribute (§2.2, "Entity Names"). Following [32] as cited by the paper,
// for name attributes support is defined over subjects:
//
//	support(p) = |subjects(p)| / |E|
//	discriminability(p) = |values(p)| / |instances(p)|
//	importance(p) = harmonic mean of the two
//
// High support means the attribute is present on most entities; high
// discriminability means its values are near-unique — exactly what makes a
// value usable as a name.
type AttributeStat struct {
	Attribute        string
	Subjects         int
	Instances        int
	DistinctValues   int
	Support          float64
	Discriminability float64
	Importance       float64
}

type attrAgg struct {
	subjects  map[kb.EntityID]struct{}
	values    map[string]struct{}
	instances int
}

// AttributeImportancesCtx computes name-worthiness statistics for every
// literal attribute of the KB, sorted by decreasing importance (ties broken
// by attribute name).
func AttributeImportancesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB) ([]AttributeStat, error) {
	type sv struct {
		s kb.EntityID
		v string
	}
	grouped, err := parallel.GroupByCtx(ctx, e, k.Len(), func(i int, yield func(string, sv)) {
		d := k.Entity(kb.EntityID(i))
		for _, av := range d.Attrs {
			yield(av.Attribute, sv{kb.EntityID(i), kb.NormalizeName(av.Value)})
		}
	})
	if err != nil {
		return nil, err
	}
	n := float64(k.Len())
	out := make([]AttributeStat, 0, len(grouped))
	for attr, svs := range grouped {
		agg := attrAgg{
			subjects: make(map[kb.EntityID]struct{}),
			values:   make(map[string]struct{}),
		}
		for _, x := range svs {
			agg.subjects[x.s] = struct{}{}
			agg.values[x.v] = struct{}{}
			agg.instances++
		}
		st := AttributeStat{
			Attribute:      attr,
			Subjects:       len(agg.subjects),
			Instances:      agg.instances,
			DistinctValues: len(agg.values),
		}
		if n > 0 {
			st.Support = float64(st.Subjects) / n
		}
		if st.Instances > 0 {
			st.Discriminability = float64(st.DistinctValues) / float64(st.Instances)
		}
		st.Importance = harmonicMean(st.Support, st.Discriminability)
		out = append(out, st)
	}
	slices.SortFunc(out, func(a, b AttributeStat) int {
		if a.Importance != b.Importance {
			return cmp.Compare(b.Importance, a.Importance)
		}
		return cmp.Compare(a.Attribute, b.Attribute)
	})
	return out, nil
}

// AttributeImportances is AttributeImportancesCtx without cancellation.
func AttributeImportances(e *parallel.Engine, k *kb.KB) []AttributeStat {
	out, _ := AttributeImportancesCtx(context.Background(), e, k)
	return out
}

// NameAttributesCtx returns the global top-k attributes of highest
// importance; their literal values act as entity names (§2.2).
func NameAttributesCtx(ctx context.Context, e *parallel.Engine, k *kb.KB, topK int) ([]string, error) {
	stats, err := AttributeImportancesCtx(ctx, e, k)
	if err != nil {
		return nil, err
	}
	if topK > len(stats) {
		topK = len(stats)
	}
	names := make([]string, 0, topK)
	for _, s := range stats[:topK] {
		names = append(names, s.Attribute)
	}
	return names, nil
}

// NameAttributes is NameAttributesCtx without cancellation.
func NameAttributes(e *parallel.Engine, k *kb.KB, topK int) []string {
	out, _ := NameAttributesCtx(context.Background(), e, k, topK)
	return out
}

// NamesOf returns the normalized name values of one entity under the given
// name attributes (function name(e_i) of §2.2). Empty normalized values are
// dropped; duplicates are removed; order is sorted for determinism.
func NamesOf(d *kb.Description, nameAttrs []string) []string {
	isName := make(map[string]bool, len(nameAttrs))
	for _, a := range nameAttrs {
		isName[a] = true
	}
	set := make(map[string]struct{})
	for _, av := range d.Attrs {
		if !isName[av.Attribute] {
			continue
		}
		n := kb.NormalizeName(av.Value)
		if n != "" {
			set[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}
