// Typed section codecs: little-endian encoders for the numeric column types
// the format stores, and the matching views — zero-copy reinterpretation of
// the section bytes (the mmap fast path) or an explicit element-by-element
// decode (the portable / cross-endian path). Zero-copy is only taken when
// the host is little-endian and the section base is 8-byte aligned, which
// parseHeader guarantees relative to the image start.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"minoaner/internal/graph"
	"minoaner/internal/kb"
)

// Compile-time layout assertions behind the zero-copy reinterpretation of
// []graph.Edge: 16-byte records with the weight at offset 8. If the Edge
// struct ever changes shape, these fail to compile instead of corrupting
// loads.
var (
	_ [16]struct{} = [unsafe.Sizeof(graph.Edge{})]struct{}{}
	_ [8]struct{}  = [unsafe.Offsetof(graph.Edge{}.Weight)]struct{}{}
	_ [4]struct{}  = [unsafe.Sizeof(kb.EntityID(0))]struct{}{}
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian (the zero-copy precondition).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func encU32s[T ~uint32](v []T) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

func encI32s[T ~int32](v []T) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

func encI64s(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(x))
	}
	return b
}

func encF64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// encEdges writes 16-byte records {to int32, pad uint32(0), weight float64
// bits} — the in-memory little-endian layout of graph.Edge, with the padding
// pinned to zero for deterministic files.
func encEdges(v []graph.Edge) []byte {
	b := make([]byte, 16*len(v))
	for i, e := range v {
		binary.LittleEndian.PutUint32(b[i*16:], uint32(int32(e.To)))
		binary.LittleEndian.PutUint64(b[i*16+8:], math.Float64bits(e.Weight))
	}
	return b
}

// The view* functions turn one section's bytes into a typed slice. In
// zero-copy mode the returned slice aliases the section (and therefore the
// mapping); in copy mode elements are decoded into fresh memory.

func viewU32s[T ~uint32](b []byte, copyMode bool, what string) ([]T, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: %s section of %d bytes (want multiple of 4)", ErrCorrupt, what, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if !copyMode {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func viewI32s[T ~int32](b []byte, copyMode bool, what string) ([]T, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: %s section of %d bytes (want multiple of 4)", ErrCorrupt, what, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if !copyMode {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(int32(binary.LittleEndian.Uint32(b[i*4:])))
	}
	return out, nil
}

func viewI64s(b []byte, copyMode bool, what string) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: %s section of %d bytes (want multiple of 8)", ErrCorrupt, what, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if !copyMode {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func viewF64s(b []byte, copyMode bool, what string) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: %s section of %d bytes (want multiple of 8)", ErrCorrupt, what, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if !copyMode {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func viewEdges(b []byte, copyMode bool, what string) ([]graph.Edge, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("%w: %s section of %d bytes (want multiple of 16)", ErrCorrupt, what, len(b))
	}
	n := len(b) / 16
	if n == 0 {
		return nil, nil
	}
	if !copyMode {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{
			To:     kb.EntityID(int32(binary.LittleEndian.Uint32(b[i*16:]))),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:])),
		}
	}
	return out, nil
}

// flatten lays a ragged [][]T out as an element-count offset table plus one
// flat array (the write side of the nested codec).
func flatten[T any](rows [][]T) ([]int64, []T) {
	off := make([]int64, len(rows)+1)
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	flat := make([]T, 0, total)
	for i, r := range rows {
		off[i] = int64(len(flat))
		flat = append(flat, r...)
	}
	off[len(rows)] = int64(len(flat))
	return off, flat
}

// nested rebuilds the ragged view over a flat array: row i is
// flat[off[i]:off[i+1]]. Rows alias flat (and therefore the mapping, in
// zero-copy mode); the offset table is validated so corrupt input fails
// cleanly instead of panicking downstream.
func nested[T any](off []int64, flat []T, what string) ([][]T, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("%w: %s: empty offset table", ErrCorrupt, what)
	}
	n := len(off) - 1
	if off[0] != 0 || off[n] != int64(len(flat)) {
		return nil, fmt.Errorf("%w: %s offsets [%d..%d] do not cover %d elements", ErrCorrupt, what, off[0], off[n], len(flat))
	}
	out := make([][]T, n)
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("%w: %s offsets decrease at %d", ErrCorrupt, what, i)
		}
		out[i] = flat[off[i]:off[i+1]:off[i+1]]
	}
	return out, nil
}

// nestedSection reads an (offset, flat) section pair of int32-kind elements
// into its ragged view.
func nestedSection[T ~int32](h *header, copyMode bool, offID, flatID uint32, what string) ([][]T, error) {
	ob, err := h.section(offID)
	if err != nil {
		return nil, err
	}
	fb, err := h.section(flatID)
	if err != nil {
		return nil, err
	}
	off, err := viewI64s(ob, copyMode, what+" offsets")
	if err != nil {
		return nil, err
	}
	flat, err := viewI32s[T](fb, copyMode, what)
	if err != nil {
		return nil, err
	}
	return nested(off, flat, what)
}

// nestedEdgeSection reads an (offset, edges) section pair into its ragged view.
func nestedEdgeSection(h *header, copyMode bool, offID, flatID uint32, what string) ([][]graph.Edge, error) {
	ob, err := h.section(offID)
	if err != nil {
		return nil, err
	}
	fb, err := h.section(flatID)
	if err != nil {
		return nil, err
	}
	off, err := viewI64s(ob, copyMode, what+" offsets")
	if err != nil {
		return nil, err
	}
	flat, err := viewEdges(fb, copyMode, what)
	if err != nil {
		return nil, err
	}
	return nested(off, flat, what)
}

// frozenSection reads a frozen-string trio (blob, offsets, optional sorted
// permutation) into a kb.FrozenStrings. The blob always aliases the image.
func frozenSection(h *header, copyMode bool, base uint32, what string) (*kb.FrozenStrings, error) {
	blob, err := h.section(base + frozenBlob)
	if err != nil {
		return nil, err
	}
	ob, err := h.section(base + frozenOff)
	if err != nil {
		return nil, err
	}
	off, err := viewI64s(ob, copyMode, what+" offsets")
	if err != nil {
		return nil, err
	}
	var sorted []uint32
	if sb, ok := h.optional(base + frozenSorted); ok {
		if sorted, err = viewU32s[uint32](sb, copyMode, what+" sorted"); err != nil {
			return nil, err
		}
	}
	fs, err := kb.NewFrozenStrings(blob, off, sorted)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, what, err)
	}
	return fs, nil
}
