package snapshot

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/kb"
)

// pinnedDigest replicates the digest of internal/core's pinned-digest test
// over an Output, so snapshot-loaded substrates can be checked against the
// committed byte-identity fixtures without an import cycle.
func pinnedDigest(out *core.Output) string {
	h := sha256.New()
	for _, m := range out.Matches {
		fmt.Fprintf(h, "m %d %d %s\n", m.Pair.E1, m.Pair.E2, m.Rule)
	}
	fmt.Fprintf(h, "r4 %d edges %d purged %d threshold %d\n",
		out.RemovedByR4, out.GraphEdges, out.PurgedBlocks, out.PurgeThreshold)
	fmt.Fprintf(h, "names %v %v\n", out.NameAttrs1, out.NameAttrs2)
	fmt.Fprintf(h, "blocks %d %d comparisons %d %d\n",
		out.NameBlocks.Len(), out.TokenBlocks.Len(),
		out.NameBlocks.TotalComparisons(), out.TokenBlocks.TotalComparisons())
	return hex.EncodeToString(h.Sum(nil))
}

type pinnedCase struct {
	Dataset string `json:"dataset"`
	Workers int    `json:"workers"`
	Shards  int    `json:"shards"`
	SHA256  string `json:"sha256"`
}

// loadPinned returns the pinned digest for a preset at workers=1, shards=1.
func loadPinned(t *testing.T, dataset string) string {
	t.Helper()
	data, err := os.ReadFile("../core/testdata/pinned_digests.json")
	if err != nil {
		t.Fatal(err)
	}
	var cases []pinnedCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Dataset == dataset && c.Workers == 1 && c.Shards == 1 {
			return c.SHA256
		}
	}
	t.Fatalf("no pinned digest for %s", dataset)
	return ""
}

// buildPreset generates a preset pair at the pinned-fixture scale (0.1) and
// builds its substrate.
func buildPreset(t *testing.T, name string) *core.Substrate {
	t.Helper()
	for _, profile := range datagen.Presets() {
		if profile.Name != name {
			continue
		}
		d, err := datagen.Generate(datagen.Scale(profile, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := core.BuildSubstrate(context.Background(), d.K1, d.K2, core.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	t.Fatalf("unknown preset %s", name)
	return nil
}

func resolveDigest(t *testing.T, sub *core.Substrate) string {
	t.Helper()
	out, err := core.ResolveWith(context.Background(), sub, core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pinnedDigest(out)
}

func snapshotBytes(t *testing.T, sub *core.Substrate) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSubstrate(&buf, sub); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func presetsUnderTest(t *testing.T) []string {
	if testing.Short() {
		return []string{"Restaurant"}
	}
	var names []string
	for _, p := range datagen.Presets() {
		names = append(names, p.Name)
	}
	return names
}

// TestRoundTripPinnedDigests proves the byte-identity bar: a substrate
// round-tripped through the snapshot format — via both the mmap loader and
// the portable copying decoder — resolves to exactly the digests pinned
// before the substrate refactor.
func TestRoundTripPinnedDigests(t *testing.T) {
	for _, name := range presetsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			sub := buildPreset(t, name)
			want := loadPinned(t, name)
			if got := resolveDigest(t, sub); got != want {
				t.Fatalf("built substrate digest %s differs from pinned %s", got, want)
			}

			path := filepath.Join(t.TempDir(), "pair.snap")
			if err := WriteSubstrateFile(path, sub); err != nil {
				t.Fatal(err)
			}
			opened, err := OpenSubstrate(path)
			if err != nil {
				t.Fatal(err)
			}
			defer opened.Close()
			if got := resolveDigest(t, opened.Substrate()); got != want {
				t.Errorf("mmap-loaded digest %s differs from pinned %s", got, want)
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			read, err := ReadSubstrate(data)
			if err != nil {
				t.Fatal(err)
			}
			if got := resolveDigest(t, read.Substrate()); got != want {
				t.Errorf("copy-decoded digest %s differs from pinned %s", got, want)
			}
		})
	}
}

// TestRoundTripQueryRows proves the query path: QueryEntity over a
// snapshot-loaded substrate (with its persisted query state) returns rows
// deep-equal to the originally built, prewarmed substrate — under both
// decoders.
func TestRoundTripQueryRows(t *testing.T) {
	sub := buildPreset(t, "Restaurant")
	ctx := context.Background()
	if err := sub.PrewarmQueries(ctx); err != nil {
		t.Fatal(err)
	}
	data := snapshotBytes(t, sub)

	path := filepath.Join(t.TempDir(), "pair.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSubstrate(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	read, err := ReadSubstrate(data)
	if err != nil {
		t.Fatal(err)
	}

	k1 := sub.K1()
	n := k1.Len()
	if n == 0 {
		t.Fatal("empty KB")
	}
	cfg := core.Config{Workers: 1}
	checked := 0
	for i := 0; i < n; i += 1 + n/50 { // ~50 spread-out entities
		q := core.QueryFromEntity(k1, kb.EntityID(i))
		want, err := core.QueryEntity(ctx, sub, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, loaded := range map[string]*core.Substrate{
			"mmap": opened.Substrate(), "copy": read.Substrate(),
		} {
			got, err := core.QueryEntity(ctx, loaded, q, cfg)
			if err != nil {
				t.Fatalf("%s: entity %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: entity %d: rows differ\nbuilt:  %+v\nloaded: %+v", name, i, want, got)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no entities checked")
	}
}

// TestCorruptInputs exercises the failure paths: truncation, a wrong magic,
// an unknown version and a misaligned section must all surface as the typed
// errors, never a panic.
func TestCorruptInputs(t *testing.T) {
	sub := buildPreset(t, "Restaurant")
	data := snapshotBytes(t, sub)

	mutate := func(f func(b []byte) []byte) []byte {
		b := bytes.Clone(data)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", mutate(func(b []byte) []byte { return b[:10] }), ErrTruncated},
		{"cut-table", mutate(func(b []byte) []byte { return b[:headerSize+5] }), ErrTruncated},
		{"cut-sections", mutate(func(b []byte) []byte { return b[:len(b)/2] }), ErrTruncated},
		{"bad-magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }), ErrBadMagic},
		{"bad-version", mutate(func(b []byte) []byte { b[8] = 99; return b }), ErrVersion},
		{"misaligned-section", mutate(func(b []byte) []byte {
			// Bump the first table entry's offset by 4: still in bounds (the
			// length check uses the stored length), no longer 8-aligned.
			b[headerSize+8] += 4
			return b
		}), ErrMisaligned},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadSubstrate(c.data)
			if err == nil {
				t.Fatal("decode of corrupt input succeeded")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want errors.Is %v", err, c.want)
			}
		})
	}
}

// TestCorruptFileViaOpen checks the mmap path reports the same typed errors.
func TestCorruptFileViaOpen(t *testing.T) {
	sub := buildPreset(t, "Restaurant")
	data := snapshotBytes(t, sub)
	data[0] ^= 0xff
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSubstrate(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

// TestWriteDeterministic: the same substrate serializes to identical bytes.
func TestWriteDeterministic(t *testing.T) {
	sub := buildPreset(t, "Restaurant")
	a := snapshotBytes(t, sub)
	b := snapshotBytes(t, sub)
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same substrate differ")
	}
}
