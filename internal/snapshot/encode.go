// Snapshot encoder: WriteSubstrate serializes a built substrate — both KBs,
// dictionaries, columnar spans, ranks, top-neighbor rows, name blocks, the
// purged token index, and (always) the prewarmed query state — into the
// sectioned format described in format.go. Files are deterministic for a
// given substrate: section order, padding bytes and struct padding inside
// edge records are all pinned.
package snapshot

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
)

// metaV1 is the JSON payload of the meta section: everything scalar or
// irregular that does not justify a binary column.
type metaV1 struct {
	K1Name    string `json:"k1_name"`
	K2Name    string `json:"k2_name"`
	K1Triples int    `json:"k1_triples"`
	K2Triples int    `json:"k2_triples"`

	// Config is the NORMALIZED build configuration, installed verbatim on
	// load (re-normalizing would re-enable a disabled Block Purging).
	Config core.Config `json:"config"`

	NameAttrs1 []string `json:"name_attrs1,omitempty"`
	NameAttrs2 []string `json:"name_attrs2,omitempty"`

	PurgedBlocks   int   `json:"purged_blocks"`
	PurgeThreshold int64 `json:"purge_threshold"`

	Timings     core.Timings `json:"timings"`
	BuildWallNS int64        `json:"build_wall_ns"`
}

// secWriter accumulates sections in file order, then lays out the header,
// table and 8-padded section bodies.
type secWriter struct {
	secs []struct {
		id   uint32
		data []byte
	}
}

func (sw *secWriter) add(id uint32, data []byte) {
	sw.secs = append(sw.secs, struct {
		id   uint32
		data []byte
	}{id, data})
}

func pad8(n int) int64 { return int64((n + 7) &^ 7) }

func (sw *secWriter) writeTo(out io.Writer, flags uint32) error {
	count := len(sw.secs)
	tableEnd := int64(headerSize) + int64(count)*tableEntry
	head := make([]byte, tableEnd)
	copy(head, magic[:])
	binary.LittleEndian.PutUint32(head[8:], formatVersion)
	binary.LittleEndian.PutUint32(head[12:], flags)
	binary.LittleEndian.PutUint32(head[16:], uint32(count))
	off := tableEnd // headerSize and tableEntry are both multiples of 8
	for i, s := range sw.secs {
		e := head[headerSize+i*tableEntry:]
		binary.LittleEndian.PutUint32(e, s.id)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		off += pad8(len(s.data))
	}
	if _, err := out.Write(head); err != nil {
		return err
	}
	var zeros [8]byte
	for _, s := range sw.secs {
		if _, err := out.Write(s.data); err != nil {
			return err
		}
		if p := pad8(len(s.data)) - int64(len(s.data)); p > 0 {
			if _, err := out.Write(zeros[:p]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (sw *secWriter) addFrozen(base uint32, fs *kb.FrozenStrings) {
	blob, off, sorted := fs.Parts()
	sw.add(base+frozenBlob, blob)
	sw.add(base+frozenOff, encI64s(off))
	if sorted != nil {
		sw.add(base+frozenSorted, encU32s(sorted))
	}
}

func (sw *secWriter) addEntityCSR(offID, flatID uint32, rows [][]kb.EntityID) {
	off, flat := flatten(rows)
	sw.add(offID, encI64s(off))
	sw.add(flatID, encI32s(flat))
}

func (sw *secWriter) addEdgeCSR(offID, flatID uint32, rows [][]graph.Edge) {
	off, flat := flatten(rows)
	sw.add(offID, encI64s(off))
	sw.add(flatID, encEdges(flat))
}

func (sw *secWriter) addKB(base uint32, p kb.SnapshotParts) {
	sw.addFrozen(base+kbURIBlob, p.URIs)
	sw.add(base+kbTokenOff, encI64s(p.TokenOff))
	sw.add(base+kbTokens, encU32s(p.Tokens))
	sw.add(base+kbRelOff, encI32s(p.RelOff))
	sw.add(base+kbRelPred, encU32s(p.RelPred))
	sw.add(base+kbRelObj, encI32s(p.RelObj))
	sw.add(base+kbAttrOff, encI32s(p.AttrOff))
	sw.add(base+kbAttrName, encU32s(p.AttrName))
	sw.add(base+kbAttrVal, encU32s(p.AttrVal))
	sw.add(base+kbStmtAttrName, encU32s(p.StmtAttrName))
	blob, off, _ := p.StmtVals.Parts()
	sw.add(base+kbStmtValBlob, blob)
	sw.add(base+kbStmtValOff, encI64s(off))
	sw.add(base+kbStmtRelPred, encU32s(p.StmtRelPred))
	sw.add(base+kbStmtRelObj, encI32s(p.StmtRelObj))
}

// WriteSubstrate serializes sub, including its prewarmed query state (the
// substrate is prewarmed first if it has not served a query yet — snapshots
// exist to make warm starts instant, so the query state always ships).
func WriteSubstrate(w io.Writer, sub *core.Substrate) error {
	qs, err := sub.ExportQueryState(context.Background())
	if err != nil {
		return fmt.Errorf("snapshot: export query state: %w", err)
	}
	p := sub.Parts()
	kp1, kp2 := p.K1.SnapshotParts(), p.K2.SnapshotParts()
	ix := p.TokenIndex.SnapshotColumns()

	flags := uint32(flagQueryState)
	sharedDict := kp2.Dict == kp1.Dict
	sharedSchema := kp2.Schema == kp1.Schema
	tokenDictShared := ix.Dict == kp1.Dict
	if sharedDict {
		flags |= flagSharedDict
	}
	if sharedSchema {
		flags |= flagSharedSchema
	}
	if tokenDictShared {
		flags |= flagTokenDictShared
	}

	meta := metaV1{
		K1Name: kp1.Name, K2Name: kp2.Name,
		K1Triples: kp1.Triples, K2Triples: kp2.Triples,
		Config:     p.Config,
		NameAttrs1: p.NameAttrs1, NameAttrs2: p.NameAttrs2,
		PurgedBlocks: p.PurgedBlocks, PurgeThreshold: p.PurgeThreshold,
		Timings: p.Timings, BuildWallNS: int64(p.BuildWall),
	}
	metaBytes, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("snapshot: encode meta: %w", err)
	}

	sw := &secWriter{}
	sw.add(secMeta, metaBytes)

	sw.addFrozen(dict1Base, kp1.Dict.Freeze())
	if !sharedDict {
		sw.addFrozen(dict2Base, kp2.Dict.Freeze())
	}
	preds1, attrs1, vals1 := kp1.Schema.Freeze()
	sw.addFrozen(schema1PredsBase, preds1)
	sw.addFrozen(schema1AttrsBase, attrs1)
	sw.addFrozen(schema1ValsBase, vals1)
	if !sharedSchema {
		preds2, attrs2, vals2 := kp2.Schema.Freeze()
		sw.addFrozen(schema2PredsBase, preds2)
		sw.addFrozen(schema2AttrsBase, attrs2)
		sw.addFrozen(schema2ValsBase, vals2)
	}

	sw.addKB(kb1Base, kp1)
	sw.addKB(kb2Base, kp2)

	sw.add(secRanks1, encI32s(p.Ranks1))
	sw.add(secRanks2, encI32s(p.Ranks2))
	sw.addEntityCSR(secTop1Off, secTop1Flat, p.Top1)
	sw.addEntityCSR(secTop2Off, secTop2Flat, p.Top2)

	addNameBlocks(sw, p.NameBlocks)

	if !tokenDictShared {
		sw.addFrozen(jointDictBase, ix.Dict.Freeze())
		sw.add(secTokT1, encI32s(ix.T1))
		sw.add(secTokT2, encI32s(ix.T2))
	}
	// The member CSRs are stored exactly as the index holds them (i32
	// offsets + flat member arrays), so a little-endian loader installs
	// views with zero per-slot work.
	sw.add(secTokE1Off, encI32s(ix.Off1))
	sw.add(secTokE1Flat, encI32s(ix.Mem1))
	sw.add(secTokE2Off, encI32s(ix.Off2))
	sw.add(secTokE2Flat, encI32s(ix.Mem2))
	sw.add(secTokWeight, encF64s(ix.Weight))

	addQueryState(sw, qs)

	return sw.writeTo(w, flags)
}

func addNameBlocks(sw *secWriter, c *blocking.Collection) {
	keys := make([]string, len(c.Blocks))
	rows1 := make([][]kb.EntityID, len(c.Blocks))
	rows2 := make([][]kb.EntityID, len(c.Blocks))
	for i := range c.Blocks {
		keys[i] = c.Blocks[i].Key
		rows1[i] = c.Blocks[i].E1
		rows2[i] = c.Blocks[i].E2
	}
	sw.addFrozen(secNameKeys, kb.FreezeStrings(keys, false))
	sw.addEntityCSR(secNameE1Off, secNameE1Flat, rows1)
	sw.addEntityCSR(secNameE2Off, secNameE2Flat, rows2)
}

func addQueryState(sw *secWriter, qs *core.QueryState) {
	sw.addEntityCSR(secAlpha1Off, secAlpha1Flat, qs.Graph.Alpha1)
	sw.addEntityCSR(secAlpha2Off, secAlpha2Flat, qs.Graph.Alpha2)
	sw.addEdgeCSR(secBeta1Off, secBeta1Edges, qs.Graph.Beta1)
	sw.addEdgeCSR(secBeta2Off, secBeta2Edges, qs.Graph.Beta2)
	sw.addEdgeCSR(secGamma2Off, secGamma2Edges, qs.Graph.Gamma2)
	// The scope's top1 rows are the substrate's own top-neighbor rows (already
	// in secTop1*); only the merged β adjacency and the E2 reverse index are
	// scope-specific.
	_, adj1, in2, _ := qs.Scope.SnapshotParts()
	sw.addEdgeCSR(secAdj1Off, secAdj1Edges, adj1)
	sw.addEntityCSR(secIn2Off, secIn2Flat, in2)

	names := make([]string, len(qs.Names))
	n1 := make([]int32, len(qs.Names))
	n2 := make([]int32, len(qs.Names))
	e1 := make([]kb.EntityID, len(qs.Names))
	e2 := make([]kb.EntityID, len(qs.Names))
	for i, u := range qs.Names {
		names[i], n1[i], n2[i], e1[i], e2[i] = u.Name, u.N1, u.N2, u.E1, u.E2
	}
	sw.addFrozen(secNamesText, kb.FreezeStrings(names, false))
	sw.add(secNamesN1, encI32s(n1))
	sw.add(secNamesN2, encI32s(n2))
	sw.add(secNamesE1, encI32s(e1))
	sw.add(secNamesE2, encI32s(e2))
}

// WriteSubstrateFile writes the snapshot to path atomically (temp file in the
// same directory, then rename).
func WriteSubstrateFile(path string, sub *core.Substrate) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteSubstrate(bw, sub); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
