//go:build !unix

package snapshot

import (
	"io"
	"os"
)

// mapFile on platforms without a wired-up mmap reads the whole file; the
// decoder still reinterprets the heap bytes in place when aligned.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func unmap(b []byte) error { return nil }
