//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. Mappings are page-aligned, so the 8-byte
// section alignment the format guarantees holds relative to the mapping base.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func unmap(b []byte) error { return syscall.Munmap(b) }
