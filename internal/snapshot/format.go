// Package snapshot implements the versioned binary on-disk format for
// build-once substrates: everything core.BuildSubstrate produces — KB
// dictionaries, columnar CSR spans, relation ranks, top-neighbor rows, name
// blocks, the purged token index — plus (always, in files this package
// writes) the prewarmed per-entity query state, serialized as 8-byte-aligned
// little-endian sections behind a magic+version+section-table header.
//
// The layout is chosen so a loader can reinterpret the numeric columns IN
// PLACE from a memory-mapped region (unsafe.Slice over syscall.Mmap): every
// section starts 8-byte aligned relative to the file start, mappings are
// page-aligned, and element encodings equal the in-memory little-endian
// layout of []uint32 / []int32 / []int64 / []float64 / []graph.Edge. A
// portable copying decoder (ReadSubstrate) is the fallback and the
// cross-endian path.
//
// File layout (all integers little-endian):
//
//	offset 0   magic    "MINOSNP1" (8 bytes)
//	offset 8   uint32   version (currently 1)
//	offset 12  uint32   flags
//	offset 16  uint32   section count
//	offset 20  uint32   reserved (0)
//	offset 24  section table: count × {id uint32, reserved uint32, off int64, len int64}
//	...        sections, each starting at an 8-byte-aligned offset
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic and version of the format.
var magic = [8]byte{'M', 'I', 'N', 'O', 'S', 'N', 'P', '1'}

const formatVersion = 1

// Header flags.
const (
	// flagSharedDict: KB2 shares KB1's token dictionary (no dict2 sections).
	flagSharedDict = 1 << 0
	// flagSharedSchema: KB2 shares KB1's schema (no schema2 sections).
	flagSharedSchema = 1 << 1
	// flagTokenDictShared: the token index's slot space IS KB1's dictionary
	// (no joint-dictionary or translation-table sections).
	flagTokenDictShared = 1 << 2
	// flagQueryState: the prewarmed query-state sections are present.
	flagQueryState = 1 << 3
)

// Typed errors for corrupt inputs. All decode failures wrap one of these, so
// callers can errors.Is-dispatch without string matching.
var (
	ErrBadMagic   = errors.New("snapshot: bad magic")
	ErrVersion    = errors.New("snapshot: unsupported version")
	ErrTruncated  = errors.New("snapshot: truncated file")
	ErrMisaligned = errors.New("snapshot: misaligned section")
	ErrCorrupt    = errors.New("snapshot: corrupt file")
)

const (
	headerSize = 24
	tableEntry = 24
)

// Section IDs. Per-KB sections are kb1Base/kb2Base + kbXxx; frozen string
// tables occupy an ID trio base + {0: blob, 1: offsets, 2: sorted}.
const (
	secMeta uint32 = 1

	kb1Base uint32 = 100
	kb2Base uint32 = 200

	kbURIBlob      uint32 = 0
	kbURIOff       uint32 = 1
	kbURISorted    uint32 = 2
	kbTokenOff     uint32 = 3
	kbTokens       uint32 = 4
	kbRelOff       uint32 = 5
	kbRelPred      uint32 = 6
	kbRelObj       uint32 = 7
	kbAttrOff      uint32 = 8
	kbAttrName     uint32 = 9
	kbAttrVal      uint32 = 10
	kbStmtAttrName uint32 = 11
	kbStmtValBlob  uint32 = 12
	kbStmtValOff   uint32 = 13
	kbStmtRelPred  uint32 = 14
	kbStmtRelObj   uint32 = 15

	dict1Base        uint32 = 300
	dict2Base        uint32 = 310
	jointDictBase    uint32 = 320
	schema1PredsBase uint32 = 330
	schema1AttrsBase uint32 = 340
	schema1ValsBase  uint32 = 350
	schema2PredsBase uint32 = 360
	schema2AttrsBase uint32 = 370
	schema2ValsBase  uint32 = 380

	frozenBlob   uint32 = 0
	frozenOff    uint32 = 1
	frozenSorted uint32 = 2

	secRanks1      uint32 = 400
	secRanks2      uint32 = 401
	secTop1Off     uint32 = 402
	secTop1Flat    uint32 = 403
	secTop2Off     uint32 = 404
	secTop2Flat    uint32 = 405
	secNameKeys    uint32 = 410 // frozen trio base (sorted absent)
	secNameE1Off   uint32 = 413
	secNameE1Flat  uint32 = 414
	secNameE2Off   uint32 = 415
	secNameE2Flat  uint32 = 416
	secTokT1       uint32 = 420
	secTokT2       uint32 = 421
	secTokE1Off    uint32 = 422
	secTokE1Flat   uint32 = 423
	secTokE2Off    uint32 = 424
	secTokE2Flat   uint32 = 425
	secTokWeight   uint32 = 426
	secAlpha1Off   uint32 = 500
	secAlpha1Flat  uint32 = 501
	secAlpha2Off   uint32 = 502
	secAlpha2Flat  uint32 = 503
	secBeta1Off    uint32 = 504
	secBeta1Edges  uint32 = 505
	secBeta2Off    uint32 = 506
	secBeta2Edges  uint32 = 507
	secGamma2Off   uint32 = 508
	secGamma2Edges uint32 = 509
	secAdj1Off     uint32 = 510
	secAdj1Edges   uint32 = 511
	secIn2Off      uint32 = 512
	secIn2Flat     uint32 = 513
	secNamesText   uint32 = 520 // frozen trio base (sorted absent)
	secNamesN1     uint32 = 523
	secNamesN2     uint32 = 524
	secNamesE1     uint32 = 525
	secNamesE2     uint32 = 526
)

// header is the parsed fixed-size prefix plus section table.
type header struct {
	flags    uint32
	sections map[uint32][]byte
}

// parseHeader validates the prefix and section table of a snapshot image and
// returns per-section byte views into data.
func parseHeader(data []byte) (*header, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), headerSize)
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != formatVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, version, formatVersion)
	}
	h := &header{flags: binary.LittleEndian.Uint32(data[12:])}
	count := binary.LittleEndian.Uint32(data[16:])
	tableEnd := headerSize + int64(count)*tableEntry
	if tableEnd > int64(len(data)) {
		return nil, fmt.Errorf("%w: section table of %d entries exceeds %d bytes", ErrTruncated, count, len(data))
	}
	h.sections = make(map[uint32][]byte, count)
	for i := int64(0); i < int64(count); i++ {
		entry := data[headerSize+i*tableEntry:]
		id := binary.LittleEndian.Uint32(entry)
		off := int64(binary.LittleEndian.Uint64(entry[8:]))
		n := int64(binary.LittleEndian.Uint64(entry[16:]))
		if off < tableEnd || n < 0 || off > int64(len(data)) || n > int64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) in %d bytes", ErrTruncated, id, off, off, n, len(data))
		}
		if off%8 != 0 {
			return nil, fmt.Errorf("%w: section %d starts at offset %d", ErrMisaligned, id, off)
		}
		if _, dup := h.sections[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		h.sections[id] = data[off : off+n : off+n]
	}
	return h, nil
}

// section returns a mandatory section's bytes.
func (h *header) section(id uint32) ([]byte, error) {
	b, ok := h.sections[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	return b, nil
}

// optional returns a section's bytes and whether it is present.
func (h *header) optional(id uint32) ([]byte, bool) {
	b, ok := h.sections[id]
	return b, ok
}
