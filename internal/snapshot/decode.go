// Snapshot decoder: OpenSubstrate memory-maps a snapshot file and
// reinterprets its numeric sections in place (near-zero-copy — only the
// ragged row headers and Go-side wrappers are allocated), while
// ReadSubstrate decodes from any byte slice with explicit element copies
// (the portable and cross-endian path). Both install the persisted query
// state, so the first QueryEntity after a load pays no graph construction.
package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
	"unsafe"

	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
)

// Loaded is an open snapshot: the substrate plus the backing bytes (possibly
// a memory mapping).
type Loaded struct {
	sub    *core.Substrate
	data   []byte
	mapped bool
}

// Substrate returns the loaded substrate. It aliases the snapshot bytes and
// must not be used after Close.
func (l *Loaded) Substrate() *core.Substrate { return l.sub }

// Mapped reports whether the substrate is served from a memory mapping
// (as opposed to heap copies).
func (l *Loaded) Mapped() bool { return l.mapped }

// Close releases the mapping, if any. The substrate must have drained all
// queries first: after Close, slices that aliased the mapping fault on
// access. Long-lived servers that cannot prove drain should simply not call
// Close and let the mapping live for the process lifetime.
func (l *Loaded) Close() error {
	if !l.mapped {
		return nil
	}
	l.mapped = false
	data := l.data
	l.data, l.sub = nil, nil
	return unmap(data)
}

// OpenSubstrate opens a snapshot file, preferring a read-only memory mapping
// with in-place reinterpretation. It falls back to a heap read if mapping
// fails, and to the copying decoder on big-endian hosts.
func OpenSubstrate(path string) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mapFile(f, st.Size())
	if err != nil || data == nil {
		if data, err = os.ReadFile(path); err != nil {
			return nil, err
		}
		mapped = false
	}
	copyMode := !hostLittleEndian() ||
		(len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0)
	sub, derr := decode(data, copyMode)
	if derr != nil {
		if mapped {
			unmap(data)
		}
		return nil, derr
	}
	return &Loaded{sub: sub, data: data, mapped: mapped}, nil
}

// ReadSubstrate decodes a snapshot image from memory with the portable
// copying decoder (numeric sections are decoded element by element; string
// blobs still alias data, which the caller must keep immutable).
func ReadSubstrate(data []byte) (*Loaded, error) {
	sub, err := decode(data, true)
	if err != nil {
		return nil, err
	}
	return &Loaded{sub: sub, data: data}, nil
}

func decode(data []byte, copyMode bool) (*core.Substrate, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	mb, err := h.section(secMeta)
	if err != nil {
		return nil, err
	}
	var meta metaV1
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}

	dict1, err := decodeDict(h, copyMode, dict1Base, "dict1")
	if err != nil {
		return nil, err
	}
	dict2 := dict1
	if h.flags&flagSharedDict == 0 {
		if dict2, err = decodeDict(h, copyMode, dict2Base, "dict2"); err != nil {
			return nil, err
		}
	}
	schema1, err := decodeSchema(h, copyMode, schema1PredsBase, schema1AttrsBase, schema1ValsBase, "schema1")
	if err != nil {
		return nil, err
	}
	schema2 := schema1
	if h.flags&flagSharedSchema == 0 {
		if schema2, err = decodeSchema(h, copyMode, schema2PredsBase, schema2AttrsBase, schema2ValsBase, "schema2"); err != nil {
			return nil, err
		}
	}

	// The remaining sections are independent of each other, so they decode
	// concurrently — for large snapshots the wall clock of an open is the
	// SLOWEST section (one KB's description materialization), not the sum.
	// Every goroutine only reads the shared header and writes its own slot.
	var (
		k1, k2         *kb.KB
		ranks1, ranks2 []int32
		top1, top2     [][]kb.EntityID
		nameBlocks     *blocking.Collection
		tokenIx        *blocking.TokenIndex
	)
	errs := make([]error, 5)
	var wg sync.WaitGroup
	part := func(i int, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn()
		}()
	}
	part(0, func() error {
		var err error
		if k1, err = decodeKB(h, copyMode, kb1Base, meta.K1Name, meta.K1Triples, dict1, schema1); err != nil {
			return fmt.Errorf("kb1: %w", err)
		}
		return nil
	})
	part(1, func() error {
		var err error
		if k2, err = decodeKB(h, copyMode, kb2Base, meta.K2Name, meta.K2Triples, dict2, schema2); err != nil {
			return fmt.Errorf("kb2: %w", err)
		}
		return nil
	})
	part(2, func() error {
		var err error
		if ranks1, err = readI32Section[int32](h, copyMode, secRanks1, "ranks1"); err != nil {
			return err
		}
		if ranks2, err = readI32Section[int32](h, copyMode, secRanks2, "ranks2"); err != nil {
			return err
		}
		if top1, err = nestedSection[kb.EntityID](h, copyMode, secTop1Off, secTop1Flat, "top1"); err != nil {
			return err
		}
		top2, err = nestedSection[kb.EntityID](h, copyMode, secTop2Off, secTop2Flat, "top2")
		return err
	})
	part(3, func() error {
		var err error
		nameBlocks, err = decodeNameBlocks(h, copyMode)
		return err
	})
	part(4, func() error {
		var err error
		tokenIx, err = decodeTokenIndex(h, copyMode, dict1)
		return err
	})
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	sub, err := core.SubstrateFromParts(core.SubstrateParts{
		K1: k1, K2: k2, Config: meta.Config,
		NameAttrs1: meta.NameAttrs1, NameAttrs2: meta.NameAttrs2,
		Ranks1: ranks1, Ranks2: ranks2,
		Top1: top1, Top2: top2,
		NameBlocks: nameBlocks, TokenIndex: tokenIx,
		PurgedBlocks: meta.PurgedBlocks, PurgeThreshold: meta.PurgeThreshold,
		Timings:   meta.Timings,
		BuildWall: time.Duration(meta.BuildWallNS),
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	if h.flags&flagQueryState != 0 {
		if err := decodeQueryState(h, copyMode, sub, top1); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// decodeDict reads a frozen dictionary trio; the sorted permutation is
// mandatory (dictionaries are looked up on the query path).
func decodeDict(h *header, copyMode bool, base uint32, what string) (*kb.Interner, error) {
	fs, err := lookupFrozen(h, copyMode, base, what)
	if err != nil {
		return nil, err
	}
	return kb.NewFrozenInterner(fs), nil
}

// lookupFrozen is frozenSection plus a mandatory sorted permutation.
func lookupFrozen(h *header, copyMode bool, base uint32, what string) (*kb.FrozenStrings, error) {
	fs, err := frozenSection(h, copyMode, base, what)
	if err != nil {
		return nil, err
	}
	if _, ok := fs.Lookup(""); !ok {
		// Lookup("") failing can also mean "" absent; detect a missing sorted
		// table directly from the section map.
		if _, present := h.optional(base + frozenSorted); !present && fs.Len() > 0 {
			return nil, fmt.Errorf("%w: %s: missing sorted permutation", ErrCorrupt, what)
		}
	}
	return fs, nil
}

func decodeSchema(h *header, copyMode bool, predsBase, attrsBase, valsBase uint32, what string) (*kb.Schema, error) {
	preds, err := lookupFrozen(h, copyMode, predsBase, what+" preds")
	if err != nil {
		return nil, err
	}
	attrs, err := lookupFrozen(h, copyMode, attrsBase, what+" attrs")
	if err != nil {
		return nil, err
	}
	vals, err := lookupFrozen(h, copyMode, valsBase, what+" vals")
	if err != nil {
		return nil, err
	}
	return kb.NewFrozenSchema(preds, attrs, vals), nil
}

func readI32Section[T ~int32](h *header, copyMode bool, id uint32, what string) ([]T, error) {
	b, err := h.section(id)
	if err != nil {
		return nil, err
	}
	return viewI32s[T](b, copyMode, what)
}

func readU32Section[T ~uint32](h *header, copyMode bool, id uint32, what string) ([]T, error) {
	b, err := h.section(id)
	if err != nil {
		return nil, err
	}
	return viewU32s[T](b, copyMode, what)
}

func readI64Section(h *header, copyMode bool, id uint32, what string) ([]int64, error) {
	b, err := h.section(id)
	if err != nil {
		return nil, err
	}
	return viewI64s(b, copyMode, what)
}

func decodeKB(h *header, copyMode bool, base uint32, name string, triples int, dict *kb.Interner, schema *kb.Schema) (*kb.KB, error) {
	p := kb.SnapshotParts{Name: name, Triples: triples, Dict: dict, Schema: schema}
	var err error
	if p.URIs, err = lookupFrozen(h, copyMode, base+kbURIBlob, "uris"); err != nil {
		return nil, err
	}
	if p.TokenOff, err = readI64Section(h, copyMode, base+kbTokenOff, "token offsets"); err != nil {
		return nil, err
	}
	if p.Tokens, err = readU32Section[kb.TokenID](h, copyMode, base+kbTokens, "tokens"); err != nil {
		return nil, err
	}
	if p.RelOff, err = readI32Section[int32](h, copyMode, base+kbRelOff, "relation offsets"); err != nil {
		return nil, err
	}
	if p.RelPred, err = readU32Section[kb.PredID](h, copyMode, base+kbRelPred, "relation predicates"); err != nil {
		return nil, err
	}
	if p.RelObj, err = readI32Section[kb.EntityID](h, copyMode, base+kbRelObj, "relation objects"); err != nil {
		return nil, err
	}
	if p.AttrOff, err = readI32Section[int32](h, copyMode, base+kbAttrOff, "attribute offsets"); err != nil {
		return nil, err
	}
	if p.AttrName, err = readU32Section[kb.AttrID](h, copyMode, base+kbAttrName, "attribute names"); err != nil {
		return nil, err
	}
	if p.AttrVal, err = readU32Section[kb.ValueID](h, copyMode, base+kbAttrVal, "attribute values"); err != nil {
		return nil, err
	}
	if p.StmtAttrName, err = readU32Section[kb.AttrID](h, copyMode, base+kbStmtAttrName, "statement attributes"); err != nil {
		return nil, err
	}
	blob, err := h.section(base + kbStmtValBlob)
	if err != nil {
		return nil, err
	}
	valOff, err := readI64Section(h, copyMode, base+kbStmtValOff, "statement value offsets")
	if err != nil {
		return nil, err
	}
	if p.StmtVals, err = kb.NewFrozenStrings(blob, valOff, nil); err != nil {
		return nil, fmt.Errorf("%w: statement values: %v", ErrCorrupt, err)
	}
	if p.StmtRelPred, err = readU32Section[kb.PredID](h, copyMode, base+kbStmtRelPred, "statement predicates"); err != nil {
		return nil, err
	}
	if p.StmtRelObj, err = readI32Section[kb.EntityID](h, copyMode, base+kbStmtRelObj, "statement objects"); err != nil {
		return nil, err
	}
	k, err := kb.AssembleKB(p)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return k, nil
}

func decodeNameBlocks(h *header, copyMode bool) (*blocking.Collection, error) {
	keys, err := frozenSection(h, copyMode, secNameKeys, "name block keys")
	if err != nil {
		return nil, err
	}
	rows1, err := nestedSection[kb.EntityID](h, copyMode, secNameE1Off, secNameE1Flat, "name blocks e1")
	if err != nil {
		return nil, err
	}
	rows2, err := nestedSection[kb.EntityID](h, copyMode, secNameE2Off, secNameE2Flat, "name blocks e2")
	if err != nil {
		return nil, err
	}
	if len(rows1) != keys.Len() || len(rows2) != keys.Len() {
		return nil, fmt.Errorf("%w: name blocks: %d keys vs %d/%d member rows", ErrCorrupt, keys.Len(), len(rows1), len(rows2))
	}
	blocks := make([]blocking.Block, keys.Len())
	for i := range blocks {
		blocks[i] = blocking.Block{Key: keys.At(i), E1: rows1[i], E2: rows2[i]}
	}
	return &blocking.Collection{Blocks: blocks}, nil
}

func decodeTokenIndex(h *header, copyMode bool, dict1 *kb.Interner) (*blocking.TokenIndex, error) {
	ixDict := dict1
	var t1, t2 []int32
	if h.flags&flagTokenDictShared == 0 {
		fs, err := lookupFrozen(h, copyMode, jointDictBase, "joint token dictionary")
		if err != nil {
			return nil, err
		}
		ixDict = kb.NewFrozenInterner(fs)
		if t1, err = readI32Section[int32](h, copyMode, secTokT1, "token translation t1"); err != nil {
			return nil, err
		}
		if t2, err = readI32Section[int32](h, copyMode, secTokT2, "token translation t2"); err != nil {
			return nil, err
		}
	}
	// The member CSRs are installed as flat views — TokenIndexFromColumns
	// validates the offsets; no per-slot rows are ever materialized.
	off1, err := readI32Section[int32](h, copyMode, secTokE1Off, "token index e1 offsets")
	if err != nil {
		return nil, err
	}
	mem1, err := readI32Section[kb.EntityID](h, copyMode, secTokE1Flat, "token index e1 members")
	if err != nil {
		return nil, err
	}
	off2, err := readI32Section[int32](h, copyMode, secTokE2Off, "token index e2 offsets")
	if err != nil {
		return nil, err
	}
	mem2, err := readI32Section[kb.EntityID](h, copyMode, secTokE2Flat, "token index e2 members")
	if err != nil {
		return nil, err
	}
	wb, err := h.section(secTokWeight)
	if err != nil {
		return nil, err
	}
	weight, err := viewF64s(wb, copyMode, "token weights")
	if err != nil {
		return nil, err
	}
	ix, err := blocking.TokenIndexFromColumns(blocking.IndexColumns{
		Dict: ixDict, T1: t1, T2: t2,
		Off1: off1, Off2: off2, Mem1: mem1, Mem2: mem2,
		Weight: weight,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ix, nil
}

func decodeQueryState(h *header, copyMode bool, sub *core.Substrate, top1 [][]kb.EntityID) error {
	alpha1, err := nestedSection[kb.EntityID](h, copyMode, secAlpha1Off, secAlpha1Flat, "alpha1")
	if err != nil {
		return err
	}
	alpha2, err := nestedSection[kb.EntityID](h, copyMode, secAlpha2Off, secAlpha2Flat, "alpha2")
	if err != nil {
		return err
	}
	beta1, err := nestedEdgeSection(h, copyMode, secBeta1Off, secBeta1Edges, "beta1")
	if err != nil {
		return err
	}
	beta2, err := nestedEdgeSection(h, copyMode, secBeta2Off, secBeta2Edges, "beta2")
	if err != nil {
		return err
	}
	gamma2, err := nestedEdgeSection(h, copyMode, secGamma2Off, secGamma2Edges, "gamma2")
	if err != nil {
		return err
	}
	adj1, err := nestedEdgeSection(h, copyMode, secAdj1Off, secAdj1Edges, "adj1")
	if err != nil {
		return err
	}
	in2, err := nestedSection[kb.EntityID](h, copyMode, secIn2Off, secIn2Flat, "in2")
	if err != nil {
		return err
	}

	text, err := frozenSection(h, copyMode, secNamesText, "name usage text")
	if err != nil {
		return err
	}
	n1, err := readI32Section[int32](h, copyMode, secNamesN1, "name usage n1")
	if err != nil {
		return err
	}
	n2, err := readI32Section[int32](h, copyMode, secNamesN2, "name usage n2")
	if err != nil {
		return err
	}
	ue1, err := readI32Section[kb.EntityID](h, copyMode, secNamesE1, "name usage e1")
	if err != nil {
		return err
	}
	ue2, err := readI32Section[kb.EntityID](h, copyMode, secNamesE2, "name usage e2")
	if err != nil {
		return err
	}
	n := text.Len()
	if len(n1) != n || len(n2) != n || len(ue1) != n || len(ue2) != n {
		return fmt.Errorf("%w: name usage: %d names vs %d/%d/%d/%d columns", ErrCorrupt, n, len(n1), len(n2), len(ue1), len(ue2))
	}
	names := make([]core.NameUsage, n)
	for i := range names {
		names[i] = core.NameUsage{Name: text.At(i), N1: n1[i], N2: n2[i], E1: ue1[i], E2: ue2[i]}
	}

	g := &graph.Graph{Alpha1: alpha1, Alpha2: alpha2, Beta1: beta1, Beta2: beta2, Gamma2: gamma2}
	scope := graph.NewGamma1Scope(sub.QueryEngine(), top1, adj1, in2, sub.Config().TopK)
	if err := sub.InstallQueryState(&core.QueryState{Graph: g, Scope: scope, Names: names}); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}
