package parallel

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := Sequential().Workers(); got != 1 {
		t.Errorf("Sequential().Workers() = %d, want 1", got)
	}
}

func TestPartitionsCoverExactly(t *testing.T) {
	f := func(n uint8, w uint8) bool {
		e := New(int(w%16) + 1)
		spans := e.Partitions(int(n))
		covered := 0
		prev := 0
		for _, s := range spans {
			if s.Lo != prev || s.Hi <= s.Lo {
				return false
			}
			covered += s.Len()
			prev = s.Hi
		}
		return covered == int(n) && (int(n) == 0) == (len(spans) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionsBalanced(t *testing.T) {
	e := New(4)
	spans := e.Partitions(10)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	sizes := []int{spans[0].Len(), spans[1].Len(), spans[2].Len(), spans[3].Len()}
	if !reflect.DeepEqual(sizes, []int{3, 3, 2, 2}) {
		t.Errorf("sizes = %v, want [3 3 2 2]", sizes)
	}
}

func TestForVisitsEachOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 32} {
		e := New(w)
		n := 1000
		var visits [1000]int32
		e.For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

func TestForZeroAndOne(t *testing.T) {
	e := New(8)
	called := 0
	e.For(0, func(int) { called++ })
	if called != 0 {
		t.Error("For(0) must not call fn")
	}
	e.For(1, func(i int) { called += i + 1 })
	if called != 1 {
		t.Error("For(1) must call fn(0) once")
	}
}

func TestMapOrder(t *testing.T) {
	e := New(5)
	got := Map(e, 10, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSpansPartitionOrder(t *testing.T) {
	e := New(4)
	got := MapSpans(e, 100, func(s Span) int { return s.Lo })
	if !reflect.DeepEqual(got, []int{0, 25, 50, 75}) {
		t.Errorf("MapSpans results out of partition order: %v", got)
	}
}

func TestConcurrentBarrier(t *testing.T) {
	e := New(4)
	var a, b, c atomic.Int32
	e.Concurrent(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Error("Concurrent did not run all stages before returning")
	}
	e.Concurrent(func() { a.Store(10) })
	if a.Load() != 10 {
		t.Error("Concurrent single stage")
	}
}

func TestReduce(t *testing.T) {
	got := Reduce([]int{1, 2, 3, 4}, func(a, b int) int { return a + b })
	if got != 10 {
		t.Errorf("Reduce = %d, want 10", got)
	}
	if got := Reduce(nil, func(a, b int) int { return a + b }); got != 0 {
		t.Errorf("Reduce(nil) = %d, want zero value", got)
	}
	if got := Reduce([]int{7}, func(a, b int) int { return a + b }); got != 7 {
		t.Errorf("Reduce(single) = %d, want 7", got)
	}
}

func TestSums(t *testing.T) {
	if SumInts([]int{1, 2, 3}) != 6 {
		t.Error("SumInts")
	}
	if SumFloats([]float64{0.5, 1.5}) != 2.0 {
		t.Error("SumFloats")
	}
}

// GroupBy must produce sequential order regardless of worker count.
func TestGroupByDeterministic(t *testing.T) {
	n := 500
	reference := GroupBy(Sequential(), n, emitMod7)
	for _, w := range []int{2, 3, 8, 16} {
		got := GroupBy(New(w), n, emitMod7)
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("GroupBy with %d workers differs from sequential", w)
		}
	}
}

func emitMod7(i int, yield func(int, int)) {
	yield(i%7, i)
	if i%2 == 0 {
		yield(100+i%3, i)
	}
}

func TestGroupByEmpty(t *testing.T) {
	got := GroupBy(New(4), 0, func(i int, yield func(string, int)) { yield("x", i) })
	if len(got) != 0 {
		t.Errorf("GroupBy(0 rows) = %v, want empty", got)
	}
}

func TestCountByMatchesSequential(t *testing.T) {
	n := 1000
	emit := func(i int, yield func(string)) {
		if i%3 == 0 {
			yield("fizz")
		}
		if i%5 == 0 {
			yield("buzz")
		}
	}
	ref := CountBy(Sequential(), n, emit)
	for _, w := range []int{2, 4, 9} {
		got := CountBy(New(w), n, emit)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("CountBy with %d workers = %v, want %v", w, got, ref)
		}
	}
	if ref["fizz"] != 334 || ref["buzz"] != 200 {
		t.Errorf("counts = %v", ref)
	}
}

// Property: For over any n touches the sum correctly for any worker count.
func TestForSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		size := int(n % 2048)
		e := New(int(w%8) + 1)
		var sum atomic.Int64
		e.For(size, func(i int) { sum.Add(int64(i)) })
		return sum.Load() == int64(size)*int64(size-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
