package parallel

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestChunksCoverExactly(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		e := New(int(w%16) + 1)
		spans := e.Chunks(int(n % 4096))
		covered, prev := 0, 0
		for _, s := range spans {
			if s.Lo != prev || s.Hi <= s.Lo {
				return false
			}
			covered += s.Len()
			prev = s.Hi
		}
		return covered == int(n%4096) && (int(n%4096) == 0) == (len(spans) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkedEngineViews(t *testing.T) {
	e := New(4)
	c := e.Chunked()
	if c == e {
		t.Error("Chunked() must return a distinct dynamic view")
	}
	if c.Workers() != e.Workers() {
		t.Error("Chunked() must preserve the worker count")
	}
	if c.Chunked() != c {
		t.Error("Chunked() of a chunked view must be itself")
	}
	// The base engine must stay on static partitioning.
	if got := MapSpans(e, 100, func(s Span) int { return s.Lo }); len(got) != 4 {
		t.Errorf("base engine produced %d spans for n=100, want 4 static partitions", len(got))
	}
	if got := MapSpans(c, 100, func(s Span) int { return s.Lo }); len(got) != len(c.Chunks(100)) {
		t.Error("chunked view did not use chunk partitioning")
	}
}

func TestChunkedForVisitsEachOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 32} {
		e := New(w).Chunked()
		n := 1000
		var visits [1000]int32
		e.For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

// The dynamic scheduler must preserve GroupBy's sequential value order for
// any worker count, even though chunk boundaries differ per engine.
func TestGroupByChunkedDeterministic(t *testing.T) {
	n := 500
	reference := GroupBy(Sequential(), n, emitMod7)
	for _, w := range []int{1, 2, 3, 8, 16} {
		got := GroupBy(New(w).Chunked(), n, emitMod7)
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("chunked GroupBy with %d workers differs from sequential", w)
		}
	}
}

func TestMapChunkedOrder(t *testing.T) {
	e := New(5).Chunked()
	got := Map(e, 333, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range []*Engine{New(4), New(4).Chunked(), Sequential()} {
		called := atomic.Int32{}
		err := e.ForCtx(ctx, 100, func(int) error {
			called.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("ForCtx on cancelled ctx = %v, want context.Canceled", err)
		}
		if called.Load() != 0 {
			t.Errorf("ForCtx ran %d iterations under a cancelled context", called.Load())
		}
	}
}

func TestForCtxFirstErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	for _, e := range []*Engine{Sequential(), New(4), New(4).Chunked()} {
		err := e.ForCtx(context.Background(), 1000, func(i int) error {
			if i == 137 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("ForCtx = %v, want sentinel error", err)
		}
	}
}

// An error in one chunk must stop the claiming loop: later chunks are never
// started once cancellation is observed.
func TestForSpansCtxErrorStopsClaiming(t *testing.T) {
	e := New(2).Chunked()
	sentinel := errors.New("early failure")
	var started atomic.Int32
	err := e.ForSpansCtx(context.Background(), 10_000, func(s Span) error {
		if started.Add(1) == 1 {
			return sentinel
		}
		// Give the failing span time to cancel before the next claim.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := started.Load(); int(n) >= len(e.Chunks(10_000)) {
		t.Errorf("all %d chunks ran despite an early error", n)
	}
}

func TestMapCtxDiscardsPartialResultsOnError(t *testing.T) {
	e := New(3)
	out, err := MapCtx(context.Background(), e, 50, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("fail")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("MapCtx = (%v, %v), want (nil, error)", out, err)
	}
}

func TestConcurrentCtxFirstErrorCancelsSiblings(t *testing.T) {
	e := New(4)
	sentinel := errors.New("stage failed")
	var siblingSawCancel atomic.Bool
	err := e.ConcurrentCtx(context.Background(),
		func(context.Context) error { return sentinel },
		func(sc context.Context) error {
			select {
			case <-sc.Done():
				siblingSawCancel.Store(true)
				return sc.Err()
			case <-time.After(5 * time.Second):
				return errors.New("sibling never cancelled")
			}
		},
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("ConcurrentCtx = %v, want first stage error", err)
	}
	if !siblingSawCancel.Load() {
		t.Error("sibling stage did not observe cancellation")
	}
}

func TestConcurrentCtxParentCancellation(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.ConcurrentCtx(ctx, func(context.Context) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("ConcurrentCtx on cancelled parent = %v, want context.Canceled", err)
	}
}

func TestGroupByCtxAndCountByCtxPropagateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(4).Chunked()
	if _, err := GroupByCtx(ctx, e, 100, func(i int, yield func(int, int)) { yield(i, i) }); !errors.Is(err, context.Canceled) {
		t.Errorf("GroupByCtx = %v, want context.Canceled", err)
	}
	if _, err := CountByCtx(ctx, e, 100, func(i int, yield func(int)) { yield(i % 3) }); !errors.Is(err, context.Canceled) {
		t.Errorf("CountByCtx = %v, want context.Canceled", err)
	}
}

func TestForCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := New(8).ForCtx(ctx, 10, func(int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ForCtx past deadline = %v, want context.DeadlineExceeded", err)
	}
}

// Mid-run parent cancellation must surface ctx.Err even when no task fails.
func TestForSpansCtxMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(2).Chunked()
	var once atomic.Bool
	err := e.ForSpansCtx(ctx, 10_000, func(s Span) error {
		if once.CompareAndSwap(false, true) {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancellation = %v, want context.Canceled", err)
	}
}
