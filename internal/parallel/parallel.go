// Package parallel is the massively-parallel execution substrate of this
// MinoanER reproduction. The paper (§4.1, Figure 4) runs every stage as
// data-parallel Spark tasks with synchronization barriers between stages;
// here the same structure is provided by an in-process engine: inputs are
// split into partitions, partitions are processed by a fixed worker pool,
// and results are merged deterministically in partition order.
//
// Determinism is a design requirement (tested property): for any worker
// count and either scheduler, every operation in this package produces
// results identical to the sequential execution, so the matcher's output
// never depends on scheduling.
//
// Two schedulers are available per call site:
//
//   - Static (the default): [0, n) is split into one contiguous span per
//     worker. Minimal overhead, ideal for uniform per-row work.
//   - Dynamic (via Chunked): [0, n) is split into many fixed-size chunks
//     claimed from a shared atomic counter. Token blocks follow a power-law
//     size distribution, so per-entity work in blocking-graph construction
//     and matching is heavily skewed; dynamic claiming keeps all workers
//     busy instead of idling behind one oversized static span.
//
// Passes that accumulate into dense per-row state use the worker-local
// scratch variants (ForLocalCtx, MapLocalCtx): each worker lazily builds
// one reusable scratch value — a scoreboard, a buffer — and amortizes it
// over every span it claims, turning per-row allocation into per-pass
// allocation without any locking.
//
// Every operation has a context-aware variant (ForCtx, MapSpansCtx,
// GroupByCtx, ConcurrentCtx, …) with cooperative cancellation and
// first-error propagation in the style of errgroup: the first failing task
// cancels the rest, and its error is returned after all workers stop.
// Cancellation is observed between spans/chunks, so the dynamic scheduler
// also bounds cancellation latency.
//
// Invariant relied on by every non-ctx wrapper (here and in the stats,
// blocking, graph and matching packages): a Ctx variant can only fail with
// an error from ctx or from a task callback. Wrappers pass
// context.Background() and callbacks that never fail, so the discarded
// error is provably nil. Any future non-ctx failure mode added to a Ctx
// variant must convert these wrappers to return errors.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine executes data-parallel stages on a fixed number of workers. The
// zero value is not usable; construct with New. Engines are stateless and
// safe for concurrent use.
type Engine struct {
	workers int
	chunked bool
}

// New returns an Engine with the given worker count. workers <= 0 selects
// runtime.GOMAXPROCS(0), i.e. all available cores — the analogue of giving
// Spark the whole cluster.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Sequential is a single-worker engine, used as the reference execution in
// determinism tests and for tiny inputs where parallelism costs more than it
// saves (the paper makes the same observation about Spark overhead on the
// Restaurant dataset).
func Sequential() *Engine { return New(1) }

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// Chunked returns a view of the engine that uses the dynamic chunked
// scheduler: inputs are split into many fixed-size chunks that workers claim
// from a shared atomic counter, so a partition of skewed rows cannot leave
// the other workers idle. Results are still merged in chunk (= row) order,
// so all determinism guarantees are preserved. The receiver is unchanged.
func (e *Engine) Chunked() *Engine {
	if e.chunked {
		return e
	}
	return &Engine{workers: e.workers, chunked: true}
}

// Span is a half-open index range [Lo, Hi) — one partition of the input.
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Partitions splits [0, n) into at most max(workers, 1) contiguous spans of
// near-equal size. It never returns empty spans; for n == 0 it returns nil.
func (e *Engine) Partitions(n int) []Span {
	if n <= 0 {
		return nil
	}
	p := e.workers
	if p > n {
		p = n
	}
	spans := make([]Span, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		spans = append(spans, Span{lo, lo + size})
		lo += size
	}
	return spans
}

// chunksPerWorker controls dynamic chunk granularity: enough chunks that a
// skewed chunk cannot dominate a worker's share, few enough that the atomic
// claim overhead stays negligible.
const chunksPerWorker = 8

// Chunks splits [0, n) into fixed-size contiguous chunks for the dynamic
// scheduler, targeting chunksPerWorker chunks per worker. It never returns
// empty chunks; for n == 0 it returns nil.
func (e *Engine) Chunks(n int) []Span {
	if n <= 0 {
		return nil
	}
	target := e.workers * chunksPerWorker
	size := (n + target - 1) / target
	if size < 1 {
		size = 1
	}
	spans := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		spans = append(spans, Span{lo, hi})
	}
	return spans
}

// spans returns the partitioning of [0, n) under the engine's scheduler.
func (e *Engine) spans(n int) []Span {
	if e.chunked {
		return e.Chunks(n)
	}
	return e.Partitions(n)
}

// runSpans is the scheduling core shared by every operation: workers claim
// spans from an atomic counter (for static partitioning there is one span
// per worker, so claiming degenerates to the classic assignment; for
// chunked partitioning it load-balances). fn receives the claiming worker's
// slot in [0, Workers()) — one slot is never active on two goroutines at
// once, the invariant worker-local scratch relies on — and the span's index
// so callers can store results deterministically. The first error cancels
// the remaining spans and is returned once all workers have stopped; if the
// parent context is cancelled mid-run, its error is returned instead.
func (e *Engine) runSpans(ctx context.Context, spans []Span, fn func(worker, pi int, s Span) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(spans) == 0 {
		return nil
	}
	if len(spans) == 1 || e.workers == 1 {
		for pi, s := range spans {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, pi, s); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	workers := e.workers
	if workers > len(spans) {
		workers = len(spans)
	}
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(w int) {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				pi := int(next.Add(1)) - 1
				if pi >= len(spans) {
					return
				}
				if err := fn(w, pi, spans[pi]); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// If no task failed but the parent context was cancelled, report that.
	once.Do(func() { firstErr = ctx.Err() })
	return firstErr
}

// ForSpansCtx runs fn once per span of [0, n) concurrently under the
// engine's scheduler, propagating cancellation and the first error.
func (e *Engine) ForSpansCtx(ctx context.Context, n int, fn func(s Span) error) error {
	return e.runSpans(ctx, e.spans(n), func(_, _ int, s Span) error { return fn(s) })
}

// ForSpansIndexedCtx is ForSpansCtx with the span's position in the
// engine's deterministic span list (Partitions for the static scheduler,
// Chunks for the dynamic one) passed alongside, so a pass can correlate
// per-span state — local counters, write cursors — produced by an earlier
// pass over the same engine and length.
func (e *Engine) ForSpansIndexedCtx(ctx context.Context, n int, fn func(pi int, s Span) error) error {
	return e.runSpans(ctx, e.spans(n), func(_, pi int, s Span) error { return fn(pi, s) })
}

// ForCtx runs fn(i) for every i in [0, n) with cancellation and first-error
// propagation. fn must be safe to call concurrently for distinct i.
func (e *Engine) ForCtx(ctx context.Context, n int, fn func(i int) error) error {
	return e.ForSpansCtx(ctx, n, func(s Span) error {
		for i := s.Lo; i < s.Hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// For runs fn(i) for every i in [0, n), distributing spans over the worker
// pool and waiting for all of them (a barrier). fn must be safe to call
// concurrently for distinct i.
func (e *Engine) For(n int, fn func(i int)) {
	_ = e.ForCtx(context.Background(), n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForSpans runs fn once per partition of [0, n) concurrently and waits for
// completion. Partition-grained work lets callers keep per-partition state
// (local hash maps, accumulators) without locking — the moral equivalent of
// Spark's mapPartitions.
func (e *Engine) ForSpans(n int, fn func(s Span)) {
	_ = e.ForSpansCtx(context.Background(), n, func(s Span) error {
		fn(s)
		return nil
	})
}

// ConcurrentCtx runs the given stages concurrently — every stage gets its
// own goroutine regardless of the worker count, since stages represent
// independent pipeline branches (Figure 4), not data partitions. Each stage
// receives a context that is cancelled as soon as any sibling fails or the
// parent context is cancelled; the first error is returned after all stages
// have finished (errgroup semantics).
func (e *Engine) ConcurrentCtx(ctx context.Context, stages ...func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(stages) == 0 {
		return nil
	}
	if len(stages) == 1 {
		return stages[0](ctx)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(len(stages))
	for _, st := range stages {
		go func(st func(ctx context.Context) error) {
			defer wg.Done()
			if err := st(cctx); err != nil {
				once.Do(func() {
					firstErr = err
					cancel()
				})
			}
		}(st)
	}
	wg.Wait()
	once.Do(func() { firstErr = ctx.Err() })
	return firstErr
}

// Concurrent runs the given stages concurrently and waits for all of them.
// This mirrors Figure 4 of the paper, where name blocking, token blocking
// and top-neighbor extraction execute as independent parallel processes
// joined at a synchronization point.
func (e *Engine) Concurrent(stages ...func()) {
	wrapped := make([]func(ctx context.Context) error, len(stages))
	for i, st := range stages {
		wrapped[i] = func(context.Context) error {
			st()
			return nil
		}
	}
	_ = e.ConcurrentCtx(context.Background(), wrapped...)
}

// MapSpansCtx applies fn to every span of [0, n) concurrently and returns
// the per-span results in span order (deterministic regardless of
// scheduling). On cancellation or error the partial results are discarded.
func MapSpansCtx[T any](ctx context.Context, e *Engine, n int, fn func(s Span) (T, error)) ([]T, error) {
	spans := e.spans(n)
	out := make([]T, len(spans))
	err := e.runSpans(ctx, spans, func(_, pi int, s Span) error {
		v, err := fn(s)
		if err != nil {
			return err
		}
		out[pi] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapSpans applies fn to every partition of [0, n) concurrently and returns
// the per-partition results in partition order (deterministic regardless of
// scheduling).
func MapSpans[T any](e *Engine, n int, fn func(s Span) T) []T {
	out, _ := MapSpansCtx(context.Background(), e, n, func(s Span) (T, error) {
		return fn(s), nil
	})
	return out
}

// ForLocalCtx runs fn(scratch, i) for every i in [0, n) under the engine's
// scheduler, handing each worker its own scratch value built lazily by
// newScratch on the worker's first span and REUSED across every span that
// worker claims. This is the substrate for scatter-accumulation passes that
// would otherwise allocate per row: a worker's dense scoreboard, bitset or
// buffer is paid for once per pass instead of once per entity, and because
// a scratch value is only ever visible to the one goroutine owning its
// worker slot, no locking is needed. fn must leave the scratch in a reset
// state before returning (a dirty scratch leaks into the worker's next row
// — the property tests in the graph package pin this down).
//
// Rows are still processed in deterministic per-index isolation: which
// worker (and thus which scratch) handles a row affects no observable
// output as long as fn resets its scratch, so all determinism guarantees of
// For/Map carry over.
func ForLocalCtx[S any](ctx context.Context, e *Engine, n int, newScratch func() S, fn func(scratch S, i int) error) error {
	var (
		scratch = make([]S, e.workers)
		ready   = make([]bool, e.workers)
	)
	return e.runSpans(ctx, e.spans(n), func(w, _ int, s Span) error {
		// Slot w is owned by exactly one goroutine for the whole run, so the
		// lazy build and reuse need no synchronization.
		if !ready[w] {
			scratch[w] = newScratch()
			ready[w] = true
		}
		sc := scratch[w]
		for i := s.Lo; i < s.Hi; i++ {
			if err := fn(sc, i); err != nil {
				return err
			}
		}
		return nil
	})
}

// MapLocalCtx is MapCtx with a per-worker reusable scratch value (see
// ForLocalCtx): results are returned in index order, partial results are
// discarded on error or cancellation.
func MapLocalCtx[S, T any](ctx context.Context, e *Engine, n int, newScratch func() S, fn func(scratch S, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForLocalCtx(ctx, e, n, newScratch, func(sc S, i int) error {
		v, err := fn(sc, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapCtx applies fn to every index of [0, n) concurrently and returns
// results in index order, with cancellation and first-error propagation.
func MapCtx[T any](ctx context.Context, e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := e.ForCtx(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Map applies fn to every index of [0, n) concurrently and returns results
// in index order.
func Map[T any](e *Engine, n int, fn func(i int) T) []T {
	out, _ := MapCtx(context.Background(), e, n, func(i int) (T, error) {
		return fn(i), nil
	})
	return out
}

// Reduce folds per-partition results left-to-right in partition order.
// merge may mutate and return its first argument.
func Reduce[T any](parts []T, merge func(acc, next T) T) T {
	var acc T
	for i, p := range parts {
		if i == 0 {
			acc = p
			continue
		}
		acc = merge(acc, p)
	}
	return acc
}

// SumInts is a convenience reduction for integer partial counts.
func SumInts(parts []int) int {
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}

// SumFloats is a convenience reduction for float64 partial sums.
func SumFloats(parts []float64) float64 {
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// GroupByCtx builds a grouped index from n input rows: emit is called for
// every row index and may yield any number of (key, value) pairs; the result
// maps each key to its values. Values for a key appear in deterministic
// order: span order first, then row order within the span — and since spans
// are contiguous ascending ranges under both schedulers, that is exactly the
// order a sequential loop would produce.
//
// This is the engine's "shuffle": span-local grouping followed by an ordered
// merge, the substitute for Spark's groupByKey used to build blocks.
func GroupByCtx[K comparable, V any](ctx context.Context, e *Engine, n int, emit func(i int, yield func(K, V))) (map[K][]V, error) {
	locals, err := MapSpansCtx(ctx, e, n, func(s Span) (map[K][]V, error) {
		m := make(map[K][]V)
		for i := s.Lo; i < s.Hi; i++ {
			emit(i, func(k K, v V) {
				m[k] = append(m[k], v)
			})
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	switch len(locals) {
	case 0:
		return map[K][]V{}, nil
	case 1:
		return locals[0], nil
	}
	out := locals[0]
	for _, m := range locals[1:] {
		for k, vs := range m {
			out[k] = append(out[k], vs...)
		}
	}
	return out, nil
}

// GroupBy is GroupByCtx without cancellation.
func GroupBy[K comparable, V any](e *Engine, n int, emit func(i int, yield func(K, V))) map[K][]V {
	out, _ := GroupByCtx(context.Background(), e, n, emit)
	return out
}

// CountByCtx tallies keys emitted per row, merging span-local counters in
// span order. It is the shuffle used for Entity Frequency statistics.
func CountByCtx[K comparable](ctx context.Context, e *Engine, n int, emit func(i int, yield func(K))) (map[K]int, error) {
	locals, err := MapSpansCtx(ctx, e, n, func(s Span) (map[K]int, error) {
		m := make(map[K]int)
		for i := s.Lo; i < s.Hi; i++ {
			emit(i, func(k K) { m[k]++ })
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	switch len(locals) {
	case 0:
		return map[K]int{}, nil
	case 1:
		return locals[0], nil
	}
	out := locals[0]
	for _, m := range locals[1:] {
		for k, c := range m {
			out[k] += c
		}
	}
	return out, nil
}

// CountBy is CountByCtx without cancellation.
func CountBy[K comparable](e *Engine, n int, emit func(i int, yield func(K))) map[K]int {
	out, _ := CountByCtx(context.Background(), e, n, emit)
	return out
}
