// Package parallel is the massively-parallel execution substrate of this
// MinoanER reproduction. The paper (§4.1, Figure 4) runs every stage as
// data-parallel Spark tasks with synchronization barriers between stages;
// here the same structure is provided by an in-process engine: inputs are
// split into partitions, partitions are processed by a fixed worker pool,
// and results are merged deterministically in partition order.
//
// Determinism is a design requirement (tested property): for any worker
// count, every operation in this package produces results identical to the
// sequential execution, so the matcher's output never depends on scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// Engine executes data-parallel stages on a fixed number of workers. The
// zero value is not usable; construct with New. Engines are stateless and
// safe for concurrent use.
type Engine struct {
	workers int
}

// New returns an Engine with the given worker count. workers <= 0 selects
// runtime.GOMAXPROCS(0), i.e. all available cores — the analogue of giving
// Spark the whole cluster.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Sequential is a single-worker engine, used as the reference execution in
// determinism tests and for tiny inputs where parallelism costs more than it
// saves (the paper makes the same observation about Spark overhead on the
// Restaurant dataset).
func Sequential() *Engine { return New(1) }

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// Span is a half-open index range [Lo, Hi) — one partition of the input.
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Partitions splits [0, n) into at most max(workers, 1) contiguous spans of
// near-equal size. It never returns empty spans; for n == 0 it returns nil.
func (e *Engine) Partitions(n int) []Span {
	if n <= 0 {
		return nil
	}
	p := e.workers
	if p > n {
		p = n
	}
	spans := make([]Span, 0, p)
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		spans = append(spans, Span{lo, lo + size})
		lo += size
	}
	return spans
}

// For runs fn(i) for every i in [0, n), distributing contiguous partitions
// over the worker pool and waiting for all of them (a barrier). fn must be
// safe to call concurrently for distinct i.
func (e *Engine) For(n int, fn func(i int)) {
	e.ForSpans(n, func(s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			fn(i)
		}
	})
}

// ForSpans runs fn once per partition of [0, n) concurrently and waits for
// completion. Partition-grained work lets callers keep per-partition state
// (local hash maps, accumulators) without locking — the moral equivalent of
// Spark's mapPartitions.
func (e *Engine) ForSpans(n int, fn func(s Span)) {
	spans := e.Partitions(n)
	if len(spans) == 0 {
		return
	}
	if len(spans) == 1 {
		fn(spans[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for _, s := range spans {
		go func(s Span) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// Concurrent runs the given stages concurrently and waits for all of them.
// This mirrors Figure 4 of the paper, where name blocking, token blocking
// and top-neighbor extraction execute as independent parallel processes
// joined at a synchronization point.
func (e *Engine) Concurrent(stages ...func()) {
	if len(stages) == 1 {
		stages[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(stages))
	for _, st := range stages {
		go func(st func()) {
			defer wg.Done()
			st()
		}(st)
	}
	wg.Wait()
}

// MapSpans applies fn to every partition of [0, n) concurrently and returns
// the per-partition results in partition order (deterministic regardless of
// scheduling).
func MapSpans[T any](e *Engine, n int, fn func(s Span) T) []T {
	spans := e.Partitions(n)
	out := make([]T, len(spans))
	if len(spans) == 0 {
		return out
	}
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for pi, s := range spans {
		go func(pi int, s Span) {
			defer wg.Done()
			out[pi] = fn(s)
		}(pi, s)
	}
	wg.Wait()
	return out
}

// Map applies fn to every index of [0, n) concurrently and returns results
// in index order.
func Map[T any](e *Engine, n int, fn func(i int) T) []T {
	out := make([]T, n)
	e.For(n, func(i int) { out[i] = fn(i) })
	return out
}

// Reduce folds per-partition results left-to-right in partition order.
// merge may mutate and return its first argument.
func Reduce[T any](parts []T, merge func(acc, next T) T) T {
	var acc T
	for i, p := range parts {
		if i == 0 {
			acc = p
			continue
		}
		acc = merge(acc, p)
	}
	return acc
}

// SumInts is a convenience reduction for integer partial counts.
func SumInts(parts []int) int {
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}

// SumFloats is a convenience reduction for float64 partial sums.
func SumFloats(parts []float64) float64 {
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// GroupBy builds a grouped index from n input rows: emit is called for every
// row index and may yield any number of (key, value) pairs; the result maps
// each key to its values. Values for a key appear in deterministic order:
// partition order first, then row order within the partition — the same
// order a sequential loop would produce.
//
// This is the engine's "shuffle": partition-local grouping followed by an
// ordered merge, the substitute for Spark's groupByKey used to build blocks.
func GroupBy[K comparable, V any](e *Engine, n int, emit func(i int, yield func(K, V))) map[K][]V {
	locals := MapSpans(e, n, func(s Span) map[K][]V {
		m := make(map[K][]V)
		for i := s.Lo; i < s.Hi; i++ {
			emit(i, func(k K, v V) {
				m[k] = append(m[k], v)
			})
		}
		return m
	})
	switch len(locals) {
	case 0:
		return map[K][]V{}
	case 1:
		return locals[0]
	}
	out := locals[0]
	for _, m := range locals[1:] {
		for k, vs := range m {
			out[k] = append(out[k], vs...)
		}
	}
	return out
}

// CountBy tallies keys emitted per row, merging partition-local counters in
// partition order. It is the shuffle used for Entity Frequency statistics.
func CountBy[K comparable](e *Engine, n int, emit func(i int, yield func(K))) map[K]int {
	locals := MapSpans(e, n, func(s Span) map[K]int {
		m := make(map[K]int)
		for i := s.Lo; i < s.Hi; i++ {
			emit(i, func(k K) { m[k]++ })
		}
		return m
	})
	switch len(locals) {
	case 0:
		return map[K]int{}
	case 1:
		return locals[0]
	}
	out := locals[0]
	for _, m := range locals[1:] {
		for k, c := range m {
			out[k] += c
		}
	}
	return out
}
