package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// Each worker must get exactly one scratch value, built lazily, and reuse
// it across every span it claims; no scratch may be shared between workers.
func TestForLocalCtxScratchPerWorker(t *testing.T) {
	type scratch struct {
		rows  []int
		owner int64 // goroutine claim marker, must never be contended
	}
	for _, workers := range []int{1, 2, 7} {
		e := New(workers).Chunked()
		var built atomic.Int64
		visited := make([]atomic.Int64, 1000)
		err := ForLocalCtx(context.Background(), e, len(visited), func() *scratch {
			built.Add(1)
			return &scratch{}
		}, func(sc *scratch, i int) error {
			if !atomic.CompareAndSwapInt64(&sc.owner, 0, 1) {
				t.Error("scratch used concurrently by two goroutines")
			}
			sc.rows = append(sc.rows, i)
			visited[i].Add(1)
			atomic.StoreInt64(&sc.owner, 0)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := built.Load(); got < 1 || got > int64(workers) {
			t.Errorf("workers=%d built %d scratches, want 1..%d", workers, got, workers)
		}
		for i := range visited {
			if visited[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, visited[i].Load())
			}
		}
	}
}

// MapLocalCtx must return results in index order identical to MapCtx,
// regardless of worker count and scheduler.
func TestMapLocalCtxMatchesMap(t *testing.T) {
	n := 500
	want, err := MapCtx(context.Background(), Sequential(), n, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{New(3), New(5).Chunked()} {
		got, err := MapLocalCtx(context.Background(), e, n, func() []int {
			return make([]int, 1)
		}, func(sc []int, i int) (int, error) {
			sc[0] = i // exercise the scratch without affecting the result
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("got %d results, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("result[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

// Errors and cancellation must propagate exactly as in ForCtx: first error
// wins, partial results are discarded by MapLocalCtx.
func TestLocalCtxErrorAndCancellation(t *testing.T) {
	boom := errors.New("boom")
	e := New(4).Chunked()
	err := ForLocalCtx(context.Background(), e, 100, func() int { return 0 }, func(_ int, i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForLocalCtx error = %v, want boom", err)
	}
	out, err := MapLocalCtx(context.Background(), e, 100, func() int { return 0 }, func(_ int, i int) (int, error) {
		if i == 42 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("MapLocalCtx = (%v, %v), want (nil, boom)", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForLocalCtx(ctx, e, 100, func() int { return 0 }, func(int, int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ForLocalCtx = %v, want context.Canceled", err)
	}
}

// ForSpansIndexedCtx must hand every span exactly once together with its
// position in the engine's deterministic span list.
func TestForSpansIndexedCtx(t *testing.T) {
	for _, e := range []*Engine{Sequential(), New(3), New(4).Chunked()} {
		n := 123
		spans := e.spans(n)
		seen := make([]atomic.Int64, len(spans))
		err := e.ForSpansIndexedCtx(context.Background(), n, func(pi int, s Span) error {
			if spans[pi] != s {
				t.Errorf("span index %d = %v, want %v", pi, s, spans[pi])
			}
			seen[pi].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for pi := range seen {
			if seen[pi].Load() != 1 {
				t.Fatalf("span %d visited %d times", pi, seen[pi].Load())
			}
		}
	}
}
