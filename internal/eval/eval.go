// Package eval provides ground-truth handling and the precision / recall /
// F1 accounting used throughout the paper's evaluation (§6).
package eval

import (
	"fmt"
	"sort"

	"minoaner/internal/kb"
)

// Pair is one cross-KB correspondence: an entity of E1 matched to an entity
// of E2.
type Pair struct {
	E1 kb.EntityID
	E2 kb.EntityID
}

// GroundTruth is the set of true matches between two KBs. The benchmarks of
// the paper are clean-clean: every entity participates in at most one true
// match.
type GroundTruth struct {
	pairs map[Pair]struct{}
	byE1  map[kb.EntityID]kb.EntityID
	byE2  map[kb.EntityID]kb.EntityID
}

// NewGroundTruth builds a GroundTruth from pairs, deduplicating repeats.
func NewGroundTruth(pairs []Pair) *GroundTruth {
	g := &GroundTruth{
		pairs: make(map[Pair]struct{}, len(pairs)),
		byE1:  make(map[kb.EntityID]kb.EntityID, len(pairs)),
		byE2:  make(map[kb.EntityID]kb.EntityID, len(pairs)),
	}
	for _, p := range pairs {
		g.pairs[p] = struct{}{}
		g.byE1[p.E1] = p.E2
		g.byE2[p.E2] = p.E1
	}
	return g
}

// Len returns the number of true matches.
func (g *GroundTruth) Len() int { return len(g.pairs) }

// Contains reports whether p is a true match.
func (g *GroundTruth) Contains(p Pair) bool {
	_, ok := g.pairs[p]
	return ok
}

// MatchOfE1 returns the true match of an E1 entity, or (NoEntity, false).
func (g *GroundTruth) MatchOfE1(e kb.EntityID) (kb.EntityID, bool) {
	m, ok := g.byE1[e]
	if !ok {
		return kb.NoEntity, false
	}
	return m, true
}

// MatchOfE2 returns the true match of an E2 entity, or (NoEntity, false).
func (g *GroundTruth) MatchOfE2(e kb.EntityID) (kb.EntityID, bool) {
	m, ok := g.byE2[e]
	if !ok {
		return kb.NoEntity, false
	}
	return m, true
}

// Pairs returns all true matches sorted by (E1, E2) for deterministic
// iteration.
func (g *GroundTruth) Pairs() []Pair {
	out := make([]Pair, 0, len(g.pairs))
	for p := range g.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E1 != out[j].E1 {
			return out[i].E1 < out[j].E1
		}
		return out[i].E2 < out[j].E2
	})
	return out
}

// Metrics is the standard effectiveness triple. Values are fractions in
// [0, 1]; the tables in EXPERIMENTS.md format them as percentages to match
// the paper.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	// TruePositives, Returned and Expected expose the raw counts.
	TruePositives int
	Returned      int
	Expected      int
}

// Evaluate scores a proposed match set against the ground truth.
func Evaluate(matches []Pair, gt *GroundTruth) Metrics {
	m := Metrics{Returned: len(matches), Expected: gt.Len()}
	seen := make(map[Pair]struct{}, len(matches))
	for _, p := range matches {
		if _, dup := seen[p]; dup {
			m.Returned--
			continue
		}
		seen[p] = struct{}{}
		if gt.Contains(p) {
			m.TruePositives++
		}
	}
	if m.Returned > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.Returned)
	}
	if m.Expected > 0 {
		m.Recall = float64(m.TruePositives) / float64(m.Expected)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// String formats the metrics as percentages, e.g. "P=91.44 R=88.55 F1=89.97".
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f", 100*m.Precision, 100*m.Recall, 100*m.F1)
}

// PairsFromURIs converts URI-level correspondences into ID pairs, skipping
// (and counting) pairs whose URIs are absent from either KB.
func PairsFromURIs(k1, k2 *kb.KB, uriPairs [][2]string) (pairs []Pair, skipped int) {
	for _, up := range uriPairs {
		e1, e2 := k1.Lookup(up[0]), k2.Lookup(up[1])
		if e1 == kb.NoEntity || e2 == kb.NoEntity {
			skipped++
			continue
		}
		pairs = append(pairs, Pair{e1, e2})
	}
	return pairs, skipped
}
