package eval

import (
	"math"
	"testing"
	"testing/quick"

	"minoaner/internal/kb"
	"minoaner/internal/testkb"
)

func TestGroundTruthBasics(t *testing.T) {
	gt := NewGroundTruth([]Pair{{1, 10}, {2, 20}, {1, 10}}) // duplicate collapses
	if gt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", gt.Len())
	}
	if !gt.Contains(Pair{1, 10}) || gt.Contains(Pair{1, 20}) {
		t.Error("Contains misbehaves")
	}
	if m, ok := gt.MatchOfE1(1); !ok || m != 10 {
		t.Errorf("MatchOfE1(1) = %v,%v", m, ok)
	}
	if m, ok := gt.MatchOfE2(20); !ok || m != 2 {
		t.Errorf("MatchOfE2(20) = %v,%v", m, ok)
	}
	if _, ok := gt.MatchOfE1(99); ok {
		t.Error("MatchOfE1(99) should be absent")
	}
	ps := gt.Pairs()
	if len(ps) != 2 || ps[0] != (Pair{1, 10}) || ps[1] != (Pair{2, 20}) {
		t.Errorf("Pairs = %v, want sorted", ps)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	gt := NewGroundTruth([]Pair{{1, 1}, {2, 2}})
	m := Evaluate([]Pair{{1, 1}, {2, 2}}, gt)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect run = %+v", m)
	}
}

func TestEvaluateMixed(t *testing.T) {
	gt := NewGroundTruth([]Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	m := Evaluate([]Pair{{1, 1}, {2, 9}}, gt)
	if m.TruePositives != 1 || m.Returned != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.25 {
		t.Errorf("P=%v R=%v, want 0.5, 0.25", m.Precision, m.Recall)
	}
	wantF1 := 2 * 0.5 * 0.25 / 0.75
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", m.F1, wantF1)
	}
}

func TestEvaluateDuplicatesIgnored(t *testing.T) {
	gt := NewGroundTruth([]Pair{{1, 1}})
	m := Evaluate([]Pair{{1, 1}, {1, 1}, {1, 1}}, gt)
	if m.Returned != 1 || m.Precision != 1 {
		t.Errorf("duplicate matches should count once: %+v", m)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	gt := NewGroundTruth(nil)
	m := Evaluate(nil, gt)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty everything = %+v, want zeros", m)
	}
	gt2 := NewGroundTruth([]Pair{{1, 1}})
	m2 := Evaluate(nil, gt2)
	if m2.Recall != 0 || m2.F1 != 0 {
		t.Errorf("no matches = %+v", m2)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Precision: 0.9144, Recall: 0.8855, F1: 0.8997}
	if got := m.String(); got != "P=91.44 R=88.55 F1=89.97" {
		t.Errorf("String() = %q", got)
	}
}

func TestPairsFromURIs(t *testing.T) {
	w, d := testkb.Figure1()
	pairs, skipped := PairsFromURIs(w, d, [][2]string{
		{"w:Restaurant1", "d:Restaurant2"},
		{"w:JohnLakeA", "d:JonnyLake"},
		{"w:Missing", "d:JonnyLake"},
	})
	if skipped != 1 || len(pairs) != 2 {
		t.Fatalf("pairs=%v skipped=%d", pairs, skipped)
	}
	if pairs[0].E1 != w.Lookup("w:Restaurant1") || pairs[0].E2 != d.Lookup("d:Restaurant2") {
		t.Error("wrong IDs resolved")
	}
	_ = kb.NoEntity
}

// Property: precision and recall are always within [0,1] and F1 is the
// harmonic mean.
func TestEvaluateProperty(t *testing.T) {
	f := func(matchSeed []uint16, gtSeed []uint16) bool {
		var matches, gts []Pair
		for _, s := range matchSeed {
			matches = append(matches, Pair{kb.EntityID(s % 50), kb.EntityID(s / 50 % 50)})
		}
		for _, s := range gtSeed {
			gts = append(gts, Pair{kb.EntityID(s % 50), kb.EntityID(s / 50 % 50)})
		}
		m := Evaluate(matches, NewGroundTruth(gts))
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
			return false
		}
		if m.Precision+m.Recall > 0 {
			want := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
			return math.Abs(m.F1-want) < 1e-12
		}
		return m.F1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
