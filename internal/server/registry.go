// The substrate registry: the server-side home of the "build once, share
// across requests" discipline. Each entry owns one immutable core.Substrate
// built by a single goroutine; concurrent loads of the same pair coalesce
// onto that one build (the in-library singleflight of
// Substrate.PrewarmQueries lifted to the service layer), every request after
// that shares the frozen substrate, and nothing is ever rebuilt per request.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/kb"
	"minoaner/internal/snapshot"
)

// Pair is one registry entry: the spec it was loaded from, its build state
// and — once ready — the shared substrate. All mutable fields are guarded by
// the owning Registry's mutex; the substrate itself is immutable.
type Pair struct {
	id   string
	spec LoadPairRequest
	cfg  core.Config

	status string
	sub    *core.Substrate
	err    error

	loadWall    time.Duration
	prewarmWall time.Duration

	// cancel aborts the in-flight build; done closes when the build goroutine
	// finishes (success or failure), so waiters and shutdown can join it.
	cancel context.CancelFunc
	done   chan struct{}

	queries atomic.Int64
}

// ID returns the pair's registry identifier.
func (p *Pair) ID() string { return p.id }

// Done returns a channel closed once the pair's build has finished.
func (p *Pair) Done() <-chan struct{} { return p.done }

// Registry holds the loaded pairs. It is safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	pairs map[string]*Pair

	// baseCtx parents every build so shutdown can abort them all; wg joins
	// the build goroutines.
	baseCtx context.Context
	abort   context.CancelFunc
	wg      sync.WaitGroup

	// builds counts build goroutines ever started — the singleflight tests'
	// observable: N concurrent loads of one pair must leave it at 1.
	builds atomic.Int64

	// buildPair is swappable by tests to control build duration and failure;
	// the default loads the KBs from the spec's paths and builds the
	// substrate.
	buildPair func(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error)
}

// NewRegistry returns an empty registry whose builds abort when the registry
// is closed.
func NewRegistry() *Registry {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		pairs:   make(map[string]*Pair),
		baseCtx: ctx,
		abort:   cancel,
	}
	r.buildPair = r.defaultBuild
	return r
}

// Load registers the pair described by spec and starts its asynchronous
// build, returning the entry and whether this call created it. A spec whose
// ID (explicit or derived) is already registered returns the existing entry
// — building, ready or failed — without starting a second build: concurrent
// first-loads are serialized behind the one build goroutine, whose
// completion every caller can await via Pair.Done.
func (r *Registry) Load(spec LoadPairRequest) (*Pair, bool, error) {
	if spec.Snapshot != "" {
		if spec.E1 != "" || spec.E2 != "" {
			return nil, false, fmt.Errorf("pair spec mixes a snapshot with e1/e2 paths")
		}
		if spec.SaveSnapshot != "" {
			return nil, false, fmt.Errorf("pair spec mixes snapshot and save_snapshot")
		}
	} else {
		if spec.E1 == "" || spec.E2 == "" {
			return nil, false, fmt.Errorf("pair spec needs e1 and e2 paths (or a snapshot)")
		}
		switch spec.Format {
		case "":
			spec.Format = "nt"
		case "nt", "tsv":
		default:
			return nil, false, fmt.Errorf("unknown format %q (want nt or tsv)", spec.Format)
		}
	}
	id := spec.ID
	if id == "" {
		id = deriveID(spec)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.pairs[id]; ok {
		return p, false, nil
	}
	ctx, cancel := context.WithCancel(r.baseCtx)
	p := &Pair{
		id:     id,
		spec:   spec,
		cfg:    spec.Config.coreConfig(),
		status: StatusBuilding,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	r.pairs[id] = p
	r.builds.Add(1)
	r.wg.Add(1)
	go r.runBuild(ctx, p)
	return p, true, nil
}

// AddSubstrate registers an already-built substrate under id — the path the
// bench harness and tests use to serve an in-memory dataset without files.
func (r *Registry) AddSubstrate(id string, spec LoadPairRequest, sub *core.Substrate) (*Pair, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.pairs[id]; ok {
		return nil, fmt.Errorf("pair %q already registered", id)
	}
	p := &Pair{
		id:     id,
		spec:   spec,
		cfg:    sub.Config(),
		status: StatusReady,
		sub:    sub,
		cancel: func() {},
		done:   make(chan struct{}),
	}
	close(p.done)
	r.pairs[id] = p
	return p, nil
}

// runBuild is the single build goroutine of one pair.
func (r *Registry) runBuild(ctx context.Context, p *Pair) {
	defer r.wg.Done()
	defer p.cancel() // release the ctx once the build settles
	sub, loadWall, err := r.buildPair(ctx, p)
	var prewarmWall time.Duration
	if err == nil && (p.spec.Prewarm == nil || *p.spec.Prewarm) {
		t0 := time.Now()
		err = sub.PrewarmQueries(ctx)
		prewarmWall = time.Since(t0)
	}
	if err == nil && p.spec.SaveSnapshot != "" {
		// Persisting is part of the load contract: a pair that claims to have
		// saved its snapshot but didn't would poison later warm starts.
		if werr := snapshot.WriteSubstrateFile(p.spec.SaveSnapshot, sub); werr != nil {
			err = fmt.Errorf("save snapshot: %w", werr)
		}
	}
	r.mu.Lock()
	if err != nil {
		p.status = StatusFailed
		p.err = err
	} else {
		p.status = StatusReady
		p.sub = sub
		p.loadWall = loadWall
		p.prewarmWall = prewarmWall
		if p.spec.Snapshot != "" {
			// A snapshot carries its own build configuration; queries and
			// resolves must use it, not the spec's defaults.
			p.cfg = sub.Config()
		}
	}
	r.mu.Unlock()
	close(p.done)
}

// defaultBuild loads the two KBs from the spec's paths and builds the shared
// substrate under the build context.
func (r *Registry) defaultBuild(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error) {
	if p.spec.Snapshot != "" {
		// Snapshot-sourced pair: the mmap open replaces KB parsing AND the
		// substrate build. The mapping lives for the process lifetime — the
		// registry never unmaps, since queries may hold the substrate after
		// Delete (see Loaded.Close).
		t0 := time.Now()
		loaded, err := snapshot.OpenSubstrate(p.spec.Snapshot)
		if err != nil {
			return nil, 0, err
		}
		return loaded.Substrate(), time.Since(t0), nil
	}
	t0 := time.Now()
	k1, err := loadKBFile("E1", p.spec.E1, p.spec.Format, p.spec.Stream)
	if err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	k2, err := loadKBFile("E2", p.spec.E2, p.spec.Format, p.spec.Stream)
	if err != nil {
		return nil, 0, err
	}
	loadWall := time.Since(t0)
	sub, err := core.BuildSubstrate(ctx, k1, k2, p.cfg)
	if err != nil {
		return nil, 0, err
	}
	return sub, loadWall, nil
}

// loadKBFile parses one KB dump in the requested format.
func loadKBFile(name, path, format string, stream bool) (*kb.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	load := func(r io.Reader) (*kb.KB, int, error) {
		switch {
		case format == "nt" && stream:
			return kb.StreamNTriples(name, r, true)
		case format == "nt":
			return kb.LoadNTriples(name, r, true)
		case stream:
			return kb.StreamTSV(name, r, true)
		default:
			return kb.LoadTSV(name, r, true)
		}
	}
	k, _, err := load(f)
	return k, err
}

// Get returns the pair registered under id.
func (r *Registry) Get(id string) (*Pair, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pairs[id]
	return p, ok
}

// Delete unregisters a pair, aborting its build if still in flight. The
// substrate itself is released to the garbage collector once in-flight
// queries holding it return.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	p, ok := r.pairs[id]
	if ok {
		delete(r.pairs, id)
	}
	r.mu.Unlock()
	if ok {
		p.cancel()
	}
	return ok
}

// List returns every pair's PairInfo, sorted by ID for stable output.
func (r *Registry) List() []PairInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PairInfo, 0, len(r.pairs))
	for _, p := range r.pairs {
		out = append(out, r.infoLocked(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns one pair's PairInfo snapshot.
func (r *Registry) Info(p *Pair) PairInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.infoLocked(p)
}

func (r *Registry) infoLocked(p *Pair) PairInfo {
	info := PairInfo{
		ID:       p.id,
		Status:   p.status,
		E1:       p.spec.E1,
		E2:       p.spec.E2,
		Format:   p.spec.Format,
		Snapshot: p.spec.Snapshot,
		Queries:  p.queries.Load(),
	}
	switch p.status {
	case StatusReady:
		info.E1Size = p.sub.K1().Len()
		info.E2Size = p.sub.K2().Len()
		info.LoadMS = msOf(p.loadWall)
		info.BuildMS = msOf(p.sub.BuildDuration())
		info.PrewarmMS = msOf(p.prewarmWall)
		t := p.sub.Timings()
		info.Timings = &PairTimings{
			StatisticsMS: msOf(t.Statistics),
			BlockingMS:   msOf(t.Blocking),
		}
	case StatusFailed:
		info.Error = p.err.Error()
	}
	return info
}

// Len reports the number of registered pairs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pairs)
}

// Builds reports how many build goroutines were ever started — the
// singleflight invariant's observable.
func (r *Registry) Builds() int64 { return r.builds.Load() }

// Substrate returns a ready pair's shared substrate, or a *apiError
// describing why it is unavailable.
func (r *Registry) Substrate(id string) (*Pair, *core.Substrate, *apiError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pairs[id]
	if !ok {
		return nil, nil, errPairNotFound(id)
	}
	switch p.status {
	case StatusBuilding:
		return nil, nil, &apiError{status: 409, code: CodePairNotReady,
			msg: fmt.Sprintf("pair %q is still building; poll GET /v1/pairs/%s", id, id)}
	case StatusFailed:
		return nil, nil, &apiError{status: 500, code: CodePairFailed,
			msg: fmt.Sprintf("pair %q failed to build: %v", id, p.err)}
	}
	return p, p.sub, nil
}

// Close aborts every in-flight build and waits for the build goroutines to
// exit. Ready substrates stay readable (shutdown drains queries separately).
func (r *Registry) Close() {
	r.abort()
	r.wg.Wait()
}

// deriveID hashes the load spec into a deterministic pair ID, so identical
// concurrent loads without an explicit ID coalesce onto one entry.
func deriveID(spec LoadPairRequest) string {
	h := sha256.New()
	prewarm := spec.Prewarm == nil || *spec.Prewarm
	fmt.Fprintf(h, "%s|%s|%s|%t|%t|%s|%s",
		spec.E1, spec.E2, spec.Format, spec.Stream, prewarm, spec.Snapshot, spec.SaveSnapshot)
	if c := spec.Config; c != nil {
		fmt.Fprintf(h, "|%d|%d|%d|%g|%g|%d", c.NameK, c.TopK, c.RelN, c.Theta, c.MaxBlockFraction, c.Workers)
	}
	return "p-" + hex.EncodeToString(h.Sum(nil))[:12]
}

// msOf converts a duration to the wire's millisecond unit.
func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
