package server

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"minoaner/internal/core"
	"minoaner/internal/matching"
)

// TestQueryCandidateWireSchema pins the exact bytes of the shared candidate
// schema — the one wire format behind both `cmd/minoaner -query -json` and
// the /v1 query response. A diff here is a breaking schema change: bump the
// API version instead of editing the tags.
func TestQueryCandidateWireSchema(t *testing.T) {
	ms := []core.QueryMatch{
		{Candidate: 0, URI: "d:Restaurant2", Rule: matching.RuleRank, Score: 0.75, ValueSim: 0.5, NeighborSim: 0.25, Reciprocal: true},
		{Candidate: 1, URI: "d:JonnyLake", Rule: matching.RuleName, Score: 1, Reciprocal: true},
		{Candidate: 2, URI: "d:Berkshire", Rule: matching.RuleNone, Score: 0.125, ValueSim: 0.125},
	}
	// The CLI's encoder: two-space indent, trailing newline.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Candidates(ms)); err != nil {
		t.Fatal(err)
	}
	const pinned = `[
  {
    "uri": "d:Restaurant2",
    "rule": "R3",
    "score": 0.75,
    "value_sim": 0.5,
    "neighbor_sim": 0.25,
    "reciprocal": true
  },
  {
    "uri": "d:JonnyLake",
    "rule": "R1",
    "score": 1,
    "reciprocal": true
  },
  {
    "uri": "d:Berkshire",
    "rule": "none",
    "score": 0.125,
    "value_sim": 0.125,
    "reciprocal": false
  }
]
`
	if got := buf.String(); got != pinned {
		t.Errorf("candidate wire bytes drifted:\n--- got ---\n%s\n--- want ---\n%s", got, pinned)
	}

	// Round trip: the pinned bytes decode back to the identical value.
	var back []QueryCandidate
	if err := json.Unmarshal([]byte(pinned), &back); err != nil {
		t.Fatal(err)
	}
	if want := Candidates(ms); !reflect.DeepEqual(back, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", back, want)
	}
}

// TestCandidatesNeverNil pins the empty-ranking encoding: [] on the wire,
// never null.
func TestCandidatesNeverNil(t *testing.T) {
	b, err := json.Marshal(QueryResponse{Pair: "p", Candidates: Candidates(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"candidates":[]`)) {
		t.Errorf("empty ranking encodes as %s, want a [] candidates array", b)
	}
}

// TestQueryResponseRoundTrip round-trips the full /v1 query response body.
func TestQueryResponseRoundTrip(t *testing.T) {
	in := QueryResponse{
		Pair: "fig1",
		URI:  "w:Restaurant1",
		Candidates: []QueryCandidate{
			{URI: "d:Restaurant2", Rule: "R3", Score: 0.9, ValueSim: 0.4, NeighborSim: 0.5, Reciprocal: true},
		},
		ElapsedUS: 123.5,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out QueryResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("query response round trip: got %+v, want %+v", out, in)
	}
}

// TestErrorEnvelopeShape pins the uniform error body.
func TestErrorEnvelopeShape(t *testing.T) {
	b, err := json.Marshal(ErrorEnvelope{Error: ErrorBody{Code: CodePairNotFound, Message: "no pair"}})
	if err != nil {
		t.Fatal(err)
	}
	const pinned = `{"error":{"code":"pair_not_found","message":"no pair"}}`
	if string(b) != pinned {
		t.Errorf("error envelope = %s, want %s", b, pinned)
	}
}

// TestDeriveIDDeterminism pins that identical specs coalesce and different
// specs split — the property the ID-less singleflight rests on.
func TestDeriveIDDeterminism(t *testing.T) {
	a := LoadPairRequest{E1: "x.nt", E2: "y.nt", Format: "nt"}
	if deriveID(a) != deriveID(a) {
		t.Error("deriveID is not deterministic")
	}
	b := a
	b.E2 = "z.nt"
	if deriveID(a) == deriveID(b) {
		t.Error("different specs derived the same ID")
	}
	c := a
	c.Config = &PairConfig{TopK: 5}
	if deriveID(a) == deriveID(c) {
		t.Error("different configs derived the same ID")
	}
}
