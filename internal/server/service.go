// The service layer between the HTTP handlers and the library: request
// semantics (replay vs explicit query format, matching-side overrides,
// per-request deadlines) live here, handlers.go only translates HTTP. Every
// method consumes the registry's shared substrates — nothing in this file
// builds pair-level state.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/kb"
)

// apiError is an error with a wire mapping: an HTTP status plus a stable
// envelope code.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errPairNotFound(id string) *apiError {
	return &apiError{status: http.StatusNotFound, code: CodePairNotFound,
		msg: fmt.Sprintf("no pair %q is loaded; POST /v1/pairs to load one", id)}
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeInvalidRequest, msg: fmt.Sprintf(format, args...)}
}

// ctxError maps a context abort onto the wire: 504 for an expired deadline,
// 499-style 503 for a client cancellation.
func ctxError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded,
			msg: "request deadline expired before the resolution finished"}
	case errors.Is(err, context.Canceled):
		return &apiError{status: http.StatusServiceUnavailable, code: CodeCanceled,
			msg: "request canceled before the resolution finished"}
	}
	return &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()}
}

// requestCtx derives the per-request deadline: the client's timeout_ms when
// given (capped at MaxTimeout), the server default otherwise. The returned
// context is what the resolution kernels observe between parallel chunks —
// an expired deadline aborts the work, not just the response write.
func (s *Server) requestCtx(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
	}
	return context.WithTimeout(parent, d)
}

// entityQuery lowers a wire QueryRequest onto a core.EntityQuery, resolving
// the replay format (bare E1 URI) against the pair's K1.
func entityQuery(sub *core.Substrate, req *QueryRequest) (core.EntityQuery, *apiError) {
	if len(req.Attrs) == 0 && len(req.Objects) == 0 && req.SelfURI == "" {
		if req.URI == "" {
			return core.EntityQuery{}, badRequest("query needs a uri to replay or attrs/objects to describe a new entity")
		}
		e := sub.K1().Lookup(req.URI)
		if e == kb.NoEntity {
			return core.EntityQuery{}, badRequest("uri %q is not an E1 entity and the query carries no statements", req.URI)
		}
		return core.QueryFromEntity(sub.K1(), e), nil
	}
	if req.SelfURI != "" && sub.K1().Lookup(req.SelfURI) == kb.NoEntity {
		return core.EntityQuery{}, badRequest("self_uri %q is not an E1 entity", req.SelfURI)
	}
	q := core.EntityQuery{URI: req.URI, SelfURI: req.SelfURI}
	for _, a := range req.Attrs {
		q.Attrs = append(q.Attrs, kb.AttributeValue{Attribute: a.Attribute, Value: a.Value})
	}
	for _, o := range req.Objects {
		q.Objects = append(q.Objects, core.QueryObject{Predicate: o.Predicate, Object: o.Object})
	}
	return q, nil
}

// query resolves one entity description against a loaded pair's shared
// substrate under the request deadline.
func (s *Server) query(ctx context.Context, id string, req *QueryRequest) (*QueryResponse, *apiError) {
	p, sub, aerr := s.reg.Substrate(id)
	if aerr != nil {
		return nil, aerr
	}
	q, aerr := entityQuery(sub, req)
	if aerr != nil {
		return nil, aerr
	}
	qctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	if s.holdQuery != nil {
		// Test hook: park the in-flight query so the shutdown-drain and
		// deadline tests can observe it. Nil in production.
		if s.queryEntered != nil {
			s.queryEntered <- struct{}{}
		}
		<-s.holdQuery
	}
	t0 := time.Now()
	ms, err := core.QueryEntity(qctx, sub, q, p.cfg)
	if err != nil {
		if qctx.Err() != nil {
			return nil, ctxError(qctx.Err())
		}
		return nil, badRequest("%v", err)
	}
	p.queries.Add(1)
	return &QueryResponse{
		Pair:       id,
		URI:        q.URI,
		Candidates: Candidates(ms),
		ElapsedUS:  float64(time.Since(t0).Microseconds()),
	}, nil
}

// resolve runs a batch resolution over the pair's shared substrate, applying
// only the matching-side overrides of the request.
func (s *Server) resolve(ctx context.Context, id string, req *ResolveRequest) (*ResolveResponse, *apiError) {
	p, sub, aerr := s.reg.Substrate(id)
	if aerr != nil {
		return nil, aerr
	}
	cfg := p.cfg
	if req.Theta != 0 {
		cfg.Theta = req.Theta
	}
	if req.TopK != 0 {
		cfg.TopK = req.TopK
	}
	if req.Shards != 0 {
		cfg.ShardCount = req.Shards
	}
	cfg.OmitTokenBlocks = true // a serving process never needs the Table-2 view
	rctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	t0 := time.Now()
	out, err := core.ResolveWith(rctx, sub, cfg)
	if err != nil {
		if rctx.Err() != nil {
			return nil, ctxError(rctx.Err())
		}
		return nil, badRequest("%v", err)
	}
	resp := &ResolveResponse{
		Pair:        id,
		Matches:     make([]ResolveMatch, 0, len(out.Matches)),
		MatchCount:  len(out.Matches),
		GraphEdges:  out.GraphEdges,
		RemovedByR4: out.RemovedByR4,
		ElapsedMS:   float64(time.Since(t0).Microseconds()) / 1000,
	}
	k1, k2 := sub.K1(), sub.K2()
	for _, m := range out.Matches {
		resp.Matches = append(resp.Matches, ResolveMatch{
			URI1: k1.Entity(m.Pair.E1).URI,
			URI2: k2.Entity(m.Pair.E2).URI,
			Rule: m.Rule.String(),
		})
	}
	return resp, nil
}

// entities returns a prefix of the pair's E1 URIs — the replay corpus for
// load tests and smoke checks.
func (s *Server) entities(id string, limit int) (*EntitiesResponse, *apiError) {
	_, sub, aerr := s.reg.Substrate(id)
	if aerr != nil {
		return nil, aerr
	}
	n := sub.K1().Len()
	if limit <= 0 || limit > n {
		limit = n
	}
	uris := make([]string, limit)
	for i := range uris {
		uris[i] = sub.K1().Entity(kb.EntityID(i)).URI
	}
	return &EntitiesResponse{Pair: id, Count: n, URIs: uris}, nil
}
