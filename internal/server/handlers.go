// The HTTP edge of the /v1 API: decode (bounded bodies), dispatch to the
// service layer, encode (uniform JSON, uniform error envelope). No
// resolution semantics live here.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// decodeJSON reads a bounded request body into dst, mapping oversized and
// malformed bodies onto their stable error codes. Unknown fields are
// rejected so schema typos fail loudly instead of silently selecting
// defaults.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBodyTooLarge,
				msg: "request body exceeds the server limit"}
		}
		return badRequest("malformed request body: %v", err)
	}
	return nil
}

// writeJSON encodes one response body.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.opts.Logger.Error("response encode failed", "err", err)
	}
}

// writeError emits the uniform error envelope.
func (s *Server) writeError(w http.ResponseWriter, aerr *apiError) {
	s.writeJSON(w, aerr.status, ErrorEnvelope{Error: ErrorBody{Code: aerr.code, Message: aerr.msg}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Pairs: s.reg.Len()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.writeError(w, &apiError{status: http.StatusServiceUnavailable, code: CodeShuttingDown,
			msg: "server is draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ready", Pairs: s.reg.Len()})
}

// handleLoadPair starts (or joins) an asynchronous pair build. 202 with
// status "building" on a fresh build, 200 with the current state when the ID
// was already registered — the singleflight answer.
func (s *Server) handleLoadPair(w http.ResponseWriter, r *http.Request) {
	var req LoadPairRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	p, created, err := s.reg.Load(req)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	s.writeJSON(w, status, s.reg.Info(p))
}

func (s *Server) handleListPairs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, ListPairsResponse{Pairs: s.reg.List()})
}

func (s *Server) handleGetPair(w http.ResponseWriter, r *http.Request) {
	p, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, errPairNotFound(r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.reg.Info(p))
}

func (s *Server) handleDeletePair(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Delete(r.PathValue("id")) {
		s.writeError(w, errPairNotFound(r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	resp, aerr := s.query(r.Context(), r.PathValue("id"), &req)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req ResolveRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	resp, aerr := s.resolve(r.Context(), r.PathValue("id"), &req)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, badRequest("invalid limit %q", v))
			return
		}
		limit = n
	}
	resp, aerr := s.entities(r.PathValue("id"), limit)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}
