// The qps-oriented load-test harness: N concurrent clients hammering
// POST /v1/pairs/{id}/query over real HTTP, reporting throughput and latency
// percentiles. This is the server-path counterpart of the single-threaded
// query_runs percentiles in the bench JSON — same kernel, plus the transport
// and concurrency the serving deployment actually pays for.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures one load-test run.
type LoadOptions struct {
	// Clients is the number of concurrent client goroutines (default 4).
	Clients int
	// Queries is the total number of requests across all clients
	// (default 1000).
	Queries int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// LoadResult is one load-test data point.
type LoadResult struct {
	Clients   int     `json:"clients"`
	Queries   int     `json:"queries"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	P50US     float64 `json:"p50_us"`
	P95US     float64 `json:"p95_us"`
	P99US     float64 `json:"p99_us"`
}

// String renders the result as one report line.
func (r LoadResult) String() string {
	return fmt.Sprintf("clients=%d queries=%d errors=%d qps=%.0f p50=%.0fµs p95=%.0fµs p99=%.0fµs (%.1fms total)",
		r.Clients, r.Queries, r.Errors, r.QPS, r.P50US, r.P95US, r.P99US, r.ElapsedMS)
}

// LoadTest fires opt.Queries query requests at baseURL's pair from
// opt.Clients concurrent clients, cycling through reqs. Requests are
// pre-marshaled outside the timed region, so a sample measures transport
// plus kernel. Non-200 responses count as Errors (the first failure body is
// reported in the returned error while the run still completes).
func LoadTest(ctx context.Context, baseURL, pairID string, reqs []QueryRequest, opt LoadOptions) (LoadResult, error) {
	if len(reqs) == 0 {
		return LoadResult{}, fmt.Errorf("server: load test needs at least one query")
	}
	if opt.Clients <= 0 {
		opt.Clients = 4
	}
	if opt.Queries <= 0 {
		opt.Queries = 1000
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	bodies := make([][]byte, len(reqs))
	for i := range reqs {
		b, err := json.Marshal(&reqs[i])
		if err != nil {
			return LoadResult{}, err
		}
		bodies[i] = b
	}
	url := fmt.Sprintf("%s/v1/pairs/%s/query", baseURL, pairID)
	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Clients * 2,
			MaxIdleConnsPerHost: opt.Clients * 2,
		},
	}
	defer client.CloseIdleConnections()

	var (
		next     atomic.Int64 // global request counter: exactly Queries total
		errCount atomic.Int64
		firstErr atomic.Pointer[string]
		wg       sync.WaitGroup
	)
	perClient := make([][]time.Duration, opt.Clients)
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, opt.Queries/opt.Clients+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.Queries || ctx.Err() != nil {
					break
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				err := postQuery(ctx, client, url, body)
				lat = append(lat, time.Since(t0))
				if err != nil {
					errCount.Add(1)
					msg := err.Error()
					firstErr.CompareAndSwap(nil, &msg)
				}
			}
			perClient[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range perClient {
		all = append(all, lat...)
	}
	slices.Sort(all)
	res := LoadResult{
		Clients:   opt.Clients,
		Queries:   len(all),
		Errors:    int(errCount.Load()),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		P50US:     latPercentileUS(all, 0.50),
		P95US:     latPercentileUS(all, 0.95),
		P99US:     latPercentileUS(all, 0.99),
	}
	if elapsed > 0 {
		res.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if msg := firstErr.Load(); msg != nil {
		return res, fmt.Errorf("server: load test saw %d failed requests (first: %s)", res.Errors, *msg)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// postQuery issues one query request and drains the response; any non-200
// status is an error carrying the envelope body.
func postQuery(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}

// latPercentileUS reads the p-th percentile (nearest-rank) of sorted
// latencies in microseconds — the same rule the bench query percentiles use.
func latPercentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	idx = max(0, min(idx, len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1000
}
