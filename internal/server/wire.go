// The /v1 wire schema of the resolution service — every request and
// response body minoanerd speaks, as plain structs with stable JSON tags.
// The schema is versioned by the URL prefix: breaking changes mean /v2, not
// edited tags. QueryCandidate is shared with `cmd/minoaner -query -json`
// through the facade (minoaner.QueryCandidates), so the CLI's output and the
// /v1 query response carry byte-identical candidate rows — the round-trip
// test in wire_test.go pins the bytes.
package server

import (
	"minoaner/internal/core"
)

// Stable error codes of the /v1 error envelope. Clients dispatch on Code;
// Message is human-readable and free to change.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeBodyTooLarge     = "body_too_large"
	CodePairNotFound     = "pair_not_found"
	CodePairNotReady     = "pair_not_ready"
	CodePairFailed       = "pair_failed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeShuttingDown     = "shutting_down"
	CodeInternal         = "internal"
)

// ErrorEnvelope is the uniform error response of every /v1 endpoint.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries one error: a stable machine code plus a human message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// PairConfig is the wire form of the resolution parameters a pair is built
// with; zero fields select the paper defaults (see core.DefaultConfig).
type PairConfig struct {
	NameK            int     `json:"name_k,omitempty"`
	TopK             int     `json:"top_k,omitempty"`
	RelN             int     `json:"rel_n,omitempty"`
	Theta            float64 `json:"theta,omitempty"`
	MaxBlockFraction float64 `json:"max_block_fraction,omitempty"`
	Workers          int     `json:"workers,omitempty"`
}

// coreConfig lowers the wire config onto core.Config. Validation happens in
// core (Config.normalize) so the service cannot drift from the library.
func (p *PairConfig) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if p == nil {
		return cfg
	}
	if p.NameK != 0 {
		cfg.NameK = p.NameK
	}
	if p.TopK != 0 {
		cfg.TopK = p.TopK
	}
	if p.RelN != 0 {
		cfg.RelN = p.RelN
	}
	if p.Theta != 0 {
		cfg.Theta = p.Theta
	}
	if p.MaxBlockFraction != 0 {
		cfg.MaxBlockFraction = p.MaxBlockFraction
	}
	cfg.Workers = p.Workers
	return cfg
}

// LoadPairRequest asks the registry to load and index one KB pair
// (POST /v1/pairs). The build is asynchronous: the response is the pair's
// PairInfo with status "building"; poll GET /v1/pairs/{id} until "ready".
// Loading an ID that is already registered returns the existing entry
// without a second build (the service-level singleflight).
type LoadPairRequest struct {
	// ID names the pair; empty derives a deterministic ID from the spec, so
	// identical concurrent loads coalesce onto one build.
	ID string `json:"id,omitempty"`
	// E1 and E2 are server-local dataset paths. Not used (and not required)
	// when Snapshot is set.
	E1 string `json:"e1"`
	E2 string `json:"e2"`
	// Format is "nt" (default) or "tsv".
	Format string `json:"format,omitempty"`
	// Stream selects the memory-bounded streaming ingestion path.
	Stream bool `json:"stream,omitempty"`
	// Prewarm (default true) front-loads the lazy query state after the
	// substrate build, so the first query does not pay for it.
	Prewarm *bool `json:"prewarm,omitempty"`
	// Config carries the build parameters (defaults: the paper's). Ignored
	// when Snapshot is set — a snapshot carries its build configuration.
	Config *PairConfig `json:"config,omitempty"`
	// Snapshot, when set, sources the pair from a server-local substrate
	// snapshot instead of KB dumps: the file is memory-mapped and the pair is
	// query-ready (persisted query state included) without any rebuild.
	Snapshot string `json:"snapshot,omitempty"`
	// SaveSnapshot, when set, persists the substrate (with prewarmed query
	// state) to this server-local path once the build succeeds, so later
	// loads can warm-start from it. Mutually exclusive with Snapshot.
	SaveSnapshot string `json:"save_snapshot,omitempty"`
}

// Pair statuses reported in PairInfo.
const (
	StatusBuilding = "building"
	StatusReady    = "ready"
	StatusFailed   = "failed"
)

// PairTimings is the substrate build breakdown of a ready pair, in
// milliseconds (CPU-work sums per stage; BuildMS on PairInfo is the real,
// possibly shorter, overlapped wall clock).
type PairTimings struct {
	StatisticsMS float64 `json:"statistics_ms"`
	BlockingMS   float64 `json:"blocking_ms"`
}

// PairInfo is one registry entry as reported by GET /v1/pairs[/{id}].
type PairInfo struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	E1     string `json:"e1"`
	E2     string `json:"e2"`
	Format string `json:"format"`
	// Snapshot is the snapshot path the pair was loaded from, if any; for
	// snapshot-sourced pairs LoadMS is the mmap-open wall clock and BuildMS
	// the ORIGINAL substrate build recorded inside the snapshot.
	Snapshot string `json:"snapshot,omitempty"`
	// E1Size/E2Size are entity counts, present once the pair is ready.
	E1Size int `json:"e1_size,omitempty"`
	E2Size int `json:"e2_size,omitempty"`
	// BuildMS is the substrate build wall clock; PrewarmMS the lazy
	// query-state construction (0 when prewarm was disabled); LoadMS the KB
	// parse+index time before the build.
	LoadMS    float64      `json:"load_ms,omitempty"`
	BuildMS   float64      `json:"build_ms,omitempty"`
	PrewarmMS float64      `json:"prewarm_ms,omitempty"`
	Timings   *PairTimings `json:"timings,omitempty"`
	// Queries counts the queries served from this pair's substrate.
	Queries int64 `json:"queries"`
	// Error is the build failure, when Status is "failed".
	Error string `json:"error,omitempty"`
}

// ListPairsResponse is the GET /v1/pairs body.
type ListPairsResponse struct {
	Pairs []PairInfo `json:"pairs"`
}

// QueryAttr is one literal attribute statement of a query entity.
type QueryAttr struct {
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
}

// QueryObject is one relation statement of a query entity; objects that are
// not E1 URIs are demoted to literal attributes, as everywhere else.
type QueryObject struct {
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
}

// QueryRequest resolves one entity description against a loaded pair
// (POST /v1/pairs/{id}/query). Two formats, mirroring `cmd/minoaner -query`:
//
//   - replay: only URI set, naming an E1 entity — the entity is re-described
//     through the query path (self-aware α and R4 semantics);
//   - explicit: Attrs/Objects carry the description of a new entity (URI is
//     then informational; set SelfURI to re-describe an E1 member).
type QueryRequest struct {
	URI     string        `json:"uri,omitempty"`
	SelfURI string        `json:"self_uri,omitempty"`
	Attrs   []QueryAttr   `json:"attrs,omitempty"`
	Objects []QueryObject `json:"objects,omitempty"`
	// TimeoutMS bounds this request's deadline (capped by the server's
	// MaxTimeout); 0 uses the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryCandidate is the wire form of one ranked core.QueryMatch — the shared
// schema behind both the /v1 query response and `cmd/minoaner -query -json`.
type QueryCandidate struct {
	URI         string  `json:"uri"`
	Rule        string  `json:"rule"`
	Score       float64 `json:"score"`
	ValueSim    float64 `json:"value_sim,omitempty"`
	NeighborSim float64 `json:"neighbor_sim,omitempty"`
	Reciprocal  bool    `json:"reciprocal"`
}

// Candidates lowers ranked QueryMatch rows onto the wire schema. The result
// is never nil, so an empty ranking serializes as [] rather than null.
func Candidates(ms []core.QueryMatch) []QueryCandidate {
	out := make([]QueryCandidate, 0, len(ms))
	for _, m := range ms {
		out = append(out, QueryCandidate{
			URI:         m.URI,
			Rule:        m.Rule.String(),
			Score:       m.Score,
			ValueSim:    m.ValueSim,
			NeighborSim: m.NeighborSim,
			Reciprocal:  m.Reciprocal,
		})
	}
	return out
}

// QueryResponse is the POST /v1/pairs/{id}/query body: ranked candidates,
// best first, plus the server-side kernel time.
type QueryResponse struct {
	Pair       string           `json:"pair"`
	URI        string           `json:"uri,omitempty"`
	Candidates []QueryCandidate `json:"candidates"`
	ElapsedUS  float64          `json:"elapsed_us"`
}

// ResolveRequest runs a batch resolution over the pair's shared substrate
// (POST /v1/pairs/{id}/resolve). Only matching-side parameters can be
// overridden — the substrate's build parameters are frozen.
type ResolveRequest struct {
	Theta     float64 `json:"theta,omitempty"`
	TopK      int     `json:"top_k,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// ResolveMatch is one detected correspondence with rule provenance.
type ResolveMatch struct {
	URI1 string `json:"uri1"`
	URI2 string `json:"uri2"`
	Rule string `json:"rule"`
}

// ResolveResponse is the batch-resolution result.
type ResolveResponse struct {
	Pair        string         `json:"pair"`
	Matches     []ResolveMatch `json:"matches"`
	MatchCount  int            `json:"match_count"`
	GraphEdges  int            `json:"graph_edges"`
	RemovedByR4 int            `json:"removed_by_r4"`
	ElapsedMS   float64        `json:"elapsed_ms"`
}

// EntitiesResponse is the GET /v1/pairs/{id}/entities body: a prefix of the
// pair's E1 URIs, the replay-format query corpus load tests cycle through.
type EntitiesResponse struct {
	Pair  string   `json:"pair"`
	Count int      `json:"count"`
	URIs  []string `json:"uris"`
}

// HealthResponse is the /healthz and /readyz body.
type HealthResponse struct {
	Status string `json:"status"`
	Pairs  int    `json:"pairs,omitempty"`
}
