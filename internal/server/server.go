// Package server is the resolution-as-a-service layer over the minoaner
// library: a long-running HTTP/JSON server holding a registry of loaded KB
// pairs whose substrates are built once and shared across all requests. The
// versioned /v1 API loads pairs asynchronously, answers per-entity queries
// and batch resolutions under per-request deadlines, and shuts down
// gracefully — draining in-flight queries while aborting in-flight builds.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Options configures a Server; the zero value serves on a random localhost
// port with production defaults.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Logger receives access and lifecycle logs (default slog.Default()).
	Logger *slog.Logger
	// MaxBodyBytes bounds every request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline when the request carries no
	// timeout_ms (default 30s); MaxTimeout caps client-requested deadlines
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	return o
}

// Server is the HTTP resolution service: a registry of shared substrates
// behind the /v1 API.
type Server struct {
	opts Options
	reg  *Registry
	http *http.Server
	ln   net.Listener

	// ready flips false once shutdown starts, failing /readyz first so load
	// balancers stop routing before the listener closes.
	ready atomic.Bool

	// holdQuery, when non-nil, parks every query until the channel closes —
	// a test hook for the shutdown-drain test; queryEntered, when non-nil,
	// receives one value as each query reaches the hold point, so tests can
	// tell a request is in flight. Never set in production, and only set
	// before Start so the handlers race-free read them.
	holdQuery    chan struct{}
	queryEntered chan struct{}
}

// New builds a Server with an empty registry.
func New(opts Options) *Server {
	s := &Server{opts: opts.withDefaults(), reg: NewRegistry()}
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Registry exposes the server's pair registry (the bench harness preloads
// substrates through it).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the fully routed /v1 handler with access logging — usable
// directly under httptest for in-process tests and benchmarks.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/pairs", s.handleLoadPair)
	mux.HandleFunc("GET /v1/pairs", s.handleListPairs)
	mux.HandleFunc("GET /v1/pairs/{id}", s.handleGetPair)
	mux.HandleFunc("DELETE /v1/pairs/{id}", s.handleDeletePair)
	mux.HandleFunc("POST /v1/pairs/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/pairs/{id}/resolve", s.handleResolve)
	mux.HandleFunc("GET /v1/pairs/{id}/entities", s.handleEntities)
	return s.accessLog(mux)
}

// Start binds the listener and serves in the background, returning the
// resolved address (the ":0" form binds an ephemeral port).
func (s *Server) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.ready.Store(true)
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.opts.Logger.Error("serve failed", "err", err)
		}
	}()
	return ln.Addr(), nil
}

// Shutdown drains the server: readiness flips immediately, in-flight
// requests (queries included) run to completion until ctx expires, and
// in-flight substrate builds are aborted — a half-built substrate is useless
// after exit, so builds get cancellation rather than drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	// Abort builds first so a long build cannot outlive the drain window.
	s.reg.Close()
	return s.http.Shutdown(ctx)
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// accessLog wraps the router with structured per-request logging.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.opts.Logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur", time.Since(t0).Round(time.Microsecond).String(),
		)
	})
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// String identifies the server in logs.
func (s *Server) String() string {
	if s.ln != nil {
		return fmt.Sprintf("minoanerd(%s)", s.ln.Addr())
	}
	return "minoanerd(unstarted)"
}
