package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/testkb"
)

// figure1Substrate builds the paper's Figure 1 pair into a query-ready
// substrate — small enough that every test can afford a fresh one.
func figure1Substrate(t *testing.T) *core.Substrate {
	t.Helper()
	k1, k2 := testkb.Figure1()
	sub, err := core.BuildSubstrate(context.Background(), k1, k2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.PrewarmQueries(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sub
}

func quietOptions() Options {
	return Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// newTestServer wires a Server's handler under httptest and registers the
// Figure 1 substrate as pair "fig1".
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(quietOptions())
	if _, err := s.reg.AddSubstrate("fig1", LoadPairRequest{E1: "mem:wd", E2: "mem:dbp", Format: "nt"}, figure1Substrate(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON posts body to url and decodes the response into out, returning the
// status code.
func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// errCode extracts the stable code of an error envelope response.
func errCode(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var env ErrorEnvelope
	status := doJSON(t, method, url, body, &env)
	return status, env.Error.Code
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t)
	var h HealthResponse
	if status := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &h); status != 200 || h.Status != "ok" || h.Pairs != 1 {
		t.Errorf("healthz = %d %+v", status, h)
	}
	// Readiness is owned by the lifecycle (Start/Shutdown); before Start the
	// handler reports draining with the stable code.
	if status, code := errCode(t, http.MethodGet, ts.URL+"/readyz", ""); status != 503 || code != CodeShuttingDown {
		t.Errorf("readyz before Start = %d %q, want 503 %q", status, code, CodeShuttingDown)
	}
	s.ready.Store(true)
	var r HealthResponse
	if status := doJSON(t, http.MethodGet, ts.URL+"/readyz", "", &r); status != 200 || r.Status != "ready" {
		t.Errorf("readyz = %d %+v", status, r)
	}
}

func TestUnknownPairPaths(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/pairs/nope/query", `{"uri":"w:Restaurant1"}`},
		{http.MethodPost, "/v1/pairs/nope/resolve", `{}`},
		{http.MethodGet, "/v1/pairs/nope", ""},
		{http.MethodGet, "/v1/pairs/nope/entities", ""},
		{http.MethodDelete, "/v1/pairs/nope", ""},
	} {
		if status, code := errCode(t, tc.method, ts.URL+tc.path, tc.body); status != 404 || code != CodePairNotFound {
			t.Errorf("%s %s = %d %q, want 404 %q", tc.method, tc.path, status, code, CodePairNotFound)
		}
	}
}

func TestMalformedAndOversizedBodies(t *testing.T) {
	opts := quietOptions()
	opts.MaxBodyBytes = 128
	s := New(opts)
	if _, err := s.reg.AddSubstrate("fig1", LoadPairRequest{E1: "mem:wd", E2: "mem:dbp"}, figure1Substrate(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"truncated":     `{"uri":`,
		"wrong type":    `{"uri":42}`,
		"unknown field": `{"entity":"w:Restaurant1"}`,
	} {
		if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", body); status != 400 || code != CodeInvalidRequest {
			t.Errorf("%s body = %d %q, want 400 %q", name, status, code, CodeInvalidRequest)
		}
	}
	// A replay URI that is not an E1 member and carries no statements cannot
	// be resolved into an entity description.
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", `{"uri":"w:NoSuch"}`); status != 400 || code != CodeInvalidRequest {
		t.Errorf("unknown replay uri = %d %q, want 400 %q", status, code, CodeInvalidRequest)
	}
	huge := fmt.Sprintf(`{"uri":%q}`, strings.Repeat("x", 256))
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", huge); status != 413 || code != CodeBodyTooLarge {
		t.Errorf("oversized body = %d %q, want 413 %q", status, code, CodeBodyTooLarge)
	}
	// The pair-load path shares the decoder, so its validation errors also
	// arrive as invalid_request.
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs", `{"e1":"only-one-side.nt"}`); status != 400 || code != CodeInvalidRequest {
		t.Errorf("load without e2 = %d %q, want 400 %q", status, code, CodeInvalidRequest)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs", `{"e1":"a.nt","e2":"b.nt","format":"xml"}`); status != 400 || code != CodeInvalidRequest {
		t.Errorf("bad format = %d %q, want 400 %q", status, code, CodeInvalidRequest)
	}
}

func TestQueryReplayAndExplicit(t *testing.T) {
	_, ts := newTestServer(t)

	var replay QueryResponse
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", `{"uri":"w:Restaurant1"}`, &replay); status != 200 {
		t.Fatalf("replay query status = %d", status)
	}
	if replay.Pair != "fig1" || len(replay.Candidates) == 0 {
		t.Fatalf("replay response = %+v", replay)
	}
	if replay.Candidates[0].URI != "d:Restaurant2" {
		t.Errorf("replay top candidate = %+v, want d:Restaurant2", replay.Candidates[0])
	}

	// The explicit format describes a new entity; the same description should
	// reach the same top candidate.
	explicit := `{"uri":"ext:TheFatDuck","attrs":[{"attribute":"label","value":"The Fat Duck"},{"attribute":"stars","value":"3 Michelin"}],"objects":[{"predicate":"hasChef","object":"w:JohnLakeA"},{"predicate":"territorial","object":"w:Bray"}]}`
	var fresh QueryResponse
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", explicit, &fresh); status != 200 {
		t.Fatalf("explicit query status = %d", status)
	}
	if len(fresh.Candidates) == 0 || fresh.Candidates[0].URI != "d:Restaurant2" {
		t.Errorf("explicit top candidate = %+v, want d:Restaurant2", fresh.Candidates)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", `{"self_uri":"w:NoSuch","attrs":[{"attribute":"label","value":"x"}]}`); status != 400 || code != CodeInvalidRequest {
		t.Errorf("bad self_uri = %d %q, want 400 %q", status, code, CodeInvalidRequest)
	}

	// The query counter on the pair's info reflects the served queries.
	var info PairInfo
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/pairs/fig1", "", &info); status != 200 {
		t.Fatalf("get pair status = %d", status)
	}
	if info.Status != StatusReady || info.Queries != 2 || info.E1Size == 0 {
		t.Errorf("pair info = %+v, want ready with 2 queries", info)
	}
}

func TestResolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var res ResolveResponse
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/resolve", `{}`, &res); status != 200 {
		t.Fatalf("resolve status = %d", status)
	}
	if res.MatchCount == 0 || len(res.Matches) != res.MatchCount {
		t.Fatalf("resolve response = %+v", res)
	}
	found := false
	for _, m := range res.Matches {
		if m.URI1 == "w:Restaurant1" && m.URI2 == "d:Restaurant2" {
			found = true
		}
	}
	if !found {
		t.Errorf("resolve missed the Figure 1 restaurant match: %+v", res.Matches)
	}
}

func TestEntitiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var all EntitiesResponse
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/pairs/fig1/entities?limit=0", "", &all); status != 200 {
		t.Fatalf("entities status = %d", status)
	}
	if all.Count != 4 || len(all.URIs) != 4 {
		t.Errorf("entities = %+v, want all 4 E1 URIs", all)
	}
	var two EntitiesResponse
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/pairs/fig1/entities?limit=2", "", &two); status != 200 || len(two.URIs) != 2 || two.Count != 4 {
		t.Errorf("entities limit=2 = %d %+v", status, two)
	}
	if status, code := errCode(t, http.MethodGet, ts.URL+"/v1/pairs/fig1/entities?limit=-3", ""); status != 400 || code != CodeInvalidRequest {
		t.Errorf("negative limit = %d %q", status, code)
	}
}

// TestConcurrentFirstLoadSingleflight loads the same spec from many clients
// at once and asserts exactly one build goroutine ever ran — the registry's
// singleflight invariant, observed through Registry.Builds.
func TestConcurrentFirstLoadSingleflight(t *testing.T) {
	s := New(quietOptions())
	sub := figure1Substrate(t)
	release := make(chan struct{})
	s.reg.buildPair = func(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
		return sub, 0, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	spec := `{"e1":"shared.nt","e2":"other.nt"}`
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ids      = make(map[string]int)
		accepted int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var info PairInfo
			status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs", spec, &info)
			mu.Lock()
			defer mu.Unlock()
			ids[info.ID]++
			if status == http.StatusAccepted {
				accepted++
			} else if status != http.StatusOK {
				t.Errorf("load status = %d", status)
			}
		}()
	}
	wg.Wait()
	if len(ids) != 1 {
		t.Fatalf("concurrent loads derived %d distinct IDs: %v", len(ids), ids)
	}
	if accepted != 1 {
		t.Errorf("%d loads reported 202 Accepted, want exactly 1 (the creator)", accepted)
	}
	if got := s.reg.Builds(); got != 1 {
		t.Fatalf("Builds() = %d after %d concurrent loads of one spec, want 1", got, clients)
	}

	var id string
	for k := range ids {
		id = k
	}
	p, ok := s.reg.Get(id)
	if !ok {
		t.Fatal("pair vanished")
	}
	close(release)
	<-p.Done()
	var info PairInfo
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/pairs/"+id, "", &info); status != 200 || info.Status != StatusReady {
		t.Fatalf("after build: %d %+v", status, info)
	}
	// Queries hit the one shared substrate with no rebuild.
	var q QueryResponse
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs/"+id+"/query", `{"uri":"w:Restaurant1"}`, &q); status != 200 || len(q.Candidates) == 0 {
		t.Fatalf("query after singleflight build = %d %+v", status, q)
	}
	if got := s.reg.Builds(); got != 1 {
		t.Errorf("Builds() = %d after queries, want still 1 — a query must never rebuild", got)
	}

	// A different spec is a different pair: it gets its own build.
	var other PairInfo
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs", `{"e1":"third.nt","e2":"fourth.nt"}`, &other); status != http.StatusAccepted {
		t.Fatalf("second spec load = %d", status)
	}
	if other.ID == id {
		t.Error("distinct specs derived the same ID")
	}
	if got := s.reg.Builds(); got != 2 {
		t.Errorf("Builds() = %d after a second spec, want 2", got)
	}
}

func TestBuildFailureAndDelete(t *testing.T) {
	s := New(quietOptions())
	s.reg.buildPair = func(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error) {
		return nil, 0, errors.New("synthetic parse failure")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info PairInfo
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs", `{"id":"bad","e1":"a.nt","e2":"b.nt"}`, &info); status != http.StatusAccepted {
		t.Fatalf("load status = %d", status)
	}
	p, _ := s.reg.Get("bad")
	<-p.Done()
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/pairs/bad", "", &info); status != 200 || info.Status != StatusFailed || info.Error == "" {
		t.Fatalf("failed pair info = %d %+v", status, info)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/bad/query", `{"uri":"x"}`); status != 500 || code != CodePairFailed {
		t.Errorf("query on failed pair = %d %q, want 500 %q", status, code, CodePairFailed)
	}
	if status := doJSON(t, http.MethodDelete, ts.URL+"/v1/pairs/bad", "", nil); status != http.StatusNoContent {
		t.Errorf("delete = %d", status)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/bad/query", `{"uri":"x"}`); status != 404 || code != CodePairNotFound {
		t.Errorf("query after delete = %d %q", status, code)
	}
}

// TestQueryOnBuildingPair asserts the not-ready error while a build is in
// flight, and that deleting the pair aborts the build's context.
func TestQueryOnBuildingPair(t *testing.T) {
	s := New(quietOptions())
	aborted := make(chan error, 1)
	s.reg.buildPair = func(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error) {
		<-ctx.Done() // park until delete/shutdown aborts us
		aborted <- ctx.Err()
		return nil, 0, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info PairInfo
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs", `{"id":"slow","e1":"a.nt","e2":"b.nt"}`, &info); status != http.StatusAccepted || info.Status != StatusBuilding {
		t.Fatalf("load = %d %+v", status, info)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/pairs/slow/query", `{"uri":"x"}`); status != 409 || code != CodePairNotReady {
		t.Errorf("query while building = %d %q, want 409 %q", status, code, CodePairNotReady)
	}
	if status := doJSON(t, http.MethodDelete, ts.URL+"/v1/pairs/slow", "", nil); status != http.StatusNoContent {
		t.Fatalf("delete while building = %d", status)
	}
	select {
	case err := <-aborted:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("build abort err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delete did not abort the in-flight build")
	}
}

// TestQueryDeadlineMidQuery parks an in-flight query past its deadline and
// asserts the context abort surfaces as 504 deadline_exceeded — and that the
// shared substrate stays fully usable afterwards (the failure poisons
// nothing).
func TestQueryDeadlineMidQuery(t *testing.T) {
	s := New(quietOptions())
	sub := figure1Substrate(t)
	if _, err := s.reg.AddSubstrate("fig1", LoadPairRequest{E1: "mem:wd", E2: "mem:dbp"}, sub); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	entered := make(chan struct{})
	s.holdQuery = hold
	s.queryEntered = entered
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		code   string
	}
	got := make(chan result, 1)
	go func() {
		var env ErrorEnvelope
		status := doJSON(t, http.MethodPost, ts.URL+"/v1/pairs/fig1/query", `{"uri":"w:Restaurant1","timeout_ms":20}`, &env)
		got <- result{status, env.Error.Code}
	}()
	<-entered // the request holds its (already ticking) 20ms deadline
	time.Sleep(50 * time.Millisecond)
	close(hold) // release: QueryEntity now observes the expired context
	r := <-got
	if r.status != http.StatusGatewayTimeout || r.code != CodeDeadlineExceeded {
		t.Fatalf("expired query = %d %q, want 504 %q", r.status, r.code, CodeDeadlineExceeded)
	}

	// The same substrate, addressed through a second server sharing the
	// registry (no hold hook), answers normally: the aborted request left no
	// damaged state behind.
	s2 := New(quietOptions())
	s2.reg = s.reg
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var q QueryResponse
	if status := doJSON(t, http.MethodPost, ts2.URL+"/v1/pairs/fig1/query", `{"uri":"w:Restaurant1"}`, &q); status != 200 || len(q.Candidates) == 0 {
		t.Fatalf("query after deadline abort = %d %+v, want candidates", status, q)
	}
}

// TestGracefulShutdownDrain starts a real listener, parks a query in flight,
// and asserts Shutdown (a) aborts the in-flight build immediately, (b) waits
// for the parked query, and (c) completes cleanly once the query finishes.
func TestGracefulShutdownDrain(t *testing.T) {
	s := New(quietOptions())
	if _, err := s.reg.AddSubstrate("fig1", LoadPairRequest{E1: "mem:wd", E2: "mem:dbp"}, figure1Substrate(t)); err != nil {
		t.Fatal(err)
	}
	buildAborted := make(chan struct{})
	s.reg.buildPair = func(ctx context.Context, p *Pair) (*core.Substrate, time.Duration, error) {
		<-ctx.Done()
		close(buildAborted)
		return nil, 0, ctx.Err()
	}
	hold := make(chan struct{})
	entered := make(chan struct{})
	s.holdQuery = hold
	s.queryEntered = entered

	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// One pair forever building: shutdown must abort it rather than drain it.
	if status := doJSON(t, http.MethodPost, base+"/v1/pairs", `{"id":"slow","e1":"a.nt","e2":"b.nt"}`, nil); status != http.StatusAccepted {
		t.Fatalf("load = %d", status)
	}

	type result struct {
		status     int
		candidates int
	}
	got := make(chan result, 1)
	go func() {
		var q QueryResponse
		status := doJSON(t, http.MethodPost, base+"/v1/pairs/fig1/query", `{"uri":"w:Restaurant1"}`, &q)
		got <- result{status, len(q.Candidates)}
	}()
	<-entered // the query is in flight inside the handler

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// The build must be aborted promptly, while the parked query keeps
	// Shutdown from returning.
	select {
	case <-buildAborted:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not abort the in-flight build")
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v while a query was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	if s.ready.Load() {
		t.Error("server still reports ready while draining")
	}

	close(hold) // release the parked query
	r := <-got
	if r.status != http.StatusOK || r.candidates == 0 {
		t.Errorf("drained query = %+v, want a 200 with candidates", r)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want clean drain", err)
	}
	p, _ := s.reg.Get("slow")
	<-p.Done()
	if info := s.reg.Info(p); info.Status != StatusFailed {
		t.Errorf("aborted build status = %q, want %q", info.Status, StatusFailed)
	}
}

// TestLoadTestHarness drives the load-test client against an in-process
// server and sanity-checks its accounting.
func TestLoadTestHarness(t *testing.T) {
	_, ts := newTestServer(t)
	reqs := []QueryRequest{{URI: "w:Restaurant1"}, {URI: "w:JohnLakeA"}}
	res, err := LoadTest(context.Background(), ts.URL, "fig1", reqs, LoadOptions{Clients: 3, Queries: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 24 || res.Errors != 0 {
		t.Fatalf("load test = %+v, want 24 clean queries", res)
	}
	if res.QPS <= 0 || res.P50US <= 0 || res.P99US < res.P50US {
		t.Errorf("load test percentiles look wrong: %+v", res)
	}
	if s := res.String(); !strings.Contains(s, "qps=") || !strings.Contains(s, "p99=") {
		t.Errorf("report line = %q", s)
	}

	// Failures are counted, the run completes, and the first body is carried
	// in the error.
	bad, err := LoadTest(context.Background(), ts.URL, "nope", reqs, LoadOptions{Clients: 2, Queries: 4})
	if err == nil || bad.Errors != 4 {
		t.Errorf("load test on missing pair = %+v, %v; want 4 errors", bad, err)
	}
	if err != nil && !strings.Contains(err.Error(), CodePairNotFound) {
		t.Errorf("load test error %q does not carry the envelope", err)
	}
}
