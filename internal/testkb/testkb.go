// Package testkb provides shared knowledge-base fixtures for tests across
// the MinoanER packages, most importantly the running example of the paper's
// Figure 1 (the Fat Duck restaurant described by Wikidata and DBpedia).
package testkb

import "minoaner/internal/kb"

// Figure1 builds the two KB fragments of the paper's Figure 1. The Wikidata
// side describes Restaurant1 with chef "John Lake A" located in Bray, United
// Kingdom; the DBpedia side describes Restaurant2 with chef "Jonny Lake" in
// county Berkshire. Both chef descriptions carry the shared unique name
// "J. Lake" used by Example 3.4 (α = 1 edge), and the Bray / Berkshire
// descriptions share infrequent tokens so their β edge is non-trivial.
//
// Ground truth: Restaurant1=Restaurant2, JohnLakeA=JonnyLake, Bray=Berkshire
// (location granularity differs but they refer to the same place in the
// example), UK=England.
func Figure1() (*kb.KB, *kb.KB) {
	w := kb.NewBuilder("Wikidata")
	r1 := w.AddEntity("w:Restaurant1")
	chef1 := w.AddEntity("w:JohnLakeA")
	bray := w.AddEntity("w:Bray")
	uk := w.AddEntity("w:UK")
	w.AddLiteral(r1, "label", "The Fat Duck")
	w.AddLiteral(r1, "stars", "3 Michelin")
	w.AddObject(r1, "hasChef", "w:JohnLakeA")
	w.AddObject(r1, "territorial", "w:Bray")
	w.AddObject(r1, "inCountry", "w:UK")
	w.AddLiteral(chef1, "label", "John Lake A")
	w.AddLiteral(chef1, "alias", "J. Lake")
	w.AddLiteral(bray, "label", "Bray")
	w.AddLiteral(bray, "description", "village Berkshire England")
	w.AddLiteral(uk, "label", "United Kingdom")

	d := kb.NewBuilder("DBpedia")
	r2 := d.AddEntity("d:Restaurant2")
	chef2 := d.AddEntity("d:JonnyLake")
	berk := d.AddEntity("d:Berkshire")
	eng := d.AddEntity("d:England")
	d.AddLiteral(r2, "name", "The Fat Duck restaurant")
	d.AddObject(r2, "headChef", "d:JonnyLake")
	d.AddObject(r2, "county", "d:Berkshire")
	d.AddLiteral(chef2, "name", "Jonny Lake")
	d.AddLiteral(chef2, "nick", "J. Lake")
	d.AddLiteral(berk, "name", "Berkshire")
	d.AddLiteral(berk, "comment", "county England Bray village")
	d.AddObject(berk, "partOf", "d:England")
	d.AddLiteral(eng, "name", "England")
	d.AddLiteral(eng, "nick", "Albion")
	return w.Build(), d.Build()
}

// Clone rebuilds an identical copy of a KB (used by tests that need two
// distinct instances of the same content).
func Clone(src *kb.KB) *kb.KB {
	b := kb.NewBuilder(src.Name())
	for i := 0; i < src.Len(); i++ {
		b.AddEntity(src.Entity(kb.EntityID(i)).URI)
	}
	for i := 0; i < src.Len(); i++ {
		d := src.Entity(kb.EntityID(i))
		for _, av := range d.Attrs {
			b.AddLiteral(kb.EntityID(i), av.Attribute, av.Value)
		}
		for _, r := range d.Relations {
			b.AddObject(kb.EntityID(i), r.Predicate, src.Entity(r.Object).URI)
		}
	}
	return b.Build()
}
