package baselines

import (
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/similarity"
)

// RiMOMConfig controls the RiMOM-IM-style matcher.
type RiMOMConfig struct {
	// TopTokens is the number of highest-TF-IDF tokens per entity used for
	// blocking (RiMOM-IM uses the top 5).
	TopTokens int
	// Threshold is the similarity acceptance threshold (default 0.15).
	Threshold float64
	// Iterations bounds the one-left-object propagation rounds (default 5).
	Iterations int
}

// DefaultRiMOMConfig returns the published defaults.
func DefaultRiMOMConfig() RiMOMConfig {
	return RiMOMConfig{TopTokens: 5, Threshold: 0.15, Iterations: 5}
}

// RiMOMIM reimplements the iterative instance matcher of Shao et al. [31]
// as characterized in §5: blocking by each entity's top-5 TF-IDF tokens
// (requiring attribute alignment, which the synthetic KBs provide through
// shared predicate names), value matching with a threshold, and the
// "one-left-object" heuristic — if two matched entities are connected via
// aligned relations and all but one of their neighbors are matched, the
// remaining neighbor pair is matched too.
func RiMOMIM(e *parallel.Engine, k1, k2 *kb.KB, cfg RiMOMConfig) []eval.Pair {
	if cfg.TopTokens <= 0 {
		cfg = DefaultRiMOMConfig()
	}
	corpus := similarity.BuildPairCorpus(e, k1, k2, 1, similarity.TFIDF)
	sim := func(p eval.Pair) float64 {
		return similarity.Similarity(similarity.SiGMaSim, &corpus.V1[p.E1], &corpus.V2[p.E2])
	}

	// Hapax terms (document frequency 1) cannot produce a cross-KB block,
	// and very frequent terms produce indiscriminate ones; RiMOM-IM's
	// top-token blocking keeps only discriminative terms in between.
	df := make(map[string]int)
	for i := range corpus.V1 {
		for t := range corpus.V1[i].Terms {
			df[t]++
		}
	}
	for j := range corpus.V2 {
		for t := range corpus.V2[j].Terms {
			df[t]++
		}
	}
	maxDF := (len(corpus.V1) + len(corpus.V2)) / 100
	if maxDF < 100 {
		maxDF = 100
	}
	matchable := func(t string) bool { return df[t] >= 2 && df[t] <= maxDF }

	// Blocking: candidates share at least one top-TF-IDF matchable token.
	blocks := make(map[string][]kb.EntityID)
	for i := range corpus.V1 {
		for _, t := range topTermsFiltered(&corpus.V1[i], cfg.TopTokens, matchable) {
			blocks[t] = append(blocks[t], kb.EntityID(i))
		}
	}
	candSet := make(map[eval.Pair]struct{})
	for j := range corpus.V2 {
		for _, t := range topTermsFiltered(&corpus.V2[j], cfg.TopTokens, matchable) {
			for _, i := range blocks[t] {
				candSet[eval.Pair{E1: i, E2: kb.EntityID(j)}] = struct{}{}
			}
		}
	}
	candidates := sortedPairs(candSet)

	// Initial value-based matching.
	scored := make([]matching.ScoredPair, 0, len(candidates))
	scores := parallel.Map(e, len(candidates), func(i int) float64 { return sim(candidates[i]) })
	for i, p := range candidates {
		scored = append(scored, matching.ScoredPair{Pair: p, Score: scores[i]})
	}
	matches := matching.UniqueMappingClustering(scored, cfg.Threshold)

	matched1 := make(map[kb.EntityID]kb.EntityID, len(matches))
	matched2 := make(map[kb.EntityID]kb.EntityID, len(matches))
	for _, m := range matches {
		matched1[m.E1] = m.E2
		matched2[m.E2] = m.E1
	}

	// One-left-object rounds.
	for it := 0; it < cfg.Iterations; it++ {
		added := 0
		for _, m := range sortedMatchedPairs(matched1) {
			d1, d2 := k1.Entity(m.E1), k2.Entity(m.E2)
			byPred1 := groupByPredicate(d1.Relations)
			byPred2 := groupByPredicate(d2.Relations)
			for pred, objs1 := range byPred1 {
				objs2, ok := byPred2[pred]
				if !ok {
					continue
				}
				left1 := unmatchedOf(objs1, matched1)
				left2 := unmatchedOf(objs2, matched2)
				if len(left1) == 1 && len(left2) == 1 {
					matched1[left1[0]] = left2[0]
					matched2[left2[0]] = left1[0]
					added++
				}
			}
		}
		if added == 0 {
			break
		}
	}
	out := make([]eval.Pair, 0, len(matched1))
	for x, y := range matched1 {
		out = append(out, eval.Pair{E1: x, E2: y})
	}
	return sortedPairList(out)
}

// topTerms returns the k terms of highest weight (ties by term).
func topTerms(v *similarity.Vector, k int) []string {
	return topTermsFiltered(v, k, func(string) bool { return true })
}

// topTermsFiltered returns the k highest-weighted terms passing the filter.
func topTermsFiltered(v *similarity.Vector, k int, keep func(string) bool) []string {
	type tw struct {
		t string
		w float64
	}
	terms := make([]tw, 0, len(v.Terms))
	for t, w := range v.Terms {
		if keep(t) {
			terms = append(terms, tw{t, w})
		}
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].w != terms[j].w {
			return terms[i].w > terms[j].w
		}
		return terms[i].t < terms[j].t
	})
	if len(terms) > k {
		terms = terms[:k]
	}
	out := make([]string, len(terms))
	for i, x := range terms {
		out[i] = x.t
	}
	return out
}

func groupByPredicate(rels []kb.Relation) map[string][]kb.EntityID {
	out := make(map[string][]kb.EntityID)
	for _, r := range rels {
		out[r.Predicate] = append(out[r.Predicate], r.Object)
	}
	return out
}

func unmatchedOf(objs []kb.EntityID, matched map[kb.EntityID]kb.EntityID) []kb.EntityID {
	var out []kb.EntityID
	seen := make(map[kb.EntityID]bool, len(objs))
	for _, o := range objs {
		if seen[o] {
			continue
		}
		seen[o] = true
		if _, ok := matched[o]; !ok {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedMatchedPairs(m1 map[kb.EntityID]kb.EntityID) []eval.Pair {
	out := make([]eval.Pair, 0, len(m1))
	for x, y := range m1 {
		out = append(out, eval.Pair{E1: x, E2: y})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].E1 < out[j].E1 })
	return out
}
