// Package baselines reimplements the systems MinoanER is compared against in
// Table 3 of the paper: the heavily fine-tuned value-only baseline BSL, the
// probabilistic matcher PARIS [33], the greedy collective matcher SiGMa
// [21], a RiMOM-IM-style iterative matcher [31], and a LINDA-style variant
// [4]. None of the original implementations is available for this setting
// (see DESIGN.md), so each is rebuilt from its published description with
// the characteristics the paper's §5 discussion relies on.
package baselines

import (
	"sort"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
)

// CandidatePairs enumerates the distinct cross-KB pairs suggested by the
// block collections — the unpruned disjunctive blocking graph's edge set,
// which is exactly what the paper feeds to BSL. A non-positive limit means
// unlimited; otherwise enumeration stops after limit pairs (guarding
// against un-purged stop-word blocks).
func CandidatePairs(limit int, collections ...*blocking.Collection) []eval.Pair {
	seen := make(map[eval.Pair]struct{})
	for _, c := range collections {
		if c == nil {
			continue
		}
		for i := range c.Blocks {
			b := &c.Blocks[i]
			for _, e1 := range b.E1 {
				for _, e2 := range b.E2 {
					p := eval.Pair{E1: e1, E2: e2}
					if _, ok := seen[p]; ok {
						continue
					}
					seen[p] = struct{}{}
					if limit > 0 && len(seen) >= limit {
						return sortedPairs(seen)
					}
				}
			}
		}
	}
	return sortedPairs(seen)
}

func sortedPairs(set map[eval.Pair]struct{}) []eval.Pair {
	out := make([]eval.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E1 != out[j].E1 {
			return out[i].E1 < out[j].E1
		}
		return out[i].E2 < out[j].E2
	})
	return out
}
