package baselines

import (
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
)

// PARISConfig controls the PARIS reimplementation.
type PARISConfig struct {
	// Iterations is the number of alignment/propagation rounds (PARIS
	// converges in a handful; default 5).
	Iterations int
	// Threshold is the acceptance probability for the final Unique Mapping
	// Clustering (default 0.1).
	Threshold float64
	// MaxValueFreq skips literal values shared by more than this many
	// entity pairs — PARIS's guard against non-identifying literals
	// (default 50).
	MaxValueFreq int
	// MaxFanIn skips propagation through objects with more than this many
	// referring subjects (hub guard; default 500).
	MaxFanIn int
}

// DefaultPARISConfig returns the defaults described above.
func DefaultPARISConfig() PARISConfig {
	return PARISConfig{Iterations: 5, Threshold: 0.3, MaxValueFreq: 50, MaxFanIn: 500}
}

// propagationDamping discounts relation-propagated evidence relative to
// direct literal evidence, standing in for PARIS's functionality factors:
// a pair supported only by a single matched neighbor never outranks a pair
// with exact-literal support.
const propagationDamping = 0.6

// PARIS reimplements the probabilistic matcher of Suchanek et al. [33] as
// characterized in §5 of the MinoanER paper: entity equivalences are seeded
// by *exact* shared literal values weighted by their inverse functionality,
// then refined over a few iterations that jointly estimate relation
// alignment and propagate equivalence along aligned relations. Unlike
// MinoanER it performs no token-level normalization, which is exactly why
// it collapses on formatting-noisy KB pairs (BBCmusic-DBpedia in Table 3).
func PARIS(k1, k2 *kb.KB, cfg PARISConfig) []eval.Pair {
	if cfg.Iterations <= 0 {
		cfg = DefaultPARISConfig()
	}
	// Index literal values exactly (no normalization — see doc comment).
	idx1 := literalIndex(k1)
	idx2 := literalIndex(k2)

	// Seed: P(x≡y) = 1 − Π_v (1 − 1/(cnt1(v)·cnt2(v))) over shared values.
	seeds := make(map[eval.Pair]float64)
	for v, xs := range idx1 {
		ys, ok := idx2[v]
		if !ok {
			continue
		}
		pairs := len(xs) * len(ys)
		if pairs > cfg.MaxValueFreq {
			continue
		}
		w := 1.0 / float64(pairs)
		for _, x := range xs {
			for _, y := range ys {
				p := eval.Pair{E1: x, E2: y}
				seeds[p] = 1 - (1-seeds[p])*(1-w)
			}
		}
	}

	in1 := reverseEdges(k1)
	in2 := reverseEdges(k2)

	scores := make(map[eval.Pair]float64, len(seeds))
	for p, s := range seeds {
		scores[p] = s
	}
	var current []eval.Pair
	for it := 0; it < cfg.Iterations; it++ {
		current = matching.UniqueMappingClustering(toScored(scores), cfg.Threshold)
		if len(current) == 0 {
			break
		}
		align := alignRelations(k1, k2, current)
		// Propagate: a matched object pair (x', y') referenced through an
		// aligned relation pair is evidence for the referring subjects.
		next := make(map[eval.Pair]float64, len(scores))
		for p, s := range seeds {
			next[p] = s
		}
		for _, m := range current {
			srcs1 := in1[m.E1]
			srcs2 := in2[m.E2]
			if len(srcs1) == 0 || len(srcs2) == 0 ||
				len(srcs1)*len(srcs2) > cfg.MaxFanIn {
				continue
			}
			conf := scores[m]
			for _, s1 := range srcs1 {
				for _, s2 := range srcs2 {
					a := align[relPair{s1.pred, s2.pred}]
					if a == 0 {
						continue
					}
					p := eval.Pair{E1: s1.src, E2: s2.src}
					ev := propagationDamping * a * conf
					next[p] = 1 - (1-next[p])*(1-ev)
				}
			}
		}
		scores = next
	}
	return matching.UniqueMappingClustering(toScored(scores), cfg.Threshold)
}

// literalIndex maps each raw literal value to the entities carrying it.
func literalIndex(k *kb.KB) map[string][]kb.EntityID {
	idx := make(map[string][]kb.EntityID)
	for i := 0; i < k.Len(); i++ {
		d := k.Entity(kb.EntityID(i))
		seen := make(map[string]bool, len(d.Attrs))
		for _, av := range d.Attrs {
			if seen[av.Value] {
				continue
			}
			seen[av.Value] = true
			idx[av.Value] = append(idx[av.Value], kb.EntityID(i))
		}
	}
	return idx
}

type inEdge struct {
	src  kb.EntityID
	pred string
}

// reverseEdges maps each entity to the (subject, predicate) pairs pointing
// at it.
func reverseEdges(k *kb.KB) map[kb.EntityID][]inEdge {
	in := make(map[kb.EntityID][]inEdge)
	for i := 0; i < k.Len(); i++ {
		for _, r := range k.Entity(kb.EntityID(i)).Relations {
			in[r.Object] = append(in[r.Object], inEdge{kb.EntityID(i), r.Predicate})
		}
	}
	return in
}

type relPair struct{ r1, r2 string }

// alignRelations estimates P(r1 ~ r2) from the current matches: the
// fraction of matched subject pairs whose r1/r2 edges lead to matched
// objects, relative to how often r1 appears on matched subjects — the
// functionality-flavored subrelation estimate of PARIS.
func alignRelations(k1, k2 *kb.KB, matches []eval.Pair) map[relPair]float64 {
	matched2of1 := make(map[kb.EntityID]kb.EntityID, len(matches))
	for _, m := range matches {
		matched2of1[m.E1] = m.E2
	}
	hits := make(map[relPair]int)
	uses1 := make(map[string]int)
	for _, m := range matches {
		d1 := k1.Entity(m.E1)
		d2 := k2.Entity(m.E2)
		obj2 := make(map[kb.EntityID][]string, len(d2.Relations))
		for _, r2 := range d2.Relations {
			obj2[r2.Object] = append(obj2[r2.Object], r2.Predicate)
		}
		for _, r1 := range d1.Relations {
			uses1[r1.Predicate]++
			y, ok := matched2of1[r1.Object]
			if !ok {
				continue
			}
			for _, p2 := range obj2[y] {
				hits[relPair{r1.Predicate, p2}]++
			}
		}
	}
	align := make(map[relPair]float64, len(hits))
	for rp, h := range hits {
		align[rp] = float64(h) / float64(uses1[rp.r1])
		if align[rp] > 1 {
			align[rp] = 1
		}
	}
	return align
}

func toScored(scores map[eval.Pair]float64) []matching.ScoredPair {
	out := make([]matching.ScoredPair, 0, len(scores))
	for p, s := range scores {
		out = append(out, matching.ScoredPair{Pair: p, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.E1 != out[j].Pair.E1 {
			return out[i].Pair.E1 < out[j].Pair.E1
		}
		return out[i].Pair.E2 < out[j].Pair.E2
	})
	return out
}
