package baselines

import (
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

// smallDataset generates a quick benchmark for baseline smoke tests.
func smallDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	d, err := datagen.Generate(datagen.Scale(datagen.Restaurant(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func purgedTokenBlocks(d *datagen.Dataset) *blocking.Collection {
	tb := blocking.TokenBlocks(seq, d.K1, d.K2)
	cap := int64(float64(d.K1.Len()) * float64(d.K2.Len()) * 0.0005)
	tb, _ = blocking.PurgeAbove(tb, cap)
	return tb
}

func TestCandidatePairs(t *testing.T) {
	c := &blocking.Collection{Blocks: []blocking.Block{
		{Key: "a", E1: []kb.EntityID{1, 2}, E2: []kb.EntityID{10}},
		{Key: "b", E1: []kb.EntityID{1}, E2: []kb.EntityID{10, 11}},
	}}
	got := CandidatePairs(0, c)
	// Distinct pairs: (1,10), (2,10), (1,11).
	if len(got) != 3 {
		t.Fatalf("pairs = %v, want 3 distinct", got)
	}
	if got[0] != (eval.Pair{E1: 1, E2: 10}) {
		t.Errorf("pairs not sorted: %v", got)
	}
	// Limit respected.
	if lim := CandidatePairs(2, c); len(lim) != 2 {
		t.Errorf("limit ignored: %v", lim)
	}
	// Nil collections tolerated.
	if got := CandidatePairs(0, nil, c); len(got) != 3 {
		t.Errorf("nil collection changed result: %v", got)
	}
}

func TestBSLOnRestaurant(t *testing.T) {
	if testing.Short() {
		t.Skip("BSL sweep is slow")
	}
	d := smallDataset(t)
	tb := purgedTokenBlocks(d)
	cands := CandidatePairs(0, tb)
	res := BSL(parallel.New(0), d.K1, d.K2, cands, d.GT)
	if res.Explored != 420 {
		t.Fatalf("explored %d configurations, want 420", res.Explored)
	}
	// Restaurant is the easy, strongly similar dataset: the fine-tuned
	// baseline must do very well (paper: 100 F1).
	if res.Best.Metrics.F1 < 0.9 {
		t.Errorf("BSL best on Restaurant = %v (%v), want ≥ 0.9", res.Best.Metrics, res.Best.Config)
	}
}

func TestBSLThresholdMonotonicity(t *testing.T) {
	d := smallDataset(t)
	tb := purgedTokenBlocks(d)
	cands := CandidatePairs(0, tb)
	res := BSL(parallel.New(0), d.K1, d.K2, cands, d.GT)
	// For a fixed configuration, recall must be non-increasing in the
	// threshold (UMC keeps a prefix).
	byCfg := map[string][]BSLOutcome{}
	for _, o := range res.Sweep {
		key := o.Config.String()[:len(o.Config.String())-7] // strip "/t=x.xx"
		byCfg[key] = append(byCfg[key], o)
	}
	for key, outs := range byCfg {
		for i := 1; i < len(outs); i++ {
			if outs[i].Config.Threshold < outs[i-1].Config.Threshold {
				t.Fatalf("%s: thresholds out of order", key)
			}
			if outs[i].Metrics.Recall > outs[i-1].Metrics.Recall+1e-12 {
				t.Fatalf("%s: recall increased with threshold", key)
			}
		}
	}
}

func TestPARISOnFigure1(t *testing.T) {
	w, d := testkb.Figure1()
	got := PARIS(w, d, DefaultPARISConfig())
	// The chefs share the exact literal "J. Lake" → seed match.
	found := false
	for _, p := range got {
		if w.Entity(p.E1).URI == "w:JohnLakeA" && d.Entity(p.E2).URI == "d:JonnyLake" {
			found = true
		}
	}
	if !found {
		t.Errorf("PARIS missed the exact-literal chef match: %v", got)
	}
}

func TestPARISOneToOne(t *testing.T) {
	d := smallDataset(t)
	got := PARIS(d.K1, d.K2, DefaultPARISConfig())
	assertOneToOne(t, got)
	m := eval.Evaluate(got, d.GT)
	// Restaurant has low raw-value noise → PARIS performs well (paper: 91 F1).
	if m.F1 < 0.6 {
		t.Errorf("PARIS on Restaurant F1 = %v, want ≥ 0.6", m.F1)
	}
}

func TestPARISCollapsesUnderRawNoise(t *testing.T) {
	p := datagen.Scale(datagen.BBCMusicDBpedia(), 0.1)
	d, err := datagen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	got := PARIS(d.K1, d.K2, DefaultPARISConfig())
	m := eval.Evaluate(got, d.GT)
	// The paper's Table 3: PARIS recall 0.29% on BBCmusic-DBpedia. With 95%
	// raw-value noise the exact-literal seeds vanish.
	if m.Recall > 0.3 {
		t.Errorf("PARIS recall under raw noise = %v, want near zero", m.Recall)
	}
}

func TestSiGMaOnRestaurant(t *testing.T) {
	d := smallDataset(t)
	tb := purgedTokenBlocks(d)
	got := SiGMa(seq, d.K1, d.K2, tb, DefaultSiGMaConfig())
	assertOneToOne(t, got)
	m := eval.Evaluate(got, d.GT)
	if m.F1 < 0.8 {
		t.Errorf("SiGMa on Restaurant F1 = %v (%v), want ≥ 0.8", m.F1, m)
	}
}

func TestLINDAStyleRuns(t *testing.T) {
	d := smallDataset(t)
	tb := purgedTokenBlocks(d)
	got := SiGMa(seq, d.K1, d.K2, tb, LINDAStyleConfig())
	assertOneToOne(t, got)
	m := eval.Evaluate(got, d.GT)
	if m.F1 <= 0 {
		t.Error("LINDA-style found nothing")
	}
}

func TestRiMOMOnRestaurant(t *testing.T) {
	d := smallDataset(t)
	got := RiMOMIM(seq, d.K1, d.K2, DefaultRiMOMConfig())
	assertOneToOne(t, got)
	m := eval.Evaluate(got, d.GT)
	// RiMOM-IM's fixed global threshold cannot adapt to Restaurant's short
	// descriptions, where coincidental name/year tokens push non-matches
	// over it (the deviation is recorded in EXPERIMENTS.md); the paper's
	// own RiMOM row is the weakest of the compared systems too. Require a
	// floor that catches regressions without overstating the baseline.
	if m.F1 < 0.3 {
		t.Errorf("RiMOM-IM on Restaurant F1 = %v, want ≥ 0.3", m.F1)
	}
	if m.Recall < 0.8 {
		t.Errorf("RiMOM-IM recall = %v, want ≥ 0.8", m.Recall)
	}
}

func assertOneToOne(t *testing.T, pairs []eval.Pair) {
	t.Helper()
	seen1 := map[kb.EntityID]bool{}
	seen2 := map[kb.EntityID]bool{}
	for _, p := range pairs {
		if seen1[p.E1] || seen2[p.E2] {
			t.Fatalf("mapping not one-to-one at %v", p)
		}
		seen1[p.E1] = true
		seen2[p.E2] = true
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		want bool
	}{
		{"rel", "rel", 0, true},
		{"rel", "rels", 0, false},
		{"rel", "rels", 1, true},
		{"v0:r0", "v0:r1", 1, true},
		{"v0:r0", "v1:r1", 1, false},
		{"abc", "xyz", 2, false},
		{"", "", 0, true},
		{"", "ab", 1, false},
	}
	for _, c := range cases {
		if got := editDistanceAtMost(c.a, c.b, c.k); got != c.want {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %v, want %v", c.a, c.b, c.k, got, c.want)
		}
	}
}

func TestTopTerms(t *testing.T) {
	v := vecFor(map[string]float64{"a": 3, "b": 1, "c": 2})
	got := topTerms(v, 2)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("topTerms = %v, want [a c]", got)
	}
}

func TestNameSeedsFigure1(t *testing.T) {
	w, d := testkb.Figure1()
	seeds := nameSeeds(seq, w, d, 2)
	found := false
	for _, p := range seeds {
		if w.Entity(p.E1).URI == "w:JohnLakeA" {
			found = true
		}
	}
	if !found {
		t.Errorf("nameSeeds missed the chefs: %v", seeds)
	}
}
