package baselines

import (
	"fmt"
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/similarity"
)

// BSLConfig is one point of the baseline's 420-configuration grid (§6):
// token n-grams (n ∈ {1,2,3}), TF or TF-IDF weighting, one of four
// similarity measures (SiGMa similarity only with TF-IDF), and a Unique
// Mapping Clustering threshold in [0, 1) with step 0.05.
type BSLConfig struct {
	NGram     int
	Weighting similarity.Weighting
	Measure   similarity.Measure
	Threshold float64
}

// String formats the configuration compactly.
func (c BSLConfig) String() string {
	return fmt.Sprintf("%d-gram/%s/%s/t=%.2f", c.NGram, c.Weighting, c.Measure, c.Threshold)
}

// BSLOutcome is the evaluation of one configuration.
type BSLOutcome struct {
	Config  BSLConfig
	Metrics eval.Metrics
}

// BSLResult carries the best configuration (by F1, the paper's selection
// criterion) and the full sweep.
type BSLResult struct {
	Best     BSLOutcome
	Sweep    []BSLOutcome
	Explored int
}

// thresholdSteps enumerates the paper's thresholds: [0, 1) step 0.05.
func thresholdSteps() []float64 {
	ts := make([]float64, 0, 20)
	for t := 0.0; t < 0.9999; t += 0.05 {
		ts = append(ts, t)
	}
	return ts
}

// BSL runs the paper's baseline: every candidate pair of the (unpruned)
// disjunctive blocking graph is scored under each representation/measure
// combination, Unique Mapping Clustering selects a one-to-one mapping, and
// the best F1 over all 420 configurations is reported — an upper bound on
// what a fine-tuned value-only matcher can achieve, since the tuning uses
// the ground truth itself.
//
// Implementation note: UMC's greedy selection is independent of the
// threshold (the threshold only truncates the scan), so each (n, weighting,
// measure) needs a single scoring pass and a single greedy pass; the 20
// thresholds are evaluated on the selected prefix.
func BSL(e *parallel.Engine, k1, k2 *kb.KB, candidates []eval.Pair, gt *eval.GroundTruth) BSLResult {
	var res BSLResult
	for n := 1; n <= 3; n++ {
		for _, w := range []similarity.Weighting{similarity.TF, similarity.TFIDF} {
			corpus := similarity.BuildPairCorpus(e, k1, k2, n, w)
			measures := []similarity.Measure{similarity.Cosine, similarity.Jaccard, similarity.GeneralizedJaccard}
			if w == similarity.TFIDF {
				measures = append(measures, similarity.SiGMaSim)
			}
			for _, m := range measures {
				scored := scorePairs(e, corpus, m, candidates)
				selected := matching.UniqueMappingClustering(scoredToPairs(scored), 0)
				outcomes := evaluateThresholds(n, w, m, scored, selected, gt)
				res.Sweep = append(res.Sweep, outcomes...)
			}
		}
	}
	res.Explored = len(res.Sweep)
	for _, o := range res.Sweep {
		if o.Metrics.F1 > res.Best.Metrics.F1 {
			res.Best = o
		}
	}
	return res
}

// scorePairs computes the similarity of every candidate pair in parallel.
func scorePairs(e *parallel.Engine, pc *similarity.PairCorpus, m similarity.Measure, candidates []eval.Pair) map[eval.Pair]float64 {
	scores := parallel.Map(e, len(candidates), func(i int) float64 {
		p := candidates[i]
		return similarity.Similarity(m, &pc.V1[p.E1], &pc.V2[p.E2])
	})
	out := make(map[eval.Pair]float64, len(candidates))
	for i, p := range candidates {
		out[p] = scores[i]
	}
	return out
}

func scoredToPairs(scores map[eval.Pair]float64) []matching.ScoredPair {
	out := make([]matching.ScoredPair, 0, len(scores))
	for p, s := range scores {
		out = append(out, matching.ScoredPair{Pair: p, Score: s})
	}
	return out
}

// evaluateThresholds scores the UMC selection at every threshold using a
// single descending pass over the selected pairs.
func evaluateThresholds(n int, w similarity.Weighting, m similarity.Measure, scores map[eval.Pair]float64, selected []eval.Pair, gt *eval.GroundTruth) []BSLOutcome {
	type sel struct {
		score float64
		tp    bool
	}
	sels := make([]sel, 0, len(selected))
	for _, p := range selected {
		sels = append(sels, sel{scores[p], gt.Contains(p)})
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i].score > sels[j].score })

	thresholds := thresholdSteps()
	out := make([]BSLOutcome, 0, len(thresholds))
	// Walk thresholds descending so the selected prefix only grows.
	idx, tps := 0, 0
	for i := len(thresholds) - 1; i >= 0; i-- {
		t := thresholds[i]
		for idx < len(sels) && sels[idx].score >= t {
			if sels[idx].tp {
				tps++
			}
			idx++
		}
		met := eval.Metrics{TruePositives: tps, Returned: idx, Expected: gt.Len()}
		if met.Returned > 0 {
			met.Precision = float64(met.TruePositives) / float64(met.Returned)
		}
		if met.Expected > 0 {
			met.Recall = float64(met.TruePositives) / float64(met.Expected)
		}
		if met.Precision+met.Recall > 0 {
			met.F1 = 2 * met.Precision * met.Recall / (met.Precision + met.Recall)
		}
		out = append(out, BSLOutcome{
			Config:  BSLConfig{NGram: n, Weighting: w, Measure: m, Threshold: t},
			Metrics: met,
		})
	}
	// Restore ascending threshold order for readability.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
