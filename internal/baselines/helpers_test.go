package baselines

import "minoaner/internal/similarity"

// vecFor builds a finalized vector for tests without exposing internals.
func vecFor(terms map[string]float64) *similarity.Vector {
	v := similarity.Vector{Terms: terms}
	for _, w := range terms {
		v.L1 += w
	}
	return &v
}
