package baselines

import (
	"container/heap"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/similarity"
	"minoaner/internal/stats"
)

// SiGMaConfig controls the greedy collective matcher.
type SiGMaConfig struct {
	// Alpha weighs the value similarity against the neighbor agreement
	// (SiGMa's default emphasis on values; default 0.8).
	Alpha float64
	// Threshold stops the greedy expansion when the best pair's score
	// drops below it (default 0.2).
	Threshold float64
	// NameK is the number of discovered name attributes used for seeding
	// (SiGMa was given entity names; we grant it MinoanER's discovery).
	NameK int
	// RelationCompat decides whether two predicates count as aligned for
	// neighbor propagation. SiGMa uses manually pre-aligned relations —
	// modeled as exact predicate-name equality; the LINDA-style variant
	// uses edit-distance similarity of predicate names.
	RelationCompat func(r1, r2 string) bool
	// MaxSteps caps the greedy loop (safety; default 10 × |E1|+|E2|).
	MaxSteps int
}

// DefaultSiGMaConfig returns SiGMa's defaults with exact relation alignment.
func DefaultSiGMaConfig() SiGMaConfig {
	return SiGMaConfig{
		Alpha:          0.8,
		Threshold:      0.2,
		NameK:          2,
		RelationCompat: func(r1, r2 string) bool { return r1 == r2 },
	}
}

// LINDAStyleConfig returns the LINDA-flavored variant (§5): fully automatic,
// with relation compatibility decided by small edit distance between
// predicate names instead of a manual alignment — a requirement that
// "rarely holds in the extreme schema heterogeneity of Web data", which is
// why its recall suffers outside simple benchmarks.
func LINDAStyleConfig() SiGMaConfig {
	cfg := DefaultSiGMaConfig()
	cfg.Threshold = 0.35
	cfg.RelationCompat = func(r1, r2 string) bool { return editDistanceAtMost(r1, r2, 1) }
	return cfg
}

// pqItem is a heap entry: a candidate pair with its score at push time.
type pqItem struct {
	pair  eval.Pair
	score float64
}

type pairHeap []pqItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	if h[i].pair.E1 != h[j].pair.E1 {
		return h[i].pair.E1 < h[j].pair.E1
	}
	return h[i].pair.E2 < h[j].pair.E2
}
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SiGMa reimplements the greedy collective matcher of Lacoste-Julien et al.
// [21] as characterized in §5: seed matches from identical entity names,
// then greedy propagation over compatible relations with a priority queue,
// scoring candidates by a weighted combination of TF-IDF value similarity
// and the fraction of already-matched neighbors. Matching is data-driven
// and iterative — each new match re-scores its neighborhood — in contrast
// to MinoanER's fixed four-rule pass.
func SiGMa(e *parallel.Engine, k1, k2 *kb.KB, tokenBlocks *blocking.Collection, cfg SiGMaConfig) []eval.Pair {
	if cfg.RelationCompat == nil {
		def := DefaultSiGMaConfig()
		if cfg.Alpha == 0 {
			cfg.Alpha = def.Alpha
		}
		if cfg.Threshold == 0 {
			cfg.Threshold = def.Threshold
		}
		if cfg.NameK == 0 {
			cfg.NameK = def.NameK
		}
		cfg.RelationCompat = def.RelationCompat
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 10 * (k1.Len() + k2.Len())
	}
	corpus := similarity.BuildPairCorpus(e, k1, k2, 1, similarity.TFIDF)
	valueSim := func(p eval.Pair) float64 {
		return similarity.Similarity(similarity.SiGMaSim, &corpus.V1[p.E1], &corpus.V2[p.E2])
	}

	matched1 := make(map[kb.EntityID]kb.EntityID)
	matched2 := make(map[kb.EntityID]kb.EntityID)

	// neighborAgreement is the fraction of x's and y's relation edges that
	// lead to already-matched counterpart objects via compatible predicates.
	neighborAgreement := func(p eval.Pair) float64 {
		d1, d2 := k1.Entity(p.E1), k2.Entity(p.E2)
		if len(d1.Relations) == 0 || len(d2.Relations) == 0 {
			return 0
		}
		agree := 0
		for _, r1 := range d1.Relations {
			y, ok := matched1[r1.Object]
			if !ok {
				continue
			}
			for _, r2 := range d2.Relations {
				if r2.Object == y && cfg.RelationCompat(r1.Predicate, r2.Predicate) {
					agree++
					break
				}
			}
		}
		max := len(d1.Relations)
		if len(d2.Relations) > max {
			max = len(d2.Relations)
		}
		return float64(agree) / float64(max)
	}
	score := func(p eval.Pair) float64 {
		return cfg.Alpha*valueSim(p) + (1-cfg.Alpha)*neighborAgreement(p)
	}

	h := &pairHeap{}
	// Seeds: globally unique identical names (score 1, matched first).
	for _, p := range nameSeeds(e, k1, k2, cfg.NameK) {
		heap.Push(h, pqItem{p, 1.0})
	}
	// Blocking: pairs sharing at least two common tokens ([21] as cited in
	// §5 "Blocking"), pushed with their value score.
	for _, p := range pairsWithMinSharedBlocks(tokenBlocks, 2) {
		if s := valueSim(p); s >= cfg.Threshold {
			heap.Push(h, pqItem{p, s})
		}
	}

	var out []eval.Pair
	steps := 0
	for h.Len() > 0 && steps < cfg.MaxSteps {
		steps++
		item := heap.Pop(h).(pqItem)
		if _, ok := matched1[item.pair.E1]; ok {
			continue
		}
		if _, ok := matched2[item.pair.E2]; ok {
			continue
		}
		// Lazy re-evaluation: neighbor agreement only grows, so the stored
		// score is a lower bound; recompute and re-queue if now beaten.
		fresh := score(item.pair)
		if h.Len() > 0 && fresh < (*h)[0].score && item.score != 1.0 {
			heap.Push(h, pqItem{item.pair, fresh})
			continue
		}
		if fresh < cfg.Threshold && item.score != 1.0 {
			continue
		}
		matched1[item.pair.E1] = item.pair.E2
		matched2[item.pair.E2] = item.pair.E1
		out = append(out, item.pair)
		// Propagate: neighbor pairs over compatible relations become
		// candidates with refreshed scores.
		d1, d2 := k1.Entity(item.pair.E1), k2.Entity(item.pair.E2)
		for _, r1 := range d1.Relations {
			if _, done := matched1[r1.Object]; done {
				continue
			}
			for _, r2 := range d2.Relations {
				if _, done := matched2[r2.Object]; done {
					continue
				}
				if !cfg.RelationCompat(r1.Predicate, r2.Predicate) {
					continue
				}
				np := eval.Pair{E1: r1.Object, E2: r2.Object}
				if s := score(np); s >= cfg.Threshold {
					heap.Push(h, pqItem{np, s})
				}
			}
		}
	}
	return sortedPairList(out)
}

// nameSeeds returns pairs whose normalized names collide uniquely across
// the KBs (one holder per side).
func nameSeeds(e *parallel.Engine, k1, k2 *kb.KB, nameK int) []eval.Pair {
	nl1 := stats.NewNameLookup(k1, stats.NameAttributes(e, k1, nameK))
	nl2 := stats.NewNameLookup(k2, stats.NameAttributes(e, k2, nameK))
	names1 := make(map[string][]kb.EntityID)
	for i := 0; i < k1.Len(); i++ {
		for _, n := range nl1.Names(kb.EntityID(i)) {
			names1[n] = append(names1[n], kb.EntityID(i))
		}
	}
	var out []eval.Pair
	names2 := make(map[string][]kb.EntityID)
	for i := 0; i < k2.Len(); i++ {
		for _, n := range nl2.Names(kb.EntityID(i)) {
			names2[n] = append(names2[n], kb.EntityID(i))
		}
	}
	for n, xs := range names1 {
		ys := names2[n]
		if len(xs) == 1 && len(ys) == 1 {
			out = append(out, eval.Pair{E1: xs[0], E2: ys[0]})
		}
	}
	return sortedPairList(out)
}

// pairsWithMinSharedBlocks returns the distinct pairs co-occurring in at
// least min blocks of the collection.
func pairsWithMinSharedBlocks(c *blocking.Collection, min int) []eval.Pair {
	counts := make(map[eval.Pair]int)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, e1 := range b.E1 {
			for _, e2 := range b.E2 {
				counts[eval.Pair{E1: e1, E2: e2}]++
			}
		}
	}
	var out []eval.Pair
	for p, n := range counts {
		if n >= min {
			out = append(out, p)
		}
	}
	return sortedPairList(out)
}

func sortedPairList(out []eval.Pair) []eval.Pair {
	set := make(map[eval.Pair]struct{}, len(out))
	for _, p := range out {
		set[p] = struct{}{}
	}
	return sortedPairs(set)
}

// editDistanceAtMost reports whether the Levenshtein distance of a and b is
// ≤ k, with early exit on the length difference.
func editDistanceAtMost(a, b string, k int) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > k {
		return false
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		rowMin := cur[0]
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[i] = minOf3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
			if cur[i] < rowMin {
				rowMin = cur[i]
			}
		}
		if rowMin > k {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[len(a)] <= k
}

func minOf3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
