// Package similarity provides the schema-agnostic token-vector similarities
// used by the paper's fine-tuned baseline BSL (§6, "Baselines"): entities
// are represented by token uni-/bi-/tri-grams weighted by TF or TF-IDF, and
// compared with Cosine, Jaccard, Generalized Jaccard or the SiGMa similarity
// (the latter defined only for TF-IDF weights, following [21]).
//
// All measures are normalized to [0, 1] — which is precisely why they
// struggle on the nearly-similar matches of Figure 2, unlike MinoanER's
// unnormalized valueSim.
package similarity

import (
	"math"
	"strings"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// Weighting selects the token weighting scheme.
type Weighting uint8

// Supported weightings.
const (
	TF Weighting = iota
	TFIDF
)

// String names the weighting.
func (w Weighting) String() string {
	if w == TFIDF {
		return "TF-IDF"
	}
	return "TF"
}

// Measure selects the vector similarity function.
type Measure uint8

// Supported measures. SiGMaSim applies exclusively to TF-IDF weights.
const (
	Cosine Measure = iota
	Jaccard
	GeneralizedJaccard
	SiGMaSim
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case GeneralizedJaccard:
		return "generalized-jaccard"
	default:
		return "sigma"
	}
}

// Vector is a sparse weighted term vector with cached norms.
type Vector struct {
	Terms map[string]float64
	// L2 is the Euclidean norm; L1 the sum of weights.
	L2, L1 float64
}

// finalize caches the norms after the term weights are set.
func (v *Vector) finalize() {
	var sq, sum float64
	for _, w := range v.Terms {
		sq += w * w
		sum += w
	}
	v.L2 = math.Sqrt(sq)
	v.L1 = sum
}

// PairCorpus holds the vectors of both KBs under one (n-gram, weighting)
// representation. IDF statistics are computed over the union of the two
// KBs, as is standard for cross-corpus TF-IDF.
type PairCorpus struct {
	NGram     int
	Weighting Weighting
	V1, V2    []Vector
}

// BuildPairCorpus vectorizes both KBs with token n-grams of size n and the
// given weighting. Document frequency counts each entity once per term.
func BuildPairCorpus(e *parallel.Engine, k1, k2 *kb.KB, n int, w Weighting) *PairCorpus {
	tok := kb.NewTokenizer()
	terms1 := parallel.Map(e, k1.Len(), func(i int) map[string]float64 {
		return termCounts(tok, k1.Entity(kb.EntityID(i)), n)
	})
	terms2 := parallel.Map(e, k2.Len(), func(i int) map[string]float64 {
		return termCounts(tok, k2.Entity(kb.EntityID(i)), n)
	})
	pc := &PairCorpus{NGram: n, Weighting: w}
	if w == TFIDF {
		df := make(map[string]int)
		for _, m := range terms1 {
			for t := range m {
				df[t]++
			}
		}
		for _, m := range terms2 {
			for t := range m {
				df[t]++
			}
		}
		total := float64(k1.Len() + k2.Len())
		idf := func(t string) float64 { return math.Log(1 + total/float64(df[t])) }
		apply := func(ms []map[string]float64) []Vector {
			vs := make([]Vector, len(ms))
			for i, m := range ms {
				for t, tf := range m {
					m[t] = tf * idf(t)
				}
				vs[i] = Vector{Terms: m}
				vs[i].finalize()
			}
			return vs
		}
		pc.V1, pc.V2 = apply(terms1), apply(terms2)
		return pc
	}
	apply := func(ms []map[string]float64) []Vector {
		vs := make([]Vector, len(ms))
		for i, m := range ms {
			vs[i] = Vector{Terms: m}
			vs[i].finalize()
		}
		return vs
	}
	pc.V1, pc.V2 = apply(terms1), apply(terms2)
	return pc
}

// termCounts extracts the n-gram term frequencies of one description. The
// n-grams are built per literal value (they do not cross value boundaries).
func termCounts(tok *kb.Tokenizer, d *kb.Description, n int) map[string]float64 {
	out := make(map[string]float64)
	for _, av := range d.Attrs {
		tokens := tok.Tokens(av.Value)
		if n <= 1 {
			for _, t := range tokens {
				out[t]++
			}
			continue
		}
		for i := 0; i+n <= len(tokens); i++ {
			out[strings.Join(tokens[i:i+n], "_")]++
		}
	}
	return out
}

// Similarity computes the selected measure between two vectors. Results are
// in [0, 1]; two empty vectors score 0.
func Similarity(m Measure, a, b *Vector) float64 {
	switch m {
	case Cosine:
		return cosine(a, b)
	case Jaccard:
		return jaccard(a, b)
	case GeneralizedJaccard:
		return generalizedJaccard(a, b)
	default:
		return sigma(a, b)
	}
}

// small returns the smaller vector first, to iterate over fewer terms.
func small(a, b *Vector) (*Vector, *Vector) {
	if len(a.Terms) <= len(b.Terms) {
		return a, b
	}
	return b, a
}

func cosine(a, b *Vector) float64 {
	if a.L2 == 0 || b.L2 == 0 {
		return 0
	}
	s, l := small(a, b)
	dot := 0.0
	for t, w := range s.Terms {
		if w2, ok := l.Terms[t]; ok {
			dot += w * w2
		}
	}
	return dot / (a.L2 * b.L2)
}

// jaccard ignores weights: |A ∩ B| / |A ∪ B| over term sets.
func jaccard(a, b *Vector) float64 {
	if len(a.Terms) == 0 || len(b.Terms) == 0 {
		return 0
	}
	s, l := small(a, b)
	inter := 0
	for t := range s.Terms {
		if _, ok := l.Terms[t]; ok {
			inter++
		}
	}
	union := len(a.Terms) + len(b.Terms) - inter
	return float64(inter) / float64(union)
}

// generalizedJaccard is Σ min(w_a, w_b) / Σ max(w_a, w_b).
func generalizedJaccard(a, b *Vector) float64 {
	if a.L1 == 0 || b.L1 == 0 {
		return 0
	}
	s, l := small(a, b)
	var minSum float64
	for t, w := range s.Terms {
		if w2, ok := l.Terms[t]; ok {
			minSum += math.Min(w, w2)
		}
	}
	// Σ max = Σ a + Σ b − Σ min.
	maxSum := a.L1 + b.L1 - minSum
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// sigma is the SiGMa string similarity [21]: the weight mass of the shared
// terms relative to the total mass, Σ_{t∈A∩B}(w_a + w_b) / (Σ w_a + Σ w_b).
func sigma(a, b *Vector) float64 {
	if a.L1 == 0 || b.L1 == 0 {
		return 0
	}
	s, l := small(a, b)
	var shared float64
	for t, w := range s.Terms {
		if w2, ok := l.Terms[t]; ok {
			shared += w + w2
		}
	}
	return shared / (a.L1 + b.L1)
}
