package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

func vec(terms map[string]float64) *Vector {
	v := &Vector{Terms: terms}
	v.finalize()
	return v
}

func TestCosine(t *testing.T) {
	a := vec(map[string]float64{"x": 1, "y": 1})
	b := vec(map[string]float64{"x": 1, "y": 1})
	if got := Similarity(Cosine, a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine(identical) = %v, want 1", got)
	}
	c := vec(map[string]float64{"z": 1})
	if got := Similarity(Cosine, a, c); got != 0 {
		t.Errorf("cosine(disjoint) = %v, want 0", got)
	}
	d := vec(map[string]float64{"x": 1})
	want := 1 / math.Sqrt(2)
	if got := Similarity(Cosine, a, d); math.Abs(got-want) > 1e-12 {
		t.Errorf("cosine = %v, want %v", got, want)
	}
}

func TestJaccard(t *testing.T) {
	a := vec(map[string]float64{"x": 5, "y": 1})
	b := vec(map[string]float64{"x": 1, "z": 1})
	// Weights ignored: |{x}| / |{x,y,z}| = 1/3.
	if got := Similarity(Jaccard, a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", got)
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	a := vec(map[string]float64{"x": 2, "y": 1})
	b := vec(map[string]float64{"x": 1, "y": 3})
	// min: 1+1=2; max: 2+3=5.
	if got := Similarity(GeneralizedJaccard, a, b); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("genJaccard = %v, want 0.4", got)
	}
}

func TestSigma(t *testing.T) {
	a := vec(map[string]float64{"x": 2, "y": 2})
	b := vec(map[string]float64{"x": 1, "z": 3})
	// shared mass: (2+1) = 3; total 4+4 = 8.
	if got := Similarity(SiGMaSim, a, b); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("sigma = %v, want 3/8", got)
	}
}

func TestEmptyVectors(t *testing.T) {
	empty := vec(map[string]float64{})
	full := vec(map[string]float64{"x": 1})
	for _, m := range []Measure{Cosine, Jaccard, GeneralizedJaccard, SiGMaSim} {
		if got := Similarity(m, empty, full); got != 0 {
			t.Errorf("%v(empty, x) = %v, want 0", m, got)
		}
		if got := Similarity(m, empty, empty); got != 0 {
			t.Errorf("%v(empty, empty) = %v, want 0", m, got)
		}
	}
}

// Property: all measures are symmetric, bounded in [0,1], and reach 1 on
// identical non-empty vectors (except sigma, which also reaches 1).
func TestMeasureProperties(t *testing.T) {
	f := func(wa, wb []uint8) bool {
		a := map[string]float64{}
		b := map[string]float64{}
		for i, w := range wa {
			if w > 0 {
				a[string(rune('a'+i%20))] = float64(w)
			}
		}
		for i, w := range wb {
			if w > 0 {
				b[string(rune('a'+i%20))] = float64(w)
			}
		}
		va, vb := vec(a), vec(b)
		for _, m := range []Measure{Cosine, Jaccard, GeneralizedJaccard, SiGMaSim} {
			ab := Similarity(m, va, vb)
			ba := Similarity(m, vb, va)
			if math.Abs(ab-ba) > 1e-12 || ab < 0 || ab > 1+1e-12 {
				return false
			}
		}
		if len(a) > 0 {
			for _, m := range []Measure{Cosine, Jaccard, GeneralizedJaccard, SiGMaSim} {
				if math.Abs(Similarity(m, va, va)-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBuildPairCorpusUnigram(t *testing.T) {
	w, d := testkb.Figure1()
	pc := BuildPairCorpus(seq, w, d, 1, TF)
	if len(pc.V1) != w.Len() || len(pc.V2) != d.Len() {
		t.Fatal("corpus sizes wrong")
	}
	chef := pc.V1[w.Lookup("w:JohnLakeA")]
	if chef.Terms["lake"] != 2 { // "John Lake A" + "J. Lake"
		t.Errorf(`TF("lake") = %v, want 2`, chef.Terms["lake"])
	}
}

func TestBuildPairCorpusBigram(t *testing.T) {
	w, d := testkb.Figure1()
	pc := BuildPairCorpus(seq, w, d, 2, TF)
	chef := pc.V1[w.Lookup("w:JohnLakeA")]
	if chef.Terms["john_lake"] != 1 {
		t.Errorf("bigram john_lake missing: %v", chef.Terms)
	}
	// Bigrams do not cross value boundaries.
	if _, ok := chef.Terms["a_j"]; ok {
		t.Error("bigram crossed value boundary")
	}
}

func TestTFIDFDownweightsFrequent(t *testing.T) {
	// Build two KBs where token "common" is everywhere and "rare" once.
	b1 := kb.NewBuilder("A")
	for i := 0; i < 10; i++ {
		id := b1.AddEntity(string(rune('a' + i)))
		b1.AddLiteral(id, "p", "common")
	}
	b1.AddLiteral(0, "p", "rare")
	k1 := b1.Build()
	b2 := kb.NewBuilder("B")
	x := b2.AddEntity("x")
	b2.AddLiteral(x, "p", "common rare")
	k2 := b2.Build()
	pc := BuildPairCorpus(seq, k1, k2, 1, TFIDF)
	v := pc.V1[0]
	if v.Terms["rare"] <= v.Terms["common"] {
		t.Errorf("idf: rare=%v common=%v, want rare > common", v.Terms["rare"], v.Terms["common"])
	}
}

func TestWeightingAndMeasureStrings(t *testing.T) {
	if TF.String() != "TF" || TFIDF.String() != "TF-IDF" {
		t.Error("weighting strings")
	}
	if Cosine.String() != "cosine" || SiGMaSim.String() != "sigma" ||
		Jaccard.String() != "jaccard" || GeneralizedJaccard.String() != "generalized-jaccard" {
		t.Error("measure strings")
	}
}

func TestCorpusParallelDeterminism(t *testing.T) {
	w, d := testkb.Figure1()
	ref := BuildPairCorpus(seq, w, d, 1, TFIDF)
	got := BuildPairCorpus(parallel.New(4), w, d, 1, TFIDF)
	for i := range ref.V1 {
		if math.Abs(ref.V1[i].L2-got.V1[i].L2) > 1e-12 {
			t.Fatalf("vector %d differs across worker counts", i)
		}
	}
}
