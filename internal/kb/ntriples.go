package kb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError describes a malformed statement encountered while loading a KB.
type ParseError struct {
	Line int
	Text string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("kb: line %d: %v: %q", e.Line, e.Err, e.Text)
}

func (e *ParseError) Unwrap() error { return e.Err }

var (
	errMissingSubject   = fmt.Errorf("missing subject")
	errMissingPredicate = fmt.Errorf("missing predicate")
	errMissingObject    = fmt.Errorf("missing object")
	errUnterminated     = fmt.Errorf("unterminated term")
)

// LoadNTriples reads a KB in N-Triples format:
//
//	<subject> <predicate> <object-uri> .
//	<subject> <predicate> "literal"^^<type> .
//
// Comments (#...) and blank lines are skipped. Malformed lines produce a
// *ParseError unless lenient is true, in which case they are counted and
// skipped. It returns the built KB and the number of skipped lines.
func LoadNTriples(name string, r io.Reader, lenient bool) (*KB, int, error) {
	b := NewBuilder(name)
	skipped, err := ReadNTriples(b, r, lenient)
	if err != nil {
		return nil, skipped, wrapLoadErr(name, err)
	}
	return b.Build(), skipped, nil
}

// wrapLoadErr attributes a loader error to the KB being loaded, so a caller
// reading several inputs can tell which one failed. Parse errors already
// carry line context and pass through unchanged.
func wrapLoadErr(name string, err error) error {
	var pe *ParseError
	if errors.As(err, &pe) {
		return err
	}
	return fmt.Errorf("kb: %s: %w", name, err)
}

// ReadNTriples scans N-Triples statements from r into any TripleSink — the
// loader core shared by the two-pass (LoadNTriples) and streaming
// (StreamNTriples) construction paths. It returns the number of skipped
// malformed lines (lenient mode) or the first *ParseError.
func ReadNTriples(sink TripleSink, r io.Reader, lenient bool) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	skipped := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		subj, pred, obj, objIsURI, err := parseNTLine(line)
		if err != nil {
			if lenient {
				skipped++
				continue
			}
			return skipped, &ParseError{Line: lineNo, Text: line, Err: err}
		}
		id := sink.AddEntity(subj)
		if objIsURI {
			sink.AddObject(id, pred, obj)
		} else {
			sink.AddLiteral(id, pred, obj)
		}
	}
	if err := sc.Err(); err != nil {
		return skipped, fmt.Errorf("reading n-triples: %w", err)
	}
	return skipped, nil
}

// parseNTLine parses one N-Triples statement into its three terms.
func parseNTLine(line string) (subj, pred, obj string, objIsURI bool, err error) {
	rest := line
	subj, rest, err = parseSubject(rest)
	if err != nil {
		return "", "", "", false, errMissingSubject
	}
	pred, rest, err = parseURI(rest)
	if err != nil {
		return "", "", "", false, errMissingPredicate
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return "", "", "", false, errMissingObject
	}
	switch rest[0] {
	case '<':
		obj, _, err = parseURI(rest)
		if err != nil {
			return "", "", "", false, errMissingObject
		}
		return subj, pred, obj, true, nil
	case '"':
		obj, err = parseLiteral(rest)
		if err != nil {
			return "", "", "", false, err
		}
		return subj, pred, obj, false, nil
	case '_': // blank node: treat its label as a URI-like identifier
		end := strings.IndexAny(rest, " \t")
		if end < 0 {
			end = len(rest)
		}
		return subj, pred, rest[:end], true, nil
	default:
		return "", "", "", false, errMissingObject
	}
}

// parseSubject consumes a leading subject term: either <uri> or a blank node
// label (_:x), whose label is used as the identifier.
func parseSubject(s string) (subj, rest string, err error) {
	s = strings.TrimLeft(s, " \t")
	if strings.HasPrefix(s, "_") {
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			return "", "", errUnterminated
		}
		return s[:end], s[end:], nil
	}
	return parseURI(s)
}

// parseURI consumes a leading <...> term and returns it without brackets.
func parseURI(s string) (uri, rest string, err error) {
	s = strings.TrimLeft(s, " \t")
	if !strings.HasPrefix(s, "<") {
		return "", "", errUnterminated
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", "", errUnterminated
	}
	return s[1:end], s[end+1:], nil
}

// parseLiteral consumes a leading "..." literal (with \-escapes) and strips
// any datatype (^^<...>) or language (@xx) suffix.
func parseLiteral(s string) (string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", errUnterminated
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				if i+6 <= len(s) {
					if n, err := strconv.ParseUint(s[i+2:i+6], 16, 32); err == nil {
						b.WriteRune(rune(n))
						i += 6
						continue
					}
				}
				return "", errUnterminated
			default:
				b.WriteByte(s[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			return b.String(), nil
		}
		b.WriteByte(c)
		i++
	}
	return "", errUnterminated
}

// LoadTSV reads a KB as tab-separated subject/predicate/object rows. Objects
// are treated as entity URIs when they appear elsewhere as subjects (resolved
// at Build time via AddObject) if uriObjects is true; otherwise every object
// is a literal. Returns the KB and the number of skipped malformed rows.
func LoadTSV(name string, r io.Reader, uriObjects bool) (*KB, int, error) {
	b := NewBuilder(name)
	skipped, err := ReadTSV(b, r, uriObjects)
	if err != nil {
		return nil, skipped, wrapLoadErr(name, err)
	}
	return b.Build(), skipped, nil
}

// ReadTSV scans tab-separated subject/predicate/object rows from r into any
// TripleSink, returning the number of skipped malformed rows.
func ReadTSV(sink TripleSink, r io.Reader, uriObjects bool) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	skipped := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
			skipped++
			continue
		}
		id := sink.AddEntity(parts[0])
		if uriObjects {
			sink.AddObject(id, parts[1], parts[2])
		} else {
			sink.AddLiteral(id, parts[1], parts[2])
		}
	}
	if err := sc.Err(); err != nil {
		return skipped, fmt.Errorf("reading tsv: %w", err)
	}
	return skipped, nil
}

// WriteNTriples serializes the KB in N-Triples format, one statement per
// attribute-value pair and relation. Round-tripping through LoadNTriples
// reproduces the same KB (tested property).
func WriteNTriples(w io.Writer, k *KB) error {
	bw := bufio.NewWriter(w)
	for id := 0; id < k.Len(); id++ {
		d := k.Entity(EntityID(id))
		for _, av := range d.Attrs {
			if _, err := fmt.Fprintf(bw, "<%s> <%s> %s .\n", d.URI, av.Attribute, quoteLiteral(av.Value)); err != nil {
				return err
			}
		}
		for _, rel := range d.Relations {
			if _, err := fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", d.URI, rel.Predicate, k.Entity(rel.Object).URI); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func quoteLiteral(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
