package kb

import (
	"errors"
	"reflect"
	"slices"
	"strings"
	"testing"
)

// streamFixture exercises every streaming edge: backward references
// (resolved eagerly), forward references (parked until Build), object URIs
// that never resolve (demoted to literals and tokenized), duplicate tokens
// across values, and a malformed line for the lenient counter.
const streamFixture = `# fixture
<e:a> <label> "Alpha One" .
<e:a> <linked> <e:b> .
<e:b> <label> "Beta two ALPHA" .
<e:b> <linked> <e:a> .
<e:b> <seeAlso> <http://nowhere.example/beta-page> .
<e:c> <label> "gamma one" .
<e:c> <label> "gamma again" .
malformed line
<e:c> <linked> <e:a> .
`

func loadBoth(t *testing.T, lenient bool) (*KB, *KB) {
	t.Helper()
	two, skipped2, err := LoadNTriples("two-pass", strings.NewReader(streamFixture), lenient)
	if err != nil {
		t.Fatal(err)
	}
	one, skipped1, err := StreamNTriples("streaming", strings.NewReader(streamFixture), lenient)
	if err != nil {
		t.Fatal(err)
	}
	if skipped1 != skipped2 || skipped1 != 1 {
		t.Fatalf("skipped = %d (stream) vs %d (two-pass), want 1", skipped1, skipped2)
	}
	return two, one
}

// The streaming path must produce a KB semantically identical to the
// two-pass Builder: same entities, token sets, relation multisets, triple
// counts. (Statement ORDER of Build-time resolutions may differ — that is
// the documented streaming trade — so multiset comparisons are used where
// order is not guaranteed.)
func TestStreamBuilderMatchesBuilder(t *testing.T) {
	two, one := loadBoth(t, true)
	if one.Len() != two.Len() || one.Triples() != two.Triples() {
		t.Fatalf("stream KB = %v, two-pass KB = %v", one, two)
	}
	for id := 0; id < two.Len(); id++ {
		dt, ds := two.Entity(EntityID(id)), one.Entity(EntityID(id))
		if dt.URI != ds.URI {
			t.Fatalf("entity %d: URI %q vs %q", id, dt.URI, ds.URI)
		}
		if got, want := ds.Tokens(), dt.Tokens(); !reflect.DeepEqual(got, want) {
			t.Errorf("entity %s: tokens %v, want %v", dt.URI, got, want)
		}
		gotRel, wantRel := slices.Clone(ds.Relations), slices.Clone(dt.Relations)
		sortRels := func(rs []Relation) {
			slices.SortFunc(rs, func(a, b Relation) int {
				if a.Predicate != b.Predicate {
					return strings.Compare(a.Predicate, b.Predicate)
				}
				return int(a.Object - b.Object)
			})
		}
		sortRels(gotRel)
		sortRels(wantRel)
		if !reflect.DeepEqual(gotRel, wantRel) {
			t.Errorf("entity %s: relations %v, want %v", dt.URI, gotRel, wantRel)
		}
		gotAttrs, wantAttrs := slices.Clone(ds.Attrs), slices.Clone(dt.Attrs)
		sortAttrs := func(as []AttributeValue) {
			slices.SortFunc(as, func(a, b AttributeValue) int {
				if a.Attribute != b.Attribute {
					return strings.Compare(a.Attribute, b.Attribute)
				}
				return strings.Compare(a.Value, b.Value)
			})
		}
		sortAttrs(gotAttrs)
		sortAttrs(wantAttrs)
		if !reflect.DeepEqual(gotAttrs, wantAttrs) {
			t.Errorf("entity %s: attrs %v, want %v", dt.URI, gotAttrs, wantAttrs)
		}
	}
}

// Token IDs must come out ordered by token string — the Description
// invariant every accumulation stage depends on.
func TestStreamBuilderTokenOrderInvariant(t *testing.T) {
	_, one := loadBoth(t, true)
	for id := 0; id < one.Len(); id++ {
		d := one.Entity(EntityID(id))
		toks := d.Tokens()
		if !slices.IsSorted(toks) {
			t.Errorf("entity %s: tokens not string-sorted: %v", d.URI, toks)
		}
		if len(slices.Compact(slices.Clone(d.TokenIDs()))) != len(d.TokenIDs()) {
			t.Errorf("entity %s: duplicate token IDs: %v", d.URI, d.TokenIDs())
		}
	}
}

// Forward references must be parked, not dropped: before Build the deferred
// count reflects unresolved URIs, after Build they are relations.
func TestStreamBuilderDeferredResolution(t *testing.T) {
	b := NewStreamBuilder("fw")
	a := b.AddEntity("e:a")
	b.AddObject(a, "linked", "e:later") // forward reference
	b.AddObject(a, "seeAlso", "e:never")
	if b.Deferred() != 2 {
		t.Fatalf("deferred = %d, want 2", b.Deferred())
	}
	b.AddEntity("e:later")
	k := b.Build()
	d := k.Entity(a)
	if len(d.Relations) != 1 || d.Relations[0].Predicate != "linked" {
		t.Errorf("forward reference not resolved: %+v", d.Relations)
	}
	if len(d.Attrs) != 1 || d.Attrs[0].Attribute != "seeAlso" {
		t.Errorf("unresolved URI not demoted to literal: %+v", d.Attrs)
	}
	if !d.HasToken("never") {
		t.Error("demoted literal was not tokenized")
	}
	if k.Triples() != 2 {
		t.Errorf("triples = %d, want 2", k.Triples())
	}
}

// Two stream-built KBs over one shared Interner live in one token-ID space,
// like NewBuilderWithInterner.
func TestStreamBuilderSharedInterner(t *testing.T) {
	dict := NewInterner()
	b1 := NewStreamBuilderWithInterner("s1", dict)
	e1 := b1.AddEntity("a")
	b1.AddLiteral(e1, "label", "shared token")
	b2 := NewStreamBuilderWithInterner("s2", dict)
	e2 := b2.AddEntity("b")
	b2.AddLiteral(e2, "label", "token shared")
	k1, k2 := b1.Build(), b2.Build()
	if k1.TokenDict() != k2.TokenDict() {
		t.Fatal("dictionaries not shared")
	}
	if !reflect.DeepEqual(k1.Entity(0).TokenIDs(), k2.Entity(0).TokenIDs()) {
		t.Errorf("shared-interner token IDs differ: %v vs %v",
			k1.Entity(0).TokenIDs(), k2.Entity(0).TokenIDs())
	}
}

func TestStreamTSV(t *testing.T) {
	const tsv = "a\tp\tb\nb\tp\tv\nbad row\n"
	two, s2, err := LoadTSV("two", strings.NewReader(tsv), true)
	if err != nil {
		t.Fatal(err)
	}
	one, s1, err := StreamTSV("one", strings.NewReader(tsv), true)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || one.Len() != two.Len() || one.Triples() != two.Triples() {
		t.Errorf("StreamTSV (%v, skipped %d) != LoadTSV (%v, skipped %d)", one, s1, two, s2)
	}
}

// Strict mode surfaces the same parse error through the streaming reader.
func TestStreamNTriplesStrict(t *testing.T) {
	_, _, err := StreamNTriples("x", strings.NewReader("not a triple\n"), false)
	if err == nil {
		t.Fatal("strict streaming load accepted a malformed line")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T, want *ParseError", err)
	}
}
