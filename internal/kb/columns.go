package kb

import "slices"

// columns is the KB's columnar schema-axis substrate, built once at Build
// time: every entity's relations and attribute-value statements stored as
// flat, per-entity-span CSR arrays of dense schema IDs. Spans are ID-sorted
// — relations by (PredID, Object), attribute statements by (AttrID,
// ValueID) — so distinct-counting inside a span is an adjacency check and
// per-predicate/per-attribute grouping is a linear walk, no maps.
//
// Description.Relations and Description.Attrs keep the insertion-ordered
// string views for compatibility; the statistics stage reads only these
// columns.
type columns struct {
	// relOff[i] .. relOff[i+1] is entity i's span in relPred/relObj.
	relOff  []int32
	relPred []PredID
	relObj  []EntityID
	// attrOff[i] .. attrOff[i+1] is entity i's span in attrName/attrVal:
	// one row per attribute-value STATEMENT (duplicates included, since
	// instance counts are per statement), with the value stored as the
	// interned NormalizeName form.
	attrOff  []int32
	attrName []AttrID
	attrVal  []ValueID
}

// buildColumns interns every predicate, attribute name and normalized value
// of the entities into sch and lays the statements out in sorted per-entity
// spans. Each span is sorted by packing (id, payload) into one uint64 key —
// schema IDs and entity/value IDs both fit 32 bits — so co-sorting the two
// parallel columns is a single integer sort.
func buildColumns(entities []Description, sch *Schema) columns {
	nRel, nAttr := 0, 0
	for i := range entities {
		nRel += len(entities[i].Relations)
		nAttr += len(entities[i].Attrs)
	}
	c := columns{
		relOff:   make([]int32, len(entities)+1),
		relPred:  make([]PredID, 0, nRel),
		relObj:   make([]EntityID, 0, nRel),
		attrOff:  make([]int32, len(entities)+1),
		attrName: make([]AttrID, 0, nAttr),
		attrVal:  make([]ValueID, 0, nAttr),
	}
	var scratch []uint64
	for i := range entities {
		d := &entities[i]
		c.relOff[i] = int32(len(c.relPred))
		scratch = scratch[:0]
		for _, r := range d.Relations {
			scratch = append(scratch, uint64(sch.InternPred(r.Predicate))<<32|uint64(uint32(r.Object)))
		}
		slices.Sort(scratch)
		for _, key := range scratch {
			c.relPred = append(c.relPred, PredID(key>>32))
			c.relObj = append(c.relObj, EntityID(int32(uint32(key))))
		}
		c.attrOff[i] = int32(len(c.attrName))
		scratch = scratch[:0]
		for _, av := range d.Attrs {
			a := sch.InternAttr(av.Attribute)
			v := sch.InternValue(NormalizeName(av.Value))
			scratch = append(scratch, uint64(a)<<32|uint64(v))
		}
		slices.Sort(scratch)
		for _, key := range scratch {
			c.attrName = append(c.attrName, AttrID(key>>32))
			c.attrVal = append(c.attrVal, ValueID(uint32(key)))
		}
	}
	c.relOff[len(entities)] = int32(len(c.relPred))
	c.attrOff[len(entities)] = int32(len(c.attrName))
	return c
}

// Schema returns the KB's schema dictionaries (predicates, attribute names,
// normalized values). KBs built with NewBuilderWithDicts and one shared
// Schema return the same dictionary set.
func (k *KB) Schema() *Schema { return k.schema }

// RelationColumns returns entity id's relations in columnar form: parallel
// slices of predicate IDs and objects, sorted by (PredID, Object). The
// slices alias the KB's flat arrays; callers must not modify them.
func (k *KB) RelationColumns(id EntityID) ([]PredID, []EntityID) {
	lo, hi := k.cols.relOff[id], k.cols.relOff[id+1]
	return k.cols.relPred[lo:hi], k.cols.relObj[lo:hi]
}

// AttributeColumns returns entity id's attribute-value statements in
// columnar form: parallel slices of attribute IDs and normalized-value IDs
// (one row per statement, duplicates included), sorted by (AttrID, ValueID).
// The slices alias the KB's flat arrays; callers must not modify them.
func (k *KB) AttributeColumns(id EntityID) ([]AttrID, []ValueID) {
	lo, hi := k.cols.attrOff[id], k.cols.attrOff[id+1]
	return k.cols.attrName[lo:hi], k.cols.attrVal[lo:hi]
}

// Rels returns the total number of relation statements in the KB (the size
// of the relation columns).
func (k *KB) Rels() int { return len(k.cols.relPred) }

// AttrStatements returns the total number of attribute-value statements in
// the KB (the size of the attribute columns).
func (k *KB) AttrStatements() int { return len(k.cols.attrName) }
