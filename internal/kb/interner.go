package kb

import "sync"

// TokenID is a dense identifier for a distinct token inside an Interner.
// IDs are assigned in first-intern order (not lexicographic); every stage
// that depends on deterministic ordering sorts by the token string, never by
// the numeric ID.
type TokenID uint32

// Interner is the shared token dictionary of the columnar substrate: it maps
// each distinct token string to a dense TokenID exactly once, so every later
// pipeline stage (Entity Frequency statistics, token blocking, valueSim
// accumulation) operates on integer IDs instead of re-hashing strings.
//
// One Interner can back several KBs: build both sides of a clean-clean ER
// pair with NewBuilderWithInterner and the same Interner, and the blocking
// TokenIndex skips its token-space translation entirely. Interning is
// guarded by a mutex so two Builders may Build concurrently; read accessors
// (TokenString) are lock-free and must not race with interning — in the
// pipeline all interning happens at KB build time, strictly before any
// resolution stage reads the dictionary.
type Interner struct {
	mu   sync.Mutex
	ids  map[string]TokenID
	strs []string
	// frozen, when set, backs a read-only dictionary loaded from a snapshot:
	// reads route to the flat table and interning panics (see NewFrozenInterner).
	frozen *FrozenStrings
}

// NewInterner returns an empty token dictionary.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]TokenID)}
}

// Len returns the number of distinct tokens interned so far.
func (in *Interner) Len() int {
	if in.frozen != nil {
		return in.frozen.Len()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.strs)
}

// Intern returns the ID of tok, assigning the next dense ID on first sight.
func (in *Interner) Intern(tok string) TokenID {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.intern(tok)
}

func (in *Interner) intern(tok string) TokenID {
	if in.frozen != nil {
		panic("kb: Intern on a frozen (snapshot-backed) dictionary")
	}
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := TokenID(len(in.strs))
	in.ids[tok] = id
	in.strs = append(in.strs, tok)
	return id
}

// InternAll interns a batch of tokens under one lock acquisition and returns
// their IDs in input order. Builders call it once per description.
func (in *Interner) InternAll(toks []string) []TokenID {
	if len(toks) == 0 {
		return nil
	}
	out := make([]TokenID, len(toks))
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, t := range toks {
		out[i] = in.intern(t)
	}
	return out
}

// Lookup returns the ID of tok if it has been interned.
func (in *Interner) Lookup(tok string) (TokenID, bool) {
	if in.frozen != nil {
		id, ok := in.frozen.Lookup(tok)
		return TokenID(id), ok
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	id, ok := in.ids[tok]
	return id, ok
}

// TokenString returns the string of an interned ID. It is lock-free (IDs are
// never reassigned); callers must not race it with interning.
func (in *Interner) TokenString(id TokenID) string {
	if in.frozen != nil {
		return in.frozen.At(int(id))
	}
	return in.strs[id]
}
