package kb

import "sync"

// PredID is a dense identifier for a distinct relation predicate inside a
// Schema. Like TokenID, IDs are assigned in first-intern order; stages that
// need a deterministic order sort by the predicate string or by an explicit
// importance rank, never by the numeric ID.
type PredID uint32

// AttrID is a dense identifier for a distinct literal attribute name inside
// a Schema.
type AttrID uint32

// ValueID is a dense identifier for a distinct NORMALIZED literal value
// (NormalizeName) inside a Schema. Interning the normalized form at build
// time is what lets the attribute statistics count distinct values and the
// name(e) function skip per-call normalization entirely.
type ValueID uint32

// symtab is the shared string-interning core behind the schema dictionaries:
// a mutex-guarded map plus an append-only string table, exactly the Interner
// discipline (IDs never reassigned, reads lock-free once interning is done).
type symtab struct {
	mu   sync.Mutex
	ids  map[string]uint32
	strs []string
	// frozen, when set, backs a read-only dictionary loaded from a snapshot:
	// reads route to the flat table and interning panics (see NewFrozenSchema).
	frozen *FrozenStrings
}

func newSymtab() symtab {
	return symtab{ids: make(map[string]uint32)}
}

func (t *symtab) intern(s string) uint32 {
	if t.frozen != nil {
		panic("kb: intern into a frozen (snapshot-backed) schema dictionary")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

func (t *symtab) lookup(s string) (uint32, bool) {
	if t.frozen != nil {
		return t.frozen.Lookup(s)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.ids[s]
	return id, ok
}

func (t *symtab) len() int {
	if t.frozen != nil {
		return t.frozen.Len()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.strs)
}

// str is lock-free: IDs are never reassigned. Callers must not race it with
// interning — in the pipeline all interning happens at KB build time,
// strictly before any resolution stage reads the dictionary.
func (t *symtab) str(id uint32) string {
	if t.frozen != nil {
		return t.frozen.At(int(id))
	}
	return t.strs[id]
}

// Schema is the schema-axis counterpart of the token Interner: the shared
// dictionaries of relation predicates, literal attribute names, and
// normalized literal values. Web KBs have a tiny schema vocabulary next to
// their token vocabulary, so every statistics pass that used to group on
// predicate/attribute STRINGS can instead count into flat arrays indexed by
// these dense IDs.
//
// One Schema can back several KBs: build both sides of a clean-clean ER pair
// with NewBuilderWithDicts and the same Schema, and the two KBs share one
// predicate/attribute ID space (mirroring the shared token dictionary).
type Schema struct {
	preds symtab
	attrs symtab
	vals  symtab
}

// NewSchema returns an empty schema dictionary set.
func NewSchema() *Schema {
	return &Schema{preds: newSymtab(), attrs: newSymtab(), vals: newSymtab()}
}

// Preds returns the number of distinct relation predicates interned so far.
func (s *Schema) Preds() int { return s.preds.len() }

// Attrs returns the number of distinct attribute names interned so far.
func (s *Schema) Attrs() int { return s.attrs.len() }

// Values returns the number of distinct normalized values interned so far.
func (s *Schema) Values() int { return s.vals.len() }

// InternPred returns the dense ID of a relation predicate, assigning the
// next ID on first sight.
func (s *Schema) InternPred(p string) PredID { return PredID(s.preds.intern(p)) }

// InternAttr returns the dense ID of an attribute name.
func (s *Schema) InternAttr(a string) AttrID { return AttrID(s.attrs.intern(a)) }

// InternValue returns the dense ID of a NORMALIZED literal value. Callers
// pass NormalizeName output; the raw value strings are never interned.
func (s *Schema) InternValue(v string) ValueID { return ValueID(s.vals.intern(v)) }

// LookupPred returns the ID of predicate p if it has been interned.
func (s *Schema) LookupPred(p string) (PredID, bool) {
	id, ok := s.preds.lookup(p)
	return PredID(id), ok
}

// LookupAttr returns the ID of attribute name a if it has been interned.
func (s *Schema) LookupAttr(a string) (AttrID, bool) {
	id, ok := s.attrs.lookup(a)
	return AttrID(id), ok
}

// LookupValue returns the ID of a NORMALIZED literal value if it has been
// interned. Callers pass NormalizeName output, like InternValue.
func (s *Schema) LookupValue(v string) (ValueID, bool) {
	id, ok := s.vals.lookup(v)
	return ValueID(id), ok
}

// Pred returns the string of an interned predicate ID (lock-free; see symtab.str).
func (s *Schema) Pred(id PredID) string { return s.preds.str(uint32(id)) }

// Attr returns the string of an interned attribute ID.
func (s *Schema) Attr(id AttrID) string { return s.attrs.str(uint32(id)) }

// Value returns the normalized string of an interned value ID.
func (s *Schema) Value(id ValueID) string { return s.vals.str(uint32(id)) }
