package kb

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokenizerBasic(t *testing.T) {
	tok := NewTokenizer()
	cases := []struct {
		in   string
		want []string
	}{
		{"The Fat Duck", []string{"the", "fat", "duck"}},
		{"John Lake A", []string{"john", "lake", "a"}},
		{"", nil},
		{"---", nil},
		{"rock'n'roll", []string{"rock", "n", "roll"}},
		{"2019-03-26", []string{"2019", "03", "26"}},
		{"Μουσική τζαζ", []string{"μουσική", "τζαζ"}}, // unicode letters survive
		{"a,b;c", []string{"a", "b", "c"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
	}
	for _, c := range cases {
		got := tok.Tokens(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSetOfDedupes(t *testing.T) {
	tok := NewTokenizer()
	got := tok.TokenSetOf("Bray Berkshire", "bray", "BERKSHIRE!")
	want := []string{"berkshire", "bray"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenSetOf = %v, want %v", got, want)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"J. Lake", "j lake"},
		{"  The   Fat--Duck ", "the fat duck"},
		{"BRAY", "bray"},
		{"", ""},
		{"!!!", ""},
		{"a", "a"},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: tokens are always lowercase, non-empty, and contain only
// letters/digits; TokenSet output is sorted and duplicate-free.
func TestTokenizerProperties(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		toks := tok.Tokens(s)
		for _, x := range toks {
			if x == "" {
				return false
			}
			for _, r := range x {
				switch {
				case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				default:
					// non-ASCII letters allowed, but must be lowercase-stable
					if string(r) != "" && x != "" {
						continue
					}
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenSetSortedProperty(t *testing.T) {
	tok := NewTokenizer()
	f := func(vals []string) bool {
		set := tok.TokenSetOf(vals...)
		if !sort.StringsAreSorted(set) {
			return false
		}
		for i := 1; i < len(set); i++ {
			if set[i] == set[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeName is idempotent.
func TestNormalizeNameIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeName(s)
		return NormalizeName(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
