package kb

import (
	"slices"
	"testing"
)

func TestSchemaInternsOnce(t *testing.T) {
	s := NewSchema()
	p1 := s.InternPred("knows")
	p2 := s.InternPred("cites")
	if p1 == p2 {
		t.Fatal("distinct predicates got the same ID")
	}
	if got := s.InternPred("knows"); got != p1 {
		t.Errorf("re-intern returned %d, want %d", got, p1)
	}
	if s.Pred(p2) != "cites" {
		t.Errorf("Pred(%d) = %q", p2, s.Pred(p2))
	}
	if id, ok := s.LookupPred("knows"); !ok || id != p1 {
		t.Errorf("LookupPred = %d,%v", id, ok)
	}
	if _, ok := s.LookupAttr("never-interned"); ok {
		t.Error("LookupAttr found an attribute that was never interned")
	}
	if s.Preds() != 2 || s.Attrs() != 0 {
		t.Errorf("counts = %d preds, %d attrs", s.Preds(), s.Attrs())
	}
}

// The columnar spans must hold every statement, ID-sorted, with values in
// normalized form.
func TestColumnarSpans(t *testing.T) {
	b := NewBuilder("T")
	a := b.AddEntity("a")
	bb := b.AddEntity("b")
	c := b.AddEntity("c")
	b.AddObject(a, "zeta", "c")
	b.AddObject(a, "alpha", "b")
	b.AddObject(a, "zeta", "b")
	b.AddObject(a, "zeta", "c") // duplicate statement, kept in the columns
	b.AddLiteral(a, "name", "The  Fat-Duck!")
	b.AddLiteral(a, "name", "the fat duck") // same normalized value
	b.AddLiteral(a, "addr", "Bray")
	k := b.Build()
	sch := k.Schema()

	preds, objs := k.RelationColumns(a)
	if len(preds) != 4 || len(objs) != 4 {
		t.Fatalf("relation span %v %v, want 4 rows", preds, objs)
	}
	for j := 1; j < len(preds); j++ {
		if preds[j] < preds[j-1] || (preds[j] == preds[j-1] && objs[j] < objs[j-1]) {
			t.Fatalf("relation span not (PredID, Object)-sorted: %v %v", preds, objs)
		}
	}
	attrs, vals := k.AttributeColumns(a)
	if len(attrs) != 3 {
		t.Fatalf("attribute span %v, want 3 rows", attrs)
	}
	// Both "name" statements normalize to the same ValueID.
	nameID, _ := sch.LookupAttr("name")
	var nameVals []ValueID
	for j, at := range attrs {
		if at == nameID {
			nameVals = append(nameVals, vals[j])
		}
	}
	if len(nameVals) != 2 || nameVals[0] != nameVals[1] {
		t.Errorf("normalized name values = %v, want two equal IDs", nameVals)
	}
	if got := sch.Value(nameVals[0]); got != "the fat duck" {
		t.Errorf("normalized value = %q", got)
	}
	// Entities without statements get empty spans.
	if p, o := k.RelationColumns(bb); len(p) != 0 || len(o) != 0 {
		t.Errorf("entity b relation span = %v %v, want empty", p, o)
	}
	if at, v := k.AttributeColumns(c); len(at) != 0 || len(v) != 0 {
		t.Errorf("entity c attribute span = %v %v, want empty", at, v)
	}
	// Relations() derives distinct predicates from the span without a map.
	rels := k.Relations(a)
	want := []string{"zeta", "alpha"} // PredID order = first global appearance
	slices.Sort(rels)
	slices.Sort(want)
	if !slices.Equal(rels, want) {
		t.Errorf("Relations = %v, want %v", rels, want)
	}
	// Neighbors() is the distinct, ID-sorted object set.
	if got := k.Neighbors(a); !slices.Equal(got, []EntityID{bb, c}) {
		t.Errorf("Neighbors = %v, want [%d %d]", got, bb, c)
	}
}

// Two builders over one shared Schema put both KBs in one schema-ID space,
// mirroring the shared token Interner.
func TestSharedSchemaAcrossPair(t *testing.T) {
	sch := NewSchema()
	b1 := NewBuilderWithDicts("A", nil, sch)
	b2 := NewBuilderWithDicts("B", nil, sch)
	x := b1.AddEntity("x")
	b1.AddEntity("y")
	b1.AddObject(x, "knows", "y")
	b1.AddLiteral(x, "label", "X")
	u := b2.AddEntity("u")
	b2.AddEntity("v")
	b2.AddObject(u, "knows", "v")
	b2.AddLiteral(u, "label", "X")
	k1, k2 := b1.Build(), b2.Build()
	if k1.Schema() != k2.Schema() {
		t.Fatal("KBs do not share the schema")
	}
	p1, _ := k1.RelationColumns(x)
	p2, _ := k2.RelationColumns(u)
	if p1[0] != p2[0] {
		t.Errorf("shared predicate has IDs %d vs %d", p1[0], p2[0])
	}
	a1, v1 := k1.AttributeColumns(x)
	a2, v2 := k2.AttributeColumns(u)
	if a1[0] != a2[0] || v1[0] != v2[0] {
		t.Errorf("shared attribute/value IDs differ: %v/%v vs %v/%v", a1, v1, a2, v2)
	}
	// Per-KB distinct counts stay per-KB even with a shared dictionary.
	if k1.Attributes() != 1 || k1.RelationNames() != 1 {
		t.Errorf("k1 distinct counts = %d attrs, %d preds", k1.Attributes(), k1.RelationNames())
	}
}

// The streaming builder must produce the same columns as the two-pass one.
func TestStreamBuilderColumnsMatchBuilder(t *testing.T) {
	feed := func(b TripleSink) {
		a := b.AddEntity("a")
		b.AddObject(a, "linked", "b") // forward reference
		b.AddLiteral(a, "name", "Alpha Beta")
		bb := b.AddEntity("b")
		b.AddLiteral(bb, "name", "Gamma")
		b.AddObject(bb, "linked", "a")
		b.AddObject(a, "ref", "external") // never resolves → literal
	}
	tb := NewBuilder("T")
	feed(tb)
	sb := NewStreamBuilder("T")
	feed(sb)
	k1, k2 := tb.Build(), sb.Build()
	for i := 0; i < k1.Len(); i++ {
		id := EntityID(i)
		p1, o1 := k1.RelationColumns(id)
		p2, o2 := k2.RelationColumns(id)
		if !slices.Equal(k1ToStrings(k1, p1), k1ToStrings(k2, p2)) || !slices.Equal(o1, o2) {
			t.Errorf("entity %d: relation columns differ", i)
		}
		a1, v1 := k1.AttributeColumns(id)
		a2, v2 := k2.AttributeColumns(id)
		if len(a1) != len(a2) {
			t.Fatalf("entity %d: attribute span sizes differ", i)
		}
		for j := range a1 {
			if k1.Schema().Attr(a1[j]) != k2.Schema().Attr(a2[j]) ||
				k1.Schema().Value(v1[j]) != k2.Schema().Value(v2[j]) {
				t.Errorf("entity %d row %d: attribute columns differ", i, j)
			}
		}
	}
}

func k1ToStrings(k *KB, preds []PredID) []string {
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = k.Schema().Pred(p)
	}
	return out
}
