package kb

import (
	"cmp"
	"io"
	"slices"
)

// TripleSink consumes raw (subject, predicate, object) statements. Both
// Builder and StreamBuilder implement it, so every loader (N-Triples, TSV)
// can feed either the two-pass or the streaming construction path.
type TripleSink interface {
	// AddEntity registers (or finds) the entity with the given URI.
	AddEntity(uri string) EntityID
	// AddLiteral attaches a literal attribute-value pair.
	AddLiteral(id EntityID, attribute, value string)
	// AddObject attaches a URI-position object that becomes a relation if
	// the URI names a described entity.
	AddObject(id EntityID, predicate, objectURI string)
}

var (
	_ TripleSink = (*Builder)(nil)
	_ TripleSink = (*StreamBuilder)(nil)
)

// StreamBuilder is the memory-bounded construction path for large KB loads:
// where Builder queues EVERY raw statement until Build (so the whole input
// is resident twice — once as pending triples, once as the growing KB),
// StreamBuilder processes statements as they arrive. Literal values are
// tokenized and interned immediately, attributes and resolvable relations
// land in their entity directly, and only object statements whose URI is not
// yet known (forward references) are parked until Build. For typical Web KB
// dumps that makes the extra working set proportional to the forward
// references instead of the file size.
//
// Semantics match Builder with one documented difference: statements
// resolved at Build time (forward-referenced relations, and object URIs that
// never resolve and demote to literals) are appended after the entity's
// in-order statements instead of at their original statement position.
// Every pipeline statistic is insensitive to that order — token sets are
// sorted, neighbor/relation aggregates are set-valued, and name blocks key
// on values — so resolution output is unchanged (tested property).
type StreamBuilder struct {
	name     string
	entities []Description
	byURI    map[string]EntityID
	dict     *Interner
	schema   *Schema
	tok      *Tokenizer
	// toks accumulates the interned token IDs of each entity's literal
	// values, duplicates included; Build deduplicates once per entity.
	toks [][]TokenID
	// deferred holds only the object statements whose URI was unknown when
	// they arrived — the bounded carry-over of the streaming path.
	deferred []rawTriple
	triples  int
}

// NewStreamBuilder returns a StreamBuilder with its own token dictionary.
func NewStreamBuilder(name string) *StreamBuilder {
	return NewStreamBuilderWithInterner(name, NewInterner())
}

// NewStreamBuilderWithInterner returns a StreamBuilder interning into the
// given shared dictionary, the same pairing contract as
// NewBuilderWithInterner.
func NewStreamBuilderWithInterner(name string, dict *Interner) *StreamBuilder {
	return NewStreamBuilderWithDicts(name, dict, nil)
}

// NewStreamBuilderWithDicts returns a StreamBuilder interning tokens into
// dict and schema terms into schema, the streaming counterpart of
// NewBuilderWithDicts. A nil dict or schema gets a fresh private dictionary.
func NewStreamBuilderWithDicts(name string, dict *Interner, schema *Schema) *StreamBuilder {
	if dict == nil {
		dict = NewInterner()
	}
	if schema == nil {
		schema = NewSchema()
	}
	return &StreamBuilder{
		name:   name,
		byURI:  make(map[string]EntityID),
		dict:   dict,
		schema: schema,
		tok:    NewTokenizer(),
	}
}

// AddEntity registers (or finds) the entity with the given URI.
func (b *StreamBuilder) AddEntity(uri string) EntityID {
	if id, ok := b.byURI[uri]; ok {
		return id
	}
	id := EntityID(len(b.entities))
	b.entities = append(b.entities, Description{URI: uri})
	b.byURI[uri] = id
	b.toks = append(b.toks, nil)
	return id
}

// AddLiteral attaches a literal attribute-value pair, tokenizing and
// interning the value immediately.
func (b *StreamBuilder) AddLiteral(id EntityID, attribute, value string) {
	b.entities[id].Attrs = append(b.entities[id].Attrs, AttributeValue{Attribute: attribute, Value: value})
	b.internValue(id, value)
	b.triples++
}

// AddObject attaches an object (URI-position) value. If the URI already
// names a described entity the relation is recorded immediately; otherwise
// the statement is parked until Build, when the full URI table exists.
func (b *StreamBuilder) AddObject(id EntityID, predicate, objectURI string) {
	if obj, ok := b.byURI[objectURI]; ok {
		b.entities[id].Relations = append(b.entities[id].Relations, Relation{Predicate: predicate, Object: obj})
		b.triples++
		return
	}
	b.deferred = append(b.deferred, rawTriple{id, predicate, objectURI, true})
}

// Len returns the number of entities registered so far.
func (b *StreamBuilder) Len() int { return len(b.entities) }

// Deferred returns the number of forward-referenced object statements
// currently parked — the streaming path's only input-proportional carry-over.
func (b *StreamBuilder) Deferred() int { return len(b.deferred) }

// internValue folds one literal value's tokens into the entity's running
// token-ID list.
func (b *StreamBuilder) internValue(id EntityID, value string) {
	for _, t := range b.tok.Tokens(value) {
		b.toks[id] = append(b.toks[id], b.dict.Intern(t))
	}
}

// Build resolves the parked forward references, finalizes each entity's
// deduplicated string-ordered token list, and returns the immutable KB. The
// StreamBuilder must not be used afterwards.
func (b *StreamBuilder) Build() *KB {
	for _, t := range b.deferred {
		d := &b.entities[t.subject]
		if obj, ok := b.byURI[t.object]; ok {
			d.Relations = append(d.Relations, Relation{Predicate: t.predicate, Object: obj})
		} else {
			// Never resolved: the URI is a plain literal value after all.
			d.Attrs = append(d.Attrs, AttributeValue{Attribute: t.predicate, Value: t.object})
			b.internValue(t.subject, t.object)
		}
		b.triples++
	}
	for i := range b.entities {
		ids := b.toks[i]
		// Deduplicate and order by token STRING — the invariant Description
		// documents and Builder establishes via the sorted TokenSet.
		slices.SortFunc(ids, func(a, c TokenID) int {
			return cmp.Compare(b.dict.TokenString(a), b.dict.TokenString(c))
		})
		b.entities[i].tokens = slices.Compact(ids)
		b.entities[i].dict = b.dict
	}
	kb := &KB{
		name: b.name, size: len(b.entities), entities: b.entities, byURI: b.byURI,
		dict: b.dict, schema: b.schema,
		cols:    buildColumns(b.entities, b.schema),
		triples: b.triples,
	}
	b.entities = nil
	b.byURI = nil
	b.toks = nil
	b.deferred = nil
	return kb
}

// StreamNTriples reads a KB in N-Triples format through the streaming
// construction path: tokens are interned incrementally statement by
// statement instead of after a whole-file pass. Semantics match LoadNTriples
// (see StreamBuilder for the ordering caveat on forward references).
func StreamNTriples(name string, r io.Reader, lenient bool) (*KB, int, error) {
	b := NewStreamBuilder(name)
	skipped, err := ReadNTriples(b, r, lenient)
	if err != nil {
		return nil, skipped, wrapLoadErr(name, err)
	}
	return b.Build(), skipped, nil
}

// StreamTSV is LoadTSV through the streaming construction path.
func StreamTSV(name string, r io.Reader, uriObjects bool) (*KB, int, error) {
	b := NewStreamBuilder(name)
	skipped, err := ReadTSV(b, r, uriObjects)
	if err != nil {
		return nil, skipped, wrapLoadErr(name, err)
	}
	return b.Build(), skipped, nil
}
