package kb

import (
	"slices"
	"strings"
	"unicode"
)

// Tokenizer turns literal values into the schema-agnostic bag of tokens used
// throughout MinoanER (§2.1): single words in attribute values, lowercased,
// split on any non-alphanumeric rune. Numbers and dates are handled the same
// way as strings (paper footnote 4).
type Tokenizer struct {
	// minLength drops tokens shorter than this many runes; the paper's token
	// blocking keeps all tokens, so the default is 1.
	minLength int
}

// NewTokenizer returns a Tokenizer with the paper's defaults.
func NewTokenizer() *Tokenizer { return &Tokenizer{minLength: 1} }

// Tokens splits a single literal value into lowercase tokens.
func (t *Tokenizer) Tokens(value string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(value)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tok := lower[start:i]
			if len([]rune(tok)) >= t.minLength {
				out = append(out, tok)
			}
			start = -1
		}
	}
	if start >= 0 {
		tok := lower[start:]
		if len([]rune(tok)) >= t.minLength {
			out = append(out, tok)
		}
	}
	return out
}

// TokenSet returns the sorted distinct tokens over all literal values of a
// description. URI-valued attributes that failed to resolve into relations
// are tokenized too: their fragments often carry name evidence in web KBs.
func (t *Tokenizer) TokenSet(d *Description) []string {
	set := make(map[string]struct{})
	for _, av := range d.Attrs {
		for _, tok := range t.Tokens(av.Value) {
			set[tok] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	slices.Sort(out)
	return out
}

// TokenSetOf is a convenience for tokenizing a list of raw values (used by
// name blocking on attribute values).
func (t *Tokenizer) TokenSetOf(values ...string) []string {
	set := make(map[string]struct{})
	for _, v := range values {
		for _, tok := range t.Tokens(v) {
			set[tok] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	slices.Sort(out)
	return out
}

// NormalizeName canonicalizes a literal used as an entity name for name
// blocking (§3.1): lowercase, collapse internal whitespace and punctuation to
// single spaces, trim. Two entities share a name block iff their normalized
// names are equal.
func NormalizeName(value string) string {
	var b strings.Builder
	b.Grow(len(value))
	lastSpace := true
	for _, r := range strings.ToLower(value) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			lastSpace = false
			continue
		}
		if !lastSpace {
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}
