package kb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestInternerAssignsDenseStableIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatalf("distinct tokens share ID %d", a)
	}
	if got := in.Intern("alpha"); got != a {
		t.Errorf("re-intern changed ID: %d vs %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if in.TokenString(a) != "alpha" || in.TokenString(b) != "beta" {
		t.Errorf("TokenString round trip failed: %q %q", in.TokenString(a), in.TokenString(b))
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = (%d, %v)", id, ok)
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Error("Lookup of unseen token succeeded")
	}
}

func TestInternAllPreservesOrder(t *testing.T) {
	in := NewInterner()
	toks := []string{"a", "b", "c"}
	ids := in.InternAll(toks)
	for i, id := range ids {
		if in.TokenString(id) != toks[i] {
			t.Errorf("ids[%d] = %q, want %q", i, in.TokenString(id), toks[i])
		}
	}
	if in.InternAll(nil) != nil {
		t.Error("InternAll(nil) should be nil")
	}
}

// Two builders sharing one Interner (the clean-clean ER fast path) must not
// race and must land the same token at the same ID in both KBs.
func TestInternerSharedAcrossConcurrentBuilders(t *testing.T) {
	dict := NewInterner()
	build := func(name string) *KB {
		b := NewBuilderWithInterner(name, dict)
		for i := 0; i < 200; i++ {
			e := b.AddEntity(fmt.Sprintf("%s:e%d", name, i))
			b.AddLiteral(e, "label", fmt.Sprintf("shared%d token common", i%50))
		}
		return b.Build()
	}
	var wg sync.WaitGroup
	kbs := make([]*KB, 2)
	for i, name := range []string{"A", "B"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			kbs[i] = build(name)
		}(i, name)
	}
	wg.Wait()
	if kbs[0].TokenDict() != dict || kbs[1].TokenDict() != dict {
		t.Fatal("KBs did not keep the shared dictionary")
	}
	idA, okA := dict.Lookup("common")
	if !okA {
		t.Fatal("shared token missing from dictionary")
	}
	for _, k := range kbs {
		d := k.Entity(0)
		found := false
		for _, id := range d.TokenIDs() {
			if id == idA {
				found = true
			}
		}
		if !found {
			t.Errorf("KB %s entity 0 lacks the shared token ID", k.Name())
		}
	}
}

// TokenIDs must stay ordered by token string (the invariant every
// accumulation stage relies on), and Tokens() must materialize that order.
func TestTokenIDsStringOrdered(t *testing.T) {
	b := NewBuilder("X")
	e := b.AddEntity("e")
	b.AddLiteral(e, "p", "zulu alpha mike zulu Alpha")
	k := b.Build()
	d := k.Entity(e)
	want := []string{"alpha", "mike", "zulu"}
	if got := d.Tokens(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	ids := d.TokenIDs()
	if len(ids) != len(want) {
		t.Fatalf("TokenIDs len = %d, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if d.Dict().TokenString(id) != want[i] {
			t.Errorf("TokenIDs[%d] = %q, want %q", i, d.Dict().TokenString(id), want[i])
		}
	}
	for _, tok := range want {
		if !d.HasToken(tok) {
			t.Errorf("HasToken(%q) = false", tok)
		}
	}
	if d.HasToken("absent") {
		t.Error("HasToken(absent) = true")
	}
}
