// KB decomposition for snapshot serialization: SnapshotParts is the flat,
// columnar view of everything a built KB holds — dictionaries, the URI
// table, per-entity token CSR, the sorted relation/attribute columns, and
// the insertion-order statement arrays behind Description.Attrs/Relations —
// and AssembleKB is its inverse. The statement arrays reuse the columnar
// offsets: buildColumns lays out exactly one columnar row per insertion-
// order statement, so per-entity counts (and therefore CSR spans) coincide.
package kb

import (
	"fmt"
	"runtime"
	"sync"
)

// SnapshotParts is the flat decomposition of one KB. All slices follow the
// KB's internal layouts exactly; a loader may hand in views over a memory-
// mapped region, which the assembled KB then aliases without copying.
type SnapshotParts struct {
	Name    string
	Triples int

	// Dict and Schema are the token and schema dictionaries (possibly shared
	// with the pair's other KB, mirroring NewBuilderWithDicts).
	Dict   *Interner
	Schema *Schema

	// URIs holds entity URIs in EntityID order, with lookup support
	// (replacing the byURI map).
	URIs *FrozenStrings

	// TokenOff/Tokens is the per-entity token CSR: entity i's sorted distinct
	// tokens are Tokens[TokenOff[i]:TokenOff[i+1]].
	TokenOff []int64
	Tokens   []TokenID

	// The six columnar arrays (see columns).
	RelOff   []int32
	RelPred  []PredID
	RelObj   []EntityID
	AttrOff  []int32
	AttrName []AttrID
	AttrVal  []ValueID

	// Insertion-order statement views behind Description.Attrs/Relations.
	// Spans reuse AttrOff/RelOff (one columnar row per statement); StmtVals
	// carries the RAW (un-normalized) literal values, without lookup support.
	StmtAttrName []AttrID
	StmtVals     *FrozenStrings
	StmtRelPred  []PredID
	StmtRelObj   []EntityID
}

// SnapshotParts decomposes the KB for serialization. The returned slices
// partly alias the KB (columns, token IDs); the URI and statement tables are
// materialized fresh.
func (k *KB) SnapshotParts() SnapshotParts {
	ents := k.ents()
	n := len(ents)
	p := SnapshotParts{
		Name:     k.name,
		Triples:  k.triples,
		Dict:     k.dict,
		Schema:   k.schema,
		TokenOff: make([]int64, n+1),
		RelOff:   k.cols.relOff,
		RelPred:  k.cols.relPred,
		RelObj:   k.cols.relObj,
		AttrOff:  k.cols.attrOff,
		AttrName: k.cols.attrName,
		AttrVal:  k.cols.attrVal,
	}
	uris := make([]string, n)
	nTok := 0
	for i := range ents {
		uris[i] = ents[i].URI
		nTok += len(ents[i].tokens)
	}
	p.URIs = FreezeStrings(uris, true)
	p.Tokens = make([]TokenID, 0, nTok)
	for i := range ents {
		p.TokenOff[i] = int64(len(p.Tokens))
		p.Tokens = append(p.Tokens, ents[i].tokens...)
	}
	p.TokenOff[n] = int64(len(p.Tokens))

	nAttr, nRel := len(k.cols.attrName), len(k.cols.relPred)
	p.StmtAttrName = make([]AttrID, 0, nAttr)
	p.StmtRelPred = make([]PredID, 0, nRel)
	p.StmtRelObj = make([]EntityID, 0, nRel)
	vals := make([]string, 0, nAttr)
	for i := range ents {
		d := &ents[i]
		for _, av := range d.Attrs {
			// Always present: buildColumns interned every statement.
			id, _ := k.schema.LookupAttr(av.Attribute)
			p.StmtAttrName = append(p.StmtAttrName, id)
			vals = append(vals, av.Value)
		}
		for _, r := range d.Relations {
			id, _ := k.schema.LookupPred(r.Predicate)
			p.StmtRelPred = append(p.StmtRelPred, id)
			p.StmtRelObj = append(p.StmtRelObj, r.Object)
		}
	}
	p.StmtVals = FreezeStrings(vals, false)
	return p
}

// AssembleKB rebuilds an immutable KB from its flat decomposition. The KB
// aliases the parts' arrays (read-only); descriptions are materialized from
// two flat allocations, with attribute/predicate strings aliasing the frozen
// schema tables and literal values the frozen value blob.
func AssembleKB(p SnapshotParts) (*KB, error) {
	if p.Dict == nil || p.Schema == nil || p.URIs == nil || p.StmtVals == nil {
		return nil, fmt.Errorf("kb: assemble: missing dictionary or string table")
	}
	n := p.URIs.Len()
	if len(p.TokenOff) != n+1 || len(p.RelOff) != n+1 || len(p.AttrOff) != n+1 {
		return nil, fmt.Errorf("kb: assemble: offset tables disagree with %d entities", n)
	}
	nAttr, nRel := len(p.AttrName), len(p.RelPred)
	if len(p.AttrVal) != nAttr || len(p.StmtAttrName) != nAttr || p.StmtVals.Len() != nAttr {
		return nil, fmt.Errorf("kb: assemble: attribute columns disagree (%d statements)", nAttr)
	}
	if len(p.RelObj) != nRel || len(p.StmtRelPred) != nRel || len(p.StmtRelObj) != nRel {
		return nil, fmt.Errorf("kb: assemble: relation columns disagree (%d statements)", nRel)
	}
	if err := checkOffsets32(p.RelOff, nRel, "relations"); err != nil {
		return nil, err
	}
	if err := checkOffsets32(p.AttrOff, nAttr, "attributes"); err != nil {
		return nil, err
	}
	if p.TokenOff[0] != 0 || p.TokenOff[n] != int64(len(p.Tokens)) {
		return nil, fmt.Errorf("kb: assemble: token offsets do not cover %d tokens", len(p.Tokens))
	}

	// Descriptions are NOT materialized here: every other column installs as
	// a view, and the query path answers from the columnar substrate and the
	// frozen URI table alone, so the per-entity Description array — the
	// dominant cost of opening a snapshot — is deferred until something
	// actually asks for a *Description (see KB.ents).
	return &KB{
		name:   p.Name,
		size:   n,
		dict:   p.Dict,
		schema: p.Schema,
		cols: columns{
			relOff: p.RelOff, relPred: p.RelPred, relObj: p.RelObj,
			attrOff: p.AttrOff, attrName: p.AttrName, attrVal: p.AttrVal,
		},
		triples:    p.Triples,
		frozenURIs: p.URIs,
		lazy:       &lazyDescriptions{parts: p},
	}, nil
}

// lazyDescriptions holds the validated snapshot decomposition of a loaded KB
// until its Description array is first needed.
type lazyDescriptions struct {
	once  sync.Once
	parts SnapshotParts
}

// ents returns the KB's Description array, materializing it on first use for
// snapshot-loaded KBs. Builder-built KBs return their array directly.
func (k *KB) ents() []Description {
	if k.lazy != nil {
		k.lazy.once.Do(k.materialize)
	}
	return k.entities
}

// materialize builds the Description array from the snapshot decomposition.
// The three fills are disjoint writes over immutable inputs (the entities
// fill only takes subslice headers of the flat arrays, never reading their
// elements), so all three run concurrently, chunked across cores; the result
// is identical to the sequential fill. AssembleKB already validated shapes.
func (k *KB) materialize() {
	p := &k.lazy.parts
	n := k.size
	nAttr, nRel := len(p.AttrName), len(p.RelPred)
	entities := make([]Description, n)
	flatAttrs := make([]AttributeValue, nAttr)
	flatRels := make([]Relation, nRel)
	var wg sync.WaitGroup
	fillChunks(&wg, nAttr, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			flatAttrs[j] = AttributeValue{
				Attribute: p.Schema.Attr(p.StmtAttrName[j]),
				Value:     p.StmtVals.At(j),
			}
		}
	})
	fillChunks(&wg, nRel, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			flatRels[j] = Relation{
				Predicate: p.Schema.Pred(p.StmtRelPred[j]),
				Object:    p.StmtRelObj[j],
			}
		}
	})
	fillChunks(&wg, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			entities[i] = Description{
				URI:       p.URIs.At(i),
				Attrs:     flatAttrs[p.AttrOff[i]:p.AttrOff[i+1]:p.AttrOff[i+1]],
				Relations: flatRels[p.RelOff[i]:p.RelOff[i+1]:p.RelOff[i+1]],
				tokens:    p.Tokens[p.TokenOff[i]:p.TokenOff[i+1]:p.TokenOff[i+1]],
				dict:      p.Dict,
			}
		}
	})
	wg.Wait()
	k.entities = entities
}

// fillChunks spawns goroutines covering [0, n) in contiguous chunks, each
// writing a disjoint index range. Small inputs stay on one goroutine.
func fillChunks(wg *sync.WaitGroup, n int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	step := (n + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	if step < 1<<13 {
		step = n // not worth a goroutine per chunk
	}
	for lo := 0; lo < n; lo += step {
		hi := min(lo+step, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
}

// checkOffsets32 validates a CSR offset table: first 0, non-decreasing, last
// equal to the flat length.
func checkOffsets32(off []int32, flatLen int, what string) error {
	if off[0] != 0 || off[len(off)-1] != int32(flatLen) {
		return fmt.Errorf("kb: assemble: %s offsets do not cover %d rows", what, flatLen)
	}
	for i := 0; i+1 < len(off); i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("kb: assemble: %s offsets decrease at %d", what, i)
		}
	}
	return nil
}
