package kb

import (
	"strings"
	"testing"
)

// buildFigure1Wikidata builds the Wikidata side of the paper's Figure 1
// running example: Restaurant1 with chef John Lake A in Bray, United Kingdom.
func buildFigure1Wikidata(t *testing.T) *KB {
	t.Helper()
	b := NewBuilder("Wikidata")
	r1 := b.AddEntity("wd:Restaurant1")
	chef := b.AddEntity("wd:JohnLakeA")
	bray := b.AddEntity("wd:Bray")
	uk := b.AddEntity("wd:UK")
	b.AddLiteral(r1, "label", "The Fat Duck")
	b.AddLiteral(r1, "starsMichelin", "3")
	b.AddObject(r1, "hasChef", "wd:JohnLakeA")
	b.AddObject(r1, "territorial", "wd:Bray")
	b.AddObject(r1, "inCountry", "wd:UK")
	b.AddLiteral(chef, "label", "John Lake A")
	b.AddLiteral(bray, "label", "Bray")
	b.AddLiteral(uk, "label", "United Kingdom")
	_ = chef
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	k := buildFigure1Wikidata(t)
	if got, want := k.Len(), 4; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if got, want := k.Triples(), 8; got != want {
		t.Fatalf("Triples() = %d, want %d", got, want)
	}
	r1 := k.Lookup("wd:Restaurant1")
	if r1 == NoEntity {
		t.Fatal("Lookup(Restaurant1) = NoEntity")
	}
	rels := k.Relations(r1)
	if len(rels) != 3 {
		t.Fatalf("Relations(Restaurant1) = %v, want 3 relations", rels)
	}
	neigh := k.Neighbors(r1)
	if len(neigh) != 3 {
		t.Fatalf("Neighbors(Restaurant1) = %v, want 3 neighbors", neigh)
	}
	// The paper's example: relations(Restaurant1) = {hasChef, territorial, inCountry}.
	want := map[string]bool{"hasChef": true, "territorial": true, "inCountry": true}
	for _, p := range rels {
		if !want[p] {
			t.Errorf("unexpected relation %q", p)
		}
	}
}

func TestAddEntityIdempotent(t *testing.T) {
	b := NewBuilder("X")
	a := b.AddEntity("u1")
	c := b.AddEntity("u1")
	if a != c {
		t.Fatalf("AddEntity twice = %d, %d; want same ID", a, c)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestUnresolvedObjectBecomesLiteral(t *testing.T) {
	b := NewBuilder("X")
	e := b.AddEntity("u1")
	b.AddObject(e, "seeAlso", "http://external.example/NotInKB")
	k := b.Build()
	d := k.Entity(e)
	if len(d.Relations) != 0 {
		t.Fatalf("Relations = %v, want none (object not described in KB)", d.Relations)
	}
	if len(d.Attrs) != 1 {
		t.Fatalf("Attrs = %v, want the unresolved URI as literal", d.Attrs)
	}
	// The URI's tokens become part of the description's token set.
	if !d.HasToken("notinkb") {
		t.Errorf("tokens = %v, want to contain \"notinkb\"", d.Tokens())
	}
}

func TestTokensSortedDistinct(t *testing.T) {
	b := NewBuilder("X")
	e := b.AddEntity("u1")
	b.AddLiteral(e, "a", "Bray Bray BRAY")
	b.AddLiteral(e, "b", "united kingdom")
	k := b.Build()
	got := k.Entity(e).Tokens()
	want := []string{"bray", "kingdom", "united"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
	if !k.Entity(e).HasToken("bray") || k.Entity(e).HasToken("zzz") {
		t.Error("HasToken misbehaves")
	}
}

func TestValuesByAttribute(t *testing.T) {
	b := NewBuilder("X")
	e := b.AddEntity("u1")
	b.AddLiteral(e, "label", "A")
	b.AddLiteral(e, "label", "B")
	b.AddLiteral(e, "other", "C")
	k := b.Build()
	vs := k.Entity(e).Values("label")
	if len(vs) != 2 || vs[0] != "A" || vs[1] != "B" {
		t.Fatalf("Values(label) = %v, want [A B]", vs)
	}
	if vs := k.Entity(e).Values("missing"); vs != nil {
		t.Fatalf("Values(missing) = %v, want nil", vs)
	}
}

func TestAverageTokensAndCounts(t *testing.T) {
	b := NewBuilder("X")
	e1 := b.AddEntity("u1")
	e2 := b.AddEntity("u2")
	b.AddLiteral(e1, "p1", "one two")
	b.AddLiteral(e2, "p2", "three")
	b.AddObject(e2, "rel", "u1")
	k := b.Build()
	if got := k.AverageTokens(); got != 1.5 {
		t.Errorf("AverageTokens = %v, want 1.5", got)
	}
	if got := k.Attributes(); got != 2 {
		t.Errorf("Attributes = %d, want 2", got)
	}
	if got := k.RelationNames(); got != 1 {
		t.Errorf("RelationNames = %d, want 1", got)
	}
}

func TestEmptyKB(t *testing.T) {
	k := NewBuilder("empty").Build()
	if k.Len() != 0 || k.Triples() != 0 || k.AverageTokens() != 0 {
		t.Fatalf("empty KB has non-zero stats: %v", k)
	}
	if k.Lookup("anything") != NoEntity {
		t.Fatal("Lookup on empty KB should return NoEntity")
	}
}

func TestKBStringer(t *testing.T) {
	k := buildFigure1Wikidata(t)
	s := k.String()
	if !strings.Contains(s, "Wikidata") || !strings.Contains(s, "4 entities") {
		t.Errorf("String() = %q, want name and entity count", s)
	}
}
