// Package kb implements the entity-description substrate of MinoanER
// (Efthymiou et al., EDBT 2019, §2): URI-identified sets of attribute-value
// pairs whose values are either literals or references to other entities of
// the same knowledge base, forming an entity graph.
//
// A KB is immutable once built. Construction goes through a Builder, which
// resolves object URIs into relations (edges to described entities) and keeps
// unresolved URIs as plain literal values, exactly as the paper defines
// relations(e) and neighbors(e): only objects that are themselves described
// in the KB count as neighbors.
package kb

import (
	"fmt"
	"slices"
	"strings"
)

// EntityID indexes a description inside one KB. IDs are dense, starting at 0,
// assigned in insertion order.
type EntityID int32

// NoEntity is the sentinel returned by lookups that find nothing.
const NoEntity EntityID = -1

// AttributeValue is one literal-valued attribute of a description.
type AttributeValue struct {
	Attribute string
	Value     string
}

// Relation is one entity-valued attribute: a named edge to another entity of
// the same KB.
type Relation struct {
	Predicate string
	Object    EntityID
}

// Description is a single entity description: a URI plus its literal
// attributes and its relations. Token sets are precomputed at build time
// because every MinoanER stage (EF statistics, token blocking, valueSim)
// consumes the same schema-agnostic bag of tokens; they are stored once as
// dense TokenIDs into the KB's Interner, so the hot stages never re-hash
// token strings.
type Description struct {
	URI       string
	Attrs     []AttributeValue
	Relations []Relation

	// tokens is the set of distinct tokens appearing in any literal value of
	// this description, ordered by token STRING (not by numeric ID) — the
	// iteration order every accumulation stage relies on for bit-identical
	// floating-point sums.
	tokens []TokenID
	// dict is the interner the token IDs refer to (shared with the KB).
	dict *Interner
}

// TokenIDs returns the description's distinct tokens as dense IDs into
// Dict(), ordered by token string. The slice is shared; callers must not
// modify it.
func (d *Description) TokenIDs() []TokenID { return d.tokens }

// Dict returns the token dictionary the description's TokenIDs refer to.
func (d *Description) Dict() *Interner { return d.dict }

// Tokens returns the distinct tokens of the description in sorted order.
// It is a compatibility view over TokenIDs: the slice is materialized on
// every call, so hot paths should walk TokenIDs instead.
func (d *Description) Tokens() []string {
	if len(d.tokens) == 0 {
		return nil
	}
	out := make([]string, len(d.tokens))
	for i, id := range d.tokens {
		out[i] = d.dict.TokenString(id)
	}
	return out
}

// HasToken reports whether t is one of the description's tokens.
func (d *Description) HasToken(t string) bool {
	_, found := slices.BinarySearchFunc(d.tokens, t, func(id TokenID, s string) int {
		return strings.Compare(d.dict.TokenString(id), s)
	})
	return found
}

// Values returns the literal values of attribute attr, in insertion order.
func (d *Description) Values(attr string) []string {
	var vs []string
	for _, av := range d.Attrs {
		if av.Attribute == attr {
			vs = append(vs, av.Value)
		}
	}
	return vs
}

// KB is an immutable knowledge base: a set of entity descriptions indexed by
// dense EntityIDs.
type KB struct {
	name     string
	size     int
	entities []Description
	byURI    map[string]EntityID
	dict     *Interner
	schema   *Schema
	cols     columns
	triples  int
	// frozenURIs backs Lookup for snapshot-loaded KBs, replacing the byURI
	// map with a binary search over the frozen URI table (byURI is nil then).
	frozenURIs *FrozenStrings
	// lazy defers description materialization for snapshot-loaded KBs: the
	// columnar substrate answers everything a query needs, so the per-entity
	// Description array is only built on first access (see ents).
	lazy *lazyDescriptions
}

// Name returns the KB's display name.
func (k *KB) Name() string { return k.name }

// TokenDict returns the token dictionary all of the KB's descriptions are
// interned into. Two KBs built with NewBuilderWithInterner and the same
// Interner return the same dictionary, which lets the blocking TokenIndex
// skip its token-space translation.
func (k *KB) TokenDict() *Interner { return k.dict }

// Len returns the number of entity descriptions.
func (k *KB) Len() int { return k.size }

// Triples returns the total number of attribute-value pairs plus relations,
// i.e. the triple count reported in Table 1 of the paper.
func (k *KB) Triples() int { return k.triples }

// Entity returns the description with the given ID. It panics if the ID is
// out of range, mirroring slice indexing semantics. On a snapshot-loaded KB
// the first call materializes all descriptions; callers that only need the
// URI should use URI, which never triggers materialization.
func (k *KB) Entity(id EntityID) *Description { return &k.ents()[id] }

// URI returns the URI of entity id without materializing descriptions: on a
// snapshot-loaded KB it reads the frozen URI table directly, keeping the
// query path's candidate formatting free of the lazy Description build.
func (k *KB) URI(id EntityID) string {
	if k.frozenURIs != nil {
		return k.frozenURIs.At(int(id))
	}
	return k.entities[id].URI
}

// Lookup finds an entity by URI, returning NoEntity if absent.
func (k *KB) Lookup(uri string) EntityID {
	if k.byURI == nil && k.frozenURIs != nil {
		if i, ok := k.frozenURIs.Lookup(uri); ok {
			return EntityID(i)
		}
		return NoEntity
	}
	if id, ok := k.byURI[uri]; ok {
		return id
	}
	return NoEntity
}

// Relations returns the distinct relation predicates of entity id (paper:
// relations(e_i)), derived from the sorted columnar span — distinct IDs are
// adjacent, so no per-call dedup map is needed. Order is dense predicate-ID
// order, i.e. first global appearance during the KB build.
func (k *KB) Relations(id EntityID) []string {
	preds, _ := k.RelationColumns(id)
	var out []string
	for j, p := range preds {
		if j > 0 && p == preds[j-1] {
			continue
		}
		out = append(out, k.schema.Pred(p))
	}
	return out
}

// Neighbors returns the distinct neighbor entities of id (paper:
// neighbors(e_i)), sorted by entity ID, derived from the columnar span with
// one sort+compact instead of a per-call dedup map.
func (k *KB) Neighbors(id EntityID) []EntityID {
	_, objs := k.RelationColumns(id)
	if len(objs) == 0 {
		return nil
	}
	out := slices.Clone(objs)
	slices.Sort(out)
	return slices.Compact(out)
}

// AverageTokens returns the mean number of distinct tokens per description
// (Table 1's "av. tokens" row).
func (k *KB) AverageTokens() float64 {
	if k.size == 0 {
		return 0
	}
	if k.lazy != nil {
		// The flat token array already holds every description's tokens;
		// no need to materialize descriptions for a count.
		return float64(len(k.lazy.parts.Tokens)) / float64(k.size)
	}
	total := 0
	for i := range k.entities {
		total += len(k.entities[i].tokens)
	}
	return float64(total) / float64(k.size)
}

// Attributes returns the number of distinct literal attribute names in the
// KB. (The schema dictionary may be shared with another KB, so the count is
// taken over this KB's own columns, not the dictionary size.)
func (k *KB) Attributes() int {
	seen := make([]bool, k.schema.Attrs())
	n := 0
	for _, a := range k.cols.attrName {
		if !seen[a] {
			seen[a] = true
			n++
		}
	}
	return n
}

// RelationNames returns the number of distinct relation predicates in the KB.
func (k *KB) RelationNames() int {
	seen := make([]bool, k.schema.Preds())
	n := 0
	for _, p := range k.cols.relPred {
		if !seen[p] {
			seen[p] = true
			n++
		}
	}
	return n
}

// String implements fmt.Stringer with a compact summary.
func (k *KB) String() string {
	return fmt.Sprintf("KB(%s: %d entities, %d triples)", k.name, k.size, k.triples)
}

// Builder accumulates raw triples and produces an immutable KB. Object values
// that match the URI of a described entity become relations at Build time;
// all other values are literal attributes.
type Builder struct {
	name     string
	entities []Description
	byURI    map[string]EntityID
	dict     *Interner
	schema   *Schema
	// pending holds raw (subject, predicate, object) statements whose object
	// may turn out to be an entity URI.
	pending []rawTriple
	tok     *Tokenizer
}

type rawTriple struct {
	subject   EntityID
	predicate string
	object    string
	// objectIsURI records whether the loader saw the object in URI position
	// (e.g. <...> in N-Triples). Only URI objects can become relations.
	objectIsURI bool
}

// NewBuilder returns a Builder for a KB with the given display name and its
// own private token dictionary.
func NewBuilder(name string) *Builder {
	return NewBuilderWithInterner(name, NewInterner())
}

// NewBuilderWithInterner returns a Builder whose KB interns tokens into the
// given shared dictionary (and into a private schema dictionary). Building
// both KBs of an ER pair over one Interner puts them in the same token-ID
// space, which the blocking TokenIndex exploits to skip per-token string
// work entirely.
func NewBuilderWithInterner(name string, dict *Interner) *Builder {
	return NewBuilderWithDicts(name, dict, nil)
}

// NewBuilderWithDicts returns a Builder interning tokens into dict and
// predicates/attribute names/normalized values into schema — the full
// shared-dictionary pairing: build both KBs of an ER pair over one Interner
// AND one Schema and every pipeline stage, token axis and schema axis alike,
// runs on a single dense ID space. A nil dict or schema gets a fresh private
// dictionary.
func NewBuilderWithDicts(name string, dict *Interner, schema *Schema) *Builder {
	if dict == nil {
		dict = NewInterner()
	}
	if schema == nil {
		schema = NewSchema()
	}
	return &Builder{
		name:   name,
		byURI:  make(map[string]EntityID),
		dict:   dict,
		schema: schema,
		tok:    NewTokenizer(),
	}
}

// AddEntity registers (or finds) the entity with the given URI and returns
// its ID. Adding the same URI twice returns the same ID.
func (b *Builder) AddEntity(uri string) EntityID {
	if id, ok := b.byURI[uri]; ok {
		return id
	}
	id := EntityID(len(b.entities))
	b.entities = append(b.entities, Description{URI: uri})
	b.byURI[uri] = id
	return id
}

// AddLiteral attaches a literal attribute-value pair to the entity.
func (b *Builder) AddLiteral(id EntityID, attribute, value string) {
	b.pending = append(b.pending, rawTriple{id, attribute, value, false})
}

// AddObject attaches an object (URI-position) value. At Build time it becomes
// a relation if the URI names a described entity, otherwise a literal.
func (b *Builder) AddObject(id EntityID, predicate, objectURI string) {
	b.pending = append(b.pending, rawTriple{id, predicate, objectURI, true})
}

// Len returns the number of entities registered so far.
func (b *Builder) Len() int { return len(b.entities) }

// Build finalizes the KB: it resolves object URIs to relations, tokenizes all
// literal values, and returns the immutable KB. The Builder must not be used
// afterwards.
func (b *Builder) Build() *KB {
	triples := 0
	for _, t := range b.pending {
		d := &b.entities[t.subject]
		if t.objectIsURI {
			if obj, ok := b.byURI[t.object]; ok {
				d.Relations = append(d.Relations, Relation{Predicate: t.predicate, Object: obj})
				triples++
				continue
			}
		}
		d.Attrs = append(d.Attrs, AttributeValue{Attribute: t.predicate, Value: t.object})
		triples++
	}
	for i := range b.entities {
		// TokenSet yields sorted strings; interning preserves that order, so
		// TokenIDs stay string-ordered (the invariant Description documents).
		b.entities[i].tokens = b.dict.InternAll(b.tok.TokenSet(&b.entities[i]))
		b.entities[i].dict = b.dict
	}
	kb := &KB{
		name: b.name, size: len(b.entities), entities: b.entities, byURI: b.byURI,
		dict: b.dict, schema: b.schema,
		cols:    buildColumns(b.entities, b.schema),
		triples: triples,
	}
	b.entities = nil
	b.byURI = nil
	b.pending = nil
	return kb
}
