// Package kb implements the entity-description substrate of MinoanER
// (Efthymiou et al., EDBT 2019, §2): URI-identified sets of attribute-value
// pairs whose values are either literals or references to other entities of
// the same knowledge base, forming an entity graph.
//
// A KB is immutable once built. Construction goes through a Builder, which
// resolves object URIs into relations (edges to described entities) and keeps
// unresolved URIs as plain literal values, exactly as the paper defines
// relations(e) and neighbors(e): only objects that are themselves described
// in the KB count as neighbors.
package kb

import (
	"fmt"
	"slices"
	"strings"
)

// EntityID indexes a description inside one KB. IDs are dense, starting at 0,
// assigned in insertion order.
type EntityID int32

// NoEntity is the sentinel returned by lookups that find nothing.
const NoEntity EntityID = -1

// AttributeValue is one literal-valued attribute of a description.
type AttributeValue struct {
	Attribute string
	Value     string
}

// Relation is one entity-valued attribute: a named edge to another entity of
// the same KB.
type Relation struct {
	Predicate string
	Object    EntityID
}

// Description is a single entity description: a URI plus its literal
// attributes and its relations. Token sets are precomputed at build time
// because every MinoanER stage (EF statistics, token blocking, valueSim)
// consumes the same schema-agnostic bag of tokens; they are stored once as
// dense TokenIDs into the KB's Interner, so the hot stages never re-hash
// token strings.
type Description struct {
	URI       string
	Attrs     []AttributeValue
	Relations []Relation

	// tokens is the set of distinct tokens appearing in any literal value of
	// this description, ordered by token STRING (not by numeric ID) — the
	// iteration order every accumulation stage relies on for bit-identical
	// floating-point sums.
	tokens []TokenID
	// dict is the interner the token IDs refer to (shared with the KB).
	dict *Interner
}

// TokenIDs returns the description's distinct tokens as dense IDs into
// Dict(), ordered by token string. The slice is shared; callers must not
// modify it.
func (d *Description) TokenIDs() []TokenID { return d.tokens }

// Dict returns the token dictionary the description's TokenIDs refer to.
func (d *Description) Dict() *Interner { return d.dict }

// Tokens returns the distinct tokens of the description in sorted order.
// It is a compatibility view over TokenIDs: the slice is materialized on
// every call, so hot paths should walk TokenIDs instead.
func (d *Description) Tokens() []string {
	if len(d.tokens) == 0 {
		return nil
	}
	out := make([]string, len(d.tokens))
	for i, id := range d.tokens {
		out[i] = d.dict.TokenString(id)
	}
	return out
}

// HasToken reports whether t is one of the description's tokens.
func (d *Description) HasToken(t string) bool {
	_, found := slices.BinarySearchFunc(d.tokens, t, func(id TokenID, s string) int {
		return strings.Compare(d.dict.TokenString(id), s)
	})
	return found
}

// Values returns the literal values of attribute attr, in insertion order.
func (d *Description) Values(attr string) []string {
	var vs []string
	for _, av := range d.Attrs {
		if av.Attribute == attr {
			vs = append(vs, av.Value)
		}
	}
	return vs
}

// KB is an immutable knowledge base: a set of entity descriptions indexed by
// dense EntityIDs.
type KB struct {
	name     string
	entities []Description
	byURI    map[string]EntityID
	dict     *Interner
	triples  int
}

// Name returns the KB's display name.
func (k *KB) Name() string { return k.name }

// TokenDict returns the token dictionary all of the KB's descriptions are
// interned into. Two KBs built with NewBuilderWithInterner and the same
// Interner return the same dictionary, which lets the blocking TokenIndex
// skip its token-space translation.
func (k *KB) TokenDict() *Interner { return k.dict }

// Len returns the number of entity descriptions.
func (k *KB) Len() int { return len(k.entities) }

// Triples returns the total number of attribute-value pairs plus relations,
// i.e. the triple count reported in Table 1 of the paper.
func (k *KB) Triples() int { return k.triples }

// Entity returns the description with the given ID. It panics if the ID is
// out of range, mirroring slice indexing semantics.
func (k *KB) Entity(id EntityID) *Description { return &k.entities[id] }

// Lookup finds an entity by URI, returning NoEntity if absent.
func (k *KB) Lookup(uri string) EntityID {
	if id, ok := k.byURI[uri]; ok {
		return id
	}
	return NoEntity
}

// Relations returns the distinct relation predicates of entity id, in first
// appearance order (paper: relations(e_i)).
func (k *KB) Relations(id EntityID) []string {
	d := &k.entities[id]
	seen := make(map[string]bool, len(d.Relations))
	var out []string
	for _, r := range d.Relations {
		if !seen[r.Predicate] {
			seen[r.Predicate] = true
			out = append(out, r.Predicate)
		}
	}
	return out
}

// Neighbors returns the distinct neighbor entities of id, in first appearance
// order (paper: neighbors(e_i)).
func (k *KB) Neighbors(id EntityID) []EntityID {
	d := &k.entities[id]
	seen := make(map[EntityID]bool, len(d.Relations))
	var out []EntityID
	for _, r := range d.Relations {
		if !seen[r.Object] {
			seen[r.Object] = true
			out = append(out, r.Object)
		}
	}
	return out
}

// AverageTokens returns the mean number of distinct tokens per description
// (Table 1's "av. tokens" row).
func (k *KB) AverageTokens() float64 {
	if len(k.entities) == 0 {
		return 0
	}
	total := 0
	for i := range k.entities {
		total += len(k.entities[i].tokens)
	}
	return float64(total) / float64(len(k.entities))
}

// Attributes returns the number of distinct literal attribute names in the KB.
func (k *KB) Attributes() int {
	set := make(map[string]struct{})
	for i := range k.entities {
		for _, av := range k.entities[i].Attrs {
			set[av.Attribute] = struct{}{}
		}
	}
	return len(set)
}

// RelationNames returns the number of distinct relation predicates in the KB.
func (k *KB) RelationNames() int {
	set := make(map[string]struct{})
	for i := range k.entities {
		for _, r := range k.entities[i].Relations {
			set[r.Predicate] = struct{}{}
		}
	}
	return len(set)
}

// String implements fmt.Stringer with a compact summary.
func (k *KB) String() string {
	return fmt.Sprintf("KB(%s: %d entities, %d triples)", k.name, len(k.entities), k.triples)
}

// Builder accumulates raw triples and produces an immutable KB. Object values
// that match the URI of a described entity become relations at Build time;
// all other values are literal attributes.
type Builder struct {
	name     string
	entities []Description
	byURI    map[string]EntityID
	dict     *Interner
	// pending holds raw (subject, predicate, object) statements whose object
	// may turn out to be an entity URI.
	pending []rawTriple
	tok     *Tokenizer
}

type rawTriple struct {
	subject   EntityID
	predicate string
	object    string
	// objectIsURI records whether the loader saw the object in URI position
	// (e.g. <...> in N-Triples). Only URI objects can become relations.
	objectIsURI bool
}

// NewBuilder returns a Builder for a KB with the given display name and its
// own private token dictionary.
func NewBuilder(name string) *Builder {
	return NewBuilderWithInterner(name, NewInterner())
}

// NewBuilderWithInterner returns a Builder whose KB interns tokens into the
// given shared dictionary. Building both KBs of an ER pair over one Interner
// puts them in the same token-ID space, which the blocking TokenIndex
// exploits to skip per-token string work entirely.
func NewBuilderWithInterner(name string, dict *Interner) *Builder {
	if dict == nil {
		dict = NewInterner()
	}
	return &Builder{
		name:  name,
		byURI: make(map[string]EntityID),
		dict:  dict,
		tok:   NewTokenizer(),
	}
}

// AddEntity registers (or finds) the entity with the given URI and returns
// its ID. Adding the same URI twice returns the same ID.
func (b *Builder) AddEntity(uri string) EntityID {
	if id, ok := b.byURI[uri]; ok {
		return id
	}
	id := EntityID(len(b.entities))
	b.entities = append(b.entities, Description{URI: uri})
	b.byURI[uri] = id
	return id
}

// AddLiteral attaches a literal attribute-value pair to the entity.
func (b *Builder) AddLiteral(id EntityID, attribute, value string) {
	b.pending = append(b.pending, rawTriple{id, attribute, value, false})
}

// AddObject attaches an object (URI-position) value. At Build time it becomes
// a relation if the URI names a described entity, otherwise a literal.
func (b *Builder) AddObject(id EntityID, predicate, objectURI string) {
	b.pending = append(b.pending, rawTriple{id, predicate, objectURI, true})
}

// Len returns the number of entities registered so far.
func (b *Builder) Len() int { return len(b.entities) }

// Build finalizes the KB: it resolves object URIs to relations, tokenizes all
// literal values, and returns the immutable KB. The Builder must not be used
// afterwards.
func (b *Builder) Build() *KB {
	triples := 0
	for _, t := range b.pending {
		d := &b.entities[t.subject]
		if t.objectIsURI {
			if obj, ok := b.byURI[t.object]; ok {
				d.Relations = append(d.Relations, Relation{Predicate: t.predicate, Object: obj})
				triples++
				continue
			}
		}
		d.Attrs = append(d.Attrs, AttributeValue{Attribute: t.predicate, Value: t.object})
		triples++
	}
	for i := range b.entities {
		// TokenSet yields sorted strings; interning preserves that order, so
		// TokenIDs stay string-ordered (the invariant Description documents).
		b.entities[i].tokens = b.dict.InternAll(b.tok.TokenSet(&b.entities[i]))
		b.entities[i].dict = b.dict
	}
	kb := &KB{name: b.name, entities: b.entities, byURI: b.byURI, dict: b.dict, triples: triples}
	b.entities = nil
	b.byURI = nil
	b.pending = nil
	return kb
}
