package kb

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

const sampleNT = `# Figure 1, DBpedia side
<db:Restaurant2> <rdfs:label> "The Fat Duck" .
<db:Restaurant2> <headChef> <db:JonnyLake> .
<db:Restaurant2> <county> <db:Berkshire> .
<db:JonnyLake> <rdfs:label> "Jonny Lake" .
<db:Berkshire> <rdfs:label> "Berkshire" .
<db:Berkshire> <near> <db:Bray2> .
<db:Bray2> <rdfs:label> "Bray" .
`

func TestLoadNTriples(t *testing.T) {
	k, skipped, err := LoadNTriples("DBpedia", strings.NewReader(sampleNT), false)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if k.Len() != 4 {
		t.Fatalf("Len = %d, want 4", k.Len())
	}
	r2 := k.Lookup("db:Restaurant2")
	if r2 == NoEntity {
		t.Fatal("Restaurant2 missing")
	}
	if got := k.Relations(r2); len(got) != 2 {
		t.Fatalf("Relations = %v, want headChef and county", got)
	}
	if !k.Entity(r2).HasToken("duck") {
		t.Errorf("tokens = %v, want to contain duck", k.Entity(r2).Tokens())
	}
}

func TestLoadNTriplesLiteralEscapes(t *testing.T) {
	src := `<a> <p> "line\nbreak \"quoted\" tab\there é" .` + "\n"
	k, _, err := LoadNTriples("X", strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	d := k.Entity(k.Lookup("a"))
	want := "line\nbreak \"quoted\" tab\there é"
	if d.Attrs[0].Value != want {
		t.Errorf("literal = %q, want %q", d.Attrs[0].Value, want)
	}
}

func TestLoadNTriplesDatatypeAndLang(t *testing.T) {
	src := `<a> <p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<a> <q> "bonjour"@fr .
`
	k, _, err := LoadNTriples("X", strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	d := k.Entity(k.Lookup("a"))
	if len(d.Attrs) != 2 || d.Attrs[0].Value != "3" || d.Attrs[1].Value != "bonjour" {
		t.Errorf("attrs = %v, want stripped datatype/lang", d.Attrs)
	}
}

func TestLoadNTriplesMalformedStrict(t *testing.T) {
	src := "<a> <p> \"ok\" .\nthis is not a triple\n"
	_, _, err := LoadNTriples("X", strings.NewReader(src), false)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("ParseError.Line = %d, want 2", pe.Line)
	}
}

func TestLoadNTriplesMalformedLenient(t *testing.T) {
	src := "<a> <p> \"ok\" .\ngarbage\n<a> <p <broken\n<b> <p> \"fine\" .\n"
	k, skipped, err := LoadNTriples("X", strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if k.Len() != 2 {
		t.Errorf("Len = %d, want 2", k.Len())
	}
}

func TestLoadNTriplesBlankNode(t *testing.T) {
	src := "<a> <p> _:b1 .\n_:b1 <q> \"v\" .\n"
	k, _, err := LoadNTriples("X", strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	a := k.Lookup("a")
	if got := k.Neighbors(a); len(got) != 1 {
		t.Fatalf("blank node should resolve to a neighbor, got %v", got)
	}
}

func TestRoundTripNTriples(t *testing.T) {
	k1, _, err := LoadNTriples("X", strings.NewReader(sampleNT), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, k1); err != nil {
		t.Fatal(err)
	}
	k2, skipped, err := LoadNTriples("X", &buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("round-trip skipped %d lines", skipped)
	}
	if k1.Len() != k2.Len() || k1.Triples() != k2.Triples() {
		t.Fatalf("round trip changed size: %v vs %v", k1, k2)
	}
	for id := 0; id < k1.Len(); id++ {
		d1, d2 := k1.Entity(EntityID(id)), k2.Entity(k2.Lookup(d1Uri(k1, id)))
		if !reflect.DeepEqual(d1.Tokens(), d2.Tokens()) {
			t.Fatalf("entity %s tokens differ: %v vs %v", d1.URI, d1.Tokens(), d2.Tokens())
		}
	}
}

func d1Uri(k *KB, id int) string { return k.Entity(EntityID(id)).URI }

func TestRoundTripEscapedLiterals(t *testing.T) {
	b := NewBuilder("X")
	e := b.AddEntity("u")
	b.AddLiteral(e, "p", "weird \"value\"\twith\nescapes\\")
	k1 := b.Build()
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, k1); err != nil {
		t.Fatal(err)
	}
	k2, _, err := LoadNTriples("X", &buf, false)
	if err != nil {
		t.Fatal(err)
	}
	got := k2.Entity(k2.Lookup("u")).Attrs[0].Value
	if got != "weird \"value\"\twith\nescapes\\" {
		t.Errorf("round-trip literal = %q", got)
	}
}

func TestLoadTSV(t *testing.T) {
	src := "e1\tlabel\tAlpha Beta\ne2\tlabel\tGamma\ne1\tlinks\te2\nbad-row\n"
	k, skipped, err := LoadTSV("X", strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	if got := k.Neighbors(k.Lookup("e1")); len(got) != 1 {
		t.Errorf("e1 neighbors = %v, want [e2]", got)
	}
}

// TestLoadTSVNTriplesRoundTrip covers the full loader chain: a KB loaded
// from TSV, serialized as N-Triples and loaded back must preserve every
// entity, every relation and every token set.
func TestLoadTSVNTriplesRoundTrip(t *testing.T) {
	src := "a\tname\tAlpha One\n" +
		"a\tlinks\tb\n" +
		"a\tyear\t1999\n" +
		"b\tname\tBeta \"quoted\" Two\n" +
		"b\tlinks\tc\n" +
		"c\tname\tGamma\n" +
		"c\tsees\tmissing-target\n" // unresolved object URI → literal
	k1, skipped, err := LoadTSV("src", strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("LoadTSV skipped %d rows", skipped)
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, k1); err != nil {
		t.Fatal(err)
	}
	k2, skipped, err := LoadNTriples("roundtrip", &buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("LoadNTriples skipped %d lines", skipped)
	}
	if k1.Len() != k2.Len() || k1.Triples() != k2.Triples() {
		t.Fatalf("round trip changed size: %v vs %v", k1, k2)
	}
	for id := 0; id < k1.Len(); id++ {
		d1 := k1.Entity(EntityID(id))
		id2 := k2.Lookup(d1.URI)
		if id2 == NoEntity {
			t.Fatalf("entity %s lost in round trip", d1.URI)
		}
		d2 := k2.Entity(id2)
		if !reflect.DeepEqual(d1.Attrs, d2.Attrs) {
			t.Errorf("entity %s attrs differ: %v vs %v", d1.URI, d1.Attrs, d2.Attrs)
		}
		if !reflect.DeepEqual(d1.Tokens(), d2.Tokens()) {
			t.Errorf("entity %s tokens differ: %v vs %v", d1.URI, d1.Tokens(), d2.Tokens())
		}
		// Relations must point at the same URIs on both sides.
		r1 := make([]string, 0, len(d1.Relations))
		for _, r := range d1.Relations {
			r1 = append(r1, r.Predicate+"→"+k1.Entity(r.Object).URI)
		}
		r2 := make([]string, 0, len(d2.Relations))
		for _, r := range d2.Relations {
			r2 = append(r2, r.Predicate+"→"+k2.Entity(r.Object).URI)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("entity %s relations differ: %v vs %v", d1.URI, r1, r2)
		}
	}
	// The unresolved URI must have stayed a literal on both sides.
	c := k1.Entity(k1.Lookup("c"))
	if len(c.Relations) != 0 || len(c.Values("sees")) != 1 {
		t.Errorf("unresolved object should remain a literal: %+v", c)
	}
}

func TestLoadTSVLiteralObjects(t *testing.T) {
	src := "e1\tlabel\te2\ne2\tlabel\tGamma\n"
	k, _, err := LoadTSV("X", strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Neighbors(k.Lookup("e1")); len(got) != 0 {
		t.Errorf("uriObjects=false must not create relations, got %v", got)
	}
}
