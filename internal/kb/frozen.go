// Frozen (read-only, flat) string tables: the serialization-side counterpart
// of the Interner/Schema dictionaries. A FrozenStrings stores every string of
// one dictionary as a single byte blob plus CSR offsets, with an optional
// string-sorted permutation enabling binary-search Lookup — no map, no
// per-string allocation, so a dictionary loaded from a memory-mapped
// snapshot aliases the mapping and costs O(1) to "build". Frozen tables are
// immutable; interning into one panics, which is exactly the read-only
// contract a snapshot-backed KB promises.
package kb

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"unsafe"
)

// FrozenStrings is an immutable string table: string i is blob[off[i]:off[i+1]].
// When sorted is non-nil it is the permutation of indices ordered by string,
// enabling Lookup by binary search; a nil sorted table supports At only
// (used for value blobs that are never looked up).
type FrozenStrings struct {
	blob   []byte
	off    []int64
	sorted []uint32
}

// NewFrozenStrings assembles a frozen table over caller-provided backing
// arrays (typically views into a memory-mapped snapshot region; the table
// aliases them). off must hold n+1 non-decreasing offsets covering blob
// exactly; sorted must be nil or hold n entries.
func NewFrozenStrings(blob []byte, off []int64, sorted []uint32) (*FrozenStrings, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("kb: frozen strings: empty offset table")
	}
	n := len(off) - 1
	if off[0] != 0 || off[n] != int64(len(blob)) {
		return nil, fmt.Errorf("kb: frozen strings: offsets [%d..%d] do not cover blob of %d bytes", off[0], off[n], len(blob))
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("kb: frozen strings: offsets decrease at %d", i)
		}
	}
	if sorted != nil && len(sorted) != n {
		return nil, fmt.Errorf("kb: frozen strings: sorted permutation has %d entries, want %d", len(sorted), n)
	}
	return &FrozenStrings{blob: blob, off: off, sorted: sorted}, nil
}

// FreezeStrings builds a frozen table from a live string slice (the write
// side of snapshot serialization). withLookup additionally computes the
// string-sorted permutation so the frozen table supports Lookup.
func FreezeStrings(strs []string, withLookup bool) *FrozenStrings {
	total := 0
	for _, s := range strs {
		total += len(s)
	}
	f := &FrozenStrings{
		blob: make([]byte, 0, total),
		off:  make([]int64, len(strs)+1),
	}
	for i, s := range strs {
		f.off[i] = int64(len(f.blob))
		f.blob = append(f.blob, s...)
	}
	f.off[len(strs)] = int64(len(f.blob))
	if withLookup {
		f.sorted = make([]uint32, len(strs))
		for i := range f.sorted {
			f.sorted[i] = uint32(i)
		}
		sort.Slice(f.sorted, func(a, b int) bool {
			return f.At(int(f.sorted[a])) < f.At(int(f.sorted[b]))
		})
	}
	return f
}

// Len returns the number of strings.
func (f *FrozenStrings) Len() int { return len(f.off) - 1 }

// At returns string i without copying: the result aliases the blob. The
// empty string is returned for empty spans (never a pointer past the blob).
func (f *FrozenStrings) At(i int) string {
	lo, hi := f.off[i], f.off[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&f.blob[lo], hi-lo)
}

// Lookup finds the index of s by binary search over the sorted permutation.
// It reports false when s is absent or the table was frozen without lookup
// support.
func (f *FrozenStrings) Lookup(s string) (uint32, bool) {
	if f.sorted == nil {
		return 0, false
	}
	i, ok := slices.BinarySearchFunc(f.sorted, s, func(idx uint32, target string) int {
		return strings.Compare(f.At(int(idx)), target)
	})
	if !ok {
		return 0, false
	}
	return f.sorted[i], true
}

// Parts exposes the backing arrays for serialization. Callers must treat
// them as read-only.
func (f *FrozenStrings) Parts() (blob []byte, off []int64, sorted []uint32) {
	return f.blob, f.off, f.sorted
}

// NewFrozenInterner wraps a frozen string table as a read-only token
// dictionary: TokenString/Lookup/Len route to the table, Intern panics.
func NewFrozenInterner(fs *FrozenStrings) *Interner {
	return &Interner{frozen: fs}
}

// Freeze snapshots the interner's current contents as a frozen table with
// lookup support (token ID i maps to string i, preserving the dense ID
// space). A frozen interner returns its own table.
func (in *Interner) Freeze() *FrozenStrings {
	if in.frozen != nil {
		return in.frozen
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return FreezeStrings(in.strs, true)
}

// NewFrozenSchema wraps three frozen tables (predicates, attribute names,
// normalized values) as a read-only schema dictionary set. ID spaces are
// positional, so a schema round-tripped through Freeze/NewFrozenSchema
// assigns exactly the original IDs.
func NewFrozenSchema(preds, attrs, vals *FrozenStrings) *Schema {
	return &Schema{
		preds: symtab{frozen: preds},
		attrs: symtab{frozen: attrs},
		vals:  symtab{frozen: vals},
	}
}

// Freeze snapshots the schema's three dictionaries as frozen tables with
// lookup support.
func (s *Schema) Freeze() (preds, attrs, vals *FrozenStrings) {
	return s.preds.freeze(), s.attrs.freeze(), s.vals.freeze()
}

func (t *symtab) freeze() *FrozenStrings {
	if t.frozen != nil {
		return t.frozen
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return FreezeStrings(t.strs, true)
}
