// Sharded, memory-bounded execution of the MinoanER pipeline: E1 is split
// into P contiguous entity shards and every per-entity stage — top-neighbor
// extraction, β row construction, E1-side γ construction and rank
// aggregation — runs one shard at a time over the SHARED blocking substrate
// (name blocks and the columnar TokenIndex are built once, exactly as in the
// monolithic pipeline). Per-shard results merge in span order, so the output
// is byte-identical to Resolve for every shard count; only the lifetime of
// the transient per-shard state changes. This is the in-process analogue of
// the paper's executor partitioning (§4.1) and the seam a later multi-process
// distribution plugs into: each shard touches only its E1 span plus the
// shared read-only indices.
package core

import (
	"context"
	"time"

	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
)

// effectiveShards resolves the shard count of a normalized Config for an E1
// of n1 entities: an explicit ShardCount wins; otherwise a MaxShardBytes
// budget implies a count; otherwise 1 (monolithic).
func (c Config) effectiveShards(n1 int) int {
	p := c.ShardCount
	if p == 0 && c.MaxShardBytes > 0 {
		p = shardCountForBudget(n1, c.TopK, c.MaxShardBytes)
	}
	if p < 1 {
		p = 1
	}
	if p > n1 && n1 > 0 {
		p = n1
	}
	return p
}

// shardCountForBudget derives a shard count from a per-shard byte budget.
// The dominant structure whose lifetime sharding bounds is the shard's γ
// candidate rows: one slice header plus up to K edges per entity.
func shardCountForBudget(n1, topK int, maxBytes int64) int {
	perRow := int64(24 + 16*topK)
	rows := maxBytes / perRow
	if rows < 1 {
		rows = 1
	}
	return int((int64(n1) + rows - 1) / rows)
}

// shardSpans partitions [0, n) into at most p contiguous ascending spans of
// near-equal size (never empty; nil for n == 0).
func shardSpans(n, p int) []parallel.Span {
	return parallel.New(p).Partitions(n)
}

// ResolveSharded runs the full MinoanER pipeline with E1 split into p
// contiguous shards — the same BuildSubstrate + resolveWith composition as
// ResolveContext, with the per-entity stages sharded. Output (matches, rule
// provenance, R4 removals, graph edge count, block statistics) is
// byte-identical to Resolve / ResolveContext on the same inputs for every p;
// peak memory drops because the E1-side γ lists — the largest per-node
// structure the monolithic graph retains — and the per-shard transients live
// one shard at a time, and because the two γ adjacencies are built
// sequentially instead of held together. p < 1 falls back to the count
// implied by cfg (ShardCount / MaxShardBytes, else 1).
func ResolveSharded(ctx context.Context, k1, k2 *kb.KB, cfg Config, p int) (*Output, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if p < 1 {
		p = cfg.effectiveShards(k1.Len())
	}
	eng := parallel.New(cfg.Workers)
	sub, err := buildSubstrate(ctx, eng, k1, k2, cfg, p)
	if err != nil {
		return nil, err
	}
	return resolveWith(ctx, eng, sub, cfg, p)
}

// resolveShardedStages runs stages 3–4 over a substrate with E1 split into p
// shards, filling out's matches, edge counts and graph/matching timings.
func resolveShardedStages(ctx context.Context, eng *parallel.Engine, sub *Substrate, in graph.Input, mc matching.Config, p int, out *Output) error {
	shards := shardSpans(sub.k1.Len(), p)

	// Stage 3 — disjunctive blocking graph, sharded: α, both β directions
	// and the E2-side γ lists are materialized; the E1-side γ rows are left
	// to the scope and produced per shard during matching.
	t0 := time.Now()
	g, scope, gt, err := graph.BuildShardedCtx(ctx, eng, in, shards)
	if err != nil {
		return err
	}
	out.Timings.Graph = time.Since(t0)
	out.Timings.GraphBeta = gt.Beta
	out.Timings.GraphGamma = gt.Gamma

	// Stage 4 — matching. The γ rows of each shard are built on demand; the
	// time spent inside the scope is accounted to the graph stage and the
	// rows are tallied so GraphEdges reports the same count as a monolithic
	// run, even though the full Gamma1 never exists at once.
	t0 = time.Now()
	var gammaTime time.Duration
	gamma1Edges := 0
	gammaFor := func(gctx context.Context, s parallel.Span) ([][]graph.Edge, error) {
		gt := time.Now()
		rows, err := scope.BuildSpan(gctx, s)
		gammaTime += time.Since(gt)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			gamma1Edges += len(r)
		}
		return rows, nil
	}
	res, err := matching.RunShardedCtx(ctx, eng, g, sub.k1, sub.k2, mc, shards, gammaFor)
	if err != nil {
		return err
	}
	out.Matches = res.Matches
	out.RemovedByR4 = res.RemovedByR4
	out.GraphEdges = g.Edges() + gamma1Edges
	out.Timings.Graph += gammaTime
	out.Timings.GraphGamma += gammaTime
	out.Timings.Matching = time.Since(t0) - gammaTime
	return nil
}
