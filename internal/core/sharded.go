// Sharded, memory-bounded execution of the MinoanER pipeline: E1 is split
// into P contiguous entity shards and every per-entity stage — top-neighbor
// extraction, β row construction, E1-side γ construction and rank
// aggregation — runs one shard at a time over the SHARED blocking substrate
// (name blocks and the columnar TokenIndex are built once, exactly as in the
// monolithic pipeline). Per-shard results merge in span order, so the output
// is byte-identical to Resolve for every shard count; only the lifetime of
// the transient per-shard state changes. This is the in-process analogue of
// the paper's executor partitioning (§4.1) and the seam a later multi-process
// distribution plugs into: each shard touches only its E1 span plus the
// shared read-only indices.
package core

import (
	"context"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// effectiveShards resolves the shard count of a normalized Config for an E1
// of n1 entities: an explicit ShardCount wins; otherwise a MaxShardBytes
// budget implies a count; otherwise 1 (monolithic).
func (c Config) effectiveShards(n1 int) int {
	p := c.ShardCount
	if p == 0 && c.MaxShardBytes > 0 {
		p = shardCountForBudget(n1, c.TopK, c.MaxShardBytes)
	}
	if p < 1 {
		p = 1
	}
	if p > n1 && n1 > 0 {
		p = n1
	}
	return p
}

// shardCountForBudget derives a shard count from a per-shard byte budget.
// The dominant structure whose lifetime sharding bounds is the shard's γ
// candidate rows: one slice header plus up to K edges per entity.
func shardCountForBudget(n1, topK int, maxBytes int64) int {
	perRow := int64(24 + 16*topK)
	rows := maxBytes / perRow
	if rows < 1 {
		rows = 1
	}
	return int((int64(n1) + rows - 1) / rows)
}

// shardSpans partitions [0, n) into at most p contiguous ascending spans of
// near-equal size (never empty; nil for n == 0).
func shardSpans(n, p int) []parallel.Span {
	return parallel.New(p).Partitions(n)
}

// ResolveSharded runs the full MinoanER pipeline with E1 split into p
// contiguous shards. Output (matches, rule provenance, R4 removals, graph
// edge count, block statistics) is byte-identical to Resolve / ResolveContext
// on the same inputs for every p; peak memory drops because the E1-side γ
// lists — the largest per-node structure the monolithic graph retains — and
// the per-shard transients live one shard at a time, and because the two γ
// adjacencies are built sequentially instead of held together. p < 1 falls
// back to the count implied by cfg (ShardCount / MaxShardBytes, else 1).
func ResolveSharded(ctx context.Context, k1, k2 *kb.KB, cfg Config, p int) (*Output, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if p < 1 {
		p = cfg.effectiveShards(k1.Len())
	}
	return resolveSharded(ctx, k1, k2, cfg, p)
}

// resolveSharded is the sharded pipeline over a normalized Config.
func resolveSharded(ctx context.Context, k1, k2 *kb.KB, cfg Config, p int) (*Output, error) {
	eng := parallel.New(cfg.Workers)
	shards := shardSpans(k1.Len(), p)
	out := &Output{}
	start := time.Now()

	// Stage 1 — statistics. Name attributes and relation importances are
	// global aggregates, computed exactly as in the monolithic pipeline; the
	// per-entity top-neighbor rows of E1 are extracted shard at a time (the
	// E2 side stays a single pass, concurrent with the shard loop).
	t0 := time.Now()
	var (
		ranks1, ranks2 []int32
		top1, top2     [][]kb.EntityID
	)
	err := eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			out.NameAttrs1, err = stats.NameAttributesCtx(sc, eng, k1, cfg.NameK)
			return err
		},
		func(sc context.Context) error {
			var err error
			out.NameAttrs2, err = stats.NameAttributesCtx(sc, eng, k2, cfg.NameK)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	out.Timings.StatsAttributes = time.Since(t0)
	t1 := time.Now()
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, k1)
			ranks1 = stats.RelationRanks(k1, ri)
			return err
		},
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, k2)
			ranks2 = stats.RelationRanks(k2, ri)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	out.Timings.StatsRelations = time.Since(t1)
	t1 = time.Now()
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			top1 = make([][]kb.EntityID, k1.Len())
			for _, s := range shards {
				rows, err := stats.TopNeighborsRanksSpanCtx(sc, eng, k1, ranks1, cfg.RelN, s)
				if err != nil {
					return err
				}
				copy(top1[s.Lo:s.Hi], rows)
			}
			return nil
		},
		func(sc context.Context) error {
			var err error
			top2, err = stats.TopNeighborsRanksCtx(sc, eng, k2, ranks2, cfg.RelN)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	out.Timings.StatsTopNeighbors = time.Since(t1)
	out.Timings.Statistics = time.Since(t0)

	// Stage 2 — composite blocking: identical to the monolithic pipeline;
	// the name blocks and the purged TokenIndex are the shared substrate
	// every shard reads.
	t0 = time.Now()
	var nameBlocks *blocking.Collection
	var tokenIx *blocking.TokenIndex
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			nameBlocks, err = blocking.NameBlocksCtx(sc, eng, k1, k2, out.NameAttrs1, out.NameAttrs2)
			return err
		},
		func(sc context.Context) error {
			var err error
			tokenIx, err = blocking.NewTokenIndexCtx(sc, eng, k1, k2)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	if budget := blocking.ComparisonBudget(k1.Len(), k2.Len(), cfg.MaxBlockFraction); budget > 0 {
		out.PurgeThreshold = budget
		tokenIx, out.PurgedBlocks = tokenIx.PurgeAbove(budget)
	}
	tokenBlocks := tokenIx.Collection()
	out.NameBlocks, out.TokenBlocks = nameBlocks, tokenBlocks
	out.Timings.Blocking = time.Since(t0)

	// Stage 3 — disjunctive blocking graph, sharded: α, both β directions
	// and the E2-side γ lists are materialized; the E1-side γ rows are left
	// to the scope and produced per shard during matching.
	t0 = time.Now()
	g, scope, gt, err := graph.BuildShardedCtx(ctx, eng, graph.Input{
		K1: k1, K2: k2,
		NameBlocks:  nameBlocks,
		TokenBlocks: tokenBlocks,
		TokenIndex:  tokenIx,
		Top1:        top1,
		Top2:        top2,
		K:           cfg.TopK,
	}, shards)
	if err != nil {
		return nil, err
	}
	out.Timings.Graph = time.Since(t0)
	out.Timings.GraphBeta = gt.Beta
	out.Timings.GraphGamma = gt.Gamma

	// Stage 4 — matching. The γ rows of each shard are built on demand; the
	// time spent inside the scope is accounted to the graph stage and the
	// rows are tallied so GraphEdges reports the same count as a monolithic
	// run, even though the full Gamma1 never exists at once.
	t0 = time.Now()
	var gammaTime time.Duration
	gamma1Edges := 0
	gammaFor := func(gctx context.Context, s parallel.Span) ([][]graph.Edge, error) {
		gt := time.Now()
		rows, err := scope.BuildSpan(gctx, s)
		gammaTime += time.Since(gt)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			gamma1Edges += len(r)
		}
		return rows, nil
	}
	mc := *cfg.Rules
	mc.Theta = cfg.Theta
	res, err := matching.RunShardedCtx(ctx, eng, g, k1, k2, mc, shards, gammaFor)
	if err != nil {
		return nil, err
	}
	out.Matches = res.Matches
	out.RemovedByR4 = res.RemovedByR4
	out.GraphEdges = g.Edges() + gamma1Edges
	out.Timings.Graph += gammaTime
	out.Timings.GraphGamma += gammaTime
	out.Timings.Matching = time.Since(t0) - gammaTime

	out.Timings.Total = time.Since(start)
	return out, nil
}
