package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
)

// buildBatchGraph rebuilds the monolithic disjunctive blocking graph over a
// substrate — the frozen batch rows QueryEntity must reproduce entity for
// entity.
func buildBatchGraph(t *testing.T, sub *Substrate) *graph.Graph {
	t.Helper()
	eng := parallel.New(sub.cfg.Workers)
	g, _, err := graph.BuildTimedCtx(context.Background(), eng, graph.Input{
		K1: sub.k1, K2: sub.k2,
		NameBlocks:  sub.nameBlocks,
		TokenBlocks: sub.TokenBlocks(),
		TokenIndex:  sub.tokenIx,
		Top1:        sub.top1,
		Top2:        sub.top2,
		K:           sub.cfg.TopK,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// expectedQueryMatches assembles, from the BATCH graph rows of entity e, the
// QueryMatch list the query path must return: α candidates first in entity
// order, then the fused rank-aggregation order, with the batch per-entity
// rule claims (R1 membership, R2's top-β-weight ≥ 1 predicate, R3's top
// aggregate pick) and R4's reciprocity bit.
func expectedQueryMatches(sub *Substrate, g *graph.Graph, e kb.EntityID, mc matching.Config) []QueryMatch {
	beta, gamma := g.Beta1[e], g.Gamma1[e]
	var alpha []kb.EntityID
	if mc.EnableR1 {
		alpha = g.Alpha1[e]
	}
	ranking := matching.RankAggregateRow(matching.NewAggScratch(), beta, gamma, mc.Theta, mc.UseNeighbors)
	r2cand := kb.NoEntity
	if mc.EnableR2 && len(beta) > 0 && beta[0].Weight >= 1 {
		r2cand = beta[0].To
	}
	weightIn := func(row []graph.Edge, to kb.EntityID) float64 {
		for _, ed := range row {
			if ed.To == to {
				return ed.Weight
			}
		}
		return 0
	}
	emit := func(c kb.EntityID, rule matching.Rule, score float64) QueryMatch {
		return QueryMatch{
			Candidate:   c,
			URI:         sub.k2.Entity(c).URI,
			Rule:        rule,
			Score:       score,
			ValueSim:    weightIn(beta, c),
			NeighborSim: weightIn(gamma, c),
			Reciprocal:  g.HasDirectedEdge2(c, e),
		}
	}
	out := make([]QueryMatch, 0, len(alpha)+len(ranking))
	for _, c := range alpha {
		out = append(out, emit(c, matching.RuleName, weightIn(ranking, c)))
	}
	for i, ed := range ranking {
		in := false
		for _, c := range alpha {
			if c == ed.To {
				in = true
			}
		}
		if in {
			continue
		}
		rule := matching.RuleNone
		switch {
		case ed.To == r2cand:
			rule = matching.RuleValue
		case i == 0 && mc.EnableR3:
			rule = matching.RuleRank
		}
		out = append(out, emit(ed.To, rule, ed.Weight))
	}
	return out
}

// randomPair builds two KBs with overlapping labels, shared tokens and
// random internal links — the randomized fixtures of the query/batch
// equivalence property test.
func randomPair(seed int64, n int) (*kb.KB, *kb.KB) {
	r := rand.New(rand.NewSource(seed))
	b1, b2 := kb.NewBuilder("Q1"), kb.NewBuilder("Q2")
	vocab := []string{"alpha", "beta", "gamma", "delta", "rho", "sigma", "tau", "omega"}
	for i := 0; i < n; i++ {
		b1.AddEntity(fmt.Sprintf("q1:e%d", i))
		b2.AddEntity(fmt.Sprintf("q2:e%d", i))
	}
	for i := 0; i < n; i++ {
		id1, id2 := kb.EntityID(i), kb.EntityID(i)
		label := fmt.Sprintf("ent%d %s %s", i, vocab[r.Intn(len(vocab))], vocab[r.Intn(len(vocab))])
		b1.AddLiteral(id1, "name", label)
		if r.Intn(4) > 0 {
			b2.AddLiteral(id2, "name", label)
		} else {
			b2.AddLiteral(id2, "name", fmt.Sprintf("other%d %s", i, vocab[r.Intn(len(vocab))]))
		}
		if r.Intn(2) == 0 {
			b1.AddLiteral(id1, "note", vocab[r.Intn(len(vocab))])
		}
		if r.Intn(2) == 0 {
			b2.AddLiteral(id2, "note", vocab[r.Intn(len(vocab))])
		}
		for l := r.Intn(3); l > 0; l-- {
			b1.AddObject(id1, "linked", fmt.Sprintf("q1:e%d", r.Intn(n)))
			b2.AddObject(id2, "linked", fmt.Sprintf("q2:e%d", r.Intn(n)))
		}
		if r.Intn(3) == 0 {
			b1.AddObject(id1, "cites", fmt.Sprintf("q1:e%d", r.Intn(n)))
		}
	}
	return b1.Build(), b2.Build()
}

// checkQueryEquivalence asserts that replaying every E1 entity through
// QueryEntity reproduces its batch candidate rows and per-entity rule
// decisions exactly.
func checkQueryEquivalence(t *testing.T, name string, k1, k2 *kb.KB, cfg Config) {
	t.Helper()
	ctx := context.Background()
	sub, err := BuildSubstrate(ctx, k1, k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := buildBatchGraph(t, sub)
	mc := *sub.cfg.Rules
	mc.Theta = sub.cfg.Theta
	for i := 0; i < k1.Len(); i++ {
		e := kb.EntityID(i)
		got, err := QueryEntity(ctx, sub, QueryFromEntity(k1, e), cfg)
		if err != nil {
			t.Fatalf("%s: QueryEntity(%d): %v", name, e, err)
		}
		want := expectedQueryMatches(sub, g, e, mc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: entity %d: query/batch divergence\n got: %+v\nwant: %+v", name, e, got, want)
		}
	}
}

// Property: for every entity e ∈ E1, QueryEntity on the frozen substrate
// reproduces exactly the batch candidate rows (α, β, γ, fused ranking) and
// the per-entity R1–R4 decisions — on the skewed determinism fixture,
// randomized fixtures, and one Table-1 preset.
func TestQueryEntityMatchesBatch(t *testing.T) {
	k1, k2 := skewedKBs(300)
	checkQueryEquivalence(t, "skewed-300", k1, k2, Config{Workers: 4})
	for seed := int64(0); seed < 4; seed++ {
		r1, r2 := randomPair(700+seed, 80)
		checkQueryEquivalence(t, fmt.Sprintf("random-%d", seed), r1, r2, Config{Workers: 2})
	}
	// Ablated rules must flow through to query rule claims the same way.
	a1, a2 := randomPair(900, 60)
	rules := matching.Config{EnableR2: true, EnableR3: true, UseNeighbors: false}
	checkQueryEquivalence(t, "ablated", a1, a2, Config{Workers: 2, Rules: &rules})
}

func TestQueryEntityMatchesBatchOnPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("preset equivalence sweep skipped in -short")
	}
	profile := datagen.Presets()[0]
	d, err := datagen.Generate(datagen.Scale(profile, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	checkQueryEquivalence(t, profile.Name, d.K1, d.K2, Config{})
}

// A substrate must serve many concurrent queries race-free with
// deterministic results; run under -race this doubles as the hammer test.
func TestQueryEntityConcurrent(t *testing.T) {
	ctx := context.Background()
	k1, k2 := skewedKBs(200)
	cfg := Config{Workers: 2}
	sub, err := BuildSubstrate(ctx, k1, k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No prewarm on purpose: the goroutines below race to build the lazy
	// query state through the singleflight path.
	refs := make([][]QueryMatch, k1.Len())
	refSub, err := BuildSubstrate(ctx, k1, k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if refs[i], err = QueryEntity(ctx, refSub, QueryFromEntity(k1, kb.EntityID(i)), cfg); err != nil {
			t.Fatal(err)
		}
	}
	newQuery := EntityQuery{
		URI:     "q:new",
		Attrs:   []kb.AttributeValue{{Attribute: "label", Value: "pop2 pop3 freshtoken"}},
		Objects: []QueryObject{{Predicate: "linked", Object: "s1:e10"}},
	}
	newRef, err := QueryEntity(ctx, refSub, newQuery, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				e := (w*41 + i*7) % k1.Len()
				got, err := QueryEntity(ctx, sub, QueryFromEntity(k1, kb.EntityID(e)), cfg)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, refs[e]) {
					errs <- fmt.Errorf("worker %d: entity %d diverged under concurrency", w, e)
					return
				}
				if i%8 == 0 {
					got, err := QueryEntity(ctx, sub, newQuery, cfg)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, newRef) {
						errs <- fmt.Errorf("worker %d: new-entity query diverged under concurrency", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryEntityNewEntity(t *testing.T) {
	ctx := context.Background()
	b1, b2 := kb.NewBuilder("N1"), kb.NewBuilder("N2")
	for i := 0; i < 12; i++ {
		id1 := b1.AddEntity(fmt.Sprintf("n1:e%d", i))
		id2 := b2.AddEntity(fmt.Sprintf("n2:e%d", i))
		b1.AddLiteral(id1, "name", fmt.Sprintf("left item %d", i))
		b2.AddLiteral(id2, "name", fmt.Sprintf("right item %d", i))
		if i > 0 {
			b1.AddObject(id1, "linked", fmt.Sprintf("n1:e%d", i-1))
		}
	}
	// One K2-only name a new entity can α-match.
	b2.AddLiteral(kb.EntityID(5), "name", "the unique beacon")
	k1, k2 := b1.Build(), b2.Build()
	sub, err := BuildSubstrate(ctx, k1, k2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := EntityQuery{
		URI:   "q:new",
		Attrs: []kb.AttributeValue{{Attribute: "name", Value: "The Unique Beacon!"}},
		Objects: []QueryObject{
			{Predicate: "linked", Object: "n1:e3"},
			{Predicate: "neverseen", Object: "n1:e4"},
			{Predicate: "linked", Object: "missing:uri"}, // demoted to a literal
		},
	}
	ms, err := QueryEntity(ctx, sub, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("new-entity query found no candidates")
	}
	if ms[0].Rule != matching.RuleName || ms[0].Candidate != kb.EntityID(5) {
		t.Fatalf("expected α match on entity 5 first, got %+v", ms[0])
	}
	for _, m := range ms {
		if m.Reciprocal {
			t.Fatalf("new entity cannot have reciprocal back-edges: %+v", m)
		}
	}

	// A new entity reusing an EXISTING E1 entity's unique name must not α
	// match (the name is no longer unique on the E1 side once it arrives).
	taken := EntityQuery{URI: "q:dup", Attrs: []kb.AttributeValue{{Attribute: "name", Value: "right item 4"}}}
	// "right item 4" exists only in K2 → α candidate allowed…
	ms, err = QueryEntity(ctx, sub, taken, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].Rule != matching.RuleName {
		t.Fatalf("K2-unique name should α-match, got %+v", ms)
	}
	// …while an E1-used name must not.
	used := EntityQuery{URI: "q:used", Attrs: []kb.AttributeValue{{Attribute: "name", Value: "left item 4"}}}
	ms, err = QueryEntity(ctx, sub, used, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Rule == matching.RuleName {
			t.Fatalf("name used by an E1 entity α-matched a new entity: %+v", m)
		}
	}

	if _, err := QueryEntity(ctx, sub, EntityQuery{SelfURI: "nope:nope"}, Config{}); err == nil {
		t.Fatal("unknown SelfURI must be rejected")
	}
	if ms, err := QueryEntity(ctx, sub, EntityQuery{URI: "q:empty"}, Config{}); err != nil || len(ms) != 0 {
		t.Fatalf("empty query = (%v, %v), want no candidates", ms, err)
	}
}

// BuildSubstrate + ResolveWith must equal Resolve byte for byte, across
// repeated and sharded consumption of one substrate.
func TestResolveWithMatchesResolve(t *testing.T) {
	ctx := context.Background()
	k1, k2 := skewedKBs(300)
	ref, err := Resolve(k1, k2, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refDigest := digest(t, ref)
	sub, err := BuildSubstrate(ctx, k1, k2, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		out, err := ResolveWith(ctx, sub, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if digest(t, out) != refDigest {
			t.Fatalf("ResolveWith round %d differs from Resolve", round)
		}
	}
	outSharded, err := ResolveWith(ctx, sub, Config{Workers: 4, ShardCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, outSharded) != refDigest {
		t.Fatal("sharded ResolveWith differs from Resolve")
	}
	// Queries and batch resolution share one substrate without interference.
	if _, err := QueryEntity(ctx, sub, QueryFromEntity(k1, 0), Config{}); err != nil {
		t.Fatal(err)
	}
	out, err := ResolveWith(ctx, sub, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, out) != refDigest {
		t.Fatal("ResolveWith after QueryEntity differs from Resolve")
	}
}

// OmitTokenBlocks must change nothing but Output.TokenBlocks.
func TestOmitTokenBlocks(t *testing.T) {
	k1, k2 := skewedKBs(300)
	full, err := Resolve(k1, k2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		lean, err := ResolveSharded(context.Background(), k1, k2, Config{OmitTokenBlocks: true}, shards)
		if err != nil {
			t.Fatal(err)
		}
		if lean.TokenBlocks != nil {
			t.Fatal("OmitTokenBlocks still materialized Output.TokenBlocks")
		}
		if !reflect.DeepEqual(lean.Matches, full.Matches) ||
			lean.RemovedByR4 != full.RemovedByR4 ||
			lean.GraphEdges != full.GraphEdges ||
			lean.PurgedBlocks != full.PurgedBlocks ||
			lean.PurgeThreshold != full.PurgeThreshold ||
			!reflect.DeepEqual(lean.NameAttrs1, full.NameAttrs1) ||
			!reflect.DeepEqual(lean.NameAttrs2, full.NameAttrs2) ||
			lean.NameBlocks.Len() != full.NameBlocks.Len() {
			t.Fatalf("OmitTokenBlocks changed decisions (shards=%d)", shards)
		}
	}
	// The lazy accessor still materializes the identical collection on ask.
	sub, err := BuildSubstrate(context.Background(), k1, k2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb := sub.TokenBlocks()
	if tb.Len() != full.TokenBlocks.Len() || tb.TotalComparisons() != full.TokenBlocks.TotalComparisons() {
		t.Fatalf("lazy TokenBlocks = (%d blocks, %d comparisons), want (%d, %d)",
			tb.Len(), tb.TotalComparisons(), full.TokenBlocks.Len(), full.TokenBlocks.TotalComparisons())
	}
	if sub.TokenBlocks() != tb {
		t.Fatal("TokenBlocks must cache its materialization")
	}
}
