// Substrate decomposition for snapshot serialization: SubstrateParts is the
// stable, exported view of everything BuildSubstrate froze — the two KBs,
// the normalized build config, name attributes, relation ranks, top-neighbor
// rows, name blocks and the purged token index — and SubstrateFromParts is
// its inverse. The name lookups are NOT serialized: stats.NewNameLookup is a
// cheap bitset over the (already loaded) schema, so the loader re-derives
// them. QueryState is the optional second half: the prewarmed per-entity
// query state (frozen graph, γ scope inputs, name-usage index) exported as
// flat data, so a snapshot-loaded substrate answers its first query without
// re-running graph construction.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// SubstrateParts is the flat decomposition of one substrate. Config must be
// the normalized configuration of the original build (it is installed
// verbatim — re-normalizing would turn a disabled Block Purging back on).
type SubstrateParts struct {
	K1, K2 *kb.KB
	Config Config

	NameAttrs1, NameAttrs2 []string
	Ranks1, Ranks2         []int32
	Top1, Top2             [][]kb.EntityID

	NameBlocks     *blocking.Collection
	TokenIndex     *blocking.TokenIndex
	PurgedBlocks   int
	PurgeThreshold int64

	Timings   Timings
	BuildWall time.Duration
}

// Parts decomposes the substrate for serialization. Slices alias the
// substrate and must be treated as read-only.
func (s *Substrate) Parts() SubstrateParts {
	return SubstrateParts{
		K1: s.k1, K2: s.k2, Config: s.cfg,
		NameAttrs1: s.nameAttrs1, NameAttrs2: s.nameAttrs2,
		Ranks1: s.ranks1, Ranks2: s.ranks2,
		Top1: s.top1, Top2: s.top2,
		NameBlocks: s.nameBlocks, TokenIndex: s.tokenIx,
		PurgedBlocks: s.purgedBlocks, PurgeThreshold: s.purgeThreshold,
		Timings: s.timings, BuildWall: s.buildWall,
	}
}

// RelationRanks returns the dense per-predicate importance ranks of each KB.
func (s *Substrate) RelationRanks() (ranks1, ranks2 []int32) { return s.ranks1, s.ranks2 }

// TopNeighbors returns the per-entity top-neighbor rows of each KB.
func (s *Substrate) TopNeighbors() (top1, top2 [][]kb.EntityID) { return s.top1, s.top2 }

// SubstrateFromParts reassembles an immutable substrate (the inverse of
// Parts). The name lookups are re-derived from the loaded schema; everything
// else is installed as-is, so ResolveWith and QueryEntity over the result
// are byte-identical to the originally built substrate.
func SubstrateFromParts(p SubstrateParts) (*Substrate, error) {
	if p.K1 == nil || p.K2 == nil || p.NameBlocks == nil || p.TokenIndex == nil {
		return nil, fmt.Errorf("core: substrate from parts: missing KB, name blocks or token index")
	}
	if len(p.Top1) != p.K1.Len() || len(p.Top2) != p.K2.Len() {
		return nil, fmt.Errorf("core: substrate from parts: top-neighbor rows (%d, %d) disagree with KB sizes (%d, %d)",
			len(p.Top1), len(p.Top2), p.K1.Len(), p.K2.Len())
	}
	if len(p.Ranks1) != p.K1.Schema().Preds() || len(p.Ranks2) != p.K2.Schema().Preds() {
		return nil, fmt.Errorf("core: substrate from parts: relation ranks disagree with schema sizes")
	}
	return &Substrate{
		k1: p.K1, k2: p.K2, cfg: p.Config,
		nameAttrs1: p.NameAttrs1, nameAttrs2: p.NameAttrs2,
		names1: stats.NewNameLookup(p.K1, p.NameAttrs1),
		names2: stats.NewNameLookup(p.K2, p.NameAttrs2),
		ranks1: p.Ranks1, ranks2: p.Ranks2,
		top1: p.Top1, top2: p.Top2,
		nameBlocks: p.NameBlocks, tokenIx: p.TokenIndex,
		purgedBlocks: p.PurgedBlocks, purgeThreshold: p.PurgeThreshold,
		timings: p.Timings, buildWall: p.BuildWall,
	}, nil
}

// NameUsage is the flat form of one name-usage index entry: how many
// entities of each side carry the normalized name, and the sole carrier per
// side when that count is 1 (the only case the α rule consults).
type NameUsage struct {
	Name   string
	N1, N2 int32
	E1, E2 kb.EntityID
}

// QueryState is the exported, flat form of the prewarmed per-entity query
// state: the frozen disjunctive blocking graph (Gamma1 left empty — γ rows
// are produced per query from the scope), the γ scope and the name-usage
// index sorted by name.
type QueryState struct {
	Graph *graph.Graph
	Scope *graph.Gamma1Scope
	Names []NameUsage
}

// ExportQueryState prewarms the substrate (if needed) and returns its query
// state in flat form for serialization. The Names slice is sorted by name.
func (s *Substrate) ExportQueryState(ctx context.Context) (*QueryState, error) {
	st, err := s.queryState(ctx)
	if err != nil {
		return nil, err
	}
	out := &QueryState{Graph: st.g, Scope: st.scope}
	if st.names != nil {
		out.Names = make([]NameUsage, 0, len(st.names))
		for n, u := range st.names {
			out.Names = append(out.Names, NameUsage{Name: n, N1: u.n1, N2: u.n2, E1: u.e1, E2: u.e2})
		}
		sort.Slice(out.Names, func(i, j int) bool { return out.Names[i].Name < out.Names[j].Name })
	} else {
		out.Names = st.sorted
	}
	return out, nil
}

// InstallQueryState installs a previously exported query state, so the first
// QueryEntity call pays no graph construction (the snapshot warm-start path).
// Names must be sorted by name; α probes then binary-search the slice
// instead of a map. Installing over an already built state replaces it.
func (s *Substrate) InstallQueryState(qs *QueryState) error {
	if qs == nil || qs.Graph == nil || qs.Scope == nil {
		return fmt.Errorf("core: install query state: missing graph or scope")
	}
	if len(qs.Graph.Alpha1) != s.k1.Len() || len(qs.Graph.Alpha2) != s.k2.Len() {
		return fmt.Errorf("core: install query state: graph sized (%d, %d), substrate (%d, %d)",
			len(qs.Graph.Alpha1), len(qs.Graph.Alpha2), s.k1.Len(), s.k2.Len())
	}
	for i := 1; i < len(qs.Names); i++ {
		if qs.Names[i-1].Name > qs.Names[i].Name {
			return fmt.Errorf("core: install query state: names not sorted at %d", i)
		}
	}
	st := &queryState{g: qs.Graph, scope: qs.Scope, sorted: qs.Names}
	n2, k := s.k2.Len(), s.cfg.TopK
	st.pool.New = func() any {
		return &querySlot{qs: graph.NewQueryScratch(n2, k), agg: matching.NewAggScratch()}
	}
	s.queryMu.Lock()
	s.query.Store(st)
	s.queryMu.Unlock()
	return nil
}

// QueryEngine returns a parallel engine sized to the substrate's configured
// worker count — the engine a loader hands to graph.NewGamma1Scope.
func (s *Substrate) QueryEngine() *parallel.Engine { return parallel.New(s.cfg.Workers) }
