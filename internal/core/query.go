// The per-entity query path: resolve ONE new (or re-described) entity
// against a frozen substrate without a batch run. QueryEntity tokenizes the
// description against the shared interner and schema, probes the purged
// TokenIndex and the name-usage index, runs the β/γ/rank-aggregation kernel
// for just that entity and returns ranked candidates with rule provenance —
// the progressive-resolution primitive of Simonini et al. applied to
// MinoanER's non-iterative rules. Queries reuse the batch scoreboards
// through a per-query scratch pool, so concurrent queries on one substrate
// are race-free and allocation-light.
package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// EntityQuery is one entity description to resolve against a substrate's K2.
// It mirrors what a kb.Builder would have ingested for an E1 entity:
// literal attribute values plus relation statements whose objects are K1
// entity URIs. Objects that do not resolve to a K1 entity are demoted to
// literal attributes, exactly as kb.Builder demotes unresolved URI objects
// at build time.
type EntityQuery struct {
	// URI labels the query entity (informational; it is never looked up).
	URI string
	// Attrs are the literal attribute statements.
	Attrs []kb.AttributeValue
	// Objects are the relation statements (predicate → object URI).
	Objects []QueryObject
	// SelfURI, when non-empty, names the K1 entity this query re-describes:
	// the unique-name rule then reproduces the batch α semantics for that
	// entity (its own name usage does not block a 1×1 name match) and the
	// reciprocity flag is evaluated against its back-edges. Leave empty for
	// a genuinely new entity.
	SelfURI string
}

// QueryObject is one relation statement of an EntityQuery.
type QueryObject struct {
	Predicate string
	Object    string
}

// QueryMatch is one ranked candidate for a queried entity.
type QueryMatch struct {
	// Candidate is the K2 entity; URI its identifier.
	Candidate kb.EntityID
	URI       string
	// Rule records which matching rule claims the candidate: R1 for a
	// unique-name match, R2 for a top value candidate with valueSim ≥ 1, R3
	// for the top rank-aggregation candidate, RuleNone for the remaining
	// ranked candidates (graph evidence without a rule claim).
	Rule matching.Rule
	// Score is the fused rank-aggregation score (θ·value + (1−θ)·neighbor
	// rank contributions); ValueSim and NeighborSim the retained β and γ
	// weights feeding it (0 when the candidate fell outside that row).
	Score       float64
	ValueSim    float64
	NeighborSim float64
	// Reciprocal reports R4's back-edge test: whether the candidate's own
	// pruned candidate rows point back at the re-described entity. Always
	// false for a query without SelfURI — a new entity cannot appear in the
	// frozen graph, so R4 is advisory there.
	Reciprocal bool
}

// QueryFromEntity builds the EntityQuery that re-describes an existing K1
// entity — statement for statement, with SelfURI set — so callers and tests
// can replay KB members through the query path.
func QueryFromEntity(k *kb.KB, id kb.EntityID) EntityQuery {
	d := k.Entity(id)
	q := EntityQuery{URI: d.URI, SelfURI: d.URI, Attrs: slices.Clone(d.Attrs)}
	for _, r := range d.Relations {
		q.Objects = append(q.Objects, QueryObject{Predicate: r.Predicate, Object: k.Entity(r.Object).URI})
	}
	return q
}

// nameUsers is one normalized name's usage across the KB pair: how many
// entities of each side carry it, and the sole carrier when that count is 1
// (the only case α consults).
type nameUsers struct {
	n1, n2 int32
	e1, e2 kb.EntityID
}

// queryState is the lazily built read-only state shared by every query on
// one substrate: the frozen disjunctive blocking graph of the pair (Gamma1
// left to the scope — per-query γ rows are computed on demand, never
// materialized for all of E1), the name-usage index behind the α rule, and
// the scratch pool.
type queryState struct {
	g     *graph.Graph
	scope *graph.Gamma1Scope
	// Exactly one of names/sorted is set: names is the map the lazy build
	// produces; sorted is the name-ordered flat index a snapshot install
	// provides (its strings may alias a memory-mapped region).
	names  map[string]nameUsers
	sorted []NameUsage
	pool   sync.Pool // *querySlot
}

// lookupName resolves one normalized name against whichever index form the
// state carries.
func (st *queryState) lookupName(n string) (nameUsers, bool) {
	if st.names != nil {
		u, ok := st.names[n]
		return u, ok
	}
	i, ok := slices.BinarySearchFunc(st.sorted, n, func(u NameUsage, target string) int {
		return strings.Compare(u.Name, target)
	})
	if !ok {
		return nameUsers{}, false
	}
	u := st.sorted[i]
	return nameUsers{n1: u.N1, n2: u.N2, e1: u.E1, e2: u.E2}, true
}

// querySlot is the scratch one in-flight query owns.
type querySlot struct {
	qs  *graph.QueryScratch
	agg *matching.AggScratch
}

// queryState returns the substrate's query state, building it on first use.
// The build is serialized by queryMu but retryable (unlike sync.Once): a
// cancelled context fails the build without poisoning the substrate.
func (s *Substrate) queryState(ctx context.Context) (*queryState, error) {
	if st := s.query.Load(); st != nil {
		return st, nil
	}
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if st := s.query.Load(); st != nil {
		return st, nil
	}
	eng := parallel.New(s.cfg.Workers)
	g, scope, _, err := graph.BuildShardedCtx(ctx, eng, graph.Input{
		K1: s.k1, K2: s.k2,
		NameBlocks: s.nameBlocks,
		TokenIndex: s.tokenIx,
		Top1:       s.top1,
		Top2:       s.top2,
		K:          s.cfg.TopK,
	}, []parallel.Span{{Lo: 0, Hi: s.k1.Len()}})
	if err != nil {
		return nil, err
	}
	st := &queryState{g: g, scope: scope, names: buildNameIndex(s)}
	n2, k := s.k2.Len(), s.cfg.TopK
	st.pool.New = func() any {
		return &querySlot{qs: graph.NewQueryScratch(n2, k), agg: matching.NewAggScratch()}
	}
	s.query.Store(st)
	return st, nil
}

// PrewarmQueries forces the lazy query state to exist, so the first
// QueryEntity call does not pay the one-time graph construction. Idempotent
// and safe to call concurrently.
func (s *Substrate) PrewarmQueries(ctx context.Context) error {
	_, err := s.queryState(ctx)
	return err
}

// buildNameIndex tallies every normalized name of both KBs. Per-entity names
// are already deduplicated by NameLookup.Names, so each entity counts once
// per name — the same multiplicity the name blocks see.
func buildNameIndex(s *Substrate) map[string]nameUsers {
	idx := make(map[string]nameUsers)
	for i := 0; i < s.k1.Len(); i++ {
		for _, n := range s.names1.Names(kb.EntityID(i)) {
			u := idx[n]
			u.n1++
			u.e1 = kb.EntityID(i)
			idx[n] = u
		}
	}
	for j := 0; j < s.k2.Len(); j++ {
		for _, n := range s.names2.Names(kb.EntityID(j)) {
			u := idx[n]
			u.n2++
			u.e2 = kb.EntityID(j)
			idx[n] = u
		}
	}
	return idx
}

// QueryEntity resolves one entity description against the substrate's K2
// and returns ranked candidates, best first: unique-name (α) candidates
// lead in entity order — the batch matcher commits R1 before everything —
// followed by the fused rank-aggregation order (decreasing score, ties
// toward the lower entity ID). Of cfg only the matching-side parameters
// apply (Theta, Rules); candidate rows are pruned to the substrate's TopK,
// and the substrate's frozen name attributes, relation ranks and purged
// index drive the probes. For a query that re-describes a K1 entity
// (SelfURI), the emitted rows and rule claims equal the batch pipeline's
// per-entity view of that entity — the equivalence the property tests pin.
//
// Concurrent QueryEntity calls on one substrate are race-free: the shared
// state is read-only and each call takes its own scratch from the pool.
func QueryEntity(ctx context.Context, sub *Substrate, q EntityQuery, cfg Config) ([]QueryMatch, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	st, err := sub.queryState(ctx)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	self := kb.NoEntity
	if q.SelfURI != "" {
		if self = sub.k1.Lookup(q.SelfURI); self == kb.NoEntity {
			return nil, fmt.Errorf("core: query SelfURI %q is not a K1 entity", q.SelfURI)
		}
	}
	mc := *cfg.Rules
	mc.Theta = cfg.Theta

	// Statement normalization, mirroring kb.Builder: objects resolving to a
	// K1 entity are relations, everything else a literal attribute.
	attrs := q.Attrs
	type relStmt struct {
		group int32 // PredID, or a synthetic key past the schema for unknown predicates
		rank  int32
		obj   kb.EntityID
	}
	var rels []relStmt
	var extraAttrs []kb.AttributeValue
	var unknownPreds map[string]int32
	sch := sub.k1.Schema()
	for _, o := range q.Objects {
		obj := sub.k1.Lookup(o.Object)
		if obj == kb.NoEntity {
			extraAttrs = append(extraAttrs, kb.AttributeValue{Attribute: o.Predicate, Value: o.Object})
			continue
		}
		stmt := relStmt{obj: obj}
		if pid, ok := sch.LookupPred(o.Predicate); ok {
			stmt.group = int32(pid)
			stmt.rank = sub.ranks1[pid]
		} else {
			// A predicate K1 never saw has no global importance; it sorts
			// after every known predicate and ranks below all of them.
			if unknownPreds == nil {
				unknownPreds = make(map[string]int32)
			}
			key, ok := unknownPreds[o.Predicate]
			if !ok {
				key = int32(sch.Preds()) + int32(len(unknownPreds))
				unknownPreds[o.Predicate] = key
			}
			stmt.group = key
			stmt.rank = math.MaxInt32
		}
		rels = append(rels, stmt)
	}
	if len(extraAttrs) > 0 {
		attrs = append(slices.Clone(attrs), extraAttrs...)
	}

	// β probe: the description's sorted distinct tokens, resolved against
	// the shared dictionary WITHOUT interning (queries never mutate the
	// substrate); unknown tokens index no block and are dropped, which is
	// exactly how the batch walk treats them.
	tok := kb.NewTokenizer()
	vals := make([]string, 0, len(attrs))
	for _, av := range attrs {
		vals = append(vals, av.Value)
	}
	dict := sub.k1.TokenDict()
	var tids []kb.TokenID
	for _, t := range tok.TokenSetOf(vals...) {
		if id, ok := dict.Lookup(t); ok {
			tids = append(tids, id)
		}
	}

	slot := st.pool.Get().(*querySlot)
	defer st.pool.Put(slot)
	beta := graph.BetaRowForTokens(sub.tokenIx, tids, true, slot.qs, sub.cfg.TopK)

	// γ probe: the query's top-neighbor list over the frozen relation ranks,
	// propagated through the frozen β adjacency.
	var gamma []graph.Edge
	if len(rels) > 0 {
		slices.SortFunc(rels, func(a, b relStmt) int {
			if a.group != b.group {
				if a.group < b.group {
					return -1
				}
				return 1
			}
			return 0
		})
		groups := make([]int32, len(rels))
		ranks := make([]int32, len(rels))
		objs := make([]kb.EntityID, len(rels))
		for i, r := range rels {
			groups[i], ranks[i], objs[i] = r.group, r.rank, r.obj
		}
		top := stats.TopNeighborsOf(groups, ranks, objs, sub.cfg.RelN)
		gamma = st.scope.RowFor(top, slot.qs)
	}

	// α probe: a normalized name shared with exactly one K2 entity and used
	// by no K1 entity other than the queried one itself.
	var alpha []kb.EntityID
	if mc.EnableR1 {
		d := kb.Description{Attrs: attrs}
		for _, n := range stats.NamesOf(&d, sub.nameAttrs1) {
			u, ok := st.lookupName(n)
			if !ok || u.n2 != 1 {
				continue
			}
			if self != kb.NoEntity {
				if u.n1 == 1 && u.e1 == self {
					alpha = append(alpha, u.e2)
				}
			} else if u.n1 == 0 {
				alpha = append(alpha, u.e2)
			}
		}
		slices.Sort(alpha)
		alpha = slices.Compact(alpha)
	}

	// Fused ranking (R3's scoring); element 0 is the batch aggregate pick.
	ranking := matching.RankAggregateRow(slot.agg, beta, gamma, mc.Theta, mc.UseNeighbors)

	r2cand := kb.NoEntity
	if mc.EnableR2 && len(beta) > 0 && beta[0].Weight >= 1 {
		r2cand = beta[0].To
	}
	weightIn := func(row []graph.Edge, to kb.EntityID) float64 {
		for _, e := range row {
			if e.To == to {
				return e.Weight
			}
		}
		return 0
	}
	emit := func(c kb.EntityID, rule matching.Rule, score float64) QueryMatch {
		m := QueryMatch{
			Candidate:   c,
			URI:         sub.k2.URI(c),
			Rule:        rule,
			Score:       score,
			ValueSim:    weightIn(beta, c),
			NeighborSim: weightIn(gamma, c),
		}
		if self != kb.NoEntity {
			m.Reciprocal = st.g.HasDirectedEdge2(c, self)
		}
		return m
	}

	out := make([]QueryMatch, 0, len(alpha)+len(ranking))
	for _, c := range alpha {
		out = append(out, emit(c, matching.RuleName, weightIn(ranking, c)))
	}
	for i, e := range ranking {
		if slices.Contains(alpha, e.To) {
			continue
		}
		rule := matching.RuleNone
		switch {
		case e.To == r2cand:
			rule = matching.RuleValue
		case i == 0 && mc.EnableR3:
			rule = matching.RuleRank
		}
		out = append(out, emit(e.To, rule, e.Weight))
	}
	return out, nil
}
