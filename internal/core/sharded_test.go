package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/testkb"
)

// digest serializes everything the pipeline is contracted to reproduce —
// matches with provenance, R4 removals, graph edge count, block statistics,
// purge state and name attributes — and hashes it, so sharded and monolithic
// runs can be compared as a single value.
func digest(t *testing.T, out *Output) [32]byte {
	t.Helper()
	h := sha256.New()
	for _, m := range out.Matches {
		fmt.Fprintf(h, "m %d %d %s\n", m.Pair.E1, m.Pair.E2, m.Rule)
	}
	fmt.Fprintf(h, "r4 %d edges %d purged %d threshold %d\n",
		out.RemovedByR4, out.GraphEdges, out.PurgedBlocks, out.PurgeThreshold)
	fmt.Fprintf(h, "names %v %v\n", out.NameAttrs1, out.NameAttrs2)
	fmt.Fprintf(h, "blocks %d %d comparisons %d %d\n",
		out.NameBlocks.Len(), out.TokenBlocks.Len(),
		out.NameBlocks.TotalComparisons(), out.TokenBlocks.TotalComparisons())
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func shardCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// ResolveSharded must be sha256-identical to Resolve on the skewed
// determinism fixture for every shard count.
func TestResolveShardedIdenticalOnSkewedInput(t *testing.T) {
	k1, k2 := skewedKBs(300)
	ref, err := Resolve(k1, k2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Matches) == 0 {
		t.Fatal("skewed fixture produced no matches; test is vacuous")
	}
	want := digest(t, ref)
	for _, p := range shardCounts() {
		got, err := ResolveSharded(context.Background(), k1, k2, Config{}, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if digest(t, got) != want {
			t.Fatalf("P=%d: sharded output differs from monolithic:\n--- monolithic\n%s--- sharded\n%s",
				p, renderMatches(ref), renderMatches(got))
		}
	}
}

// The identity must also hold on all four Table-1 preset profiles (scaled
// down to keep the test fast) — the workloads with realistic token, name and
// relation structure.
func TestResolveShardedIdenticalOnPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("preset sweep is slow")
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, profile := range datagen.Presets() {
		d, err := datagen.Generate(datagen.Scale(profile, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Resolve(d.K1, d.K2, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Matches) == 0 {
			t.Fatalf("%s: no matches; test is vacuous", profile.Name)
		}
		want := digest(t, ref)
		for _, p := range counts {
			got, err := ResolveSharded(context.Background(), d.K1, d.K2, Config{}, p)
			if err != nil {
				t.Fatalf("%s P=%d: %v", profile.Name, p, err)
			}
			if digest(t, got) != want {
				t.Errorf("%s: sharded output differs at P=%d", profile.Name, p)
			}
		}
	}
}

// Sharding composes with the rule ablations: R4 relies on shard-local γ
// evidence, R3-off still builds γ rows for R4, and the No-Neighbors ablation
// still counts γ edges — each must match the monolithic run exactly.
func TestResolveShardedRuleAblations(t *testing.T) {
	k1, k2 := skewedKBs(120)
	cases := map[string]matching.Config{
		"all":          matching.DefaultConfig(),
		"noR3":         {Theta: 0.6, EnableR1: true, EnableR2: true, EnableR4: true, UseNeighbors: true},
		"noR4":         {Theta: 0.6, EnableR1: true, EnableR2: true, EnableR3: true, UseNeighbors: true},
		"noNeighbors":  {Theta: 0.6, EnableR1: true, EnableR2: true, EnableR3: true, EnableR4: true},
		"onlyR3andR4":  {Theta: 0.6, EnableR3: true, EnableR4: true, UseNeighbors: true},
		"nothingButR1": {Theta: 0.6, EnableR1: true},
	}
	for name, rules := range cases {
		rules := rules
		cfg := Config{Rules: &rules}
		ref, err := Resolve(k1, k2, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := digest(t, ref)
		for _, p := range []int{2, 5} {
			got, err := ResolveSharded(context.Background(), k1, k2, cfg, p)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			if digest(t, got) != want {
				t.Errorf("%s: sharded output differs at P=%d", name, p)
			}
		}
	}
}

// The ShardCount and MaxShardBytes knobs must route ResolveContext through
// the sharded engine and still produce the monolithic output.
func TestResolveContextShardRouting(t *testing.T) {
	k1, k2 := skewedKBs(150)
	ref, err := Resolve(k1, k2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := digest(t, ref)

	byCount, err := ResolveContext(context.Background(), k1, k2, Config{ShardCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, byCount) != want {
		t.Error("ShardCount=3 output differs from monolithic")
	}

	// A tiny byte budget forces many shards.
	byBytes, err := ResolveContext(context.Background(), k1, k2, Config{MaxShardBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, byBytes) != want {
		t.Error("MaxShardBytes routing output differs from monolithic")
	}
}

func TestEffectiveShards(t *testing.T) {
	base := func(c Config) Config {
		n, err := c.normalize()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := base(Config{}).effectiveShards(1000); got != 1 {
		t.Errorf("default shards = %d, want 1", got)
	}
	if got := base(Config{ShardCount: 8}).effectiveShards(1000); got != 8 {
		t.Errorf("explicit shards = %d, want 8", got)
	}
	if got := base(Config{ShardCount: 50}).effectiveShards(10); got != 10 {
		t.Errorf("shards clamp to |E1| = %d, want 10", got)
	}
	// K=15 → 264 bytes per row; 26400 bytes per shard → 100 rows per shard.
	if got := base(Config{MaxShardBytes: 26400}).effectiveShards(1000); got != 10 {
		t.Errorf("budget shards = %d, want 10", got)
	}
	// Explicit count wins over the budget.
	if got := base(Config{ShardCount: 2, MaxShardBytes: 1}).effectiveShards(1000); got != 2 {
		t.Errorf("explicit-over-budget shards = %d, want 2", got)
	}
	if _, err := (Config{ShardCount: -1}).normalize(); err == nil {
		t.Error("negative ShardCount must be rejected")
	}
	if _, err := (Config{MaxShardBytes: -1}).normalize(); err == nil {
		t.Error("negative MaxShardBytes must be rejected")
	}
}

func TestShardSpans(t *testing.T) {
	if spans := shardSpans(0, 4); spans != nil {
		t.Errorf("shardSpans(0, 4) = %v, want nil", spans)
	}
	spans := shardSpans(10, 3)
	if len(spans) != 3 {
		t.Fatalf("shardSpans(10, 3) = %v, want 3 spans", spans)
	}
	lo := 0
	total := 0
	for _, s := range spans {
		if s.Lo != lo || s.Hi <= s.Lo {
			t.Fatalf("spans not contiguous ascending: %v", spans)
		}
		lo = s.Hi
		total += s.Len()
	}
	if total != 10 || lo != 10 {
		t.Errorf("spans do not cover [0,10): %v", spans)
	}
	if spans := shardSpans(2, 8); len(spans) != 2 {
		t.Errorf("shardSpans(2, 8) = %v, want 2 non-empty spans", spans)
	}
}

func TestResolveShardedEmptyKBs(t *testing.T) {
	out, err := ResolveSharded(context.Background(),
		kb.NewBuilder("a").Build(), kb.NewBuilder("b").Build(), Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) != 0 || out.GraphEdges != 0 {
		t.Errorf("empty sharded run produced output: %+v", out)
	}
}

// A shard count far above |E1| degrades to one entity per shard and still
// reproduces the monolithic output (Figure 1 fixture).
func TestResolveShardedMoreShardsThanEntities(t *testing.T) {
	w, d := testkb.Figure1()
	ref, err := Resolve(w, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResolveSharded(context.Background(), w, d, Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if digest(t, got) != digest(t, ref) {
		t.Error("per-entity sharding differs from monolithic")
	}
}

// An expired deadline must abort the sharded pipeline promptly, like the
// monolithic one.
func TestResolveShardedContextCancelled(t *testing.T) {
	k1, k2 := skewedKBs(200)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err := ResolveSharded(ctx, k1, k2, Config{}, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sharded past deadline = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}
