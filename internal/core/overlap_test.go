package core

import (
	"context"
	"reflect"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/parallel"
)

// The overlapped (workers > 1) substrate DAG must produce a substrate
// identical to the sequential topological build, independent of which chain
// finishes first — and its name blocks must equal the retained
// string-grouped reference on the skewed fixture. Repeated multi-worker
// builds vary goroutine interleaving; the CI race step runs this test at
// workers=2 under -race, where barrier-removal races would surface.
func TestSubstrateOverlapDeterminism(t *testing.T) {
	k1, k2 := skewedKBs(300)
	ctx := context.Background()
	cfg, err := Config{Workers: 1}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := buildSubstrate(ctx, parallel.New(1), k1, k2, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.nameBlocks.Len() == 0 {
		t.Fatal("skewed fixture produced no name blocks; test is vacuous")
	}
	mapRef, err := blocking.NameBlocksMapRef(ctx, parallel.New(1), k1, k2, ref.nameAttrs1, ref.nameAttrs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.nameBlocks, mapRef) {
		t.Fatal("substrate name blocks differ from the string-grouped reference")
	}
	refTokens := ref.tokenIx.Collection()
	for _, workers := range []int{2, 3, 8} {
		for rep := 0; rep < 3; rep++ {
			sub, err := buildSubstrate(ctx, parallel.New(workers), k1, k2, cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sub.nameAttrs1, ref.nameAttrs1) || !reflect.DeepEqual(sub.nameAttrs2, ref.nameAttrs2) {
				t.Fatalf("workers=%d: name attributes differ from sequential build", workers)
			}
			if !reflect.DeepEqual(sub.nameBlocks, ref.nameBlocks) {
				t.Fatalf("workers=%d: name blocks differ from sequential build", workers)
			}
			if !reflect.DeepEqual(sub.tokenIx.Collection(), refTokens) {
				t.Fatalf("workers=%d: token blocks differ from sequential build", workers)
			}
			if sub.purgeThreshold != ref.purgeThreshold || sub.purgedBlocks != ref.purgedBlocks {
				t.Fatalf("workers=%d: purge state differs from sequential build", workers)
			}
			if !reflect.DeepEqual(sub.ranks1, ref.ranks1) || !reflect.DeepEqual(sub.ranks2, ref.ranks2) {
				t.Fatalf("workers=%d: relation ranks differ from sequential build", workers)
			}
			if !reflect.DeepEqual(sub.top1, ref.top1) || !reflect.DeepEqual(sub.top2, ref.top2) {
				t.Fatalf("workers=%d: top-neighbor rows differ from sequential build", workers)
			}
		}
	}
}

// The reported stage timings must stay additive under the DAG build:
// Statistics is the sum of its three sub-clocks and Blocking the sum of its
// two, at any worker count — the contract the bench gate's columns rely on.
func TestSubstrateTimingsAdditive(t *testing.T) {
	k1, k2 := skewedKBs(120)
	cfg, err := Config{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		sub, err := buildSubstrate(context.Background(), parallel.New(workers), k1, k2, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		tm := sub.timings
		if tm.Statistics != tm.StatsAttributes+tm.StatsRelations+tm.StatsTopNeighbors {
			t.Errorf("workers=%d: Statistics %v != sum of sub-stages", workers, tm.Statistics)
		}
		if tm.Blocking != tm.BlockingName+tm.BlockingToken {
			t.Errorf("workers=%d: Blocking %v != BlockingName+BlockingToken", workers, tm.Blocking)
		}
		if tm.BlockingName <= 0 || tm.BlockingToken <= 0 {
			t.Errorf("workers=%d: blocking sub-clocks not populated: %v / %v", workers, tm.BlockingName, tm.BlockingToken)
		}
	}
}
