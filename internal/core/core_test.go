package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/testkb"
)

func TestResolveFigure1(t *testing.T) {
	w, d := testkb.Figure1()
	out, err := Resolve(w, d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gt := eval.NewGroundTruth(mustPairs(t, w, d, [][2]string{
		{"w:Restaurant1", "d:Restaurant2"},
		{"w:JohnLakeA", "d:JonnyLake"},
		{"w:Bray", "d:Berkshire"},
		{"w:UK", "d:England"},
	}))
	m := eval.Evaluate(out.Pairs(), gt)
	// The fixture's first three pairs are detectable; UK–England share no
	// evidence, so recall 0.75 is the ceiling... unless neighbor evidence
	// recovers it. Require at least the strong pairs.
	if m.TruePositives < 2 {
		t.Errorf("found %d true matches, want ≥ 2 (%v)", m.TruePositives, out.Matches)
	}
	if out.GraphEdges == 0 {
		t.Error("graph has no edges")
	}
	if out.Timings.Total <= 0 {
		t.Error("timings not recorded")
	}
	if len(out.NameAttrs1) != 2 || len(out.NameAttrs2) != 2 {
		t.Errorf("name attrs = %v / %v, want 2 each", out.NameAttrs1, out.NameAttrs2)
	}
}

func mustPairs(t *testing.T, k1, k2 *kb.KB, uris [][2]string) []eval.Pair {
	t.Helper()
	pairs, skipped := eval.PairsFromURIs(k1, k2, uris)
	if skipped != 0 {
		t.Fatalf("ground truth URIs missing from KBs")
	}
	return pairs
}

func TestConfigNormalization(t *testing.T) {
	// Zero config gets defaults.
	c, err := Config{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.NameK != 2 || c.TopK != 15 || c.RelN != 3 || c.Theta != 0.6 {
		t.Errorf("defaults = %+v", c)
	}
	if c.MaxBlockFraction != DefaultConfig().MaxBlockFraction {
		t.Errorf("zero MaxBlockFraction = %v, want the default %v (purging silently disabled)",
			c.MaxBlockFraction, DefaultConfig().MaxBlockFraction)
	}
	if c.Rules == nil || !c.Rules.EnableR1 {
		t.Error("default rules must enable R1")
	}
}

func TestConfigNoBlockPurgingSentinel(t *testing.T) {
	c, err := Config{MaxBlockFraction: NoBlockPurging}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxBlockFraction != 0 {
		t.Errorf("NoBlockPurging normalized to %v, want 0 (disabled)", c.MaxBlockFraction)
	}
	// End to end: the sentinel must leave every block unpurged.
	w, d := testkb.Figure1()
	out, err := Resolve(w, d, Config{MaxBlockFraction: NoBlockPurging})
	if err != nil {
		t.Fatal(err)
	}
	if out.PurgedBlocks != 0 || out.PurgeThreshold != 0 {
		t.Errorf("NoBlockPurging still purged %d blocks (threshold %d)", out.PurgedBlocks, out.PurgeThreshold)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Theta: 1.5},
		{Theta: -0.1},
		{TopK: -1},
		{NameK: -2},
		{RelN: -3},
	}
	for _, c := range cases {
		if _, err := Resolve(kb.NewBuilder("a").Build(), kb.NewBuilder("b").Build(), c); err == nil {
			t.Errorf("config %+v should be rejected", c)
		} else if !strings.Contains(err.Error(), "core: invalid config") {
			t.Errorf("unexpected error text: %v", err)
		}
	}
}

func TestResolveEmptyKBs(t *testing.T) {
	out, err := Resolve(kb.NewBuilder("a").Build(), kb.NewBuilder("b").Build(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) != 0 {
		t.Errorf("empty KBs produced matches: %v", out.Matches)
	}
}

func TestResolveDeterministicAcrossWorkers(t *testing.T) {
	w, d := testkb.Figure1()
	ref, err := Resolve(w, d, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got, err := Resolve(w, d, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Matches, ref.Matches) {
			t.Fatalf("matches differ with %d workers", workers)
		}
	}
}

// skewedKBs builds a KB pair whose token blocks follow a heavy-tailed size
// distribution: a handful of stop-word-like tokens shared by most entities
// plus unique tokens per pair. This is the workload that exercises the
// dynamic chunked scheduler — static spans would process the skewed
// entities in one straggling partition.
func skewedKBs(n int) (*kb.KB, *kb.KB) {
	b1 := kb.NewBuilder("S1")
	b2 := kb.NewBuilder("S2")
	for i := 0; i < n; i++ {
		u1 := b1.AddEntity(fmt.Sprintf("s1:e%d", i))
		u2 := b2.AddEntity(fmt.Sprintf("s2:e%d", i))
		// Power-law-ish sharing: entity i carries every popular token p
		// with p dividing i, so token p appears in ~n/p descriptions.
		label1 := fmt.Sprintf("uniq%dtok", i)
		label2 := fmt.Sprintf("uniq%dtok", i)
		for p := 1; p <= 16; p++ {
			if i%p == 0 {
				label1 += fmt.Sprintf(" pop%d", p)
				label2 += fmt.Sprintf(" pop%d", p)
			}
		}
		b1.AddLiteral(u1, "label", label1)
		b2.AddLiteral(u2, "label", label2)
		if i > 0 {
			b1.AddObject(u1, "linked", fmt.Sprintf("s1:e%d", i-1))
			b2.AddObject(u2, "linked", fmt.Sprintf("s2:e%d", i-1))
		}
	}
	return b1.Build(), b2.Build()
}

// renderMatches serializes matches so worker-count runs can be compared
// byte for byte.
func renderMatches(out *Output) string {
	var sb strings.Builder
	for _, m := range out.Matches {
		fmt.Fprintf(&sb, "%d\t%d\t%s\n", m.Pair.E1, m.Pair.E2, m.Rule)
	}
	return sb.String()
}

// The dynamic chunked scheduler (used by blocking, graph construction and
// matching) must keep Resolve byte-identical for any worker count, even on
// a skew-heavy workload.
func TestResolveDeterministicOnSkewedInput(t *testing.T) {
	k1, k2 := skewedKBs(300)
	ref, err := Resolve(k1, k2, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Matches) == 0 {
		t.Fatal("skewed fixture produced no matches; test is vacuous")
	}
	refBytes := renderMatches(ref)
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got, err := Resolve(k1, k2, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if gotBytes := renderMatches(got); gotBytes != refBytes {
			t.Fatalf("matches not byte-identical with %d workers:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, refBytes, workers, gotBytes)
		}
	}
}

func TestResolveContextCancelled(t *testing.T) {
	w, d := testkb.Figure1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ResolveContext(ctx, w, d, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ResolveContext on cancelled ctx = (%v, %v), want context.Canceled", out, err)
	}
	if out != nil {
		t.Error("cancelled ResolveContext must not return partial output")
	}
}

// An already-expired deadline must abort the pipeline promptly with
// ctx.Err() instead of resolving the whole (non-trivial) input.
func TestResolveContextDeadlinePrompt(t *testing.T) {
	k1, k2 := skewedKBs(400)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err := ResolveContext(ctx, k1, k2, DefaultConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ResolveContext past deadline = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestResolveContextBackgroundMatchesResolve(t *testing.T) {
	w, d := testkb.Figure1()
	a, err := Resolve(w, d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResolveContext(context.Background(), w, d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Matches, b.Matches) {
		t.Error("Resolve and ResolveContext(Background) disagree")
	}
}

func TestResolveIdenticalKBs(t *testing.T) {
	// Matching a KB against a copy of itself must recover the identity
	// mapping with high recall: every description is its own best match.
	w, _ := testkb.Figure1()
	w2 := testkb.Clone(w)
	out, err := Resolve(w, w2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var gtPairs []eval.Pair
	for i := 0; i < w.Len(); i++ {
		gtPairs = append(gtPairs, eval.Pair{E1: kb.EntityID(i), E2: kb.EntityID(i)})
	}
	m := eval.Evaluate(out.Pairs(), eval.NewGroundTruth(gtPairs))
	if m.Recall < 0.75 {
		t.Errorf("identity resolution recall = %v, want ≥ 0.75 (%v)", m.Recall, out.Matches)
	}
}

func TestRuleAblationViaConfig(t *testing.T) {
	w, d := testkb.Figure1()
	rules := matching.Config{EnableR1: true, UseNeighbors: true}
	out, err := Resolve(w, d, Config{Rules: &rules})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Matches {
		if m.Rule != matching.RuleName {
			t.Errorf("R1-only config produced rule %v", m.Rule)
		}
	}
}

func TestPurgingReportsStats(t *testing.T) {
	// Build KBs with a stop-word token shared by everyone, small budget
	// forces purging.
	b1 := kb.NewBuilder("A")
	b2 := kb.NewBuilder("B")
	for i := 0; i < 30; i++ {
		u1 := b1.AddEntity(string(rune('a' + i)))
		b1.AddLiteral(u1, "label", "common stopword unique"+string(rune('a'+i)))
		u2 := b2.AddEntity(string(rune('A' + i)))
		b2.AddLiteral(u2, "label", "common stopword unique"+string(rune('a'+i)))
	}
	cfg := DefaultConfig()
	cfg.MaxBlockFraction = 0.05 // blocks above 30·30·0.05 = 45 comparisons purged
	out, err := Resolve(b1.Build(), b2.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.PurgedBlocks == 0 {
		t.Errorf("expected stop-word blocks to be purged; stats: %+v", out)
	}
	// The unique tokens still match everyone correctly.
	if len(out.Matches) < 25 {
		t.Errorf("purging destroyed recall: %d matches", len(out.Matches))
	}
}
