// Package core wires the MinoanER stages into the end-to-end, non-iterative,
// massively parallel pipeline of the paper (Figure 4): statistics extraction
// (names, relation importance, top neighbors), composite blocking (name ∥
// token, with Block Purging), disjunctive blocking graph construction
// (Algorithm 1) and the four-rule matching process (Algorithm 2).
//
// The pipeline is configured by the paper's four parameters — k (name
// attributes), K (candidates per node), N (top relations) and θ (rank
// aggregation trade-off) — plus the worker count of the parallel engine.
package core

import (
	"context"
	"fmt"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/eval"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
)

// Config holds the MinoanER parameters. The defaults reproduce the paper's
// suggested global configuration (k, K, N, θ) = (2, 15, 3, 0.6) (§6.1).
type Config struct {
	// NameK (paper: k) is the number of top name attributes per KB.
	NameK int
	// TopK (paper: K) is the number of candidates kept per node per weight.
	TopK int
	// RelN (paper: N) is the number of most important relations per entity.
	RelN int
	// Theta (paper: θ) trades value-based against neighbor-based ranks in R3.
	Theta float64
	// MaxBlockFraction is the Block Purging cap (§3.3): token blocks whose
	// comparison count exceeds this fraction of |E1|·|E2| correspond to
	// highly frequent, stop-word-like tokens and are removed. The paper
	// reports that purging leaves two orders of magnitude fewer comparisons
	// than brute force without hurting recall. Zero selects the paper's
	// default (0.0005), like the other parameters; set NoBlockPurging (or
	// any negative value) to disable purging explicitly.
	MaxBlockFraction float64
	// Workers sets the parallel engine size; 0 uses all cores.
	Workers int
	// ShardCount (P) splits E1 into P contiguous entity shards and runs the
	// per-entity stages (top-neighbor extraction, β/γ rows, rank
	// aggregation) one shard at a time with bounded transient memory —
	// see ResolveSharded. 0 or 1 selects the monolithic pipeline unless
	// MaxShardBytes implies a larger count. Output is byte-identical to the
	// monolithic run for every value.
	ShardCount int
	// MaxShardBytes caps the estimated size of the dominant per-shard
	// structure (the shard's γ candidate rows); when ShardCount is 0 the
	// shard count is derived from it. 0 means no byte-based cap.
	MaxShardBytes int64
	// OmitTokenBlocks skips materializing the historical token-block
	// collection in Output.TokenBlocks (nil instead). The collection exists
	// only for Table-2 statistics — graph construction walks the columnar
	// TokenIndex directly — so omitting it changes no match, provenance or
	// edge count; long-lived substrates serving queries avoid pinning it.
	OmitTokenBlocks bool
	// Rules toggles individual matching rules and neighbor evidence; the
	// zero value means "all rules enabled" (see normalize).
	Rules *matching.Config
}

// NoBlockPurging is the MaxBlockFraction sentinel that disables Block
// Purging explicitly. (A zero MaxBlockFraction means "use the default",
// consistent with every other Config field.)
const NoBlockPurging = -1.0

// DefaultConfig returns the paper's global configuration.
func DefaultConfig() Config {
	return Config{
		NameK:            2,
		TopK:             15,
		RelN:             3,
		Theta:            0.6,
		MaxBlockFraction: 0.0005,
	}
}

// normalize fills zero fields with defaults and validates ranges.
func (c Config) normalize() (Config, error) {
	d := DefaultConfig()
	if c.NameK == 0 {
		c.NameK = d.NameK
	}
	if c.TopK == 0 {
		c.TopK = d.TopK
	}
	if c.RelN == 0 {
		c.RelN = d.RelN
	}
	if c.Theta == 0 {
		c.Theta = d.Theta
	}
	if c.MaxBlockFraction == 0 {
		c.MaxBlockFraction = d.MaxBlockFraction
	}
	if c.MaxBlockFraction < 0 {
		c.MaxBlockFraction = 0 // explicitly disabled via NoBlockPurging
	}
	if c.NameK < 0 || c.TopK <= 0 || c.RelN < 0 {
		return c, fmt.Errorf("core: invalid config: k=%d K=%d N=%d must be non-negative (K positive)", c.NameK, c.TopK, c.RelN)
	}
	if c.ShardCount < 0 || c.MaxShardBytes < 0 {
		return c, fmt.Errorf("core: invalid config: ShardCount=%d MaxShardBytes=%d must be non-negative", c.ShardCount, c.MaxShardBytes)
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return c, fmt.Errorf("core: invalid config: θ=%v must lie in (0,1)", c.Theta)
	}
	if c.Rules == nil {
		mc := matching.DefaultConfig()
		c.Rules = &mc
	}
	return c, nil
}

// Timings records wall-clock durations per pipeline stage; the matching
// share of total time is reported in §6.2. The statistics stage is further
// broken into its three sub-stages (each one barrier of Figure 4's left
// column) so the benchmark-regression gate can pin the columnar statistics
// substrate per pass, not just in aggregate.
type Timings struct {
	Statistics time.Duration
	// StatsAttributes covers attribute-importance / name discovery for both
	// KBs; StatsRelations the relation-importance pass; StatsTopNeighbors
	// the per-entity top-neighbor extraction.
	StatsAttributes   time.Duration
	StatsRelations    time.Duration
	StatsTopNeighbors time.Duration
	// Blocking is the sum of its two sub-clocks: BlockingName covers the
	// columnar name index build, BlockingToken the token index build plus
	// Block Purging. The substrate build overlaps independent sub-stages
	// when Workers > 1, so Statistics and Blocking are CPU-work sums (their
	// sub-stages' own clocks), while Total reflects the real, shorter
	// elapsed wall time.
	Blocking      time.Duration
	BlockingName  time.Duration
	BlockingToken time.Duration
	Graph         time.Duration
	// GraphBeta covers name evidence plus both β directions (one concurrent
	// barrier); GraphGamma the adjacency merges, in-neighbor reversals and
	// both γ directions — in the sharded pipeline including the E1 γ rows
	// produced on demand during matching. They sum to slightly less than
	// Graph, which also counts input assembly around the two phases.
	GraphBeta  time.Duration
	GraphGamma time.Duration
	Matching   time.Duration
	Total      time.Duration
}

// Output is the result of one pipeline run.
type Output struct {
	// Matches holds the detected correspondences with rule provenance.
	Matches []matching.Match
	// RemovedByR4 counts reciprocity-filtered matches.
	RemovedByR4 int
	// NameBlocks / TokenBlocks are the block collections after purging
	// (Table 2 statistics are computed from them).
	NameBlocks, TokenBlocks *blocking.Collection
	// PurgedBlocks is the number of token blocks removed by Block Purging;
	// PurgeThreshold the applied per-block comparison cap (0 = none).
	PurgedBlocks   int
	PurgeThreshold int64
	// GraphEdges is the number of directed edges retained after pruning.
	GraphEdges int
	// NameAttrs1/NameAttrs2 are the discovered name attributes per KB.
	NameAttrs1, NameAttrs2 []string
	// Timings holds per-stage durations.
	Timings Timings
}

// Pairs returns the bare match pairs.
func (o *Output) Pairs() []eval.Pair {
	out := make([]eval.Pair, len(o.Matches))
	for i, m := range o.Matches {
		out[i] = m.Pair
	}
	return out
}

// Resolve runs the full MinoanER pipeline on two clean KBs.
func Resolve(k1, k2 *kb.KB, cfg Config) (*Output, error) {
	return ResolveContext(context.Background(), k1, k2, cfg)
}

// ResolveContext runs the full MinoanER pipeline on two clean KBs under the
// given context: it builds the substrate (stages 1–2) and resolves with it
// (stages 3–4) in one composition — byte-identical to the historical
// monolithic pipeline, as the pinned-digest tests prove. Cancellation is
// cooperative: every data-parallel pass observes ctx between chunks, so the
// pipeline aborts promptly (returning ctx.Err()) when the context is
// cancelled or its deadline expires — the early-termination primitive that
// progressive/any-time ER and request timeouts in a serving deployment both
// need.
//
// When cfg requests sharded execution (ShardCount > 1, or a MaxShardBytes
// budget that implies more than one shard), resolution runs over the
// partitioned engine — see ResolveSharded; output is identical either way.
func ResolveContext(ctx context.Context, k1, k2 *kb.KB, cfg Config) (*Output, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	eng := parallel.New(cfg.Workers)
	p := cfg.effectiveShards(k1.Len())
	sub, err := buildSubstrate(ctx, eng, k1, k2, cfg, p)
	if err != nil {
		return nil, err
	}
	return resolveWith(ctx, eng, sub, cfg, p)
}

// ResolveWith runs resolution (graph construction + matching, stages 3–4)
// over a prebuilt substrate. Only the matching-side parameters of cfg apply
// — TopK, Theta, Rules, Workers and the sharding fields; the substrate's
// baked-in build parameters (NameK, RelN, MaxBlockFraction) are used as
// frozen. Calling BuildSubstrate then ResolveWith with one Config is
// byte-identical to Resolve with that Config; the substrate is not mutated,
// so several ResolveWith calls (e.g. rule ablations over one substrate) may
// run concurrently.
func ResolveWith(ctx context.Context, sub *Substrate, cfg Config) (*Output, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	eng := parallel.New(cfg.Workers)
	return resolveWith(ctx, eng, sub, cfg, cfg.effectiveShards(sub.k1.Len()))
}

// resolveWith is the internal resolution over a normalized Config and
// resolved shard count. Output.Timings carries the substrate's stage-1/2
// wall clock plus this call's own stages; Total adds the substrate build to
// the resolution elapsed, keeping the historical whole-pipeline meaning.
func resolveWith(ctx context.Context, eng *parallel.Engine, sub *Substrate, cfg Config, p int) (*Output, error) {
	start := time.Now()
	out := &Output{
		NameBlocks:     sub.nameBlocks,
		PurgedBlocks:   sub.purgedBlocks,
		PurgeThreshold: sub.purgeThreshold,
		NameAttrs1:     sub.nameAttrs1,
		NameAttrs2:     sub.nameAttrs2,
		Timings:        sub.timings,
	}
	in := graph.Input{
		K1: sub.k1, K2: sub.k2,
		NameBlocks: sub.nameBlocks,
		TokenIndex: sub.tokenIx,
		Top1:       sub.top1,
		Top2:       sub.top2,
		K:          cfg.TopK,
	}
	if !cfg.OmitTokenBlocks {
		out.TokenBlocks = sub.TokenBlocks()
		in.TokenBlocks = out.TokenBlocks
	}
	mc := *cfg.Rules
	mc.Theta = cfg.Theta

	if p > 1 {
		if err := resolveShardedStages(ctx, eng, sub, in, mc, p, out); err != nil {
			return nil, err
		}
		out.Timings.Total = sub.buildWall + time.Since(start)
		return out, nil
	}

	// Stage 3 — disjunctive blocking graph (Algorithm 1), with the β and γ
	// weighting phases timed separately for the regression gate.
	t0 := time.Now()
	g, gt, err := graph.BuildTimedCtx(ctx, eng, in)
	if err != nil {
		return nil, err
	}
	out.GraphEdges = g.Edges()
	out.Timings.Graph = time.Since(t0)
	out.Timings.GraphBeta = gt.Beta
	out.Timings.GraphGamma = gt.Gamma

	// Stage 4 — non-iterative matching (Algorithm 2).
	t0 = time.Now()
	res, err := matching.RunCtx(ctx, eng, g, sub.k1, sub.k2, mc)
	if err != nil {
		return nil, err
	}
	out.Matches = res.Matches
	out.RemovedByR4 = res.RemovedByR4
	out.Timings.Matching = time.Since(t0)

	out.Timings.Total = sub.buildWall + time.Since(start)
	return out, nil
}
