// The build-once substrate: every expensive pair-level structure the
// pipeline derives from a KB pair BEFORE any resolution decision is made —
// discovered name attributes, name lookups, dense relation ranks,
// top-neighbor rows, name blocks and the purged columnar TokenIndex — packed
// into one immutable value that can be built once and consumed many times:
// by a full batch resolution (ResolveWith), by another resolution with
// different matching rules, or by per-entity queries (QueryEntity). This is
// the seam ROADMAP's resolution-as-a-service arc needs: the substrate is the
// state a server keeps warm, and everything downstream of it is cheap.
package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Substrate is the reusable pair-level state of one (K1, K2, Config) triple:
// stages 1–2 of the pipeline (statistics and composite blocking) frozen into
// an immutable value. It is safe for concurrent use — nothing in it mutates
// after BuildSubstrate returns except three lazily built, internally
// synchronized caches (the materialized token-block collection, the query
// graph and the per-query scratch pool).
//
// Build-time parameters (NameK, RelN, MaxBlockFraction, sharding) are baked
// in: ResolveWith and QueryEntity consume the substrate as-is and only
// matching-side parameters (TopK, Theta, Rules) of their own Config apply.
type Substrate struct {
	k1, k2 *kb.KB
	cfg    Config // normalized build-time config

	nameAttrs1, nameAttrs2 []string
	names1, names2         *stats.NameLookup
	ranks1, ranks2         []int32
	top1, top2             [][]kb.EntityID

	nameBlocks     *blocking.Collection
	tokenIx        *blocking.TokenIndex // purged
	purgedBlocks   int
	purgeThreshold int64

	// timings carries the stage-1/2 wall clock into every Output produced
	// from this substrate; buildWall is the full BuildSubstrate duration,
	// added to ResolveWith's own elapsed time so Output.Timings.Total keeps
	// the historical "whole pipeline" meaning.
	timings   Timings
	buildWall time.Duration

	// blocksOnce guards the lazy materialization of the token-block
	// collection (satellite: a long-lived substrate serving queries never
	// pays for the historical block output unless someone asks).
	blocksOnce  sync.Once
	tokenBlocks *blocking.Collection

	// query is the lazily built per-entity query state; queryMu serializes
	// the first build (singleflight — unlike sync.Once a failed build can be
	// retried, e.g. after a cancelled context).
	query   atomic.Pointer[queryState]
	queryMu sync.Mutex
}

// BuildSubstrate runs stages 1–2 of the pipeline — statistics (name
// discovery, relation ranks, top neighbors) and composite blocking (name
// blocks, token indexing, Block Purging) — and freezes the results. The
// returned substrate is immutable and safe to share across goroutines.
func BuildSubstrate(ctx context.Context, k1, k2 *kb.KB, cfg Config) (*Substrate, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	eng := parallel.New(cfg.Workers)
	return buildSubstrate(ctx, eng, k1, k2, cfg, cfg.effectiveShards(k1.Len()))
}

// buildSubstrate is the internal form over a normalized Config and resolved
// shard count. With p > 1 the E1 top-neighbor rows are extracted one
// contiguous shard at a time (bounded transient memory, exactly as the
// sharded pipeline always did); the rows are byte-identical either way.
//
// The build is a dependency DAG, not a sequence of barriers: token indexing
// depends on nothing from statistics, so it overlaps all of stage 1; name
// blocking needs only the discovered name attributes, so it starts as soon
// as those land, overlapping the relation and top-neighbor passes. Every
// sub-stage keeps its own clock, so the regression gate's per-stage columns
// stay meaningful: Statistics and Blocking are reported as the SUM of their
// sub-clocks (CPU-work semantics, identical to the historical barrier walls
// at one worker), while buildWall records the real — shorter, overlapped —
// elapsed time. At Workers() == 1 the same sub-stages run in topological
// order instead: overlap cannot help one worker, and sequential clocks keep
// the 1-core bench columns free of goroutine-interleaving noise.
func buildSubstrate(ctx context.Context, eng *parallel.Engine, k1, k2 *kb.KB, cfg Config, p int) (*Substrate, error) {
	sub := &Substrate{k1: k1, k2: k2, cfg: cfg}
	start := time.Now()
	var err error
	if eng.Workers() > 1 {
		err = sub.buildOverlapped(ctx, eng, p)
	} else {
		err = sub.buildSequential(ctx, eng, p)
	}
	if err != nil {
		return nil, err
	}
	sub.timings.Statistics = sub.timings.StatsAttributes + sub.timings.StatsRelations + sub.timings.StatsTopNeighbors
	sub.timings.Blocking = sub.timings.BlockingName + sub.timings.BlockingToken
	sub.buildWall = time.Since(start)
	return sub, nil
}

// buildSequential runs the substrate DAG in topological order, one sub-stage
// at a time, each under its own clock.
func (sub *Substrate) buildSequential(ctx context.Context, eng *parallel.Engine, p int) error {
	if err := sub.statsAttributes(ctx, eng); err != nil {
		return err
	}
	if err := sub.statsRelations(ctx, eng); err != nil {
		return err
	}
	if err := sub.statsTopNeighbors(ctx, eng, p); err != nil {
		return err
	}
	if err := sub.blockNames(ctx, eng); err != nil {
		return err
	}
	return sub.blockTokens(ctx, eng)
}

// buildOverlapped runs the substrate DAG with its three independent chains
// concurrent: token indexing (no stage-1 inputs), the statistics chain
// (attributes → relations → top neighbors), and name blocking, which blocks
// only on the attribute pass. The attrsReady channel is the single handoff —
// closed after the name attributes and lookups are published, so the name
// chain reads them under a happens-before edge. If the statistics chain
// fails first, attrsReady never closes, but ConcurrentCtx cancels the
// sibling contexts and the name chain unblocks on sc.Done().
func (sub *Substrate) buildOverlapped(ctx context.Context, eng *parallel.Engine, p int) error {
	attrsReady := make(chan struct{})
	return eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			return sub.blockTokens(sc, eng)
		},
		func(sc context.Context) error {
			if err := sub.statsAttributes(sc, eng); err != nil {
				return err
			}
			close(attrsReady)
			if err := sub.statsRelations(sc, eng); err != nil {
				return err
			}
			return sub.statsTopNeighbors(sc, eng, p)
		},
		func(sc context.Context) error {
			select {
			case <-attrsReady:
			case <-sc.Done():
				return sc.Err()
			}
			return sub.blockNames(sc, eng)
		},
	)
}

// statsAttributes discovers the name attributes of both KBs concurrently and
// publishes the derived name lookups (the name-blocking input).
func (sub *Substrate) statsAttributes(ctx context.Context, eng *parallel.Engine) error {
	t0 := time.Now()
	err := eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			sub.nameAttrs1, err = stats.NameAttributesCtx(sc, eng, sub.k1, sub.cfg.NameK)
			return err
		},
		func(sc context.Context) error {
			var err error
			sub.nameAttrs2, err = stats.NameAttributesCtx(sc, eng, sub.k2, sub.cfg.NameK)
			return err
		},
	)
	if err != nil {
		return err
	}
	sub.names1 = stats.NewNameLookup(sub.k1, sub.nameAttrs1)
	sub.names2 = stats.NewNameLookup(sub.k2, sub.nameAttrs2)
	sub.timings.StatsAttributes = time.Since(t0)
	return nil
}

// statsRelations ranks the relations of both KBs concurrently.
func (sub *Substrate) statsRelations(ctx context.Context, eng *parallel.Engine) error {
	t0 := time.Now()
	err := eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, sub.k1)
			sub.ranks1 = stats.RelationRanks(sub.k1, ri)
			return err
		},
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, sub.k2)
			sub.ranks2 = stats.RelationRanks(sub.k2, ri)
			return err
		},
	)
	if err != nil {
		return err
	}
	sub.timings.StatsRelations = time.Since(t0)
	return nil
}

// statsTopNeighbors extracts the per-entity top-neighbor rows of both KBs
// concurrently; with p > 1 the E1 side goes shard by shard.
func (sub *Substrate) statsTopNeighbors(ctx context.Context, eng *parallel.Engine, p int) error {
	t0 := time.Now()
	err := eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			if p > 1 {
				sub.top1 = make([][]kb.EntityID, sub.k1.Len())
				for _, s := range shardSpans(sub.k1.Len(), p) {
					rows, err := stats.TopNeighborsRanksSpanCtx(sc, eng, sub.k1, sub.ranks1, sub.cfg.RelN, s)
					if err != nil {
						return err
					}
					copy(sub.top1[s.Lo:s.Hi], rows)
				}
				return nil
			}
			var err error
			sub.top1, err = stats.TopNeighborsRanksCtx(sc, eng, sub.k1, sub.ranks1, sub.cfg.RelN)
			return err
		},
		func(sc context.Context) error {
			var err error
			sub.top2, err = stats.TopNeighborsRanksCtx(sc, eng, sub.k2, sub.ranks2, sub.cfg.RelN)
			return err
		},
	)
	if err != nil {
		return err
	}
	sub.timings.StatsTopNeighbors = time.Since(t0)
	return nil
}

// blockNames builds the columnar name index over the published name lookups
// and materializes the name-block collection.
func (sub *Substrate) blockNames(ctx context.Context, eng *parallel.Engine) error {
	t0 := time.Now()
	ix, err := blocking.NewNameIndexLookupsCtx(ctx, eng, sub.names1, sub.names2)
	if err != nil {
		return err
	}
	sub.nameBlocks = ix.Collection()
	sub.timings.BlockingName = time.Since(t0)
	return nil
}

// blockTokens builds the columnar token index (the shared-interner token
// space flows from the KB builders through the index into graph
// construction) and applies Block Purging of stop-word token blocks to it.
func (sub *Substrate) blockTokens(ctx context.Context, eng *parallel.Engine) error {
	t0 := time.Now()
	var err error
	sub.tokenIx, err = blocking.NewTokenIndexCtx(ctx, eng, sub.k1, sub.k2)
	if err != nil {
		return err
	}
	// One formula for the purging threshold, shared with blocking.AutoPurge.
	if budget := blocking.ComparisonBudget(sub.k1.Len(), sub.k2.Len(), sub.cfg.MaxBlockFraction); budget > 0 {
		sub.purgeThreshold = budget
		sub.tokenIx, sub.purgedBlocks = sub.tokenIx.PurgeAbove(budget)
	}
	sub.timings.BlockingToken = time.Since(t0)
	return nil
}

// K1 returns the substrate's first (query-side) KB.
func (s *Substrate) K1() *kb.KB { return s.k1 }

// K2 returns the substrate's second (candidate-side) KB.
func (s *Substrate) K2() *kb.KB { return s.k2 }

// Config returns the normalized configuration the substrate was built with.
func (s *Substrate) Config() Config { return s.cfg }

// NameAttrs returns the discovered name attributes of each KB.
func (s *Substrate) NameAttrs() (nameAttrs1, nameAttrs2 []string) {
	return s.nameAttrs1, s.nameAttrs2
}

// NameBlocks returns the name block collection.
func (s *Substrate) NameBlocks() *blocking.Collection { return s.nameBlocks }

// TokenIndex returns the purged columnar token index.
func (s *Substrate) TokenIndex() *blocking.TokenIndex { return s.tokenIx }

// PurgedBlocks reports how many token blocks Block Purging removed;
// PurgeThreshold the applied per-block comparison cap (0 = none).
func (s *Substrate) PurgedBlocks() int { return s.purgedBlocks }

// PurgeThreshold reports the applied per-block comparison cap (0 = none).
func (s *Substrate) PurgeThreshold() int64 { return s.purgeThreshold }

// BuildDuration reports the wall clock of BuildSubstrate.
func (s *Substrate) BuildDuration() time.Duration { return s.buildWall }

// Timings returns the build's per-stage clocks (statistics and blocking
// sub-stages; the resolution stages are zero). Statistics and Blocking are
// CPU-work sums of their sub-clocks — see Timings — while BuildDuration is
// the real, possibly overlapped, elapsed wall time.
func (s *Substrate) Timings() Timings { return s.timings }

// TokenBlocks materializes the historical token-block collection (the
// Table-2 statistics view of the purged index) on first call and caches it.
// Batch ResolveWith calls it unless Config.OmitTokenBlocks is set; a
// substrate that only serves queries never materializes it.
func (s *Substrate) TokenBlocks() *blocking.Collection {
	s.blocksOnce.Do(func() { s.tokenBlocks = s.tokenIx.Collection() })
	return s.tokenBlocks
}
