// The build-once substrate: every expensive pair-level structure the
// pipeline derives from a KB pair BEFORE any resolution decision is made —
// discovered name attributes, name lookups, dense relation ranks,
// top-neighbor rows, name blocks and the purged columnar TokenIndex — packed
// into one immutable value that can be built once and consumed many times:
// by a full batch resolution (ResolveWith), by another resolution with
// different matching rules, or by per-entity queries (QueryEntity). This is
// the seam ROADMAP's resolution-as-a-service arc needs: the substrate is the
// state a server keeps warm, and everything downstream of it is cheap.
package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Substrate is the reusable pair-level state of one (K1, K2, Config) triple:
// stages 1–2 of the pipeline (statistics and composite blocking) frozen into
// an immutable value. It is safe for concurrent use — nothing in it mutates
// after BuildSubstrate returns except three lazily built, internally
// synchronized caches (the materialized token-block collection, the query
// graph and the per-query scratch pool).
//
// Build-time parameters (NameK, RelN, MaxBlockFraction, sharding) are baked
// in: ResolveWith and QueryEntity consume the substrate as-is and only
// matching-side parameters (TopK, Theta, Rules) of their own Config apply.
type Substrate struct {
	k1, k2 *kb.KB
	cfg    Config // normalized build-time config

	nameAttrs1, nameAttrs2 []string
	names1, names2         *stats.NameLookup
	ranks1, ranks2         []int32
	top1, top2             [][]kb.EntityID

	nameBlocks     *blocking.Collection
	tokenIx        *blocking.TokenIndex // purged
	purgedBlocks   int
	purgeThreshold int64

	// timings carries the stage-1/2 wall clock into every Output produced
	// from this substrate; buildWall is the full BuildSubstrate duration,
	// added to ResolveWith's own elapsed time so Output.Timings.Total keeps
	// the historical "whole pipeline" meaning.
	timings   Timings
	buildWall time.Duration

	// blocksOnce guards the lazy materialization of the token-block
	// collection (satellite: a long-lived substrate serving queries never
	// pays for the historical block output unless someone asks).
	blocksOnce  sync.Once
	tokenBlocks *blocking.Collection

	// query is the lazily built per-entity query state; queryMu serializes
	// the first build (singleflight — unlike sync.Once a failed build can be
	// retried, e.g. after a cancelled context).
	query   atomic.Pointer[queryState]
	queryMu sync.Mutex
}

// BuildSubstrate runs stages 1–2 of the pipeline — statistics (name
// discovery, relation ranks, top neighbors) and composite blocking (name
// blocks, token indexing, Block Purging) — and freezes the results. The
// returned substrate is immutable and safe to share across goroutines.
func BuildSubstrate(ctx context.Context, k1, k2 *kb.KB, cfg Config) (*Substrate, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	eng := parallel.New(cfg.Workers)
	return buildSubstrate(ctx, eng, k1, k2, cfg, cfg.effectiveShards(k1.Len()))
}

// buildSubstrate is the internal form over a normalized Config and resolved
// shard count. With p > 1 the E1 top-neighbor rows are extracted one
// contiguous shard at a time (bounded transient memory, exactly as the
// sharded pipeline always did); the rows are byte-identical either way.
func buildSubstrate(ctx context.Context, eng *parallel.Engine, k1, k2 *kb.KB, cfg Config, p int) (*Substrate, error) {
	sub := &Substrate{k1: k1, k2: k2, cfg: cfg}
	start := time.Now()

	// Stage 1 — statistics: name attributes, relation importance and top
	// neighbors for both KBs. The two KBs of each sub-stage run concurrently
	// (Figure 4's left column); sub-stages are separated by barriers so each
	// one's wall clock is measured cleanly for the regression gate.
	t0 := time.Now()
	err := eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			sub.nameAttrs1, err = stats.NameAttributesCtx(sc, eng, k1, cfg.NameK)
			return err
		},
		func(sc context.Context) error {
			var err error
			sub.nameAttrs2, err = stats.NameAttributesCtx(sc, eng, k2, cfg.NameK)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	sub.timings.StatsAttributes = time.Since(t0)
	t1 := time.Now()
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, k1)
			sub.ranks1 = stats.RelationRanks(k1, ri)
			return err
		},
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, eng, k2)
			sub.ranks2 = stats.RelationRanks(k2, ri)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	sub.timings.StatsRelations = time.Since(t1)
	t1 = time.Now()
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			if p > 1 {
				sub.top1 = make([][]kb.EntityID, k1.Len())
				for _, s := range shardSpans(k1.Len(), p) {
					rows, err := stats.TopNeighborsRanksSpanCtx(sc, eng, k1, sub.ranks1, cfg.RelN, s)
					if err != nil {
						return err
					}
					copy(sub.top1[s.Lo:s.Hi], rows)
				}
				return nil
			}
			var err error
			sub.top1, err = stats.TopNeighborsRanksCtx(sc, eng, k1, sub.ranks1, cfg.RelN)
			return err
		},
		func(sc context.Context) error {
			var err error
			sub.top2, err = stats.TopNeighborsRanksCtx(sc, eng, k2, sub.ranks2, cfg.RelN)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	sub.timings.StatsTopNeighbors = time.Since(t1)
	sub.timings.Statistics = time.Since(t0)
	sub.names1 = stats.NewNameLookup(k1, sub.nameAttrs1)
	sub.names2 = stats.NewNameLookup(k2, sub.nameAttrs2)

	// Stage 2 — composite blocking: name blocking ∥ columnar token indexing
	// (the shared-interner token space flows from the KB builders through
	// the index into graph construction), then Block Purging of stop-word
	// token blocks applied to the index.
	t0 = time.Now()
	err = eng.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			sub.nameBlocks, err = blocking.NameBlocksCtx(sc, eng, k1, k2, sub.nameAttrs1, sub.nameAttrs2)
			return err
		},
		func(sc context.Context) error {
			var err error
			sub.tokenIx, err = blocking.NewTokenIndexCtx(sc, eng, k1, k2)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	// One formula for the purging threshold, shared with blocking.AutoPurge.
	if budget := blocking.ComparisonBudget(k1.Len(), k2.Len(), cfg.MaxBlockFraction); budget > 0 {
		sub.purgeThreshold = budget
		sub.tokenIx, sub.purgedBlocks = sub.tokenIx.PurgeAbove(budget)
	}
	sub.timings.Blocking = time.Since(t0)
	sub.buildWall = time.Since(start)
	return sub, nil
}

// K1 returns the substrate's first (query-side) KB.
func (s *Substrate) K1() *kb.KB { return s.k1 }

// K2 returns the substrate's second (candidate-side) KB.
func (s *Substrate) K2() *kb.KB { return s.k2 }

// Config returns the normalized configuration the substrate was built with.
func (s *Substrate) Config() Config { return s.cfg }

// NameAttrs returns the discovered name attributes of each KB.
func (s *Substrate) NameAttrs() (nameAttrs1, nameAttrs2 []string) {
	return s.nameAttrs1, s.nameAttrs2
}

// NameBlocks returns the name block collection.
func (s *Substrate) NameBlocks() *blocking.Collection { return s.nameBlocks }

// TokenIndex returns the purged columnar token index.
func (s *Substrate) TokenIndex() *blocking.TokenIndex { return s.tokenIx }

// PurgedBlocks reports how many token blocks Block Purging removed;
// PurgeThreshold the applied per-block comparison cap (0 = none).
func (s *Substrate) PurgedBlocks() int { return s.purgedBlocks }

// PurgeThreshold reports the applied per-block comparison cap (0 = none).
func (s *Substrate) PurgeThreshold() int64 { return s.purgeThreshold }

// BuildDuration reports the wall clock of BuildSubstrate.
func (s *Substrate) BuildDuration() time.Duration { return s.buildWall }

// TokenBlocks materializes the historical token-block collection (the
// Table-2 statistics view of the purged index) on first call and caches it.
// Batch ResolveWith calls it unless Config.OmitTokenBlocks is set; a
// substrate that only serves queries never materializes it.
func (s *Substrate) TokenBlocks() *blocking.Collection {
	s.blocksOnce.Do(func() { s.tokenBlocks = s.tokenIx.Collection() })
	return s.tokenBlocks
}
