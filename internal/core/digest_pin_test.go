package core

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
)

// pinnedDigestsPath is the committed fixture of output digests captured
// BEFORE the substrate refactor split Resolve into BuildSubstrate +
// ResolveWith. The pinned-digest test replays the same matrix — the skewed
// determinism fixture and all four Table-1 presets, workers {1, 8} ×
// shards {1, 8} — and requires every sha256 to match, which is the
// byte-identity proof the refactor's acceptance criteria demand: any drift
// in matches, provenance, R4 removals, graph edge counts, purge state, name
// attributes or block statistics changes a digest.
//
// Regenerate (only when the output contract intentionally changes) with:
//
//	MINOANER_UPDATE_DIGESTS=1 go test ./internal/core -run TestPinnedDigests
const pinnedDigestsPath = "testdata/pinned_digests.json"

type pinnedCase struct {
	Dataset string `json:"dataset"` // "skewed-300" or a preset name
	Workers int    `json:"workers"`
	Shards  int    `json:"shards"` // 1 = monolithic Resolve
	SHA256  string `json:"sha256"`
}

// pinnedKBs materializes the fixture named by a pinned case. Preset pairs
// are generated at scale 0.1, the same down-scaling the preset identity test
// uses; all generators are seeded, so the inputs are reproducible.
func pinnedKBs(t *testing.T, dataset string) (*kb.KB, *kb.KB) {
	t.Helper()
	if dataset == "skewed-300" {
		k1, k2 := skewedKBs(300)
		return k1, k2
	}
	for _, profile := range datagen.Presets() {
		if profile.Name == dataset {
			d, err := datagen.Generate(datagen.Scale(profile, 0.1))
			if err != nil {
				t.Fatal(err)
			}
			return d.K1, d.K2
		}
	}
	t.Fatalf("unknown pinned dataset %q", dataset)
	return nil, nil
}

func pinnedMatrix() []pinnedCase {
	datasets := []string{"skewed-300"}
	for _, p := range datagen.Presets() {
		datasets = append(datasets, p.Name)
	}
	var cases []pinnedCase
	for _, d := range datasets {
		for _, w := range []int{1, 8} {
			for _, p := range []int{1, 8} {
				cases = append(cases, pinnedCase{Dataset: d, Workers: w, Shards: p})
			}
		}
	}
	return cases
}

func runPinnedCase(t *testing.T, c pinnedCase, k1, k2 *kb.KB) [32]byte {
	t.Helper()
	cfg := Config{Workers: c.Workers}
	var (
		out *Output
		err error
	)
	if c.Shards > 1 {
		out, err = ResolveSharded(context.Background(), k1, k2, cfg, c.Shards)
	} else {
		out, err = Resolve(k1, k2, cfg)
	}
	if err != nil {
		t.Fatalf("%s workers=%d shards=%d: %v", c.Dataset, c.Workers, c.Shards, err)
	}
	return digest(t, out)
}

// TestPinnedDigests replays the captured matrix against the committed
// digests. The skewed fixture always runs; the preset sweep is skipped under
// -short like the other preset identity tests.
func TestPinnedDigests(t *testing.T) {
	if os.Getenv("MINOANER_UPDATE_DIGESTS") != "" {
		updatePinnedDigests(t)
		return
	}
	data, err := os.ReadFile(pinnedDigestsPath)
	if err != nil {
		t.Fatalf("reading pinned digests (regenerate with MINOANER_UPDATE_DIGESTS=1): %v", err)
	}
	var cases []pinnedCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("pinned digest fixture is empty")
	}
	kbCache := map[string][2]*kb.KB{}
	for _, c := range cases {
		if testing.Short() && c.Dataset != "skewed-300" {
			continue
		}
		pair, ok := kbCache[c.Dataset]
		if !ok {
			k1, k2 := pinnedKBs(t, c.Dataset)
			pair = [2]*kb.KB{k1, k2}
			kbCache[c.Dataset] = pair
		}
		got := hex.EncodeToString(func() []byte { s := runPinnedCase(t, c, pair[0], pair[1]); return s[:] }())
		if got != c.SHA256 {
			t.Errorf("%s workers=%d shards=%d: digest %s differs from pinned %s",
				c.Dataset, c.Workers, c.Shards, got, c.SHA256)
		}
	}
}

func updatePinnedDigests(t *testing.T) {
	t.Helper()
	cases := pinnedMatrix()
	kbCache := map[string][2]*kb.KB{}
	for i := range cases {
		c := &cases[i]
		pair, ok := kbCache[c.Dataset]
		if !ok {
			k1, k2 := pinnedKBs(t, c.Dataset)
			pair = [2]*kb.KB{k1, k2}
			kbCache[c.Dataset] = pair
		}
		sum := runPinnedCase(t, *c, pair[0], pair[1])
		c.SHA256 = hex.EncodeToString(sum[:])
	}
	if err := os.MkdirAll(filepath.Dir(pinnedDigestsPath), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pinnedDigestsPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %d pinned digests to %s\n", len(cases), pinnedDigestsPath)
}
