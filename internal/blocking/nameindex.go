package blocking

import (
	"context"
	"slices"
	"strings"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// NameIndex is the columnar counterpart of the TokenIndex for name blocking
// (§3.1, h_N). Names are pre-normalized interned kb.ValueIDs inside the KB's
// schema dictionary, so instead of grouping name strings under a
// map[string]*Block — one string materialization plus one map probe per
// (entity, name) — the index is CSR-shaped: a per-span counting pass over
// ValueIDs followed by a scatter fill of flat []EntityID member arrays, the
// exact memberFill discipline of the token index (span-local counts merged in
// span order, disjoint fill regions, member lists sorted by construction, so
// the result is independent of worker count and scheduling).
//
// The slot space is the value dictionary. When both KBs share one kb.Schema
// (NewBuilderWithDicts), the ValueIDs ARE the slots and translation is free;
// otherwise the per-KB value strings are merged into a joint dictionary once,
// paying one string hash per DISTINCT value per KB — never per statement.
//
// A slot is live iff both sides indexed at least one entity under it — only
// live slots suggest clean-clean comparisons. Collection() materializes
// exactly the live slots as key-sorted blocks, byte-identical to the
// historical string-grouped NameBlocks output (the retained buildCollection
// reference, which the property tests pin against).
type NameIndex struct {
	// sch is the shared value dictionary when both KBs intern into one
	// Schema; keys holds per-slot strings in the merged-dictionary case.
	// Exactly one of the two is set.
	sch  *kb.Schema
	keys []string
	// t1/t2 translate KB-local ValueIDs to slots; nil means identity.
	t1, t2 []int32
	// mem1/mem2 with their CSR offsets hold the per-slot member lists:
	// mem[off[s]:off[s+1]] are the entities of one KB carrying name slot s,
	// sorted by ID.
	mem1, mem2 []kb.EntityID
	off1, off2 []int32
	live       int
}

// NewNameIndexCtx builds the name index for a KB pair under the given name
// attributes, constructing one stats.NameLookup per side. Callers that
// already hold the lookups (the substrate build) use NewNameIndexLookupsCtx.
func NewNameIndexCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB, nameAttrs1, nameAttrs2 []string) (*NameIndex, error) {
	return NewNameIndexLookupsCtx(ctx, e, stats.NewNameLookup(k1, nameAttrs1), stats.NewNameLookup(k2, nameAttrs2))
}

// NewNameIndexLookupsCtx builds the name index over two prebuilt name
// lookups (each knows its KB and name-attribute set).
func NewNameIndexLookupsCtx(ctx context.Context, e *parallel.Engine, nl1, nl2 *stats.NameLookup) (*NameIndex, error) {
	ix := &NameIndex{}
	s1, s2 := nl1.KB().Schema(), nl2.KB().Schema()
	var n int
	if s1 == s2 {
		ix.sch = s1
		n = s1.Values()
	} else {
		joint := kb.NewInterner()
		ix.t1 = mergeValues(s1, joint)
		ix.t2 = mergeValues(s2, joint)
		n = joint.Len()
		ix.keys = make([]string, n)
		for s := 0; s < n; s++ {
			ix.keys[s] = joint.TokenString(kb.TokenID(s))
		}
	}
	var err error
	ix.mem1, ix.off1, err = nameMemberFill(ctx, e, nl1, ix.t1, n)
	if err != nil {
		return nil, err
	}
	ix.mem2, ix.off2, err = nameMemberFill(ctx, e, nl2, ix.t2, n)
	if err != nil {
		return nil, err
	}
	for s := 0; s < n; s++ {
		if ix.off1[s+1] > ix.off1[s] && ix.off2[s+1] > ix.off2[s] {
			ix.live++
		}
	}
	return ix, nil
}

// nameMemberFill builds one side's CSR member array over n name slots —
// memberFill with the entity's deduplicated name ValueIDs in place of its
// token IDs. The per-entity ID scratch is span-local and reused across
// entities; both passes derive the same ID sets, so counts and fill agree.
func nameMemberFill(ctx context.Context, e *parallel.Engine, nl *stats.NameLookup, t []int32, n int) ([]kb.EntityID, []int32, error) {
	k := nl.KB()
	locals, err := parallel.MapSpansCtx(ctx, e, k.Len(), func(s parallel.Span) ([]int32, error) {
		counts := make([]int32, n)
		var scratch []kb.ValueID
		for i := s.Lo; i < s.Hi; i++ {
			scratch = nl.AppendNameValueIDs(scratch[:0], kb.EntityID(i))
			for _, v := range scratch {
				counts[valueSlot(t, v)]++
			}
		}
		return counts, nil
	})
	if err != nil {
		return nil, nil, err
	}
	off := spanCursors(locals, n)
	mem := make([]kb.EntityID, off[n])
	err = e.ForSpansIndexedCtx(ctx, k.Len(), func(pi int, s parallel.Span) error {
		cur := locals[pi]
		var scratch []kb.ValueID
		for i := s.Lo; i < s.Hi; i++ {
			scratch = nl.AppendNameValueIDs(scratch[:0], kb.EntityID(i))
			for _, v := range scratch {
				slot := valueSlot(t, v)
				mem[cur[slot]] = kb.EntityID(i)
				cur[slot]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mem, off, nil
}

// mergeValues interns every value of sch into joint and returns the
// ValueID → joint-slot translation table.
func mergeValues(sch *kb.Schema, joint *kb.Interner) []int32 {
	n := sch.Values()
	t := make([]int32, n)
	for id := 0; id < n; id++ {
		t[id] = int32(joint.Intern(sch.Value(kb.ValueID(id))))
	}
	return t
}

// valueSlot maps a KB-local ValueID through an optional translation table.
func valueSlot(t []int32, v kb.ValueID) int32 {
	if t == nil {
		return int32(v)
	}
	return t[v]
}

// key returns the block key of a slot.
func (ix *NameIndex) key(s int32) string {
	if ix.sch != nil {
		return ix.sch.Value(kb.ValueID(s))
	}
	return ix.keys[s]
}

// Live returns the number of live name slots — the block count Collection
// materializes.
func (ix *NameIndex) Live() int { return ix.live }

// Collection materializes the live slots as a block collection sorted by
// key, with member lists aliasing the index's CSR arrays (read-only, as block
// members always were). The result is byte-identical to the historical
// string-grouped NameBlocks output.
func (ix *NameIndex) Collection() *Collection {
	n := len(ix.off1) - 1
	liveSlots := make([]int32, 0, ix.live)
	for s := 0; s < n; s++ {
		if ix.off1[s+1] > ix.off1[s] && ix.off2[s+1] > ix.off2[s] {
			liveSlots = append(liveSlots, int32(s))
		}
	}
	slices.SortFunc(liveSlots, func(a, b int32) int {
		return strings.Compare(ix.key(a), ix.key(b))
	})
	blocks := make([]Block, len(liveSlots))
	for i, s := range liveSlots {
		blocks[i] = Block{
			Key: ix.key(s),
			E1:  ix.mem1[ix.off1[s]:ix.off1[s+1]],
			E2:  ix.mem2[ix.off2[s]:ix.off2[s+1]],
		}
	}
	return &Collection{Blocks: blocks}
}
