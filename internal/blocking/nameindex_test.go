package blocking

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
	"minoaner/internal/testkb"
)

// randomNameKBs builds a KB pair with collision-heavy literals: duplicate
// (attr, value) statements, the same value under several attributes, values
// that normalize to the empty string, and raw spellings that collide after
// normalization — every edge the name(e) contract defines.
func randomNameKBs(r *rand.Rand, n int, shared bool) (*kb.KB, *kb.KB) {
	var b1, b2 *kb.Builder
	if shared {
		dict := kb.NewInterner()
		sch := kb.NewSchema()
		b1 = kb.NewBuilderWithDicts("A", dict, sch)
		b2 = kb.NewBuilderWithDicts("B", dict, sch)
	} else {
		b1, b2 = kb.NewBuilder("A"), kb.NewBuilder("B")
	}
	attrs := []string{"name", "label", "title", "note"}
	values := []string{
		"alice", "bob", "carol", "dave", "erin", "mallory",
		"  ", "###", // normalize to the empty value → dropped from names
		"J. Lake", "j lake", // distinct raw, same normalized form
	}
	fill := func(b *kb.Builder, side string) {
		for i := 0; i < n; i++ {
			e := b.AddEntity(fmt.Sprintf("%s:e%d", side, i))
			for j := r.Intn(5); j >= 0; j-- {
				b.AddLiteral(e, attrs[r.Intn(len(attrs))], values[r.Intn(len(values))])
			}
		}
	}
	fill(b1, "a")
	fill(b2, "b")
	return b1.Build(), b2.Build()
}

// The columnar NameIndex must reproduce the retained string-grouped
// buildCollection reference byte-identically, on shared and disjoint schema
// dictionaries, with asymmetric name-attribute sets, at any worker count.
func TestNameIndexMatchesMapReference(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	engines := []*parallel.Engine{parallel.Sequential(), parallel.New(3), parallel.New(8)}
	for trial := 0; trial < 20; trial++ {
		shared := trial%2 == 0
		k1, k2 := randomNameKBs(r, 30+r.Intn(120), shared)
		na1 := []string{"name", "label"}
		na2 := []string{"title", "name"}
		if trial%3 == 0 {
			na2 = na1
		}
		want, err := NameBlocksMapRef(ctx, parallel.Sequential(), k1, k2, na1, na2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range engines {
			got, err := NameBlocksCtx(ctx, e, k1, k2, na1, na2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (shared=%v, workers=%d): NameIndex collection differs from map reference\ngot:  %+v\nwant: %+v",
					trial, shared, e.Workers(), got, want)
			}
		}
	}
}

// Figure 1's KBs use separate builders (disjoint schema dictionaries), so
// this pins the merged-dictionary translation path against the reference and
// the Live() accounting against the materialized collection.
func TestNameIndexFigure1(t *testing.T) {
	w, d := testkb.Figure1()
	ctx := context.Background()
	eng := parallel.New(2)
	na1 := stats.NameAttributes(eng, w, 2)
	na2 := stats.NameAttributes(eng, d, 2)
	ix, err := NewNameIndexCtx(ctx, eng, w, d, na1, na2)
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Collection()
	if got.Len() == 0 {
		t.Fatal("no name blocks")
	}
	if ix.Live() != got.Len() {
		t.Errorf("Live = %d, Collection len = %d", ix.Live(), got.Len())
	}
	want, err := NameBlocksMapRef(ctx, eng, w, d, na1, na2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Figure1 NameIndex collection differs from map reference\ngot:  %+v\nwant: %+v", got, want)
	}
}

// BenchmarkNameBlocksMembers isolates one side's member fill — the counting
// and scatter passes over name ValueIDs — mirroring
// BenchmarkTokenIndexMembers' role for the token index.
func BenchmarkNameBlocksMembers(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	k1, _ := randomNameKBs(r, 5000, true)
	nl := stats.NewNameLookup(k1, []string{"name", "label"})
	n := k1.Schema().Values()
	eng := parallel.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nameMemberFill(context.Background(), eng, nl, nil, n); err != nil {
			b.Fatal(err)
		}
	}
}
