package blocking

import (
	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Stats summarizes a blocking configuration the way Table 2 of the paper
// does: block counts, aggregate comparison counts, the Cartesian baseline
// and the effectiveness of the candidate set against the ground truth.
type Stats struct {
	// NameBlocks and TokenBlocks are |B_N| and |B_T|.
	NameBlocks, TokenBlocks int
	// NameComparisons and TokenComparisons are ‖B_N‖ and ‖B_T‖ (aggregate
	// cross-KB comparisons, counting multiplicity across blocks).
	NameComparisons, TokenComparisons int64
	// Cartesian is |E1|·|E2|.
	Cartesian int64
	// Found is the number of ground-truth pairs co-occurring in at least
	// one block; Recall = Found / |GT|.
	Found  int
	Recall float64
	// Precision follows the paper's pair-quality convention: ground-truth
	// pairs found divided by the total suggested comparisons ‖B_N‖+‖B_T‖.
	Precision float64
	F1        float64
}

// Index provides O(1) lookup from blocking key to block.
type Index struct {
	byKey map[string]*Block
}

// NewIndex indexes a collection by key.
func NewIndex(c *Collection) *Index {
	ix := &Index{byKey: make(map[string]*Block, len(c.Blocks))}
	for i := range c.Blocks {
		ix.byKey[c.Blocks[i].Key] = &c.Blocks[i]
	}
	return ix
}

// Lookup returns the block for key, or nil.
func (ix *Index) Lookup(key string) *Block {
	return ix.byKey[key]
}

// contains reports whether the sorted slice holds id.
func contains(ids []kb.EntityID, id kb.EntityID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// CoOccur reports whether the pair shares at least one block of the indexed
// collection, given the candidate keys of the E1 entity (its tokens or
// names). It implements the co-occurrence function o_key of Def. 3.1 on the
// purged collection.
func (ix *Index) CoOccur(keys []string, e1, e2 kb.EntityID) bool {
	for _, key := range keys {
		if ix.coOccurKey(key, e1, e2) {
			return true
		}
	}
	return false
}

// CoOccurTokens is CoOccur over a description's interned tokens: it walks
// TokenIDs and resolves each key string from the dictionary (no per-call
// slice materialization, unlike Description.Tokens).
func (ix *Index) CoOccurTokens(d *kb.Description, e1, e2 kb.EntityID) bool {
	dict := d.Dict()
	for _, id := range d.TokenIDs() {
		if ix.coOccurKey(dict.TokenString(id), e1, e2) {
			return true
		}
	}
	return false
}

func (ix *Index) coOccurKey(key string, e1, e2 kb.EntityID) bool {
	b := ix.byKey[key]
	return b != nil && contains(b.E1, e1) && contains(b.E2, e2)
}

// EvaluateBlocks computes Table 2's statistics for the name + token blocking
// of a KB pair against the ground truth. Recall counts a ground-truth pair
// as found if it co-occurs in any name or token block after purging.
func EvaluateBlocks(k1, k2 *kb.KB, nameBlocks, tokenBlocks *Collection, gt *eval.GroundTruth, nameKeysOf func(e kb.EntityID) []string) Stats {
	st := Stats{
		NameBlocks:       nameBlocks.Len(),
		TokenBlocks:      tokenBlocks.Len(),
		NameComparisons:  nameBlocks.TotalComparisons(),
		TokenComparisons: tokenBlocks.TotalComparisons(),
		Cartesian:        int64(k1.Len()) * int64(k2.Len()),
	}
	nameIx, tokenIx := NewIndex(nameBlocks), NewIndex(tokenBlocks)
	for _, p := range gt.Pairs() {
		found := tokenIx.CoOccurTokens(k1.Entity(p.E1), p.E1, p.E2)
		if !found && nameKeysOf != nil {
			found = nameIx.CoOccur(nameKeysOf(p.E1), p.E1, p.E2)
		}
		if found {
			st.Found++
		}
	}
	if gt.Len() > 0 {
		st.Recall = float64(st.Found) / float64(gt.Len())
	}
	total := st.NameComparisons + st.TokenComparisons
	if total > 0 {
		st.Precision = float64(st.Found) / float64(total)
	}
	if st.Precision+st.Recall > 0 {
		st.F1 = 2 * st.Precision * st.Recall / (st.Precision + st.Recall)
	}
	return st
}
