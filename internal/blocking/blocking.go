// Package blocking implements MinoanER's composite blocking scheme (§3):
// schema-agnostic token blocking (every shared token of any literal value
// creates a block), name blocking over the discovered name attributes, and
// Block Purging of oversized stop-word blocks. Blocks carry the entities of
// both input KBs separately, since clean-clean ER only compares across KBs.
package blocking

import (
	"context"
	"slices"
	"strings"
	"sync"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Block groups the entities of the two KBs that share one blocking key.
type Block struct {
	Key string
	// E1 and E2 hold the entities of each KB indexed under Key, sorted by ID.
	E1, E2 []kb.EntityID
}

// Comparisons returns |b1|·|b2|, the number of cross-KB comparisons the
// block suggests.
func (b *Block) Comparisons() int64 {
	return int64(len(b.E1)) * int64(len(b.E2))
}

// Collection is an ordered set of blocks (sorted by key, so every pipeline
// stage iterates deterministically).
type Collection struct {
	Blocks []Block
}

// Len returns the number of blocks (|B| in Table 2).
func (c *Collection) Len() int { return len(c.Blocks) }

// TotalComparisons returns ‖B‖: the aggregate number of suggested cross-KB
// comparisons, counting a pair once per co-occurring block (Table 2).
func (c *Collection) TotalComparisons() int64 {
	var total int64
	for i := range c.Blocks {
		total += c.Blocks[i].Comparisons()
	}
	return total
}

type sideID struct {
	side int8 // 1 or 2
	id   kb.EntityID
}

// buildCollection groups keyed entity occurrences from both KBs into cross-KB
// blocks. Blocks with entities from only one KB are dropped: they suggest no
// clean-clean comparisons. Keys and members come out sorted. The grouping
// pass runs under the dynamic chunked scheduler since per-entity key counts
// can be skewed. Nothing in the pipeline goes through here anymore — token
// blocking uses the columnar TokenIndex, name blocking the columnar NameIndex
// — but it is RETAINED as the semantic reference the NameIndex property tests
// and the NameBlocksMapRef benchmark side pin against.
func buildCollection(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB, emit1, emit2 func(i int, yield func(string))) (*Collection, error) {
	n1 := k1.Len()
	total := n1 + k2.Len()
	grouped, err := parallel.GroupByCtx(ctx, e.Chunked(), total, func(i int, yield func(string, sideID)) {
		if i < n1 {
			emit1(i, func(key string) { yield(key, sideID{1, kb.EntityID(i)}) })
		} else {
			j := i - n1
			emit2(j, func(key string) { yield(key, sideID{2, kb.EntityID(j)}) })
		}
	})
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, 0, len(grouped))
	for key, members := range grouped {
		var b Block
		b.Key = key
		for _, m := range members {
			if m.side == 1 {
				b.E1 = append(b.E1, m.id)
			} else {
				b.E2 = append(b.E2, m.id)
			}
		}
		if len(b.E1) == 0 || len(b.E2) == 0 {
			continue
		}
		slices.Sort(b.E1)
		slices.Sort(b.E2)
		blocks = append(blocks, b)
	}
	slices.SortFunc(blocks, func(a, c Block) int { return strings.Compare(a.Key, c.Key) })
	return &Collection{Blocks: blocks}, nil
}

// TokenBlocksCtx builds token blocking (§3.1, h_T): one block per token
// shared by at least one entity of each KB. Because the per-KB side sizes
// |b1|, |b2| equal the Entity Frequencies EF₁(t), EF₂(t), valueSim is
// derivable from these blocks alone (Algorithm 1, line 14). It is a view
// over the columnar TokenIndex — blocks are materialized from the CSR member
// arrays instead of re-grouping entities under string keys.
func TokenBlocksCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB) (*Collection, error) {
	ix, err := NewTokenIndexCtx(ctx, e, k1, k2)
	if err != nil {
		return nil, err
	}
	return ix.Collection(), nil
}

// TokenBlocks is TokenBlocksCtx without cancellation.
func TokenBlocks(e *parallel.Engine, k1, k2 *kb.KB) *Collection {
	out, _ := TokenBlocksCtx(context.Background(), e, k1, k2)
	return out
}

// NameBlocksCtx builds name blocking (§3.1, h_N): one block per normalized
// name value under each KB's top-k name attributes. The matcher's R1 rule
// uses only blocks of size 1×1 (a name unique in both KBs), but the full
// collection is kept for Table 2 statistics. It is a view over the columnar
// NameIndex — blocks are materialized from CSR member arrays filled by
// counting interned ValueIDs, instead of re-grouping entities under name
// STRINGS through a map (the NameBlocksMapRef path it replaced).
func NameBlocksCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB, nameAttrs1, nameAttrs2 []string) (*Collection, error) {
	ix, err := NewNameIndexCtx(ctx, e, k1, k2, nameAttrs1, nameAttrs2)
	if err != nil {
		return nil, err
	}
	return ix.Collection(), nil
}

// NameBlocksMapRef is the historical string-grouped name blocking: every
// name(e) materialized as a string and grouped under a map key through
// buildCollection. Kept exported ONLY as the reference side of
// BenchmarkNameBlocks and the NameIndex property tests — the pipeline uses
// NameBlocksCtx, which must reproduce this output byte-identically.
func NameBlocksMapRef(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB, nameAttrs1, nameAttrs2 []string) (*Collection, error) {
	nl1 := stats.NewNameLookup(k1, nameAttrs1)
	nl2 := stats.NewNameLookup(k2, nameAttrs2)
	return buildCollection(ctx, e, k1, k2,
		func(i int, yield func(string)) {
			for _, n := range nl1.Names(kb.EntityID(i)) {
				yield(n)
			}
		},
		func(i int, yield func(string)) {
			for _, n := range nl2.Names(kb.EntityID(i)) {
				yield(n)
			}
		})
}

// NameBlocks is NameBlocksCtx without cancellation.
func NameBlocks(e *parallel.Engine, k1, k2 *kb.KB, nameAttrs1, nameAttrs2 []string) *Collection {
	out, _ := NameBlocksCtx(context.Background(), e, k1, k2, nameAttrs1, nameAttrs2)
	return out
}

// PurgeAbove removes blocks whose comparison count exceeds maxComparisons
// and returns the kept collection plus the number of purged blocks. A
// non-positive threshold keeps everything.
func PurgeAbove(c *Collection, maxComparisons int64) (*Collection, int) {
	if maxComparisons <= 0 {
		return c, 0
	}
	kept := make([]Block, 0, len(c.Blocks))
	purged := 0
	for _, b := range c.Blocks {
		if b.Comparisons() > maxComparisons {
			purged++
			continue
		}
		kept = append(kept, b)
	}
	return &Collection{Blocks: kept}, purged
}

// ComparisonBudget converts a Block Purging fraction into the absolute
// comparison budget for a KB pair: fraction of the Cartesian product
// |E1|·|E2|, at least 1. A non-positive fraction disables purging (budget
// 0). It is the single place the threshold formula lives — the core
// pipeline's per-block cap and AutoPurge's aggregate budget both derive
// from it, so the two can't drift.
func ComparisonBudget(n1, n2 int, fraction float64) int64 {
	if fraction <= 0 {
		return 0
	}
	budget := int64(float64(n1) * float64(n2) * fraction)
	if budget < 1 {
		budget = 1
	}
	return budget
}

// AutoPurge implements Block Purging in the spirit of [26] as used by the
// paper (§3.3): it removes the largest blocks — those produced by highly
// frequent, stop-word-like tokens — until the retained comparisons fit
// within budgetFraction of the Cartesian product |E1|·|E2| (the paper
// reports two orders of magnitude below brute force, i.e. fraction 0.01).
// Blocks are considered from smallest to largest, so small discriminative
// blocks are always kept. Returns the kept collection, the purging threshold
// actually applied (max comparisons per block), and the purged block count.
func AutoPurge(c *Collection, n1, n2 int, budgetFraction float64) (*Collection, int64, int) {
	budget := ComparisonBudget(n1, n2, budgetFraction)
	if budget == 0 || len(c.Blocks) == 0 {
		return c, 0, 0
	}
	if c.TotalComparisons() <= budget {
		return c, 0, 0
	}
	sp := purgeScratch.Get().(*[]int64)
	sizes := (*sp)[:0]
	for i := range c.Blocks {
		sizes = append(sizes, c.Blocks[i].Comparisons())
	}
	slices.Sort(sizes)
	var running int64
	threshold := sizes[0]
	for _, s := range sizes {
		if running+s > budget {
			break
		}
		running += s
		threshold = s
	}
	*sp = sizes
	purgeScratch.Put(sp)
	kept, purged := PurgeAbove(c, threshold)
	return kept, threshold, purged
}

// purgeScratch recycles AutoPurge's block-size scratch across calls — the
// sort needs a copy of all sizes, but the copy need not be a fresh
// allocation every time (AutoPurge runs per resolve and per Table-2 row).
var purgeScratch = sync.Pool{New: func() any { return new([]int64) }}
