package blocking

import (
	"sort"
	"testing"
	"testing/quick"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

func figure1Blocks(t *testing.T) (*kb.KB, *kb.KB, *Collection) {
	t.Helper()
	w, d := testkb.Figure1()
	return w, d, TokenBlocks(seq, w, d)
}

func TestTokenBlocksBasics(t *testing.T) {
	w, d, blocks := figure1Blocks(t)
	ix := NewIndex(blocks)
	// "lake" appears in one entity on each side.
	b := ix.Lookup("lake")
	if b == nil {
		t.Fatal(`no "lake" block`)
	}
	if len(b.E1) != 1 || len(b.E2) != 1 {
		t.Fatalf(`"lake" block = %d×%d, want 1×1`, len(b.E1), len(b.E2))
	}
	if b.E1[0] != w.Lookup("w:JohnLakeA") || b.E2[0] != d.Lookup("d:JonnyLake") {
		t.Error("lake block holds wrong entities")
	}
	// Tokens present on only one side produce no block.
	if ix.Lookup("michelin") != nil {
		t.Error(`"michelin" exists only in Wikidata; block must be dropped`)
	}
	// Keys sorted.
	if !sort.SliceIsSorted(blocks.Blocks, func(i, j int) bool {
		return blocks.Blocks[i].Key < blocks.Blocks[j].Key
	}) {
		t.Error("blocks not sorted by key")
	}
}

// Token blocking completeness (Def. 3.1 condition ii): any cross-KB pair
// sharing a token must co-occur in that token's block.
func TestTokenBlocksComplete(t *testing.T) {
	w, d, blocks := figure1Blocks(t)
	ix := NewIndex(blocks)
	for i := 0; i < w.Len(); i++ {
		for j := 0; j < d.Len(); j++ {
			di, dj := w.Entity(kb.EntityID(i)), d.Entity(kb.EntityID(j))
			shared := sharedToken(di.Tokens(), dj.Tokens())
			got := ix.CoOccur(di.Tokens(), kb.EntityID(i), kb.EntityID(j))
			if (shared != "") != got {
				t.Fatalf("pair (%s,%s): shared=%q but CoOccur=%v", di.URI, dj.URI, shared, got)
			}
		}
	}
}

func sharedToken(a, b []string) string {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return a[i]
		}
	}
	return ""
}

// EF equivalence: |b1|,|b2| of a token block equal the per-KB entity
// frequencies, which is what lets Algorithm 1 derive valueSim from blocks.
func TestBlockSizesEqualEF(t *testing.T) {
	w, d, blocks := figure1Blocks(t)
	ef1, ef2 := stats.BuildEF(seq, w), stats.BuildEF(seq, d)
	for _, b := range blocks.Blocks {
		if len(b.E1) != ef1.EF(b.Key) || len(b.E2) != ef2.EF(b.Key) {
			t.Fatalf("block %q sizes %d×%d != EF %d×%d",
				b.Key, len(b.E1), len(b.E2), ef1.EF(b.Key), ef2.EF(b.Key))
		}
	}
}

func TestNameBlocks(t *testing.T) {
	w, d := testkb.Figure1()
	n1 := stats.NameAttributes(seq, w, 2)
	n2 := stats.NameAttributes(seq, d, 2)
	nb := NameBlocks(seq, w, d, n1, n2)
	ix := NewIndex(nb)
	b := ix.Lookup("j lake")
	if b == nil {
		t.Fatalf(`no "j lake" name block; blocks: %v`, keysOf(nb))
	}
	if b.Comparisons() != 1 {
		t.Fatalf(`"j lake" block = %d comparisons, want 1 (unique name)`, b.Comparisons())
	}
}

func keysOf(c *Collection) []string {
	var ks []string
	for _, b := range c.Blocks {
		ks = append(ks, b.Key)
	}
	return ks
}

func TestParallelDeterminism(t *testing.T) {
	w, d := testkb.Figure1()
	ref := TokenBlocks(seq, w, d)
	for _, workers := range []int{2, 4, 8} {
		got := TokenBlocks(parallel.New(workers), w, d)
		if len(got.Blocks) != len(ref.Blocks) {
			t.Fatalf("workers=%d: %d blocks, want %d", workers, len(got.Blocks), len(ref.Blocks))
		}
		for i := range ref.Blocks {
			if got.Blocks[i].Key != ref.Blocks[i].Key ||
				got.Blocks[i].Comparisons() != ref.Blocks[i].Comparisons() {
				t.Fatalf("workers=%d: block %d differs", workers, i)
			}
		}
	}
}

func TestPurgeAbove(t *testing.T) {
	c := &Collection{Blocks: []Block{
		{Key: "small", E1: []kb.EntityID{1}, E2: []kb.EntityID{2}},
		{Key: "big", E1: []kb.EntityID{1, 2, 3}, E2: []kb.EntityID{4, 5, 6}},
	}}
	kept, purged := PurgeAbove(c, 4)
	if purged != 1 || kept.Len() != 1 || kept.Blocks[0].Key != "small" {
		t.Fatalf("PurgeAbove kept %v, purged %d", keysOf(kept), purged)
	}
	// Non-positive threshold is a no-op.
	kept2, purged2 := PurgeAbove(c, 0)
	if purged2 != 0 || kept2.Len() != 2 {
		t.Error("PurgeAbove(0) must keep everything")
	}
}

func TestAutoPurgeBudget(t *testing.T) {
	// 100 × 100 entities, budget 1% → 100 comparisons.
	blocks := make([]Block, 0, 30)
	for i := 0; i < 30; i++ {
		var b Block
		b.Key = string(rune('a' + i))
		// Increasing sizes: blocks 0..29 have (i+1)² comparisons... keep
		// simple: i+1 entities on one side, 1 on the other → i+1 comparisons.
		for j := 0; j <= i; j++ {
			b.E1 = append(b.E1, kb.EntityID(j))
		}
		b.E2 = []kb.EntityID{0}
		blocks = append(blocks, b)
	}
	c := &Collection{Blocks: blocks} // total = 1+2+...+30 = 465
	kept, threshold, purged := AutoPurge(c, 100, 100, 0.01)
	if purged == 0 {
		t.Fatal("AutoPurge should purge some blocks (465 > 100 budget)")
	}
	if kept.TotalComparisons() > 100 {
		t.Fatalf("kept %d comparisons, budget 100", kept.TotalComparisons())
	}
	if threshold <= 0 {
		t.Fatalf("threshold = %d, want positive", threshold)
	}
	// Keeps the smallest blocks: every kept block ≤ threshold.
	for _, b := range kept.Blocks {
		if b.Comparisons() > threshold {
			t.Fatalf("kept block %q above threshold", b.Key)
		}
	}
}

func TestAutoPurgeNoOpUnderBudget(t *testing.T) {
	c := &Collection{Blocks: []Block{
		{Key: "a", E1: []kb.EntityID{1}, E2: []kb.EntityID{1}},
	}}
	kept, threshold, purged := AutoPurge(c, 1000, 1000, 0.01)
	if purged != 0 || threshold != 0 || kept.Len() != 1 {
		t.Error("AutoPurge under budget must be a no-op")
	}
	// Empty collection.
	empty := &Collection{}
	kept2, _, purged2 := AutoPurge(empty, 10, 10, 0.01)
	if purged2 != 0 || kept2.Len() != 0 {
		t.Error("AutoPurge on empty collection")
	}
}

// Property: AutoPurge never increases comparisons and keeps a subset.
func TestAutoPurgeProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		blocks := make([]Block, 0, len(sizes))
		for i, s := range sizes {
			n := int(s%20) + 1
			var b Block
			b.Key = string(rune('a'+i%26)) + string(rune('0'+i/26%10))
			for j := 0; j < n; j++ {
				b.E1 = append(b.E1, kb.EntityID(j))
			}
			b.E2 = []kb.EntityID{0, 1}
			blocks = append(blocks, b)
		}
		c := &Collection{Blocks: blocks}
		before := c.TotalComparisons()
		kept, _, purged := AutoPurge(c, 50, 50, 0.05)
		after := kept.TotalComparisons()
		return after <= before && kept.Len()+purged == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexCoOccur(t *testing.T) {
	c := &Collection{Blocks: []Block{
		{Key: "x", E1: []kb.EntityID{1, 3, 5}, E2: []kb.EntityID{2, 4}},
	}}
	ix := NewIndex(c)
	if !ix.CoOccur([]string{"x"}, 3, 4) {
		t.Error("CoOccur(3,4) via x = false, want true")
	}
	if ix.CoOccur([]string{"x"}, 2, 4) {
		t.Error("CoOccur(2,4): 2 not in E1 side")
	}
	if ix.CoOccur([]string{"missing"}, 1, 2) {
		t.Error("CoOccur via missing key")
	}
	if ix.Lookup("x") == nil || ix.Lookup("y") != nil {
		t.Error("Lookup")
	}
}

// BenchmarkAutoPurge guards the purge pass over a large synthetic
// collection: the size snapshot, sort and threshold walk dominate, and the
// pooled scratch slice must keep steady-state allocations to the kept-slice
// copy (no fresh sizes buffer per call).
func BenchmarkAutoPurge(b *testing.B) {
	const n = 20000
	blocks := make([]Block, n)
	for i := range blocks {
		// Deterministic, heavily skewed sizes: mostly tiny blocks with a
		// long tail of stop-word-sized ones, like a real token collection.
		w := 1 + (i*2654435761)%7
		if i%97 == 0 {
			w *= 50
		}
		members := make([]kb.EntityID, w)
		for j := range members {
			members[j] = kb.EntityID(j)
		}
		blocks[i] = Block{Key: "k", E1: members, E2: members}
	}
	c := &Collection{Blocks: blocks}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kept, threshold, purged := AutoPurge(c, 5000, 5000, 0.001)
		if threshold == 0 || purged == 0 || kept.Len() == 0 {
			b.Fatal("purge did not engage; benchmark is vacuous")
		}
	}
}
