package blocking

import (
	"context"
	"slices"
	"strings"
	"sync/atomic"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// TokenIndex is the columnar inverted token index behind token blocking and
// the β (valueSim) stage of the disjunctive blocking graph. Where the old
// path grouped entities under string keys and probed a map[string]*Block
// once per (entity, token), the TokenIndex is CSR-shaped: flat []EntityID
// member arrays addressed by dense token slots, with the per-token valueSim
// weight 1/log2(EF₁·EF₂+1) precomputed once per index instead of once per
// entity touch.
//
// The slot space is the joint token dictionary of the two KBs. When both KBs
// share one kb.Interner (NewBuilderWithInterner), the KB token IDs ARE the
// slots and translation is free; otherwise a per-KB translation table is
// built once, with a single dictionary lookup per distinct token — never per
// occurrence.
//
// A slot is "live" iff its weight is positive: tokens present in only one KB
// (no cross-KB comparisons) and tokens removed by Block Purging are dead and
// contribute nothing. Collection() materializes exactly the live slots as
// key-sorted blocks, byte-identical to the historical TokenBlocks output.
type TokenIndex struct {
	dict *kb.Interner
	// keys holds per-slot key strings when the index was built over a bare
	// Collection (dict == nil). Exactly one of dict/keys is set.
	keys []string
	// t1/t2 translate KB-local token IDs to slots; nil means identity. A
	// negative slot marks a token absent from the slot space (possible only
	// in from-collection indexes, whose slots cover just the kept blocks).
	t1, t2 []int32
	// e1/e2 are the per-slot member lists (entities of each KB containing
	// the token, sorted by ID). They alias flat CSR arrays or, in the
	// from-collection case, the collection's own block slices.
	e1, e2 [][]kb.EntityID
	// weight[s] is the precomputed per-token valueSim contribution; 0 marks
	// a dead slot.
	weight []float64
	// live counts slots with positive weight (== Collection().Len()).
	live int
}

// NewTokenIndexCtx builds the token index for a KB pair with two counting
// passes over the entities, both under the dynamic chunked scheduler
// (per-entity token counts are power-law skewed, so static spans straggle):
// first occurrence counts per token (the CSR offsets), then a scatter fill
// of the flat member arrays. Member lists are sorted by entity ID, making
// the result independent of worker count and scheduling.
func NewTokenIndexCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB) (*TokenIndex, error) {
	ix := &TokenIndex{}
	d1, d2 := k1.TokenDict(), k2.TokenDict()
	if d1 != nil && d1 == d2 {
		ix.dict = d1
	} else {
		// Disjoint dictionaries: merge into a joint space once, paying one
		// string hash per DISTINCT token per KB rather than per occurrence.
		joint := kb.NewInterner()
		ix.t1 = mergeDict(d1, joint)
		ix.t2 = mergeDict(d2, joint)
		ix.dict = joint
	}
	n := ix.dict.Len()
	ce := e.Chunked()
	counts1 := make([]int32, n)
	counts2 := make([]int32, n)
	countSide := func(ctx context.Context, k *kb.KB, t []int32, counts []int32) error {
		return ce.ForCtx(ctx, k.Len(), func(i int) error {
			for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
				s := slotOf(t, tid)
				atomic.AddInt32(&counts[s], 1)
			}
			return nil
		})
	}
	if err := countSide(ctx, k1, ix.t1, counts1); err != nil {
		return nil, err
	}
	if err := countSide(ctx, k2, ix.t2, counts2); err != nil {
		return nil, err
	}
	off1 := offsets(counts1)
	off2 := offsets(counts2)
	mem1 := make([]kb.EntityID, off1[n])
	mem2 := make([]kb.EntityID, off2[n])
	fillSide := func(ctx context.Context, k *kb.KB, t []int32, cur []int32, mem []kb.EntityID) error {
		return ce.ForCtx(ctx, k.Len(), func(i int) error {
			for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
				s := slotOf(t, tid)
				mem[atomic.AddInt32(&cur[s], 1)-1] = kb.EntityID(i)
			}
			return nil
		})
	}
	// The fill pass reuses the offset arrays as atomic write cursors.
	cur1 := slices.Clone(off1[:n])
	cur2 := slices.Clone(off2[:n])
	if err := fillSide(ctx, k1, ix.t1, cur1, mem1); err != nil {
		return nil, err
	}
	if err := fillSide(ctx, k2, ix.t2, cur2, mem2); err != nil {
		return nil, err
	}
	ix.e1 = make([][]kb.EntityID, n)
	ix.e2 = make([][]kb.EntityID, n)
	ix.weight = make([]float64, n)
	// Restore determinism after the scatter fill: concurrent chunks write a
	// token's members in claim order, so each member list is sorted by ID.
	err := ce.ForCtx(ctx, n, func(s int) error {
		m1 := mem1[off1[s]:off1[s+1]]
		m2 := mem2[off2[s]:off2[s+1]]
		slices.Sort(m1)
		slices.Sort(m2)
		ix.e1[s], ix.e2[s] = m1, m2
		if len(m1) > 0 && len(m2) > 0 {
			ix.weight[s] = stats.TokenWeight(len(m1), len(m2))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Tally live slots outside the parallel pass (a shared counter inside it
	// would race).
	for _, w := range ix.weight {
		if w > 0 {
			ix.live++
		}
	}
	return ix, nil
}

// NewTokenIndex is NewTokenIndexCtx without cancellation.
func NewTokenIndex(e *parallel.Engine, k1, k2 *kb.KB) *TokenIndex {
	ix, _ := NewTokenIndexCtx(context.Background(), e, k1, k2)
	return ix
}

// mergeDict interns every token of src into joint and returns the
// src-ID → joint-slot translation table.
func mergeDict(src *kb.Interner, joint *kb.Interner) []int32 {
	if src == nil {
		return []int32{}
	}
	n := src.Len()
	t := make([]int32, n)
	for id := 0; id < n; id++ {
		t[id] = int32(joint.Intern(src.TokenString(kb.TokenID(id))))
	}
	return t
}

// slotOf maps a KB-local token ID through an optional translation table.
func slotOf(t []int32, tid kb.TokenID) int32 {
	if t == nil {
		return int32(tid)
	}
	return t[tid]
}

// offsets turns per-slot counts into CSR offsets (len(counts)+1 entries).
func offsets(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	var sum int32
	for s, c := range counts {
		off[s] = sum
		sum += c
	}
	off[len(counts)] = sum
	return off
}

// IndexFromCollection builds a TokenIndex view over an existing (typically
// purged) block collection: slots are block positions, member lists alias
// the blocks, and the translation tables are filled with one dictionary
// lookup per distinct token of each KB. This is the compatibility path for
// callers that assemble a graph input from a bare Collection; the pipeline
// threads the purged index itself.
func IndexFromCollection(c *Collection, k1, k2 *kb.KB) *TokenIndex {
	n := len(c.Blocks)
	ix := &TokenIndex{
		keys:   make([]string, n),
		e1:     make([][]kb.EntityID, n),
		e2:     make([][]kb.EntityID, n),
		weight: make([]float64, n),
		live:   n,
	}
	byKey := make(map[string]int32, n)
	for s := range c.Blocks {
		b := &c.Blocks[s]
		ix.keys[s] = b.Key
		ix.e1[s], ix.e2[s] = b.E1, b.E2
		ix.weight[s] = stats.TokenWeight(len(b.E1), len(b.E2))
		byKey[b.Key] = int32(s)
	}
	ix.t1 = translateByKey(k1.TokenDict(), byKey)
	ix.t2 = translateByKey(k2.TokenDict(), byKey)
	return ix
}

// translateByKey maps every token of dict to its block slot, -1 if absent.
func translateByKey(dict *kb.Interner, byKey map[string]int32) []int32 {
	if dict == nil {
		return []int32{}
	}
	n := dict.Len()
	t := make([]int32, n)
	for id := 0; id < n; id++ {
		if s, ok := byKey[dict.TokenString(kb.TokenID(id))]; ok {
			t[id] = s
		} else {
			t[id] = -1
		}
	}
	return t
}

// Live returns the number of live token slots — the block count Collection
// would materialize. Graph construction uses it (together with
// TotalComparisons) as a cheap consistency check between a caller-supplied
// index and collection.
func (ix *TokenIndex) Live() int { return ix.live }

// TotalComparisons returns ‖B‖ over the live slots: the aggregate cross-KB
// comparison count Collection() would report.
func (ix *TokenIndex) TotalComparisons() int64 {
	var total int64
	for s, w := range ix.weight {
		if w > 0 {
			total += int64(len(ix.e1[s])) * int64(len(ix.e2[s]))
		}
	}
	return total
}

// key returns the block key of a slot.
func (ix *TokenIndex) key(s int32) string {
	if ix.dict != nil {
		return ix.dict.TokenString(kb.TokenID(s))
	}
	return ix.keys[s]
}

// ForEachShared walks the live tokens of one description in token-string
// order — the same order the historical string-keyed path used, so
// downstream floating-point accumulation stays bit-identical — calling f
// with the precomputed token weight and the members of the OTHER KB. fromE1
// states which side d belongs to.
func (ix *TokenIndex) ForEachShared(d *kb.Description, fromE1 bool, f func(w float64, others []kb.EntityID)) {
	t, others := ix.t1, ix.e2
	if !fromE1 {
		t, others = ix.t2, ix.e1
	}
	for _, tid := range d.TokenIDs() {
		s := slotOf(t, tid)
		if s < 0 {
			continue
		}
		if w := ix.weight[s]; w > 0 {
			f(w, others[s])
		}
	}
}

// Collection materializes the live slots as a block collection sorted by
// key, with member lists aliasing the index (callers must treat blocks as
// read-only, as they always had to). The result is byte-identical to the
// historical TokenBlocks output for the same purge state.
func (ix *TokenIndex) Collection() *Collection {
	liveSlots := make([]int32, 0, ix.live)
	for s, w := range ix.weight {
		if w > 0 {
			liveSlots = append(liveSlots, int32(s))
		}
	}
	slices.SortFunc(liveSlots, func(a, b int32) int {
		return strings.Compare(ix.key(a), ix.key(b))
	})
	blocks := make([]Block, len(liveSlots))
	for i, s := range liveSlots {
		blocks[i] = Block{Key: ix.key(s), E1: ix.e1[s], E2: ix.e2[s]}
	}
	return &Collection{Blocks: blocks}
}

// PurgeAbove returns a view of the index with every live token whose
// comparison count |b1|·|b2| exceeds maxComparisons marked dead, plus the
// number of purged tokens — Block Purging (§3.3) applied directly to the
// columnar index, with the same predicate as PurgeAbove on a Collection. A
// non-positive threshold keeps everything. The receiver is unchanged.
func (ix *TokenIndex) PurgeAbove(maxComparisons int64) (*TokenIndex, int) {
	if maxComparisons <= 0 {
		return ix, 0
	}
	out := *ix
	out.weight = slices.Clone(ix.weight)
	purged := 0
	for s, w := range out.weight {
		if w == 0 {
			continue
		}
		if int64(len(ix.e1[s]))*int64(len(ix.e2[s])) > maxComparisons {
			out.weight[s] = 0
			out.live--
			purged++
		}
	}
	return &out, purged
}
