package blocking

import (
	"context"
	"slices"
	"strings"
	"sync/atomic"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// TokenIndex is the columnar inverted token index behind token blocking and
// the β (valueSim) stage of the disjunctive blocking graph. Where the old
// path grouped entities under string keys and probed a map[string]*Block
// once per (entity, token), the TokenIndex is CSR-shaped: flat []EntityID
// member arrays addressed by dense token slots, with the per-token valueSim
// weight 1/log2(EF₁·EF₂+1) precomputed once per index instead of once per
// entity touch.
//
// The slot space is the joint token dictionary of the two KBs. When both KBs
// share one kb.Interner (NewBuilderWithInterner), the KB token IDs ARE the
// slots and translation is free; otherwise a per-KB translation table is
// built once, with a single dictionary lookup per distinct token — never per
// occurrence.
//
// A slot is "live" iff its weight is positive: tokens present in only one KB
// (no cross-KB comparisons) and tokens removed by Block Purging are dead and
// contribute nothing. Collection() materializes exactly the live slots as
// key-sorted blocks, byte-identical to the historical TokenBlocks output.
type TokenIndex struct {
	dict *kb.Interner
	// keys holds per-slot key strings when the index was built over a bare
	// Collection (dict == nil). Exactly one of dict/keys is set.
	keys []string
	// t1/t2 translate KB-local token IDs to slots; nil means identity. A
	// negative slot marks a token absent from the slot space (possible only
	// in from-collection indexes, whose slots cover just the kept blocks).
	t1, t2 []int32
	// o1/m1 and o2/m2 are the per-slot member CSRs: slot s's members of KB i
	// (entities containing the token, sorted by ID) are mi[oi[s]:oi[s+1]].
	// Kept flat — never as per-slot slice headers — so a snapshot loader can
	// install memory-mapped views with O(1) work and zero allocation.
	o1, o2 []int32
	m1, m2 []kb.EntityID
	// weight[s] is the precomputed per-token valueSim contribution; 0 marks
	// a dead slot.
	weight []float64
	// live counts slots with positive weight (== Collection().Len()).
	live int
}

// mem1/mem2 return one slot's member list of each side.
func (ix *TokenIndex) mem1(s int32) []kb.EntityID { return ix.m1[ix.o1[s]:ix.o1[s+1]] }
func (ix *TokenIndex) mem2(s int32) []kb.EntityID { return ix.m2[ix.o2[s]:ix.o2[s+1]] }

// NewTokenIndexCtx builds the token index for a KB pair with two passes
// over the entities per side: per-span occurrence counts (the CSR offsets)
// and a scatter fill of the flat member arrays. Both passes run over
// per-worker-local count arrays merged in span order — the BuildEFCtx
// rewrite — instead of one shared array with an atomic RMW per token
// occurrence: exact per-span write cursors make the fill regions disjoint
// (no atomics) and leave every member list sorted by entity ID by
// construction (ascending spans × ascending entities within a span), so the
// per-token sort the atomic fill needed disappears entirely. The result is
// independent of worker count and scheduling.
func NewTokenIndexCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB) (*TokenIndex, error) {
	ix := &TokenIndex{}
	d1, d2 := k1.TokenDict(), k2.TokenDict()
	if d1 != nil && d1 == d2 {
		ix.dict = d1
	} else {
		// Disjoint dictionaries: merge into a joint space once, paying one
		// string hash per DISTINCT token per KB rather than per occurrence.
		joint := kb.NewInterner()
		ix.t1 = mergeDict(d1, joint)
		ix.t2 = mergeDict(d2, joint)
		ix.dict = joint
	}
	n := ix.dict.Len()
	mem1, off1, err := memberFill(ctx, e, k1, ix.t1, n)
	if err != nil {
		return nil, err
	}
	mem2, off2, err := memberFill(ctx, e, k2, ix.t2, n)
	if err != nil {
		return nil, err
	}
	ix.m1, ix.o1 = mem1, off1
	ix.m2, ix.o2 = mem2, off2
	ix.weight = make([]float64, n)
	err = e.Chunked().ForCtx(ctx, n, func(s int) error {
		n1 := int(off1[s+1] - off1[s])
		n2 := int(off2[s+1] - off2[s])
		if n1 > 0 && n2 > 0 {
			ix.weight[s] = stats.TokenWeight(n1, n2)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Tally live slots outside the parallel pass (a shared counter inside it
	// would race).
	for _, w := range ix.weight {
		if w > 0 {
			ix.live++
		}
	}
	return ix, nil
}

// memberFill builds one side's CSR member array over n token slots: a
// per-span local counting pass merged in span order, then a scatter fill in
// which the span at position j writes slot s starting at
// off[s] + Σ_{j'<j} counts[j'][s]. Write regions are exact and disjoint, so
// the fill needs no atomics, and because spans ascend and entities ascend
// within a span, every member list comes out sorted by entity ID with no
// per-slot sort. Static spans (the engine's own scheduler is honored, but
// callers pass the static engine) bound the transient memory to one count
// array per worker.
func memberFill(ctx context.Context, e *parallel.Engine, k *kb.KB, t []int32, n int) ([]kb.EntityID, []int32, error) {
	locals, err := parallel.MapSpansCtx(ctx, e, k.Len(), func(s parallel.Span) ([]int32, error) {
		counts := make([]int32, n)
		for i := s.Lo; i < s.Hi; i++ {
			for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
				counts[slotOf(t, tid)]++
			}
		}
		return counts, nil
	})
	if err != nil {
		return nil, nil, err
	}
	off := spanCursors(locals, n)
	mem := make([]kb.EntityID, off[n])
	err = e.ForSpansIndexedCtx(ctx, k.Len(), func(pi int, s parallel.Span) error {
		cur := locals[pi]
		for i := s.Lo; i < s.Hi; i++ {
			for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
				slot := slotOf(t, tid)
				mem[cur[slot]] = kb.EntityID(i)
				cur[slot]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mem, off, nil
}

// spanCursors turns per-span local slot counts into global CSR offsets and,
// in place, into per-span write cursors: the span at position j writes slot s
// starting at off[s] + Σ_{j'<j} counts[j'][s] (an exclusive prefix sum over
// spans on top of the global offsets). Shared by the token and name member
// fills — it is what makes the scatter regions exact and disjoint.
func spanCursors(locals [][]int32, n int) []int32 {
	totals := make([]int32, n)
	for _, lc := range locals {
		for s, c := range lc {
			totals[s] += c
		}
	}
	off := offsets(totals)
	running := totals // reuse: totals[s] becomes the next write position
	copy(running, off[:n])
	for _, lc := range locals {
		for s, c := range lc {
			if c == 0 {
				continue
			}
			lc[s] = running[s]
			running[s] += c
		}
	}
	return off
}

// memberFillAtomic is the pre-refactor fill: one shared count array with an
// atomic add per token occurrence under the chunked scheduler, then a
// per-slot sort to restore determinism. Kept unexported as the reference
// side of BenchmarkTokenIndexMembers and the agreement test.
func memberFillAtomic(ctx context.Context, e *parallel.Engine, k *kb.KB, t []int32, n int) ([]kb.EntityID, []int32, error) {
	ce := e.Chunked()
	counts := make([]int32, n)
	err := ce.ForCtx(ctx, k.Len(), func(i int) error {
		for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
			atomic.AddInt32(&counts[slotOf(t, tid)], 1)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	off := offsets(counts)
	mem := make([]kb.EntityID, off[n])
	cur := slices.Clone(off[:n])
	err = ce.ForCtx(ctx, k.Len(), func(i int) error {
		for _, tid := range k.Entity(kb.EntityID(i)).TokenIDs() {
			s := slotOf(t, tid)
			mem[atomic.AddInt32(&cur[s], 1)-1] = kb.EntityID(i)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	err = ce.ForCtx(ctx, n, func(s int) error {
		slices.Sort(mem[off[s]:off[s+1]])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mem, off, nil
}

// NewTokenIndex is NewTokenIndexCtx without cancellation.
func NewTokenIndex(e *parallel.Engine, k1, k2 *kb.KB) *TokenIndex {
	ix, _ := NewTokenIndexCtx(context.Background(), e, k1, k2)
	return ix
}

// mergeDict interns every token of src into joint and returns the
// src-ID → joint-slot translation table.
func mergeDict(src *kb.Interner, joint *kb.Interner) []int32 {
	if src == nil {
		return []int32{}
	}
	n := src.Len()
	t := make([]int32, n)
	for id := 0; id < n; id++ {
		t[id] = int32(joint.Intern(src.TokenString(kb.TokenID(id))))
	}
	return t
}

// slotOf maps a KB-local token ID through an optional translation table.
func slotOf(t []int32, tid kb.TokenID) int32 {
	if t == nil {
		return int32(tid)
	}
	return t[tid]
}

// offsets turns per-slot counts into CSR offsets (len(counts)+1 entries).
func offsets(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	var sum int32
	for s, c := range counts {
		off[s] = sum
		sum += c
	}
	off[len(counts)] = sum
	return off
}

// IndexFromCollection builds a TokenIndex view over an existing (typically
// purged) block collection: slots are block positions, member lists are
// concatenated into the index's flat CSRs, and the translation tables are
// filled with one dictionary lookup per distinct token of each KB. This is
// the compatibility path for callers that assemble a graph input from a bare
// Collection; the pipeline threads the purged index itself.
func IndexFromCollection(c *Collection, k1, k2 *kb.KB) *TokenIndex {
	n := len(c.Blocks)
	ix := &TokenIndex{
		keys:   make([]string, n),
		o1:     make([]int32, n+1),
		o2:     make([]int32, n+1),
		weight: make([]float64, n),
		live:   n,
	}
	byKey := make(map[string]int32, n)
	for s := range c.Blocks {
		b := &c.Blocks[s]
		ix.keys[s] = b.Key
		ix.o1[s+1] = ix.o1[s] + int32(len(b.E1))
		ix.o2[s+1] = ix.o2[s] + int32(len(b.E2))
		ix.weight[s] = stats.TokenWeight(len(b.E1), len(b.E2))
		byKey[b.Key] = int32(s)
	}
	ix.m1 = make([]kb.EntityID, 0, ix.o1[n])
	ix.m2 = make([]kb.EntityID, 0, ix.o2[n])
	for s := range c.Blocks {
		ix.m1 = append(ix.m1, c.Blocks[s].E1...)
		ix.m2 = append(ix.m2, c.Blocks[s].E2...)
	}
	ix.t1 = translateByKey(k1.TokenDict(), byKey)
	ix.t2 = translateByKey(k2.TokenDict(), byKey)
	return ix
}

// translateByKey maps every token of dict to its block slot, -1 if absent.
func translateByKey(dict *kb.Interner, byKey map[string]int32) []int32 {
	if dict == nil {
		return []int32{}
	}
	n := dict.Len()
	t := make([]int32, n)
	for id := 0; id < n; id++ {
		if s, ok := byKey[dict.TokenString(kb.TokenID(id))]; ok {
			t[id] = s
		} else {
			t[id] = -1
		}
	}
	return t
}

// Live returns the number of live token slots — the block count Collection
// would materialize. Graph construction uses it (together with
// TotalComparisons) as a cheap consistency check between a caller-supplied
// index and collection.
func (ix *TokenIndex) Live() int { return ix.live }

// TotalComparisons returns ‖B‖ over the live slots: the aggregate cross-KB
// comparison count Collection() would report.
func (ix *TokenIndex) TotalComparisons() int64 {
	var total int64
	for s, w := range ix.weight {
		if w > 0 {
			n1 := int64(ix.o1[s+1] - ix.o1[s])
			n2 := int64(ix.o2[s+1] - ix.o2[s])
			total += n1 * n2
		}
	}
	return total
}

// key returns the block key of a slot.
func (ix *TokenIndex) key(s int32) string {
	if ix.dict != nil {
		return ix.dict.TokenString(kb.TokenID(s))
	}
	return ix.keys[s]
}

// ForEachShared walks the live tokens of one description in token-string
// order — the same order the historical string-keyed path used, so
// downstream floating-point accumulation stays bit-identical — calling f
// with the precomputed token weight and the members of the OTHER KB. fromE1
// states which side d belongs to.
func (ix *TokenIndex) ForEachShared(d *kb.Description, fromE1 bool, f func(w float64, others []kb.EntityID)) {
	ix.ForEachSharedTokens(d.TokenIDs(), fromE1, f)
}

// ForEachSharedTokens is ForEachShared over an explicit KB-local token-ID
// list — the probe the per-entity query path uses for descriptions that are
// not members of either KB: the caller resolves the query's token strings
// through the side's own dictionary (kb.Interner.Lookup, read-only) and
// passes the IDs in token-string order, reproducing exactly the walk a built
// description would take. Tokens must belong to the side named by fromE1.
// The receiver is never mutated, so concurrent walks are safe.
func (ix *TokenIndex) ForEachSharedTokens(tids []kb.TokenID, fromE1 bool, f func(w float64, others []kb.EntityID)) {
	t, off, mem := ix.t1, ix.o2, ix.m2
	if !fromE1 {
		t, off, mem = ix.t2, ix.o1, ix.m1
	}
	for _, tid := range tids {
		s := slotOf(t, tid)
		if s < 0 {
			continue
		}
		if w := ix.weight[s]; w > 0 {
			f(w, mem[off[s]:off[s+1]])
		}
	}
}

// Collection materializes the live slots as a block collection sorted by
// key, with member lists aliasing the index (callers must treat blocks as
// read-only, as they always had to). The result is byte-identical to the
// historical TokenBlocks output for the same purge state.
func (ix *TokenIndex) Collection() *Collection {
	liveSlots := make([]int32, 0, ix.live)
	for s, w := range ix.weight {
		if w > 0 {
			liveSlots = append(liveSlots, int32(s))
		}
	}
	slices.SortFunc(liveSlots, func(a, b int32) int {
		return strings.Compare(ix.key(a), ix.key(b))
	})
	blocks := make([]Block, len(liveSlots))
	for i, s := range liveSlots {
		blocks[i] = Block{Key: ix.key(s), E1: ix.mem1(s), E2: ix.mem2(s)}
	}
	return &Collection{Blocks: blocks}
}

// PurgeAbove returns a view of the index with every live token whose
// comparison count |b1|·|b2| exceeds maxComparisons marked dead, plus the
// number of purged tokens — Block Purging (§3.3) applied directly to the
// columnar index, with the same predicate as PurgeAbove on a Collection. A
// non-positive threshold keeps everything. The receiver is unchanged.
func (ix *TokenIndex) PurgeAbove(maxComparisons int64) (*TokenIndex, int) {
	if maxComparisons <= 0 {
		return ix, 0
	}
	out := *ix
	out.weight = slices.Clone(ix.weight)
	purged := 0
	for s, w := range out.weight {
		if w == 0 {
			continue
		}
		if int64(len(ix.mem1(int32(s))))*int64(len(ix.mem2(int32(s)))) > maxComparisons {
			out.weight[s] = 0
			out.live--
			purged++
		}
	}
	return &out, purged
}
