// Snapshot-side accessors for the columnar TokenIndex: the raw column view a
// serializer reads and the constructor a loader reassembles from. Only
// dictionary-backed indexes (the pipeline's) round-trip — from-collection
// views (keys != nil) exist solely as a compatibility path and are never
// part of a substrate.
package blocking

import (
	"fmt"

	"minoaner/internal/kb"
	"minoaner/internal/stats"
)

// IndexColumns is the raw columnar state of a dictionary-backed TokenIndex:
// the slot dictionary, the optional per-KB translation tables (nil when the
// KBs share the dictionary), the two flat member CSRs and the per-slot
// weights (0 marking dead — single-KB or purged — slots). Every slice is
// read-only for both producers and consumers; a loader may hand in views
// over a memory-mapped region, which the index aliases without copying.
type IndexColumns struct {
	Dict       *kb.Interner
	T1, T2     []int32
	Off1, Off2 []int32
	Mem1, Mem2 []kb.EntityID
	Weight     []float64
}

// SnapshotColumns exposes the index's columnar state for serialization.
func (ix *TokenIndex) SnapshotColumns() IndexColumns {
	return IndexColumns{
		Dict: ix.dict, T1: ix.t1, T2: ix.t2,
		Off1: ix.o1, Off2: ix.o2, Mem1: ix.m1, Mem2: ix.m2,
		Weight: ix.weight,
	}
}

// TokenIndexFromColumns reassembles a dictionary-backed TokenIndex from its
// raw columns (the inverse of SnapshotColumns), validating the CSR shape.
// The live-slot count is recomputed from the weights rather than trusted.
func TokenIndexFromColumns(c IndexColumns) (*TokenIndex, error) {
	if c.Dict == nil {
		return nil, fmt.Errorf("blocking: token index from columns: nil dictionary")
	}
	n := c.Dict.Len()
	if len(c.Weight) != n {
		return nil, fmt.Errorf("blocking: token index from columns: %d slots vs dictionary of %d", len(c.Weight), n)
	}
	if err := checkMemberCSR(c.Off1, c.Mem1, n, "e1"); err != nil {
		return nil, err
	}
	if err := checkMemberCSR(c.Off2, c.Mem2, n, "e2"); err != nil {
		return nil, err
	}
	ix := &TokenIndex{
		dict: c.Dict, t1: c.T1, t2: c.T2,
		o1: c.Off1, o2: c.Off2, m1: c.Mem1, m2: c.Mem2,
		weight: c.Weight,
	}
	for _, w := range ix.weight {
		if w > 0 {
			ix.live++
		}
	}
	return ix, nil
}

// checkMemberCSR validates one member CSR over n slots: n+1 offsets, first
// 0, non-decreasing, last covering the flat array.
func checkMemberCSR(off []int32, mem []kb.EntityID, n int, what string) error {
	if len(off) != n+1 || off[0] != 0 || off[n] != int32(len(mem)) {
		return fmt.Errorf("blocking: token index from columns: %s offsets do not cover %d members over %d slots",
			what, len(mem), n)
	}
	for s := 0; s < n; s++ {
		if off[s] > off[s+1] {
			return fmt.Errorf("blocking: token index from columns: %s offsets decrease at slot %d", what, s)
		}
	}
	return nil
}

// RecomputeWeight re-derives one slot's live weight from its member lists —
// exposed so property tests can cross-check stored weights against the
// formula without reaching into the package.
func RecomputeWeight(n1, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return stats.TokenWeight(n1, n2)
}
