package blocking

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"minoaner/internal/datagen"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

// collectBeta runs the ForEachShared walk for every entity of one side and
// flattens it into a comparable structure.
func collectBeta(ix *TokenIndex, k *kb.KB, fromE1 bool) [][]float64 {
	out := make([][]float64, k.Len())
	for i := 0; i < k.Len(); i++ {
		var row []float64
		ix.ForEachShared(k.Entity(kb.EntityID(i)), fromE1, func(w float64, others []kb.EntityID) {
			row = append(row, w*float64(len(others)+1))
		})
		out[i] = row
	}
	return out
}

// The index's Collection must equal the historical grouped-and-sorted
// blocking output exactly — same keys, same order, same members.
func TestTokenIndexCollectionMatchesTokenBlocks(t *testing.T) {
	w, d := testkb.Figure1() // separate dictionaries → translation path
	eng := parallel.New(2)
	ix := NewTokenIndex(eng, w, d)
	got := ix.Collection()
	if got.Len() == 0 {
		t.Fatal("no token blocks")
	}
	if ix.Live() != got.Len() {
		t.Errorf("Live = %d, Collection len = %d", ix.Live(), got.Len())
	}
	viaAPI := TokenBlocks(eng, w, d)
	if !reflect.DeepEqual(got, viaAPI) {
		t.Error("Collection() and TokenBlocks() disagree")
	}
	for i := 1; i < len(got.Blocks); i++ {
		if got.Blocks[i-1].Key >= got.Blocks[i].Key {
			t.Fatalf("blocks unsorted: %q before %q", got.Blocks[i-1].Key, got.Blocks[i].Key)
		}
	}
	for _, b := range got.Blocks {
		if len(b.E1) == 0 || len(b.E2) == 0 {
			t.Fatalf("single-sided block %q survived", b.Key)
		}
	}
}

// A shared interner (identity token space) and two disjoint interners must
// produce identical indexes from the walk's point of view.
func TestTokenIndexSharedVsDisjointDictionaries(t *testing.T) {
	build := func(dict *kb.Interner) (*kb.KB, *kb.KB) {
		mk := func(name string) *kb.Builder {
			if dict != nil {
				return kb.NewBuilderWithInterner(name, dict)
			}
			return kb.NewBuilder(name)
		}
		b1, b2 := mk("A"), mk("B")
		for i := 0; i < 40; i++ {
			e1 := b1.AddEntity(fmt.Sprintf("a:e%d", i))
			e2 := b2.AddEntity(fmt.Sprintf("b:e%d", i))
			b1.AddLiteral(e1, "label", fmt.Sprintf("uniq%d shared%d stopword", i, i%7))
			b2.AddLiteral(e2, "label", fmt.Sprintf("uniq%d shared%d stopword", i, i%7))
		}
		return b1.Build(), b2.Build()
	}
	eng := parallel.New(2)
	k1s, k2s := build(kb.NewInterner())
	k1d, k2d := build(nil)
	if k1s.TokenDict() != k2s.TokenDict() {
		t.Fatal("shared build lost the common dictionary")
	}
	if k1d.TokenDict() == k2d.TokenDict() {
		t.Fatal("disjoint build shares a dictionary")
	}
	ixs := NewTokenIndex(eng, k1s, k2s)
	ixd := NewTokenIndex(eng, k1d, k2d)
	if !reflect.DeepEqual(ixs.Collection(), ixd.Collection()) {
		t.Error("collections differ between shared and disjoint dictionaries")
	}
	if !reflect.DeepEqual(collectBeta(ixs, k1s, true), collectBeta(ixd, k1d, true)) {
		t.Error("E1 walks differ between shared and disjoint dictionaries")
	}
	if !reflect.DeepEqual(collectBeta(ixs, k2s, false), collectBeta(ixd, k2d, false)) {
		t.Error("E2 walks differ between shared and disjoint dictionaries")
	}
}

// The index must be identical for any worker count (scatter fill + member
// sort must erase scheduling effects).
func TestTokenIndexDeterministicAcrossWorkers(t *testing.T) {
	dict := kb.NewInterner()
	b1 := kb.NewBuilderWithInterner("A", dict)
	b2 := kb.NewBuilderWithInterner("B", dict)
	for i := 0; i < 300; i++ {
		e1 := b1.AddEntity(fmt.Sprintf("a:%d", i))
		e2 := b2.AddEntity(fmt.Sprintf("b:%d", i))
		label := fmt.Sprintf("uniq%d", i)
		for p := 1; p <= 8; p++ {
			if i%p == 0 {
				label += fmt.Sprintf(" pop%d", p)
			}
		}
		b1.AddLiteral(e1, "label", label)
		b2.AddLiteral(e2, "label", label)
	}
	k1, k2 := b1.Build(), b2.Build()
	ref := NewTokenIndex(parallel.Sequential(), k1, k2).Collection()
	for _, workers := range []int{2, 7, 16} {
		got := NewTokenIndex(parallel.New(workers), k1, k2).Collection()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("index differs with %d workers", workers)
		}
	}
}

// PurgeAbove on the index must agree with PurgeAbove on the collection and
// leave the receiver untouched.
func TestTokenIndexPurgeAboveMatchesCollectionPurge(t *testing.T) {
	w, d := testkb.Figure1()
	eng := parallel.Sequential()
	ix := NewTokenIndex(eng, w, d)
	full := ix.Collection()
	const threshold = 1 // keep only 1×1 blocks
	purgedIx, n := ix.PurgeAbove(threshold)
	purgedCol, n2 := PurgeAbove(full, threshold)
	if n != n2 {
		t.Errorf("purged counts differ: index %d vs collection %d", n, n2)
	}
	if !reflect.DeepEqual(purgedIx.Collection(), purgedCol) {
		t.Error("purged index collection differs from purged collection")
	}
	if ix.Live() != full.Len() {
		t.Error("PurgeAbove mutated the receiver")
	}
	if keep, n := ix.PurgeAbove(0); keep != ix || n != 0 {
		t.Error("non-positive threshold must be a no-op view")
	}
}

// IndexFromCollection must reproduce the same walk as the natively built
// index for the same (purged) collection.
func TestIndexFromCollectionMatchesNativeIndex(t *testing.T) {
	w, d := testkb.Figure1()
	eng := parallel.Sequential()
	native := NewTokenIndex(eng, w, d)
	native, _ = native.PurgeAbove(2)
	col := native.Collection()
	derived := IndexFromCollection(col, w, d)
	if derived.Live() != col.Len() {
		t.Errorf("derived Live = %d, want %d", derived.Live(), col.Len())
	}
	if !reflect.DeepEqual(collectBeta(native, w, true), collectBeta(derived, w, true)) {
		t.Error("E1 walks differ between native and derived index")
	}
	if !reflect.DeepEqual(collectBeta(native, d, false), collectBeta(derived, d, false)) {
		t.Error("E2 walks differ between native and derived index")
	}
	if !reflect.DeepEqual(derived.Collection(), col) {
		t.Error("derived collection differs")
	}
}

func TestComparisonBudget(t *testing.T) {
	if got := ComparisonBudget(100, 200, 0.0005); got != 10 {
		t.Errorf("budget = %d, want 10", got)
	}
	if got := ComparisonBudget(10, 10, 0.0001); got != 1 {
		t.Errorf("tiny fraction budget = %d, want clamp to 1", got)
	}
	if got := ComparisonBudget(10, 10, 0); got != 0 {
		t.Errorf("zero fraction budget = %d, want 0 (disabled)", got)
	}
	if got := ComparisonBudget(10, 10, -1); got != 0 {
		t.Errorf("negative fraction budget = %d, want 0 (disabled)", got)
	}
}

// The local-count/deterministic-fill member pass must reproduce the atomic
// reference exactly — same offsets, same (sorted) member arrays — for any
// worker count and either scheduler.
func TestMemberFillStrategiesAgree(t *testing.T) {
	w, d := testkb.Figure1()
	joint := kb.NewInterner()
	for _, k := range []*kb.KB{w, d} {
		t1 := make([]int32, 0)
		if dict := k.TokenDict(); dict != nil {
			for id := 0; id < dict.Len(); id++ {
				t1 = append(t1, int32(joint.Intern(dict.TokenString(kb.TokenID(id)))))
			}
		}
		n := joint.Len()
		for _, e := range []*parallel.Engine{parallel.Sequential(), parallel.New(3), parallel.New(7).Chunked()} {
			mem, off, err := memberFill(t.Context(), e, k, t1, n)
			if err != nil {
				t.Fatal(err)
			}
			refMem, refOff, err := memberFillAtomic(t.Context(), e, k, t1, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(off, refOff) {
				t.Fatalf("workers=%d: offsets differ", e.Workers())
			}
			if !reflect.DeepEqual(mem, refMem) {
				t.Fatalf("workers=%d: member arrays differ\nlocal:  %v\natomic: %v", e.Workers(), mem, refMem)
			}
		}
	}
}

// BenchmarkTokenIndexMembers compares the member-fill pass before and after
// the per-worker-local rewrite: "atomic" is the shared-array variant with
// one atomic RMW per token occurrence plus the per-slot sort it needs,
// "local" the span-local counts merged in span order with a sorted-by-
// construction scatter fill (the NewTokenIndexCtx path).
func BenchmarkTokenIndexMembers(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.RexaDBLP(), 0.5))
	if err != nil {
		b.Fatal(err)
	}
	k := d.K2 // the big side: 15k entities' worth of token occurrences
	n := k.TokenDict().Len()
	eng := parallel.New(0)
	b.Run("local", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := memberFill(context.Background(), eng, k, nil, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("atomic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := memberFillAtomic(context.Background(), eng, k, nil, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}
