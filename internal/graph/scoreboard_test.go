package graph

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

func TestScoreboardAddReset(t *testing.T) {
	b := NewScoreboard(10)
	heap := make([]Edge, 0, 4)
	if row := topKBoard(b, 4, heap); row != nil {
		t.Errorf("empty board row = %v, want nil", row)
	}
	b.Add(3, 0.5)
	b.Add(7, 0.25)
	b.Add(3, 0.25)
	want := []Edge{{To: 3, Weight: 0.75}, {To: 7, Weight: 0.25}}
	if row := topKBoard(b, 4, heap); !reflect.DeepEqual(row, want) {
		t.Errorf("row = %v, want %v (accumulated sums)", row, want)
	}
	// Ties order toward the lower ID regardless of touch order.
	b.Add(7, 0.5)
	want = []Edge{{To: 3, Weight: 0.75}, {To: 7, Weight: 0.75}}
	if row := topKBoard(b, 4, heap); !reflect.DeepEqual(row, want) {
		t.Errorf("tied row = %v, want %v", row, want)
	}
	b.Reset()
	if row := topKBoard(b, 4, heap); row != nil {
		t.Errorf("row after Reset = %v, want nil", row)
	}
	// The board is fully reusable: stale scores must not survive the reset.
	b.Add(5, 0.125)
	want = []Edge{{To: 5, Weight: 0.125}}
	if row := topKBoard(b, 4, heap); !reflect.DeepEqual(row, want) {
		t.Errorf("row after reuse = %v, want %v", row, want)
	}
}

// topKBoard must select and order exactly the candidates the map-based topK
// selects from identical accumulations, for every k — including heavy
// weight ties, where the unique (weight desc, ID asc) order decides.
func TestTopKBoardMatchesMapTopK(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	board := NewScoreboard(200)
	heap := make([]Edge, 0, 200)
	for trial := 0; trial < 200; trial++ {
		acc := make(map[kb.EntityID]float64)
		// Contributions drawn from a tiny weight alphabet to force ties.
		for add := r.Intn(60); add > 0; add-- {
			to := kb.EntityID(r.Intn(200))
			w := float64(1+r.Intn(4)) / 4
			acc[to] += w
			board.Add(to, w)
		}
		for _, k := range []int{0, 1, 2, 5, 15, 200} {
			want := topK(acc, k)
			got := topKBoard(board, k, heap)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d:\nboard: %v\nmap:   %v", trial, k, got, want)
			}
		}
		board.Reset()
	}
}

// randomTokenKBs builds a KB pair with overlapping random token vocabularies
// (separate dictionaries, exercising the index translation path).
func randomTokenKBs(r *rand.Rand, n1, n2, vocab int) (*kb.KB, *kb.KB) {
	build := func(ns string, n int) *kb.KB {
		b := kb.NewBuilder(ns)
		for i := 0; i < n; i++ {
			u := b.AddEntity(fmt.Sprintf("%s:e%d", ns, i))
			var sb strings.Builder
			for t := 1 + r.Intn(8); t > 0; t-- {
				fmt.Fprintf(&sb, " tok%d", r.Intn(vocab))
			}
			b.AddLiteral(u, "label", sb.String())
		}
		return b.Build()
	}
	return build("s1", n1), build("s2", n2)
}

// The scoreboard β pass must reproduce the retained map-based reference row
// for row — same candidates, same float sums, same order — for any worker
// count and scheduler. Running every entity through ONE worker's reused
// board (workers=1) is also the dirty-board leak detector: a missed reset
// would drag candidates of entity i into entity i+1's row.
func TestBetaRowsScoreboardMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		k1, k2 := randomTokenKBs(r, 40+r.Intn(40), 60+r.Intn(60), 30)
		ix := blocking.NewTokenIndex(parallel.New(2), k1, k2)
		full := parallel.Span{Lo: 0, Hi: k1.Len()}
		want, err := buildBetaSpanMap(context.Background(), parallel.Sequential(), ix, k1, true, 5, full)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []*parallel.Engine{parallel.Sequential(), parallel.New(2).Chunked(), parallel.New(7)} {
			got, err := buildBetaSpan(context.Background(), e, ix, k1, k2.Len(), true, 5, full)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: scoreboard β rows differ from map reference", trial, e.Workers())
			}
		}
		// The reverse direction, for symmetry.
		want2, err := buildBetaSpanMap(context.Background(), parallel.Sequential(), ix, k2, false, 5, parallel.Span{Lo: 0, Hi: k2.Len()})
		if err != nil {
			t.Fatal(err)
		}
		got2, err := buildBetaSpan(context.Background(), parallel.Sequential(), ix, k2, k1.Len(), false, 5, parallel.Span{Lo: 0, Hi: k2.Len()})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2, want2) {
			t.Fatalf("trial %d: reverse-direction β rows differ from map reference", trial)
		}
	}
}

// Identical consecutive entities maximize scratch reuse pressure: every row
// re-touches exactly the candidates of the previous one, so any stale score
// shifts the sums. Rows must still all equal the per-entity-fresh reference.
func TestBetaRowsDirtyBoardWouldBeCaught(t *testing.T) {
	b1 := kb.NewBuilder("d1")
	b2 := kb.NewBuilder("d2")
	for i := 0; i < 50; i++ {
		u := b1.AddEntity(fmt.Sprintf("d1:e%d", i))
		b1.AddLiteral(u, "label", "alpha beta gamma shared")
	}
	for i := 0; i < 20; i++ {
		u := b2.AddEntity(fmt.Sprintf("d2:e%d", i))
		b2.AddLiteral(u, "label", "alpha beta shared distinct"+fmt.Sprint(i%5))
	}
	k1, k2 := b1.Build(), b2.Build()
	ix := blocking.NewTokenIndex(parallel.Sequential(), k1, k2)
	full := parallel.Span{Lo: 0, Hi: k1.Len()}
	want, err := buildBetaSpanMap(context.Background(), parallel.Sequential(), ix, k1, true, 10, full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := buildBetaSpan(context.Background(), parallel.Sequential(), ix, k1, k2.Len(), true, 10, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reused scoreboard diverged from fresh-per-entity reference (dirty board leaked)")
	}
	if len(want[0]) == 0 {
		t.Fatal("fixture produced empty rows; test is vacuous")
	}
}

// randomGammaInputs builds synthetic top-neighbor lists, β adjacency and a
// reverse top-neighbor index for one γ side.
func randomGammaInputs(r *rand.Rand, n1, n2 int) (top [][]kb.EntityID, adj [][]Edge, inOther [][]kb.EntityID) {
	top = make([][]kb.EntityID, n1)
	adj = make([][]Edge, n1)
	for i := range top {
		for c := r.Intn(4); c > 0; c-- {
			top[i] = append(top[i], kb.EntityID(r.Intn(n1)))
		}
		for c := r.Intn(5); c > 0; c-- {
			adj[i] = append(adj[i], Edge{To: kb.EntityID(r.Intn(n2)), Weight: float64(1+r.Intn(8)) / 8})
		}
	}
	inOther = make([][]kb.EntityID, n2)
	for j := range inOther {
		for c := r.Intn(4); c > 0; c-- {
			inOther[j] = append(inOther[j], kb.EntityID(r.Intn(n2)))
		}
	}
	return top, adj, inOther
}

// The scoreboard γ pass must reproduce the map reference for any worker
// count, and concatenating arbitrary span partitions must reproduce the
// full-range pass — the invariant sharded construction and the Gamma1Scope
// rely on, now over reused scratch state.
func TestGammaRowsScoreboardMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n1, n2 := 30+r.Intn(50), 30+r.Intn(50)
		top, adj, inOther := randomGammaInputs(r, n1, n2)
		full := parallel.Span{Lo: 0, Hi: n1}
		want, err := gammaRowsMap(context.Background(), parallel.Sequential(), full, top, adj, inOther, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []*parallel.Engine{parallel.Sequential(), parallel.New(3).Chunked(), parallel.New(8)} {
			got, err := gammaRows(context.Background(), e, full, top, adj, inOther, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: scoreboard γ rows differ from map reference", trial, e.Workers())
			}
		}
		// Span concatenation in span order == full range, for a random cut.
		var rows [][]Edge
		for lo := 0; lo < n1; {
			hi := lo + 1 + r.Intn(n1-lo)
			part, err := gammaRows(context.Background(), parallel.New(2).Chunked(), parallel.Span{Lo: lo, Hi: hi}, top, adj, inOther, 4)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, part...)
			lo = hi
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("trial %d: concatenated γ spans differ from full-range pass", trial)
		}
	}
}

// Committed before/after guard: the scoreboard pass against the retained
// map-based reference on a workload with realistic block skew.
func benchBetaInputs(b *testing.B) (*kb.KB, *kb.KB, *blocking.TokenIndex) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	k1, k2 := randomTokenKBs(r, 800, 2400, 400)
	ix := blocking.NewTokenIndex(parallel.New(0), k1, k2)
	return k1, k2, ix
}

func BenchmarkBetaRows(b *testing.B) {
	k1, k2, ix := benchBetaInputs(b)
	eng := parallel.New(0)
	full := parallel.Span{Lo: 0, Hi: k2.Len()}
	b.Run("scoreboard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := buildBetaSpan(context.Background(), eng, ix, k2, k1.Len(), false, 15, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := buildBetaSpanMap(context.Background(), eng, ix, k2, false, 15, full); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGammaRowsStage(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	top, adj, inOther := randomGammaInputs(r, 2000, 2000)
	eng := parallel.New(0)
	full := parallel.Span{Lo: 0, Hi: len(top)}
	b.Run("scoreboard", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gammaRows(context.Background(), eng, full, top, adj, inOther, 15); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gammaRowsMap(context.Background(), eng, full, top, adj, inOther, 15); err != nil {
				b.Fatal(err)
			}
		}
	})
}
