package graph

import (
	"context"
	"time"

	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// BuildShardedCtx is the shard-friendly variant of BuildCtx: it constructs
// the α edges, both β directions and the E2-side γ lists exactly as the
// monolithic builder does, but computes the E1 β rows one contiguous shard
// at a time and leaves Gamma1 EMPTY. Instead of materializing the full
// E1-side γ lists — the largest per-node structure the monolithic graph
// retains — it returns a Gamma1Scope from which callers pull γ rows one
// shard at a time (BuildSpan) and drop them when the shard is matched.
//
// Per-row computations are identical to BuildCtx, so for every shard plan
// the α/β/γ values observed by the matcher are byte-identical to the
// monolithic graph; only their lifetime differs. At one worker, peak memory
// is bounded further by sequencing the two γ adjacencies: the E2-side merged
// adjacency and reverse top-neighbor index are released before the E1-side
// ones are built, where BuildCtx holds all four simultaneously. With more
// workers the two γ sides build concurrently — the memory-bound sequencing
// is traded for overlap, since a multi-worker run has headroom where the
// 1-worker sharded run is the memory-constrained configuration.
//
// The returned Timings mirror BuildTimedCtx: Beta covers α and both β
// directions, Gamma the E2-side γ construction plus the scope's shared
// inputs. The deferred E1 γ rows are timed by the caller as BuildSpan
// produces them and belong to the γ phase too.
func BuildShardedCtx(ctx context.Context, e *parallel.Engine, in Input, shards []parallel.Span) (*Graph, *Gamma1Scope, Timings, error) {
	g := &Graph{
		Alpha1: make([][]kb.EntityID, in.K1.Len()),
		Alpha2: make([][]kb.EntityID, in.K2.Len()),
	}
	var tm Timings
	ce := e.Chunked()
	ix := resolveIndex(in)
	if err := ctx.Err(); err != nil {
		return nil, nil, tm, err
	}
	t0 := time.Now()
	g.buildAlpha(in)

	// β: the E2 direction in one pass (it is needed in full by both γ
	// directions and by R2/R4), the E1 direction shard by shard so the
	// transient accumulation state of one shard is released before the next
	// begins. Rows land in the same positions a full-range pass would fill.
	beta2, err := buildBeta(ctx, ce, ix, in.K2, in.K1.Len(), false, in.K)
	if err != nil {
		return nil, nil, tm, err
	}
	g.Beta2 = beta2
	g.Beta1 = make([][]Edge, in.K1.Len())
	for _, s := range shards {
		rows, err := buildBetaSpan(ctx, ce, ix, in.K1, in.K2.Len(), true, in.K, s)
		if err != nil {
			return nil, nil, tm, err
		}
		copy(g.Beta1[s.Lo:s.Hi], rows)
	}
	tm.Beta = time.Since(t0)

	// γ: the E2-side rows and the E1-side scope prep are independent given
	// the shared β inputs, so with more than one worker they build
	// concurrently. At one worker they run in sequence, E2 side first, so
	// the E2-side adjacency and reverse index die before the E1-side ones
	// are allocated — the historical peak-memory bound.
	t0 = time.Now()
	scope := &Gamma1Scope{eng: ce, top1: in.Top1, k: in.K}
	buildGamma2 := func(sc context.Context) error {
		adj2 := MergeAdjacency(g.Beta2, g.Beta1, in.K2.Len())
		in1 := stats.TopInNeighbors(in.Top1)
		rows, err := gammaRows(sc, ce, parallel.Span{Lo: 0, Hi: in.K2.Len()}, in.Top2, adj2, in1, in.K)
		if err != nil {
			return err
		}
		g.Gamma2 = rows
		return nil
	}
	prepGamma1 := func(context.Context) error {
		scope.adj1 = MergeAdjacency(g.Beta1, g.Beta2, in.K1.Len())
		scope.in2 = stats.TopInNeighbors(in.Top2)
		return nil
	}
	if e.Workers() > 1 {
		if err := e.ConcurrentCtx(ctx, buildGamma2, prepGamma1); err != nil {
			return nil, nil, tm, err
		}
	} else {
		if err := buildGamma2(ctx); err != nil {
			return nil, nil, tm, err
		}
		if err := prepGamma1(ctx); err != nil {
			return nil, nil, tm, err
		}
	}
	tm.Gamma = time.Since(t0)
	return g, scope, tm, nil
}

// Gamma1Scope holds the shared inputs of E1-side γ construction — the merged
// undirected β adjacency and the reverse top-neighbor index of E2 — so γ
// rows can be produced shard at a time long after BuildShardedCtx returned
// (the sharded matcher interleaves them with rule R3). The scope is
// read-only after construction and safe for sequential reuse across shards.
type Gamma1Scope struct {
	eng  *parallel.Engine
	top1 [][]kb.EntityID
	adj1 [][]Edge
	in2  [][]kb.EntityID
	k    int
}

// BuildSpan computes the γ rows of one contiguous E1 shard: s.Len() rows,
// row i describing entity s.Lo+i, identical to what BuildCtx would have
// stored in Graph.Gamma1[s.Lo:s.Hi].
func (sc *Gamma1Scope) BuildSpan(ctx context.Context, s parallel.Span) ([][]Edge, error) {
	return gammaRows(ctx, sc.eng, s, sc.top1, sc.adj1, sc.in2, sc.k)
}
