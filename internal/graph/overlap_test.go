package graph

import (
	"context"
	"reflect"
	"testing"

	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

// The concurrent γ builds of BuildShardedCtx (workers > 1) must reproduce
// the sequential one-worker result exactly: same E2-side γ rows, same
// deferred E1-side rows out of the scope. The CI race step runs this under
// -race at workers=2, where the removed sequencing would hide races.
func TestShardedGammaOverlapDeterminism(t *testing.T) {
	w, d := testkb.Figure1()
	in := InputFor(seq, w, d, 2, 5, 2)
	mid := (w.Len() + 1) / 2
	shards := []parallel.Span{{Lo: 0, Hi: mid}, {Lo: mid, Hi: w.Len()}}
	ctx := context.Background()

	gRef, scopeRef, _, err := BuildShardedCtx(ctx, seq, in, shards)
	if err != nil {
		t.Fatal(err)
	}
	refRows := make([][][]Edge, len(shards))
	for i, s := range shards {
		if refRows[i], err = scopeRef.BuildSpan(ctx, s); err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{2, 4} {
		e := parallel.New(workers)
		g, scope, _, err := BuildShardedCtx(ctx, e, in, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Gamma2, gRef.Gamma2) {
			t.Fatalf("workers=%d: Gamma2 differs from sequential build", workers)
		}
		if !reflect.DeepEqual(g.Beta1, gRef.Beta1) || !reflect.DeepEqual(g.Beta2, gRef.Beta2) {
			t.Fatalf("workers=%d: β rows differ from sequential build", workers)
		}
		for i, s := range shards {
			rows, err := scope.BuildSpan(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rows, refRows[i]) {
				t.Fatalf("workers=%d: γ1 rows of shard %d differ from sequential build", workers, i)
			}
		}
	}
}
