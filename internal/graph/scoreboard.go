// The scoreboard: dense, reusable scatter-accumulation state for the β/γ
// weighting of Algorithm 1.
//
// Candidate accumulation is a pure aggregate-per-candidate reduction: for
// one entity, walk its evidence (shared token blocks for β, neighbor edges
// for γ) and sum a weight per touched candidate of the other KB. Hashing a
// map key per contribution dominated that walk; enhanced meta-blocking
// (Papadakis et al., EDBT 2016) replaces the map with a dense per-worker
// array indexed by entity ID plus a sparse "touched" list, and this package
// does the same. The board is sized once per worker (parallel.ForLocalCtx),
// each entity scatters into it with plain float adds, and the reset walks
// only the touched IDs — O(touched), not O(|KB|) — so one allocation serves
// an entire pass. (The matcher's R3 rank aggregation uses a bounded variant
// of the same pattern, matching.aggBoard: its inputs are rows already
// pruned to ≤ K, so a ≤ 2K sparse list replaces the dense array there.)
package graph

import (
	"cmp"
	"slices"

	"minoaner/internal/kb"
)

// Scoreboard is a dense score accumulator over the entity IDs of one KB
// with a sparse touched set. The zero score doubles as the "untouched"
// sentinel, which keeps Add branch-cheap without a generation array — every
// contribution must therefore be strictly positive (true for both users:
// per-token weights and retained β weights are > 0). Reset is O(touched).
// A Scoreboard is not safe for concurrent use; hand each worker its own
// via parallel.ForLocalCtx / MapLocalCtx.
type Scoreboard struct {
	score   []float64
	touched []kb.EntityID
}

// NewScoreboard returns a board over entity IDs [0, n).
func NewScoreboard(n int) *Scoreboard {
	return &Scoreboard{score: make([]float64, n)}
}

// Add accumulates a strictly positive weight onto a candidate.
func (b *Scoreboard) Add(to kb.EntityID, w float64) {
	if b.score[to] == 0 {
		b.touched = append(b.touched, to)
	}
	b.score[to] += w
}

// Reset clears the board in O(touched), making it ready for the next
// entity. Forgetting to reset leaks one entity's scores into the next — the
// scratch-reuse property tests exist to catch exactly that.
func (b *Scoreboard) Reset() {
	for _, t := range b.touched {
		b.score[t] = 0
	}
	b.touched = b.touched[:0]
}

// edgeCmp is the canonical candidate-row order: decreasing weight, ties by
// increasing entity ID. It is total (no two edges of one row share an ID),
// which is what makes every selection over it order-independent.
func edgeCmp(a, b Edge) int {
	if a.Weight != b.Weight {
		return cmp.Compare(b.Weight, a.Weight)
	}
	return cmp.Compare(a.To, b.To)
}

// edgeBetter reports whether a ranks strictly ahead of b under edgeCmp.
func edgeBetter(a, b Edge) bool { return edgeCmp(a, b) < 0 }

// topKBoard selects the k best candidates of a touched board under edgeCmp
// and returns them as a freshly allocated row, sorted — the same row the
// map-based topK produces from the same sums, without sorting all touched
// candidates: a bounded min-heap (root = worst kept) scans the touched list
// in O(touched · log k), then one k-element sort orders the survivors.
// heapBuf is the reusable heap scratch (cap ≥ k); the board is left
// untouched, callers reset it separately.
func topKBoard(b *Scoreboard, k int, heapBuf []Edge) []Edge {
	if len(b.touched) == 0 || k <= 0 {
		return nil
	}
	h := heapBuf[:0]
	for _, to := range b.touched {
		w := b.score[to]
		if w <= 0 {
			// Unreachable with positive contributions; kept as the same
			// trivial-edge pruning guard the map path applied (§3.3).
			continue
		}
		e := Edge{To: to, Weight: w}
		if len(h) < k {
			h = append(h, e)
			siftUp(h, len(h)-1)
		} else if edgeBetter(e, h[0]) {
			h[0] = e
			siftDown(h, 0)
		}
	}
	if len(h) == 0 {
		return nil
	}
	out := make([]Edge, len(h))
	copy(out, h)
	slices.SortFunc(out, edgeCmp)
	return out
}

// heapWorse is the heap order: a sorts below b when a ranks BEHIND b under
// edgeCmp, so the root is always the worst kept candidate.
func heapWorse(a, b Edge) bool { return edgeBetter(b, a) }

func siftUp(h []Edge, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !heapWorse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []Edge, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && heapWorse(h[l], h[m]) {
			m = l
		}
		if r < len(h) && heapWorse(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// boardScratch is the per-worker scratch of the β and γ passes: one
// scoreboard over the other KB's entity IDs plus the reusable top-K heap
// buffer. With it, the only per-entity allocation left is the emitted row.
type boardScratch struct {
	board *Scoreboard
	heap  []Edge
}

func newBoardScratch(n, k int) *boardScratch {
	if k < 0 {
		k = 0
	}
	return &boardScratch{board: NewScoreboard(n), heap: make([]Edge, 0, k)}
}

// row extracts the top-k candidates of the accumulated board and resets it
// for the next entity.
func (sc *boardScratch) row(k int) []Edge {
	out := topKBoard(sc.board, k, sc.heap)
	sc.board.Reset()
	return out
}
