package graph

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

// buildFigure1Graph assembles the full Algorithm 1 input for the paper's
// Figure 1 fixture with parameters (k=2 names, K, N=2).
func buildFigure1Graph(t *testing.T, e *parallel.Engine, k int) (*kb.KB, *kb.KB, *Graph) {
	t.Helper()
	w, d := testkb.Figure1()
	in := InputFor(e, w, d, 2, k, 2)
	return w, d, Build(e, in)
}

func TestAlphaEdgesFromUniqueNames(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	chef1 := w.Lookup("w:JohnLakeA")
	chef2 := d.Lookup("d:JonnyLake")
	// Example 3.4: the chefs share the unique name "J. Lake" → α = 1.
	if !containsID(g.Alpha1[chef1], chef2) {
		t.Errorf("Alpha1[chef1] = %v, want to contain chef2=%d", g.Alpha1[chef1], chef2)
	}
	if !containsID(g.Alpha2[chef2], chef1) {
		t.Errorf("Alpha2[chef2] = %v, want to contain chef1=%d", g.Alpha2[chef2], chef1)
	}
}

func TestBetaMatchesDirectValueSim(t *testing.T) {
	// With K large enough that nothing is pruned, the retained β weight of
	// every pair must equal the reference Def. 2.1 computation.
	w, d, g := buildFigure1Graph(t, seq, 100)
	ef1, ef2 := stats.BuildEF(seq, w), stats.BuildEF(seq, d)
	for i := 0; i < w.Len(); i++ {
		for j := 0; j < d.Len(); j++ {
			want := stats.ValueSim(w.Entity(kb.EntityID(i)), d.Entity(kb.EntityID(j)), ef1, ef2)
			got := g.BetaWeight(kb.EntityID(i), kb.EntityID(j))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("β(%d,%d) = %v, want valueSim %v", i, j, got, want)
			}
		}
	}
}

func TestBetaSortedAndBounded(t *testing.T) {
	_, _, g := buildFigure1Graph(t, seq, 2)
	for i, es := range g.Beta1 {
		if len(es) > 2 {
			t.Fatalf("Beta1[%d] has %d edges, K=2", i, len(es))
		}
		for x := 1; x < len(es); x++ {
			if es[x].Weight > es[x-1].Weight {
				t.Fatalf("Beta1[%d] not sorted desc", i)
			}
		}
		for _, edge := range es {
			if edge.Weight <= 0 {
				t.Fatalf("Beta1[%d] kept trivial edge", i)
			}
		}
	}
}

func TestGammaPropagation(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	r1 := w.Lookup("w:Restaurant1")
	r2 := d.Lookup("d:Restaurant2")
	// Example 3.4: Restaurant1–Restaurant2 get a non-zero γ because their
	// top neighbors (chefs; Bray/Berkshire) have non-zero β edges.
	var gammaR1R2 float64
	for _, edge := range g.Gamma1[r1] {
		if edge.To == r2 {
			gammaR1R2 = edge.Weight
		}
	}
	if gammaR1R2 <= 0 {
		t.Fatalf("γ(Restaurant1, Restaurant2) = %v, want > 0 (Gamma1: %v)", gammaR1R2, g.Gamma1[r1])
	}
	// γ must equal the sum of β over top-neighbor pairs (Def. 2.5 via
	// retained edges).
	var want float64
	in := InputFor(seq, w, d, 2, 5, 2)
	adj := map[[2]kb.EntityID]float64{}
	for x, es := range g.Beta1 {
		for _, e := range es {
			adj[[2]kb.EntityID{kb.EntityID(x), e.To}] = e.Weight
		}
	}
	for y, es := range g.Beta2 {
		for _, e := range es {
			adj[[2]kb.EntityID{e.To, kb.EntityID(y)}] = e.Weight
		}
	}
	for _, na := range in.Top1[r1] {
		for _, nb := range in.Top2[r2] {
			want += adj[[2]kb.EntityID{na, nb}]
		}
	}
	if math.Abs(gammaR1R2-want) > 1e-9 {
		t.Errorf("γ(R1,R2) = %v, want %v", gammaR1R2, want)
	}
}

func TestGammaSymmetryOfPairWeight(t *testing.T) {
	// γ is a pair weight: if (a→b) and (b→a) both survive pruning, their
	// weights must be equal.
	w, d, g := buildFigure1Graph(t, seq, 100)
	_ = w
	_ = d
	for a, es := range g.Gamma1 {
		for _, e := range es {
			for _, back := range g.Gamma2[e.To] {
				if int(back.To) == a && math.Abs(back.Weight-e.Weight) > 1e-9 {
					t.Fatalf("γ asymmetric: %v vs %v", e.Weight, back.Weight)
				}
			}
		}
	}
}

func TestHasDirectedEdge(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	chef1 := w.Lookup("w:JohnLakeA")
	chef2 := d.Lookup("d:JonnyLake")
	if !g.HasDirectedEdge1(chef1, chef2) || !g.HasDirectedEdge2(chef2, chef1) {
		t.Error("chef pair must be reciprocally connected")
	}
	uk := w.Lookup("w:UK")
	// UK shares tokens with England ("england"? no: UK's tokens are
	// "united kingdom"); it should have no edge to the chef.
	if g.HasDirectedEdge1(uk, chef2) {
		t.Error("UK → chef edge should not exist")
	}
}

func TestGraphParallelDeterminism(t *testing.T) {
	_, _, ref := buildFigure1Graph(t, seq, 3)
	for _, workers := range []int{2, 4, 8} {
		_, _, got := buildFigure1Graph(t, parallel.New(workers), 3)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("graph differs with %d workers", workers)
		}
	}
}

func TestEdgesBound(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 3)
	// |E| ≤ 2·(2K + maxNames)·(|E1|+|E2|) — generous upper bound; the point
	// is linear scaling in input size (§4 complexity claim).
	bound := 2 * (2*3 + 2) * (w.Len() + d.Len())
	if g.Edges() > bound {
		t.Errorf("Edges = %d, exceeds linear bound %d", g.Edges(), bound)
	}
}

func TestTopK(t *testing.T) {
	acc := map[kb.EntityID]float64{1: 0.5, 2: 2.0, 3: 1.0, 4: 0, 5: -1}
	got := topK(acc, 2)
	want := []Edge{{2, 2.0}, {3, 1.0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("topK = %v, want %v", got, want)
	}
	if topK(nil, 3) != nil {
		t.Error("topK(nil) should be nil")
	}
	if topK(acc, 0) != nil {
		t.Error("topK(_, 0) should be nil")
	}
	// Ties broken by ID.
	tie := map[kb.EntityID]float64{9: 1, 3: 1, 7: 1}
	gotTie := topK(tie, 2)
	if gotTie[0].To != 3 || gotTie[1].To != 7 {
		t.Errorf("tie-break = %v, want IDs 3,7", gotTie)
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(weights []float64, k uint8) bool {
		acc := map[kb.EntityID]float64{}
		for i, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			acc[kb.EntityID(i)] = math.Abs(w)
		}
		kk := int(k%10) + 1
		es := topK(acc, kk)
		if len(es) > kk {
			return false
		}
		for i := 1; i < len(es); i++ {
			if es[i].Weight > es[i-1].Weight {
				return false
			}
		}
		// Every returned weight must be >= every excluded positive weight.
		if len(es) == kk {
			minKept := es[len(es)-1].Weight
			excluded := 0
			for _, w := range acc {
				if w > minKept {
					excluded++
				}
			}
			if excluded > kk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeAdjacency(t *testing.T) {
	beta1 := [][]Edge{{{To: 0, Weight: 1.0}, {To: 1, Weight: 0.5}}}
	beta2 := [][]Edge{{{To: 0, Weight: 1.0}}, {}} // E2 node 0 retains edge to E1 node 0
	adj := MergeAdjacency(beta1, beta2, 1)
	if len(adj[0]) != 2 {
		t.Fatalf("adj[0] = %v, want deduped 2 edges", adj[0])
	}
	if adj[0][0].To != 0 || adj[0][1].To != 1 {
		t.Errorf("adj[0] = %v, want sorted by ID", adj[0])
	}
}

// Duplicate edges (same To) must dedup deterministically — the higher weight
// wins no matter which direction contributed it first. (In the pipeline both
// weights coincide because valueSim is symmetric; the tie rule makes the
// merge order-insensitive by construction, not by accident.)
func TestMergeAdjacencyTieBreaking(t *testing.T) {
	ownFirst := MergeAdjacency(
		[][]Edge{{{To: 3, Weight: 0.25}}},
		[][]Edge{nil, nil, nil, {{To: 0, Weight: 0.75}}},
		1)
	reverseFirst := MergeAdjacency(
		[][]Edge{{{To: 3, Weight: 0.75}}},
		[][]Edge{nil, nil, nil, {{To: 0, Weight: 0.25}}},
		1)
	for name, adj := range map[string][][]Edge{"own-low": ownFirst, "own-high": reverseFirst} {
		if len(adj[0]) != 1 {
			t.Fatalf("%s: adj[0] = %v, want 1 deduped edge", name, adj[0])
		}
		if adj[0][0] != (Edge{To: 3, Weight: 0.75}) {
			t.Errorf("%s: kept %v, want the max-weight duplicate {3 0.75}", name, adj[0][0])
		}
	}
	// Multiple duplicates interleaved with distinct neighbors.
	adj := MergeAdjacency(
		[][]Edge{{{To: 1, Weight: 0.5}, {To: 2, Weight: 0.9}}},
		[][]Edge{nil, {{To: 0, Weight: 0.5}}, {{To: 0, Weight: 0.9}}, {{To: 0, Weight: 0.1}}},
		1)
	want := []Edge{{To: 1, Weight: 0.5}, {To: 2, Weight: 0.9}, {To: 3, Weight: 0.1}}
	if !reflect.DeepEqual(adj[0], want) {
		t.Errorf("adj[0] = %v, want %v", adj[0], want)
	}
}

// topK must order equal weights by ascending entity ID at every position,
// including across the truncation boundary.
func TestTopKTieBreaking(t *testing.T) {
	acc := map[kb.EntityID]float64{8: 0.5, 2: 0.5, 5: 0.5, 1: 0.25}
	got := topK(acc, 3)
	want := []Edge{{2, 0.5}, {5, 0.5}, {8, 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("topK ties = %v, want %v (ID 1 with lower weight truncated)", got, want)
	}
}

// uniqueNameBlocks builds a pathological name-block collection: one E1
// entity shares nBlocks distinct unique names with the same E2 entity, so
// its alpha list is appended nBlocks times — the workload that was quadratic
// under the appendUnique idiom.
func uniqueNameBlocks(nBlocks int) *blocking.Collection {
	c := &blocking.Collection{Blocks: make([]blocking.Block, nBlocks)}
	for i := range c.Blocks {
		c.Blocks[i] = blocking.Block{
			Key: fmt.Sprintf("name-%06d", i),
			E1:  []kb.EntityID{0},
			E2:  []kb.EntityID{kb.EntityID(i % 4)},
		}
	}
	return c
}

func TestBuildAlphaDeduplicates(t *testing.T) {
	g := &Graph{Alpha1: make([][]kb.EntityID, 1), Alpha2: make([][]kb.EntityID, 4)}
	g.buildAlpha(Input{NameBlocks: uniqueNameBlocks(100)})
	if want := []kb.EntityID{0, 1, 2, 3}; !reflect.DeepEqual(g.Alpha1[0], want) {
		t.Errorf("Alpha1[0] = %v, want sorted deduped %v", g.Alpha1[0], want)
	}
	for j := range g.Alpha2 {
		if !reflect.DeepEqual(g.Alpha2[j], []kb.EntityID{0}) {
			t.Errorf("Alpha2[%d] = %v, want [0]", j, g.Alpha2[j])
		}
	}
}

// Benchmark guard for the sort+compact alpha construction: with appendUnique
// this was O(nBlocks²) per hot entity (≈10⁸ comparisons at 10k blocks);
// sorted+compact keeps it O(n log n). A regression shows up as a
// catastrophic ns/op jump.
func BenchmarkBuildAlphaSkewedNames(b *testing.B) {
	in := Input{NameBlocks: uniqueNameBlocks(10000)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := &Graph{Alpha1: make([][]kb.EntityID, 1), Alpha2: make([][]kb.EntityID, 4)}
		g.buildAlpha(in)
	}
}

// BuildShardedCtx must reproduce BuildCtx exactly: α, β, γ2 in the returned
// graph, and the scope's per-shard γ1 rows concatenated in span order must
// equal the monolithic Gamma1 for every shard plan.
func TestBuildShardedMatchesMonolithic(t *testing.T) {
	w, d := testkb.Figure1()
	in := InputFor(seq, w, d, 2, 5, 2)
	want := Build(seq, in)
	for _, p := range []int{1, 2, 3, 16} {
		shards := parallel.New(p).Partitions(w.Len())
		g, scope, _, err := BuildShardedCtx(context.Background(), seq, in, shards)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(g.Alpha1, want.Alpha1) || !reflect.DeepEqual(g.Alpha2, want.Alpha2) {
			t.Errorf("p=%d: alpha differs", p)
		}
		if !reflect.DeepEqual(g.Beta1, want.Beta1) || !reflect.DeepEqual(g.Beta2, want.Beta2) {
			t.Errorf("p=%d: beta differs", p)
		}
		if !reflect.DeepEqual(g.Gamma2, want.Gamma2) {
			t.Errorf("p=%d: gamma2 differs", p)
		}
		if g.Gamma1 != nil {
			t.Errorf("p=%d: sharded graph materialized Gamma1", p)
		}
		gamma1 := make([][]Edge, 0, w.Len())
		for _, s := range shards {
			rows, err := scope.BuildSpan(context.Background(), s)
			if err != nil {
				t.Fatalf("p=%d span %v: %v", p, s, err)
			}
			gamma1 = append(gamma1, rows...)
		}
		if !reflect.DeepEqual(gamma1, want.Gamma1) {
			t.Errorf("p=%d: concatenated gamma1 rows differ", p)
		}
	}
}

func TestEmptyKBsGraph(t *testing.T) {
	k1 := kb.NewBuilder("A").Build()
	k2 := kb.NewBuilder("B").Build()
	in := InputFor(seq, k1, k2, 2, 5, 2)
	g := Build(seq, in)
	if g.Edges() != 0 {
		t.Errorf("empty KBs produced %d edges", g.Edges())
	}
}

func TestNoSharedTokens(t *testing.T) {
	b1 := kb.NewBuilder("A")
	x := b1.AddEntity("x")
	b1.AddLiteral(x, "label", "alpha beta")
	k1 := b1.Build()
	b2 := kb.NewBuilder("B")
	y := b2.AddEntity("y")
	b2.AddLiteral(y, "label", "gamma delta")
	k2 := b2.Build()
	g := Build(seq, InputFor(seq, k1, k2, 1, 5, 2))
	if g.Edges() != 0 {
		t.Errorf("disjoint KBs produced %d edges", g.Edges())
	}
}

// Block Purging must take effect no matter which of the two token views a
// caller purges: both one-sided purges must match the fully consistent
// reference, per BuildCtx's "more-purged side wins" rule.
func TestBuildHonorsOneSidedPurging(t *testing.T) {
	w, d := testkb.Figure1()
	const threshold = 1 // keep only 1×1 token blocks
	ref := InputFor(seq, w, d, 2, 15, 2)
	ref.TokenBlocks, _ = blocking.PurgeAbove(ref.TokenBlocks, threshold)
	ref.TokenIndex, _ = ref.TokenIndex.PurgeAbove(threshold)
	want := Build(seq, ref)

	indexOnly := InputFor(seq, w, d, 2, 15, 2)
	indexOnly.TokenIndex, _ = indexOnly.TokenIndex.PurgeAbove(threshold)
	if g := Build(seq, indexOnly); !reflect.DeepEqual(g.Beta1, want.Beta1) || !reflect.DeepEqual(g.Beta2, want.Beta2) {
		t.Error("index-only purge was not honored")
	}

	collectionOnly := InputFor(seq, w, d, 2, 15, 2)
	collectionOnly.TokenBlocks, _ = blocking.PurgeAbove(collectionOnly.TokenBlocks, threshold)
	if g := Build(seq, collectionOnly); !reflect.DeepEqual(g.Beta1, want.Beta1) || !reflect.DeepEqual(g.Beta2, want.Beta2) {
		t.Error("collection-only purge was not honored")
	}

	// Sanity: purging at this threshold actually removed something, so the
	// comparisons above are not vacuous.
	unpurged := Build(seq, InputFor(seq, w, d, 2, 15, 2))
	if reflect.DeepEqual(unpurged.Beta1, want.Beta1) {
		t.Error("threshold removed nothing; test is vacuous")
	}
}
