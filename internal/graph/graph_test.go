package graph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

// buildFigure1Graph assembles the full Algorithm 1 input for the paper's
// Figure 1 fixture with parameters (k=2 names, K, N=2).
func buildFigure1Graph(t *testing.T, e *parallel.Engine, k int) (*kb.KB, *kb.KB, *Graph) {
	t.Helper()
	w, d := testkb.Figure1()
	in := InputFor(e, w, d, 2, k, 2)
	return w, d, Build(e, in)
}

func TestAlphaEdgesFromUniqueNames(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	chef1 := w.Lookup("w:JohnLakeA")
	chef2 := d.Lookup("d:JonnyLake")
	// Example 3.4: the chefs share the unique name "J. Lake" → α = 1.
	if !containsID(g.Alpha1[chef1], chef2) {
		t.Errorf("Alpha1[chef1] = %v, want to contain chef2=%d", g.Alpha1[chef1], chef2)
	}
	if !containsID(g.Alpha2[chef2], chef1) {
		t.Errorf("Alpha2[chef2] = %v, want to contain chef1=%d", g.Alpha2[chef2], chef1)
	}
}

func TestBetaMatchesDirectValueSim(t *testing.T) {
	// With K large enough that nothing is pruned, the retained β weight of
	// every pair must equal the reference Def. 2.1 computation.
	w, d, g := buildFigure1Graph(t, seq, 100)
	ef1, ef2 := stats.BuildEF(seq, w), stats.BuildEF(seq, d)
	for i := 0; i < w.Len(); i++ {
		for j := 0; j < d.Len(); j++ {
			want := stats.ValueSim(w.Entity(kb.EntityID(i)), d.Entity(kb.EntityID(j)), ef1, ef2)
			got := g.BetaWeight(kb.EntityID(i), kb.EntityID(j))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("β(%d,%d) = %v, want valueSim %v", i, j, got, want)
			}
		}
	}
}

func TestBetaSortedAndBounded(t *testing.T) {
	_, _, g := buildFigure1Graph(t, seq, 2)
	for i, es := range g.Beta1 {
		if len(es) > 2 {
			t.Fatalf("Beta1[%d] has %d edges, K=2", i, len(es))
		}
		for x := 1; x < len(es); x++ {
			if es[x].Weight > es[x-1].Weight {
				t.Fatalf("Beta1[%d] not sorted desc", i)
			}
		}
		for _, edge := range es {
			if edge.Weight <= 0 {
				t.Fatalf("Beta1[%d] kept trivial edge", i)
			}
		}
	}
}

func TestGammaPropagation(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	r1 := w.Lookup("w:Restaurant1")
	r2 := d.Lookup("d:Restaurant2")
	// Example 3.4: Restaurant1–Restaurant2 get a non-zero γ because their
	// top neighbors (chefs; Bray/Berkshire) have non-zero β edges.
	var gammaR1R2 float64
	for _, edge := range g.Gamma1[r1] {
		if edge.To == r2 {
			gammaR1R2 = edge.Weight
		}
	}
	if gammaR1R2 <= 0 {
		t.Fatalf("γ(Restaurant1, Restaurant2) = %v, want > 0 (Gamma1: %v)", gammaR1R2, g.Gamma1[r1])
	}
	// γ must equal the sum of β over top-neighbor pairs (Def. 2.5 via
	// retained edges).
	var want float64
	in := InputFor(seq, w, d, 2, 5, 2)
	adj := map[[2]kb.EntityID]float64{}
	for x, es := range g.Beta1 {
		for _, e := range es {
			adj[[2]kb.EntityID{kb.EntityID(x), e.To}] = e.Weight
		}
	}
	for y, es := range g.Beta2 {
		for _, e := range es {
			adj[[2]kb.EntityID{e.To, kb.EntityID(y)}] = e.Weight
		}
	}
	for _, na := range in.Top1[r1] {
		for _, nb := range in.Top2[r2] {
			want += adj[[2]kb.EntityID{na, nb}]
		}
	}
	if math.Abs(gammaR1R2-want) > 1e-9 {
		t.Errorf("γ(R1,R2) = %v, want %v", gammaR1R2, want)
	}
}

func TestGammaSymmetryOfPairWeight(t *testing.T) {
	// γ is a pair weight: if (a→b) and (b→a) both survive pruning, their
	// weights must be equal.
	w, d, g := buildFigure1Graph(t, seq, 100)
	_ = w
	_ = d
	for a, es := range g.Gamma1 {
		for _, e := range es {
			for _, back := range g.Gamma2[e.To] {
				if int(back.To) == a && math.Abs(back.Weight-e.Weight) > 1e-9 {
					t.Fatalf("γ asymmetric: %v vs %v", e.Weight, back.Weight)
				}
			}
		}
	}
}

func TestHasDirectedEdge(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 5)
	chef1 := w.Lookup("w:JohnLakeA")
	chef2 := d.Lookup("d:JonnyLake")
	if !g.HasDirectedEdge1(chef1, chef2) || !g.HasDirectedEdge2(chef2, chef1) {
		t.Error("chef pair must be reciprocally connected")
	}
	uk := w.Lookup("w:UK")
	// UK shares tokens with England ("england"? no: UK's tokens are
	// "united kingdom"); it should have no edge to the chef.
	if g.HasDirectedEdge1(uk, chef2) {
		t.Error("UK → chef edge should not exist")
	}
}

func TestGraphParallelDeterminism(t *testing.T) {
	_, _, ref := buildFigure1Graph(t, seq, 3)
	for _, workers := range []int{2, 4, 8} {
		_, _, got := buildFigure1Graph(t, parallel.New(workers), 3)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("graph differs with %d workers", workers)
		}
	}
}

func TestEdgesBound(t *testing.T) {
	w, d, g := buildFigure1Graph(t, seq, 3)
	// |E| ≤ 2·(2K + maxNames)·(|E1|+|E2|) — generous upper bound; the point
	// is linear scaling in input size (§4 complexity claim).
	bound := 2 * (2*3 + 2) * (w.Len() + d.Len())
	if g.Edges() > bound {
		t.Errorf("Edges = %d, exceeds linear bound %d", g.Edges(), bound)
	}
}

func TestTopK(t *testing.T) {
	acc := map[kb.EntityID]float64{1: 0.5, 2: 2.0, 3: 1.0, 4: 0, 5: -1}
	got := topK(acc, 2)
	want := []Edge{{2, 2.0}, {3, 1.0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("topK = %v, want %v", got, want)
	}
	if topK(nil, 3) != nil {
		t.Error("topK(nil) should be nil")
	}
	if topK(acc, 0) != nil {
		t.Error("topK(_, 0) should be nil")
	}
	// Ties broken by ID.
	tie := map[kb.EntityID]float64{9: 1, 3: 1, 7: 1}
	gotTie := topK(tie, 2)
	if gotTie[0].To != 3 || gotTie[1].To != 7 {
		t.Errorf("tie-break = %v, want IDs 3,7", gotTie)
	}
}

func TestTopKProperty(t *testing.T) {
	f := func(weights []float64, k uint8) bool {
		acc := map[kb.EntityID]float64{}
		for i, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			acc[kb.EntityID(i)] = math.Abs(w)
		}
		kk := int(k%10) + 1
		es := topK(acc, kk)
		if len(es) > kk {
			return false
		}
		for i := 1; i < len(es); i++ {
			if es[i].Weight > es[i-1].Weight {
				return false
			}
		}
		// Every returned weight must be >= every excluded positive weight.
		if len(es) == kk {
			minKept := es[len(es)-1].Weight
			excluded := 0
			for _, w := range acc {
				if w > minKept {
					excluded++
				}
			}
			if excluded > kk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeAdjacency(t *testing.T) {
	beta1 := [][]Edge{{{To: 0, Weight: 1.0}, {To: 1, Weight: 0.5}}}
	beta2 := [][]Edge{{{To: 0, Weight: 1.0}}, {}} // E2 node 0 retains edge to E1 node 0
	adj := mergeAdjacency(beta1, beta2, 1)
	if len(adj[0]) != 2 {
		t.Fatalf("adj[0] = %v, want deduped 2 edges", adj[0])
	}
	if adj[0][0].To != 0 || adj[0][1].To != 1 {
		t.Errorf("adj[0] = %v, want sorted by ID", adj[0])
	}
}

func TestEmptyKBsGraph(t *testing.T) {
	k1 := kb.NewBuilder("A").Build()
	k2 := kb.NewBuilder("B").Build()
	in := InputFor(seq, k1, k2, 2, 5, 2)
	g := Build(seq, in)
	if g.Edges() != 0 {
		t.Errorf("empty KBs produced %d edges", g.Edges())
	}
}

func TestNoSharedTokens(t *testing.T) {
	b1 := kb.NewBuilder("A")
	x := b1.AddEntity("x")
	b1.AddLiteral(x, "label", "alpha beta")
	k1 := b1.Build()
	b2 := kb.NewBuilder("B")
	y := b2.AddEntity("y")
	b2.AddLiteral(y, "label", "gamma delta")
	k2 := b2.Build()
	g := Build(seq, InputFor(seq, k1, k2, 1, 5, 2))
	if g.Edges() != 0 {
		t.Errorf("disjoint KBs produced %d edges", g.Edges())
	}
}

// Block Purging must take effect no matter which of the two token views a
// caller purges: both one-sided purges must match the fully consistent
// reference, per BuildCtx's "more-purged side wins" rule.
func TestBuildHonorsOneSidedPurging(t *testing.T) {
	w, d := testkb.Figure1()
	const threshold = 1 // keep only 1×1 token blocks
	ref := InputFor(seq, w, d, 2, 15, 2)
	ref.TokenBlocks, _ = blocking.PurgeAbove(ref.TokenBlocks, threshold)
	ref.TokenIndex, _ = ref.TokenIndex.PurgeAbove(threshold)
	want := Build(seq, ref)

	indexOnly := InputFor(seq, w, d, 2, 15, 2)
	indexOnly.TokenIndex, _ = indexOnly.TokenIndex.PurgeAbove(threshold)
	if g := Build(seq, indexOnly); !reflect.DeepEqual(g.Beta1, want.Beta1) || !reflect.DeepEqual(g.Beta2, want.Beta2) {
		t.Error("index-only purge was not honored")
	}

	collectionOnly := InputFor(seq, w, d, 2, 15, 2)
	collectionOnly.TokenBlocks, _ = blocking.PurgeAbove(collectionOnly.TokenBlocks, threshold)
	if g := Build(seq, collectionOnly); !reflect.DeepEqual(g.Beta1, want.Beta1) || !reflect.DeepEqual(g.Beta2, want.Beta2) {
		t.Error("collection-only purge was not honored")
	}

	// Sanity: purging at this threshold actually removed something, so the
	// comparisons above are not vacuous.
	unpurged := Build(seq, InputFor(seq, w, d, 2, 15, 2))
	if reflect.DeepEqual(unpurged.Beta1, want.Beta1) {
		t.Error("threshold removed nothing; test is vacuous")
	}
}
