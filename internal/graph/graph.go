// Package graph implements MinoanER's disjunctive blocking graph (§3.2–3.3
// of the paper): a compact abstraction of all candidate matches where each
// edge between a pair of cross-KB entities carries three weights —
//
//	α: 1 if the pair shares a name no other entity uses (name block of size 1×1)
//	β: valueSim, accumulated from token-block sizes (Algorithm 1, line 14)
//	γ: neighborNSim, propagated from β-edges through top in-neighbors
//
// After weighting, each node keeps only its top-K edges by β and top-K by γ
// (Algorithm 1), turning the undirected graph into a directed one — the
// structure the matcher's reciprocity rule R4 relies on.
//
// Like the paper's implementation, the graph is never materialized as a
// global edge list: each node holds only the candidate lists needed to match
// it, which is also what makes the construction embarrassingly parallel.
package graph

import (
	"cmp"
	"context"
	"slices"
	"time"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Edge is a directed, weighted candidate edge to an entity of the other KB.
type Edge struct {
	To     kb.EntityID
	Weight float64
}

// Graph is the pruned, directed disjunctive blocking graph. Slices are
// indexed by EntityID; *1 fields describe edges out of E1 nodes (pointing to
// E2 entities) and *2 fields the reverse direction.
type Graph struct {
	// Alpha1[i] lists the E2 entities sharing a globally unique name with
	// E1 entity i (α = 1 edges). Alpha2 is the reverse direction.
	Alpha1, Alpha2 [][]kb.EntityID
	// Beta1[i] holds up to K candidates sorted by decreasing valueSim.
	Beta1, Beta2 [][]Edge
	// Gamma1[i] holds up to K candidates sorted by decreasing neighborNSim.
	Gamma1, Gamma2 [][]Edge
}

// Input bundles everything Algorithm 1 needs.
type Input struct {
	K1, K2 *kb.KB
	// NameBlocks and TokenBlocks are the (purged) block collections of §3.1.
	NameBlocks, TokenBlocks *blocking.Collection
	// TokenIndex is the columnar token index the β stage walks. Optional: it
	// should describe the same purged block set as TokenBlocks (the pipeline
	// and InputForCtx thread it through). When absent, BuildCtx derives an
	// index view from TokenBlocks; when the two disagree, the more-purged
	// side wins (see BuildCtx), so purging either view alone still takes
	// effect.
	TokenIndex *blocking.TokenIndex
	// Top1/Top2 are the per-entity top-neighbor lists of each KB
	// (stats.TopNeighbors); Algorithm 1 derives the in-neighbor index from
	// them internally (procedure getTopInNeighbors).
	Top1, Top2 [][]kb.EntityID
	// K is the number of candidates kept per node per weight (paper default 15).
	K int
}

// Timings records the wall clock of the two weighting phases of Algorithm 1
// — the sub-stage split the benchmark-regression gate pins (graph_beta_ms /
// graph_gamma_ms, mirroring the statistics sub-stages).
type Timings struct {
	// Beta covers name evidence and both β directions: they run concurrently
	// (Figure 4), so they are timed as one barrier. Gamma covers the
	// adjacency merges, the in-neighbor reversals and both γ directions; in
	// the sharded pipeline the deferred E1 γ rows are added by the caller as
	// they are produced.
	Beta, Gamma time.Duration
}

// BuildCtx runs Algorithm 1: name evidence, value evidence, neighbor
// evidence, with top-K pruning per node. All three stages are data-parallel
// over entities; stage boundaries are synchronization barriers exactly as in
// the Spark architecture of Figure 4. Per-entity candidate accumulation is
// heavily skewed (entities in large token blocks touch far more candidates),
// so the β and γ passes run under the dynamic chunked scheduler. The first
// error — in practice only ctx cancellation — aborts all stages.
func BuildCtx(ctx context.Context, e *parallel.Engine, in Input) (*Graph, error) {
	g, _, err := BuildTimedCtx(ctx, e, in)
	return g, err
}

// BuildTimedCtx is BuildCtx with the per-phase wall clock reported back.
func BuildTimedCtx(ctx context.Context, e *parallel.Engine, in Input) (*Graph, Timings, error) {
	g := &Graph{
		Alpha1: make([][]kb.EntityID, in.K1.Len()),
		Alpha2: make([][]kb.EntityID, in.K2.Len()),
	}
	var tm Timings
	ce := e.Chunked()
	ix := resolveIndex(in)
	var beta1, beta2 [][]Edge
	t0 := time.Now()
	// Name evidence and the two directions of value evidence are mutually
	// independent (Figure 4 runs them concurrently).
	err := e.ConcurrentCtx(ctx,
		func(context.Context) error { g.buildAlpha(in); return nil },
		func(sc context.Context) error {
			var err error
			beta1, err = buildBeta(sc, ce, ix, in.K1, in.K2.Len(), true, in.K)
			return err
		},
		func(sc context.Context) error {
			var err error
			beta2, err = buildBeta(sc, ce, ix, in.K2, in.K1.Len(), false, in.K)
			return err
		},
	)
	if err != nil {
		return nil, tm, err
	}
	tm.Beta = time.Since(t0)
	g.Beta1, g.Beta2 = beta1, beta2
	t0 = time.Now()
	if err := g.buildGamma(ctx, ce, in); err != nil {
		return nil, tm, err
	}
	tm.Gamma = time.Since(t0)
	return g, tm, nil
}

// Build is BuildCtx without cancellation.
func Build(e *parallel.Engine, in Input) *Graph {
	g, _ := BuildCtx(context.Background(), e, in)
	return g
}

// resolveIndex picks the token index the β stage walks. Both β directions
// use one shared index with per-token weights precomputed once. When the
// caller-supplied index and TokenBlocks disagree (a caller purged only one
// of the two views), the more-purged side wins so Block Purging is never
// silently discarded: an index with MORE live blocks than the collection
// means only the collection was purged (the pre-index idiom) and a
// consistent index is derived from it; an index with FEWER live blocks means
// only the index was purged and it is honored as-is. Ties with diverging
// aggregate comparisons fall back to the collection, the documented source
// of truth.
func resolveIndex(in Input) *blocking.TokenIndex {
	ix := in.TokenIndex
	if ix != nil && in.TokenBlocks == nil {
		// Collection-free construction (substrate callers that opted out of
		// materializing the historical block output): the index is the only
		// view and is honored as-is.
		return ix
	}
	switch {
	case ix == nil,
		ix.Live() > in.TokenBlocks.Len(),
		ix.Live() == in.TokenBlocks.Len() && ix.TotalComparisons() != in.TokenBlocks.TotalComparisons():
		return blocking.IndexFromCollection(in.TokenBlocks, in.K1, in.K2)
	}
	return ix
}

// buildAlpha scans the name blocks for 1×1 blocks: a name used by exactly
// one entity of each KB (Algorithm 1, lines 5–9). Pairs are gathered first
// and deduplicated with one sort+compact per node, so an entity carrying
// many unique names costs O(d log d) instead of the quadratic append-scan of
// the earlier appendUnique idiom.
func (g *Graph) buildAlpha(in Input) {
	for i := range in.NameBlocks.Blocks {
		b := &in.NameBlocks.Blocks[i]
		if len(b.E1) == 1 && len(b.E2) == 1 {
			e1, e2 := b.E1[0], b.E2[0]
			g.Alpha1[e1] = append(g.Alpha1[e1], e2)
			g.Alpha2[e2] = append(g.Alpha2[e2], e1)
		}
	}
	for i := range g.Alpha1 {
		slices.Sort(g.Alpha1[i])
		g.Alpha1[i] = slices.Compact(g.Alpha1[i])
	}
	for i := range g.Alpha2 {
		slices.Sort(g.Alpha2[i])
		g.Alpha2[i] = slices.Compact(g.Alpha2[i])
	}
}

// buildBeta computes, for every entity of one side, its top-K candidates by
// valueSim (Algorithm 1, lines 10–19). The per-token contribution is
// 1/log2(|b1|·|b2|+1): since token-block side sizes equal the per-KB entity
// frequencies, summing over shared blocks yields exactly Def. 2.1. The walk
// is purely columnar — token IDs into CSR member arrays with weights
// precomputed once per index, scattered into a per-worker scoreboard over
// the other KB's entity IDs (otherLen) — with no string hashing and no map
// insertion per (entity, token).
func buildBeta(ctx context.Context, e *parallel.Engine, ix *blocking.TokenIndex, from *kb.KB, otherLen int, fromIsE1 bool, k int) ([][]Edge, error) {
	return buildBetaSpan(ctx, e, ix, from, otherLen, fromIsE1, k, parallel.Span{Lo: 0, Hi: from.Len()})
}

// BetaRowsCtx computes one side's full β candidate rows — the value-evidence
// phase in isolation, exported for the stage benchmarks that guard it.
// otherLen is the entity count of the OTHER KB (the candidate ID space);
// BuildCtx composes this with the α and γ phases.
func BetaRowsCtx(ctx context.Context, e *parallel.Engine, ix *blocking.TokenIndex, from *kb.KB, otherLen int, fromIsE1 bool, k int) ([][]Edge, error) {
	return buildBeta(ctx, e, ix, from, otherLen, fromIsE1, k)
}

// buildBetaSpan computes the β rows of one contiguous entity span, returning
// s.Len() rows (row i describes entity s.Lo+i). Rows are per-entity
// independent, so concatenating span results in span order is identical to
// one full-range pass — the invariant sharded construction relies on.
//
// Accumulation order per candidate is the token-walk order, identical to the
// historical map accumulation, so per-candidate float sums — and with them
// every retained weight — are bit-identical to buildBetaSpanMap.
func buildBetaSpan(ctx context.Context, e *parallel.Engine, ix *blocking.TokenIndex, from *kb.KB, otherLen int, fromIsE1 bool, k int, s parallel.Span) ([][]Edge, error) {
	return parallel.MapLocalCtx(ctx, e, s.Len(),
		func() *boardScratch { return newBoardScratch(otherLen, k) },
		func(sc *boardScratch, i int) ([]Edge, error) {
			d := from.Entity(kb.EntityID(s.Lo + i))
			board := sc.board
			ix.ForEachShared(d, fromIsE1, func(w float64, others []kb.EntityID) {
				for _, o := range others {
					board.Add(o, w)
				}
			})
			return sc.row(k), nil
		})
}

// buildBetaSpanMap is the retained map-based reference implementation of
// buildBetaSpan — a freshly allocated accumulator per entity, full sort in
// topK. The property tests pin the scoreboard path to it row for row, and
// the graph benchmarks keep the before/after comparison honest.
func buildBetaSpanMap(ctx context.Context, e *parallel.Engine, ix *blocking.TokenIndex, from *kb.KB, fromIsE1 bool, k int, s parallel.Span) ([][]Edge, error) {
	return parallel.MapCtx(ctx, e, s.Len(), func(i int) ([]Edge, error) {
		d := from.Entity(kb.EntityID(s.Lo + i))
		var acc map[kb.EntityID]float64
		ix.ForEachShared(d, fromIsE1, func(w float64, others []kb.EntityID) {
			if acc == nil {
				acc = make(map[kb.EntityID]float64, len(others))
			}
			for _, o := range others {
				acc[o] += w
			}
		})
		return topK(acc, k), nil
	})
}

// topK selects the k highest-weighted candidates, breaking ties by entity ID
// for determinism, and returns them sorted by decreasing weight. Zero
// weights are dropped (pruning of trivial edges, §3.3). Retained as the
// map-based reference side of the topKBoard property tests.
func topK(acc map[kb.EntityID]float64, k int) []Edge {
	if len(acc) == 0 || k <= 0 {
		return nil
	}
	edges := make([]Edge, 0, len(acc))
	for to, w := range acc {
		if w > 0 {
			edges = append(edges, Edge{to, w})
		}
	}
	slices.SortFunc(edges, edgeCmp)
	if len(edges) > k {
		edges = edges[:k]
	}
	return edges
}

// buildGamma propagates β weights to in-neighbor pairs (Algorithm 1, lines
// 20–33): if valueSim(x, y) = β and x is a top neighbor of a while y is a
// top neighbor of b, then β contributes to neighborNSim(a, b). The retained
// (pruned) β-edges of both directions feed the propagation, merged into one
// undirected adjacency so no contribution is double counted.
func (g *Graph) buildGamma(ctx context.Context, e *parallel.Engine, in Input) error {
	adj1 := MergeAdjacency(g.Beta1, g.Beta2, in.K1.Len())
	adj2 := MergeAdjacency(g.Beta2, g.Beta1, in.K2.Len())

	// getTopInNeighbors (Algorithm 1, lines 44–47): in1[x] lists the E1
	// entities that have x among their top neighbors.
	in1 := stats.TopInNeighbors(in.Top1)
	in2 := stats.TopInNeighbors(in.Top2)

	// Gather formulation of lines 20–27: γ(a, b) = Σ β(na, y) over a's top
	// neighbors na and their retained β-edges (na, y) with y a top neighbor
	// of b, i.e. b ∈ in2[y].
	gamma1, err := gammaRows(ctx, e, parallel.Span{Lo: 0, Hi: in.K1.Len()}, in.Top1, adj1, in2, in.K)
	if err != nil {
		return err
	}
	gamma2, err := gammaRows(ctx, e, parallel.Span{Lo: 0, Hi: in.K2.Len()}, in.Top2, adj2, in1, in.K)
	if err != nil {
		return err
	}
	g.Gamma1, g.Gamma2 = gamma1, gamma2
	return nil
}

// gammaRows computes the γ candidate rows of one side for a contiguous node
// span: row i holds the pruned neighbor-similarity candidates of node s.Lo+i.
// top is the side's own top-neighbor lists, adj its merged undirected β
// adjacency, and inOther the reverse top-neighbor index of the OTHER side —
// whose length is also the candidate ID space the per-worker scoreboard
// covers. Rows are per-node independent, so span concatenation in order
// reproduces the full-range pass exactly; per-candidate sums follow the same
// neighbor-walk order as the retained map reference (gammaRowsMap), keeping
// the weights bit-identical.
func gammaRows(ctx context.Context, e *parallel.Engine, s parallel.Span, top [][]kb.EntityID, adj [][]Edge, inOther [][]kb.EntityID, k int) ([][]Edge, error) {
	return parallel.MapLocalCtx(ctx, e, s.Len(),
		func() *boardScratch { return newBoardScratch(len(inOther), k) },
		func(sc *boardScratch, i int) ([]Edge, error) {
			board := sc.board
			for _, na := range top[s.Lo+i] {
				for _, edge := range adj[na] {
					for _, b := range inOther[edge.To] {
						board.Add(b, edge.Weight)
					}
				}
			}
			return sc.row(k), nil
		})
}

// GammaRowsCtx computes one side's full γ candidate rows from its
// top-neighbor lists, its merged undirected β adjacency (MergeAdjacency) and
// the reverse top-neighbor index of the other side (stats.TopInNeighbors) —
// the neighbor-evidence phase in isolation, exported for the stage
// benchmarks that guard it.
func GammaRowsCtx(ctx context.Context, e *parallel.Engine, top [][]kb.EntityID, adj [][]Edge, inOther [][]kb.EntityID, k int) ([][]Edge, error) {
	return gammaRows(ctx, e, parallel.Span{Lo: 0, Hi: len(top)}, top, adj, inOther, k)
}

// gammaRowsMap is the retained map-based reference implementation of
// gammaRows, the pin of the scoreboard property tests and the "before" side
// of the γ benchmarks.
func gammaRowsMap(ctx context.Context, e *parallel.Engine, s parallel.Span, top [][]kb.EntityID, adj [][]Edge, inOther [][]kb.EntityID, k int) ([][]Edge, error) {
	return parallel.MapCtx(ctx, e, s.Len(), func(i int) ([]Edge, error) {
		var acc map[kb.EntityID]float64
		for _, na := range top[s.Lo+i] {
			for _, edge := range adj[na] {
				ins := inOther[edge.To]
				if len(ins) == 0 {
					continue
				}
				if acc == nil {
					acc = make(map[kb.EntityID]float64)
				}
				for _, b := range ins {
					acc[b] += edge.Weight
				}
			}
		}
		return topK(acc, k), nil
	})
}

// MergeAdjacency merges the directed retained β-edges of both directions
// into an undirected adjacency for one side: out[x] holds each neighbor y at
// most once with its β weight, sorted by entity ID. When both directions
// retained the edge (x, y) their β weights coincide (valueSim is symmetric),
// but the dedup is still made deterministic by sorting ties on descending
// weight before compacting — the kept edge never depends on input order.
func MergeAdjacency(own [][]Edge, reverse [][]Edge, n int) [][]Edge {
	out := make([][]Edge, n)
	for x := range own {
		out[x] = append(out[x], own[x]...)
	}
	for y := range reverse {
		for _, edge := range reverse[y] {
			out[edge.To] = append(out[edge.To], Edge{kb.EntityID(y), edge.Weight})
		}
	}
	for x := range out {
		if len(out[x]) < 2 {
			continue
		}
		slices.SortFunc(out[x], func(a, b Edge) int {
			if a.To != b.To {
				return cmp.Compare(a.To, b.To)
			}
			return cmp.Compare(b.Weight, a.Weight)
		})
		dst := out[x][:1]
		for _, edge := range out[x][1:] {
			if edge.To != dst[len(dst)-1].To {
				dst = append(dst, edge)
			}
		}
		out[x] = dst
	}
	return out
}

// BetaWeight returns the retained valueSim from an E1 node to an E2 node
// (0 if the directed edge was pruned).
func (g *Graph) BetaWeight(e1, e2 kb.EntityID) float64 {
	for _, edge := range g.Beta1[e1] {
		if edge.To == e2 {
			return edge.Weight
		}
	}
	return 0
}

// HasDirectedEdge1 reports whether the directed edge from E1 node e1 to E2
// node e2 survived pruning under any evidence (α, β or γ) — the G.E
// membership test of the reciprocity rule R4.
func (g *Graph) HasDirectedEdge1(e1, e2 kb.EntityID) bool {
	return containsID(g.Alpha1[e1], e2) || containsEdge(g.Beta1[e1], e2) || containsEdge(g.Gamma1[e1], e2)
}

// HasDirectedEdge2 is HasDirectedEdge1 for the E2 → E1 direction.
func (g *Graph) HasDirectedEdge2(e2, e1 kb.EntityID) bool {
	return containsID(g.Alpha2[e2], e1) || containsEdge(g.Beta2[e2], e1) || containsEdge(g.Gamma2[e2], e1)
}

// HasDirectedEdge1NoGamma is HasDirectedEdge1 restricted to α/β evidence.
// The sharded matcher uses it together with EdgeListContains over the
// shard-local γ rows, which are never retained in the Graph.
func (g *Graph) HasDirectedEdge1NoGamma(e1, e2 kb.EntityID) bool {
	return containsID(g.Alpha1[e1], e2) || containsEdge(g.Beta1[e1], e2)
}

// EdgeListContains reports whether an edge list holds an edge to the given
// node — the G.E membership test over an externally held candidate row.
func EdgeListContains(es []Edge, to kb.EntityID) bool {
	return containsEdge(es, to)
}

func containsID(xs []kb.EntityID, x kb.EntityID) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func containsEdge(es []Edge, to kb.EntityID) bool {
	for _, e := range es {
		if e.To == to {
			return true
		}
	}
	return false
}

// Edges returns the total number of directed edges retained in the graph,
// used by complexity assertions (|E| ≤ 2·(2K+names)·(|E1|+|E2|)).
func (g *Graph) Edges() int {
	total := 0
	for _, xs := range g.Alpha1 {
		total += len(xs)
	}
	for _, xs := range g.Alpha2 {
		total += len(xs)
	}
	for _, es := range g.Beta1 {
		total += len(es)
	}
	for _, es := range g.Beta2 {
		total += len(es)
	}
	for _, es := range g.Gamma1 {
		total += len(es)
	}
	for _, es := range g.Gamma2 {
		total += len(es)
	}
	return total
}
