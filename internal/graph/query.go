// Per-entity query kernels: the single-row forms of the β and γ weighting
// passes of Algorithm 1, used by the substrate query path to weight ONE new
// description against a frozen graph instead of rebuilding candidate rows
// for a whole KB. Each kernel is the loop body of its batch counterpart
// (buildBetaSpan, gammaRows) applied to caller-resolved inputs, so a query
// that mirrors a KB member's statements reproduces that member's batch row
// bit for bit — the equivalence the core package's property tests pin.
package graph

import (
	"minoaner/internal/blocking"
	"minoaner/internal/kb"
)

// QueryScratch is the per-query accumulation state: one dense scoreboard
// over the candidate KB's entity IDs plus the reusable top-K heap buffer —
// the same scratch a batch worker holds, owned by one in-flight query
// instead of one goroutine. A QueryScratch is not safe for concurrent use;
// concurrent queries on one substrate each take their own (the core package
// pools them).
type QueryScratch struct {
	sc *boardScratch
}

// NewQueryScratch returns scratch for querying against a candidate space of
// otherLen entities with rows pruned to k.
func NewQueryScratch(otherLen, k int) *QueryScratch {
	return &QueryScratch{sc: newBoardScratch(otherLen, k)}
}

// BetaRowForTokens computes the β candidate row of one synthetic entity from
// its resolved token IDs: the token walk of buildBetaSpan over explicit IDs
// instead of a stored description. tids must be in token-STRING order — the
// order kb.Description.TokenIDs presents — and resolved against the shared
// interner without interning (kb.Interner.Lookup); tokens unknown to the
// dictionary must be dropped by the caller, which matches the batch walk
// because an unknown token indexes no block. The index is never mutated, so
// concurrent query walks are safe.
func BetaRowForTokens(ix *blocking.TokenIndex, tids []kb.TokenID, fromE1 bool, qs *QueryScratch, k int) []Edge {
	board := qs.sc.board
	ix.ForEachSharedTokens(tids, fromE1, func(w float64, others []kb.EntityID) {
		for _, o := range others {
			board.Add(o, w)
		}
	})
	return qs.sc.row(k)
}

// RowFor computes the γ candidate row of one synthetic E1-side entity from
// its top-neighbor list (stats.TopNeighborsOf over relations resolved to K1
// entities) — the loop body of gammaRows against the scope's frozen merged
// adjacency and reverse top-neighbor index. The scope is read-only, so
// concurrent RowFor calls with distinct scratches are safe.
func (sc *Gamma1Scope) RowFor(top []kb.EntityID, qs *QueryScratch) []Edge {
	board := qs.sc.board
	for _, na := range top {
		for _, edge := range sc.adj1[na] {
			for _, b := range sc.in2[edge.To] {
				board.Add(b, edge.Weight)
			}
		}
	}
	return qs.sc.row(sc.k)
}

// K reports the per-row candidate bound the scope prunes to.
func (sc *Gamma1Scope) K() int { return sc.k }
