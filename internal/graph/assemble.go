package graph

import (
	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// InputFor assembles a complete Algorithm 1 input from two KBs by running
// the upstream statistics and blocking stages with the given parameters:
// nameK name attributes per KB (paper parameter k), topK candidates per node
// per weight (K), and relN top relations per entity (N). Token blocks are
// not purged here; callers that need Block Purging apply it to
// Input.TokenBlocks before Build (the core pipeline does).
func InputFor(e *parallel.Engine, k1, k2 *kb.KB, nameK, topK, relN int) Input {
	var (
		n1, n2                  []string
		ord1, ord2              map[string]int
		nameBlocks, tokenBlocks *blocking.Collection
	)
	// Name discovery, relation statistics and token blocking are mutually
	// independent — run them concurrently as in Figure 4.
	e.Concurrent(
		func() { n1 = stats.NameAttributes(e, k1, nameK) },
		func() { n2 = stats.NameAttributes(e, k2, nameK) },
		func() { ord1 = stats.GlobalRelationOrder(stats.RelationImportances(e, k1)) },
		func() { ord2 = stats.GlobalRelationOrder(stats.RelationImportances(e, k2)) },
		func() { tokenBlocks = blocking.TokenBlocks(e, k1, k2) },
	)
	nameBlocks = blocking.NameBlocks(e, k1, k2, n1, n2)
	return Input{
		K1: k1, K2: k2,
		NameBlocks:  nameBlocks,
		TokenBlocks: tokenBlocks,
		Top1:        stats.TopNeighbors(e, k1, ord1, relN),
		Top2:        stats.TopNeighbors(e, k2, ord2, relN),
		K:           topK,
	}
}
