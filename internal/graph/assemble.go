package graph

import (
	"context"

	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// InputFor assembles a complete Algorithm 1 input from two KBs by running
// the upstream statistics and blocking stages with the given parameters:
// nameK name attributes per KB (paper parameter k), topK candidates per node
// per weight (K), and relN top relations per entity (N). Token blocks are
// not purged here; callers that need Block Purging apply it to both
// Input.TokenBlocks (blocking.PurgeAbove) and Input.TokenIndex
// (TokenIndex.PurgeAbove) before Build, as the core pipeline does. If only
// the collection is purged, BuildCtx notices the mismatch and derives a
// consistent index view from the collection.
func InputFor(e *parallel.Engine, k1, k2 *kb.KB, nameK, topK, relN int) Input {
	in, _ := InputForCtx(context.Background(), e, k1, k2, nameK, topK, relN)
	return in
}

// InputForCtx is InputFor with cancellation and first-error propagation
// through every upstream stage.
func InputForCtx(ctx context.Context, e *parallel.Engine, k1, k2 *kb.KB, nameK, topK, relN int) (Input, error) {
	var (
		n1, n2         []string
		ranks1, ranks2 []int32
		nameBlocks     *blocking.Collection
		tokenIx        *blocking.TokenIndex
	)
	// Name discovery, relation statistics and token blocking are mutually
	// independent — run them concurrently as in Figure 4.
	err := e.ConcurrentCtx(ctx,
		func(sc context.Context) error {
			var err error
			n1, err = stats.NameAttributesCtx(sc, e, k1, nameK)
			return err
		},
		func(sc context.Context) error {
			var err error
			n2, err = stats.NameAttributesCtx(sc, e, k2, nameK)
			return err
		},
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, e, k1)
			ranks1 = stats.RelationRanks(k1, ri)
			return err
		},
		func(sc context.Context) error {
			ri, err := stats.RelationImportancesCtx(sc, e, k2)
			ranks2 = stats.RelationRanks(k2, ri)
			return err
		},
		func(sc context.Context) error {
			var err error
			tokenIx, err = blocking.NewTokenIndexCtx(sc, e, k1, k2)
			return err
		},
	)
	if err != nil {
		return Input{}, err
	}
	if nameBlocks, err = blocking.NameBlocksCtx(ctx, e, k1, k2, n1, n2); err != nil {
		return Input{}, err
	}
	top1, err := stats.TopNeighborsRanksCtx(ctx, e, k1, ranks1, relN)
	if err != nil {
		return Input{}, err
	}
	top2, err := stats.TopNeighborsRanksCtx(ctx, e, k2, ranks2, relN)
	if err != nil {
		return Input{}, err
	}
	return Input{
		K1: k1, K2: k2,
		NameBlocks:  nameBlocks,
		TokenBlocks: tokenIx.Collection(),
		TokenIndex:  tokenIx,
		Top1:        top1,
		Top2:        top2,
		K:           topK,
	}, nil
}
