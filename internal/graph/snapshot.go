// Snapshot-side accessors for the query-path graph state: the Gamma1Scope's
// frozen inputs (merged β adjacency and E2 reverse top-neighbor index) can
// be read out for serialization and reassembled on load, so a snapshot-
// loaded substrate answers its first query without re-running
// BuildShardedCtx.
package graph

import (
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// SnapshotParts exposes the scope's frozen inputs for serialization: the E1
// top-neighbor rows (shared with the substrate), the merged undirected β
// adjacency of E1, the reverse top-neighbor index of E2 and the per-row
// candidate bound. Callers must treat the slices as read-only.
func (sc *Gamma1Scope) SnapshotParts() (top1 [][]kb.EntityID, adj1 [][]Edge, in2 [][]kb.EntityID, k int) {
	return sc.top1, sc.adj1, sc.in2, sc.k
}

// NewGamma1Scope reassembles a scope from its frozen inputs (the inverse of
// SnapshotParts). The engine drives BuildSpan for sharded batch matching;
// per-query RowFor calls never touch it.
func NewGamma1Scope(e *parallel.Engine, top1 [][]kb.EntityID, adj1 [][]Edge, in2 [][]kb.EntityID, k int) *Gamma1Scope {
	return &Gamma1Scope{eng: e.Chunked(), top1: top1, adj1: adj1, in2: in2, k: k}
}
