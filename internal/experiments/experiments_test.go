package experiments

import (
	"strings"
	"testing"
)

// testSuite builds a small-scale suite covering all four presets.
func testSuite(t *testing.T, scale float64, datasets ...string) *Suite {
	t.Helper()
	s, err := NewSuite(Options{ScaleFactor: scale, Datasets: datasets})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSuiteUnknownDataset(t *testing.T) {
	if _, err := NewSuite(Options{Datasets: []string{"nope"}}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSuiteDatasetCaching(t *testing.T) {
	s := testSuite(t, 0.05, "Restaurant")
	a, err := s.Dataset("Restaurant")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Dataset("Restaurant")
	if a != b {
		t.Error("dataset not cached")
	}
	if _, err := s.Dataset("YAGO-IMDb"); err == nil {
		t.Error("dataset outside suite should error")
	}
}

func TestTable1(t *testing.T) {
	s := testSuite(t, 0.05)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// The Rexa profile must keep its strong size skew.
	for _, r := range rows {
		if r.Dataset == "Rexa-DBLP" && r.E2Entities < 10*r.E1Entities {
			t.Errorf("Rexa skew lost: %d vs %d", r.E1Entities, r.E2Entities)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Restaurant") || !strings.Contains(text, "matches") {
		t.Error("FormatTable1 output incomplete")
	}
}

func TestTable2Shapes(t *testing.T) {
	s := testSuite(t, 0.1)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper shape: high blocking recall, low precision, comparisons
		// far below the Cartesian product.
		if r.Recall < 0.9 {
			t.Errorf("%s: blocking recall = %v, want ≥ 0.9", r.Dataset, r.Recall)
		}
		total := r.NameComparisons + r.TokenComparisons
		if total >= r.Cartesian {
			t.Errorf("%s: comparisons %d not below Cartesian %d", r.Dataset, total, r.Cartesian)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "|BN|") {
		t.Error("FormatTable2 missing header")
	}
}

func TestTable4RuleShapes(t *testing.T) {
	s := testSuite(t, 0.1, "Restaurant", "YAGO-IMDb")
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds, setting string) Table4Row {
		for _, r := range rows {
			if r.Dataset == ds && r.Setting == setting {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", ds, setting)
		return Table4Row{}
	}
	// R1 alone: high precision, partial recall (the named fraction).
	r1 := get("YAGO-IMDb", "R1")
	if r1.Metrics.Precision < 0.9 {
		t.Errorf("R1 precision = %v, want ≥ 0.9", r1.Metrics.Precision)
	}
	if r1.Metrics.Recall > 0.85 || r1.Metrics.Recall < 0.4 {
		t.Errorf("R1 recall = %v, want the named fraction (~0.66)", r1.Metrics.Recall)
	}
	// Full beats every single rule on F1.
	full := get("YAGO-IMDb", "Full")
	for _, setting := range []string{"R1", "R2"} {
		if full.Metrics.F1+1e-9 < get("YAGO-IMDb", setting).Metrics.F1 {
			t.Errorf("Full F1 %v below %s alone", full.Metrics.F1, setting)
		}
	}
	text := FormatTable4(rows)
	if !strings.Contains(text, "NoNeighbors") {
		t.Error("FormatTable4 missing settings")
	}
}

func TestFigure2Shapes(t *testing.T) {
	s := testSuite(t, 0.1, "Restaurant", "YAGO-IMDb")
	points, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	counts := map[string]int{}
	for _, p := range points {
		if p.ValueSim < 0 || p.ValueSim > 1 || p.NeighborSim < 0 || p.NeighborSim > 1 {
			t.Fatalf("similarities out of range: %+v", p)
		}
		means[p.Dataset] += p.ValueSim
		counts[p.Dataset]++
	}
	for ds := range means {
		means[ds] /= float64(counts[ds])
	}
	// Figure 2 shape: Restaurant matches are strongly similar; YAGO-IMDb
	// matches have much lower normalized value similarity.
	if means["Restaurant"] <= means["YAGO-IMDb"] {
		t.Errorf("value-sim means: Restaurant %v vs YAGO %v, want Restaurant higher",
			means["Restaurant"], means["YAGO-IMDb"])
	}
	if !strings.Contains(FormatFigure2(points), "meanValue") {
		t.Error("FormatFigure2 header")
	}
	csv := Figure2CSV(points)
	if !strings.HasPrefix(csv, "dataset,valueSim") || strings.Count(csv, "\n") != len(points)+1 {
		t.Error("Figure2CSV malformed")
	}
}

func TestFigure5SweepsComplete(t *testing.T) {
	s := testSuite(t, 0.05, "Restaurant")
	points, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, vs := range Figure5Sweeps {
		want += len(vs)
	}
	if len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.F1 < 0 || p.F1 > 1 {
			t.Errorf("F1 out of range: %+v", p)
		}
	}
	if !strings.Contains(FormatFigure5(points), "theta") {
		t.Error("FormatFigure5 output")
	}
}

func TestFigure6SpeedupAndDeterminism(t *testing.T) {
	s := testSuite(t, 0.2, "YAGO-IMDb")
	points, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Skip("single-core machine")
	}
	f1 := points[0].F1
	for _, p := range points {
		if p.F1 != f1 {
			t.Errorf("F1 changed with worker count: %v vs %v", p.F1, f1)
		}
		if p.Speedup <= 0 {
			t.Errorf("non-positive speedup: %+v", p)
		}
	}
	if !strings.Contains(FormatFigure6(points), "speedup") {
		t.Error("FormatFigure6 output")
	}
}
