package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// checkFloorMS is the noise floor for stage timings: sub-10ms measurements
// are dominated by scheduler and allocator noise, not by algorithmic
// regressions. A stage whose baseline sits below the floor is held to
// tolerance × floor instead of tolerance × baseline — sub-floor jitter can
// never fail the gate, but a fast stage that blows past the floor by the
// full tolerance (an algorithmic regression) still does.
const checkFloorMS = 10.0

// Query-latency gate constants: percentiles whose baseline sits below
// queryFloorUS are judged against the floor (same rationale as checkFloorMS),
// and p99 is additionally held to an ABSOLUTE ceiling — a per-entity query
// must stay interactive regardless of what the baseline recorded.
const (
	queryFloorUS  = 500.0
	queryP99CapUS = 5000.0
)

// loadFloorUS is the noise floor for the server-path latency percentiles:
// under concurrent clients on a shared CI box, sub-2ms tails are scheduler
// and transport noise, so a load-run p99 fails only past
// max(baseline, loadFloorUS) × tolerance.
const loadFloorUS = 2000.0

// Snapshot-path gate constants: the cold open→first-query wall is judged
// against max(baseline, snapFloorMS) × tolerance like every other timing,
// and the warm-start claim itself must not regress — every dataset whose
// BASELINE snapshot run beat the rebuild path by snapMinSpeedup× counts as
// a witness of the claim, and the current run must reproduce it on at
// least snapMinDatasets of them (all of them if the baseline has fewer),
// so a format change can never quietly demote the snapshot to "a slower
// rebuild". Gating only baseline witnesses keeps tiny-scale runs — where
// a rebuild is itself a few milliseconds and no 10× gap exists to defend —
// self-consistent.
const (
	snapFloorMS     = 5.0
	snapMinSpeedup  = 10.0
	snapMinDatasets = 2
)

// ReadBenchJSON loads a benchmark report written by BenchReport.WriteJSON —
// the committed baseline the CI regression gate compares against.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckBench compares a freshly measured report against a committed
// baseline and returns an error listing every regression found. The gate is
// deliberately generous — it exists to catch algorithmic blowups, not CI
// machine jitter:
//
//   - a per-stage timing fails when the current time exceeds
//     max(baseline, checkFloorMS) × maxRatio, so sub-floor stages are judged
//     against the noise floor rather than ignored outright;
//   - sharded total timings are held to the same rule against their own
//     baseline entry (matched by shard count), and worker-run totals against
//     theirs (matched by worker count) — the parallel-scaling watch;
//   - effectiveness must not silently degrade: F1 may drop at most 0.05
//     absolute, and every sharded and worker run must reproduce the primary
//     run's match count (the byte-identity contract);
//   - the reports must be comparable at all: same scale, and every baseline
//     dataset present in the current report.
//
// A nil return means the gate passes.
func CheckBench(cur, base *BenchReport, maxRatio float64) error {
	if maxRatio <= 1 {
		return fmt.Errorf("experiments: check tolerance %g must exceed 1", maxRatio)
	}
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	if cur.Scale != base.Scale {
		failf("scale mismatch: current %g vs baseline %g (refresh the baseline or pass -scale %g)",
			cur.Scale, base.Scale, base.Scale)
	} else {
		// Tally of the snapshot warm-start claim across datasets (see the
		// snapshot-run block below and the check after the loop).
		var snapGated, snapFast int
		for _, b := range base.Results {
			c := findResult(cur, b.Dataset)
			if c == nil {
				failf("%s: present in baseline but not in current run", b.Dataset)
				continue
			}
			stages := []struct {
				name      string
				base, cur float64
			}{
				{"statistics", b.StatisticsMS, c.StatisticsMS},
				{"stats/attributes", b.StatsAttributesMS, c.StatsAttributesMS},
				{"stats/relations", b.StatsRelationsMS, c.StatsRelationsMS},
				{"stats/topneighbors", b.StatsTopNeighborsMS, c.StatsTopNeighborsMS},
				{"blocking", b.BlockingMS, c.BlockingMS},
				{"blocking/name", b.BlockingNameMS, c.BlockingNameMS},
				{"blocking/token", b.BlockingTokenMS, c.BlockingTokenMS},
				{"graph", b.GraphMS, c.GraphMS},
				{"graph/beta", b.GraphBetaMS, c.GraphBetaMS},
				{"graph/gamma", b.GraphGammaMS, c.GraphGammaMS},
				{"matching", b.MatchingMS, c.MatchingMS},
				{"total", b.TotalMS, c.TotalMS},
			}
			for _, st := range stages {
				if eb := max(st.base, checkFloorMS); st.cur > eb*maxRatio {
					failf("%s: %s stage %.1fms exceeds %.1fms baseline (floored to %.1fms) ×%.1f tolerance",
						b.Dataset, st.name, st.cur, st.base, eb, maxRatio)
				}
			}
			if c.F1 < b.F1-0.05 {
				failf("%s: F1 %.3f dropped more than 0.05 below baseline %.3f", b.Dataset, c.F1, b.F1)
			}
			for _, bs := range b.ShardRuns {
				cs := findShardRun(c, bs.Shards)
				if cs == nil {
					failf("%s: shards=%d present in baseline but not in current run", b.Dataset, bs.Shards)
					continue
				}
				if eb := max(bs.TotalMS, checkFloorMS); cs.TotalMS > eb*maxRatio {
					failf("%s: shards=%d total %.1fms exceeds %.1fms baseline (floored to %.1fms) ×%.1f tolerance",
						b.Dataset, bs.Shards, cs.TotalMS, bs.TotalMS, eb, maxRatio)
				}
			}
			for _, cs := range c.ShardRuns {
				if cs.Matches != c.Matches {
					failf("%s: shards=%d produced %d matches, monolithic produced %d (determinism broken)",
						b.Dataset, cs.Shards, cs.Matches, c.Matches)
				}
			}
			// Worker runs are matched by the REQUESTED count (0 = all
			// cores), never the resolved one, so a baseline recorded on an
			// N-core box still gates a run on an M-core box.
			for _, bw := range b.WorkerRuns {
				cw := findWorkerRun(c, bw.Workers)
				if cw == nil {
					failf("%s: workers=%s present in baseline but not in current run",
						b.Dataset, workersLabel(bw.Workers, bw.ResolvedWorkers))
					continue
				}
				if eb := max(bw.TotalMS, checkFloorMS); cw.TotalMS > eb*maxRatio {
					failf("%s: workers=%s total %.1fms exceeds %.1fms baseline (floored to %.1fms) ×%.1f tolerance",
						b.Dataset, workersLabel(bw.Workers, cw.ResolvedWorkers), cw.TotalMS, bw.TotalMS, eb, maxRatio)
				}
			}
			for _, cw := range c.WorkerRuns {
				if cw.Matches != c.Matches {
					failf("%s: workers=%s produced %d matches, primary run produced %d (determinism broken)",
						b.Dataset, workersLabel(cw.Workers, cw.ResolvedWorkers), cw.Matches, c.Matches)
				}
			}
			// Query-path latency: relative to baseline (floored) like every
			// stage, plus the absolute p99 ceiling.
			if len(b.QueryRuns) > 0 {
				if len(c.QueryRuns) == 0 {
					failf("%s: query run present in baseline but not in current run", b.Dataset)
				} else {
					bq, cq := b.QueryRuns[0], c.QueryRuns[0]
					percentiles := []struct {
						name      string
						base, cur float64
					}{
						{"p50", bq.P50US, cq.P50US},
						{"p95", bq.P95US, cq.P95US},
						{"p99", bq.P99US, cq.P99US},
					}
					for _, pc := range percentiles {
						if eb := max(pc.base, queryFloorUS); pc.cur > eb*maxRatio {
							failf("%s: query %s %.0fµs exceeds %.0fµs baseline (floored to %.0fµs) ×%.1f tolerance",
								b.Dataset, pc.name, pc.cur, pc.base, eb, maxRatio)
						}
					}
					if cq.P99US > queryP99CapUS {
						failf("%s: query p99 %.0fµs exceeds the absolute %.0fµs ceiling",
							b.Dataset, cq.P99US, queryP99CapUS)
					}
				}
			}
			// Snapshot runs: the cold open→first-query wall against its own
			// floored baseline; the speedup requirement is tallied across
			// datasets below.
			if len(b.SnapshotRuns) > 0 {
				if len(c.SnapshotRuns) == 0 {
					failf("%s: snapshot run present in baseline but not in current run", b.Dataset)
				} else {
					bs, cs := b.SnapshotRuns[0], c.SnapshotRuns[0]
					if eb := max(bs.OpenMS, snapFloorMS); cs.OpenMS > eb*maxRatio {
						failf("%s: snapshot open→first-query %.2fms exceeds %.2fms baseline (floored to %.1fms) ×%.1f tolerance",
							b.Dataset, cs.OpenMS, bs.OpenMS, eb, maxRatio)
					}
					if bs.SpeedupX >= snapMinSpeedup {
						snapGated++
						if cs.SpeedupX >= snapMinSpeedup {
							snapFast++
						}
					}
				}
			}
			// Server-path load runs: the p99 tail is gated per concurrency
			// level against its own baseline entry, floored like every other
			// latency. Throughput is recorded but not gated — qps on a shared
			// runner measures the machine, the tail measures the code.
			for _, bl := range b.LoadRuns {
				cl := findLoadRun(c, bl.Clients)
				if cl == nil {
					failf("%s: load run clients=%d present in baseline but not in current run",
						b.Dataset, bl.Clients)
					continue
				}
				if eb := max(bl.P99US, loadFloorUS); cl.P99US > eb*maxRatio {
					failf("%s: serve clients=%d p99 %.0fµs exceeds %.0fµs baseline (floored to %.0fµs) ×%.1f tolerance",
						b.Dataset, bl.Clients, cl.P99US, bl.P99US, eb, maxRatio)
				}
			}
		}
		if want := min(snapMinDatasets, snapGated); snapGated > 0 && snapFast < want {
			failf("snapshot warm start beat the rebuild path by ≥%.0f× on only %d of %d gated datasets (need %d)",
				snapMinSpeedup, snapFast, snapGated, want)
		}
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("experiments: bench check failed:\n  %s", strings.Join(fails, "\n  "))
}

func findResult(r *BenchReport, dataset string) *BenchResult {
	for i := range r.Results {
		if r.Results[i].Dataset == dataset {
			return &r.Results[i]
		}
	}
	return nil
}

func findShardRun(r *BenchResult, shards int) *ShardRun {
	for i := range r.ShardRuns {
		if r.ShardRuns[i].Shards == shards {
			return &r.ShardRuns[i]
		}
	}
	return nil
}

func findWorkerRun(r *BenchResult, workers int) *WorkerRun {
	for i := range r.WorkerRuns {
		if r.WorkerRuns[i].Workers == workers {
			return &r.WorkerRuns[i]
		}
	}
	return nil
}

func findLoadRun(r *BenchResult, clients int) *LoadRun {
	for i := range r.LoadRuns {
		if r.LoadRuns[i].Clients == clients {
			return &r.LoadRuns[i]
		}
	}
	return nil
}
