// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic benchmark presets: Table 1 (dataset
// statistics), Table 2 (block statistics), Table 3 (system comparison),
// Table 4 (matching-rule evaluation), Figure 2 (similarity distribution of
// matches), Figure 5 (parameter sensitivity) and Figure 6 (scalability).
//
// Experiments are exposed through a Suite that generates each dataset once
// and shares it across experiments; Options.ScaleFactor shrinks the presets
// for fast test runs while preserving their structural profile.
package experiments

import (
	"fmt"

	"minoaner/internal/datagen"
)

// Options configures a Suite.
type Options struct {
	// ScaleFactor scales the preset entity counts (1.0 = paper-profile
	// scale as shipped; tests use ~0.1). Zero means 1.0.
	ScaleFactor float64
	// Workers is the parallel engine size for pipeline runs (0 = all cores).
	Workers int
	// Datasets restricts the suite to the named presets (nil = all four).
	Datasets []string
}

// Suite lazily generates and caches the benchmark datasets.
type Suite struct {
	opts     Options
	profiles []datagen.Profile
	cache    map[string]*datagen.Dataset
}

// NewSuite builds a Suite over the selected presets.
func NewSuite(opts Options) (*Suite, error) {
	if opts.ScaleFactor == 0 {
		opts.ScaleFactor = 1.0
	}
	all := datagen.Presets()
	var profiles []datagen.Profile
	if len(opts.Datasets) == 0 {
		profiles = all
	} else {
		for _, want := range opts.Datasets {
			found := false
			for _, p := range all {
				if p.Name == want {
					profiles = append(profiles, p)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown dataset %q", want)
			}
		}
	}
	for i := range profiles {
		if opts.ScaleFactor != 1.0 {
			profiles[i] = datagen.Scale(profiles[i], opts.ScaleFactor)
		}
	}
	return &Suite{opts: opts, profiles: profiles, cache: map[string]*datagen.Dataset{}}, nil
}

// Dataset returns the generated dataset for one profile, generating and
// caching it on first use.
func (s *Suite) Dataset(name string) (*datagen.Dataset, error) {
	if d, ok := s.cache[name]; ok {
		return d, nil
	}
	for _, p := range s.profiles {
		if p.Name == name {
			d, err := datagen.Generate(p)
			if err != nil {
				return nil, err
			}
			s.cache[name] = d
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiments: dataset %q not in suite", name)
}

// Names lists the suite's dataset names in Table 1 order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.profiles))
	for i, p := range s.profiles {
		out[i] = p.Name
	}
	return out
}

// Workers exposes the configured engine size.
func (s *Suite) Workers() int { return s.opts.Workers }
