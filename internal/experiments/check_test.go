package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseReport() *BenchReport {
	return &BenchReport{
		Date: "2026-01-01", Scale: 0.25,
		Results: []BenchResult{{
			Dataset:      "Restaurant",
			StatisticsMS: 40, BlockingMS: 20, GraphMS: 30, MatchingMS: 4, TotalMS: 100,
			Matches: 50, F1: 0.93,
			ShardRuns: []ShardRun{{Shards: 8, TotalMS: 110, Matches: 50}},
		}},
	}
}

func TestCheckBenchPassesWithinTolerance(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// 1.9× everywhere is within the 2× gate.
	cur.Results[0].StatisticsMS *= 1.9
	cur.Results[0].TotalMS *= 1.9
	cur.Results[0].ShardRuns[0].TotalMS *= 1.9
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("within-tolerance report failed the gate: %v", err)
	}
}

func TestCheckBenchFailsOnStageRegression(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].GraphMS = base.Results[0].GraphMS*2 + 1
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "graph stage") {
		t.Errorf("2×+ graph regression not caught: %v", err)
	}
}

func TestCheckBenchFloorsNoiseFloorStages(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// Matching baseline (4ms) is below the 10ms floor, so it is held to
	// tolerance × floor: a blip to 19ms (under 2×10) is jitter and passes...
	cur.Results[0].MatchingMS = 19
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("sub-floor stage jitter failed the gate: %v", err)
	}
	// ...but blowing past the floored threshold is a real regression.
	cur.Results[0].MatchingMS = 40
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "matching stage") {
		t.Errorf("sub-floor stage blowup not caught: %v", err)
	}
}

func TestCheckBenchFailsOnF1Drop(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].F1 = base.Results[0].F1 - 0.2
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "F1") {
		t.Errorf("F1 drop not caught: %v", err)
	}
}

func TestCheckBenchFailsOnShardMismatch(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].ShardRuns[0].Matches = 49
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("sharded match-count divergence not caught: %v", err)
	}
}

func TestCheckBenchFailsOnScaleOrDatasetMismatch(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Scale = 0.5
	if err := CheckBench(cur, base, 2.0); err == nil {
		t.Error("scale mismatch not caught")
	}
	cur = baseReport()
	cur.Results = nil
	if err := CheckBench(cur, base, 2.0); err == nil {
		t.Error("missing dataset not caught")
	}
	if err := CheckBench(cur, base, 0.5); err == nil {
		t.Error("tolerance <= 1 not rejected")
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	base := baseReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := base.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBench(got, base, 2.0); err != nil {
		t.Errorf("round-tripped report failed its own gate: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0].ShardRuns[0].Shards != 8 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// The smallest preset end to end: Bench with a shard sweep produces shard
// runs whose match counts equal the monolithic run, and the report passes a
// self-check.
func TestBenchWithShardSweep(t *testing.T) {
	s, err := NewSuite(Options{ScaleFactor: 0.2, Datasets: []string{"Restaurant"}})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Bench(1, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := report.Results[0]
	if len(r.ShardRuns) != 2 {
		t.Fatalf("shard runs = %+v, want 2", r.ShardRuns)
	}
	for _, sr := range r.ShardRuns {
		if sr.Matches != r.Matches {
			t.Errorf("shards=%d matches %d != monolithic %d", sr.Shards, sr.Matches, r.Matches)
		}
	}
	if err := CheckBench(report, report, 2.0); err != nil {
		t.Errorf("report failed self-check: %v", err)
	}
}
