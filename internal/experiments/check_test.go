package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseReport() *BenchReport {
	return &BenchReport{
		Date: "2026-01-01", Scale: 0.25,
		Results: []BenchResult{{
			Dataset:      "Restaurant",
			StatisticsMS: 40, BlockingMS: 20, GraphMS: 30,
			GraphBetaMS: 18, GraphGammaMS: 11, MatchingMS: 4, TotalMS: 100,
			Matches: 50, F1: 0.93,
			ShardRuns:  []ShardRun{{Shards: 8, TotalMS: 110, Matches: 50}},
			WorkerRuns: []WorkerRun{{Workers: 4, TotalMS: 40, Matches: 50}},
			QueryRuns:  []QueryRun{{Queries: 1000, SubstrateMS: 90, P50US: 100, P95US: 300, P99US: 800}},
			LoadRuns: []LoadRun{
				{Clients: 4, Queries: 2000, QPS: 9000, P50US: 300, P95US: 900, P99US: 1500},
				{Clients: 16, Queries: 2000, QPS: 12000, P50US: 800, P95US: 2400, P99US: 4000},
			},
		}},
	}
}

func TestCheckBenchPassesWithinTolerance(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// 1.9× everywhere is within the 2× gate.
	cur.Results[0].StatisticsMS *= 1.9
	cur.Results[0].TotalMS *= 1.9
	cur.Results[0].ShardRuns[0].TotalMS *= 1.9
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("within-tolerance report failed the gate: %v", err)
	}
}

func TestCheckBenchFailsOnStageRegression(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].GraphMS = base.Results[0].GraphMS*2 + 1
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "graph stage") {
		t.Errorf("2×+ graph regression not caught: %v", err)
	}
}

// The graph sub-stages are gated individually: a β blowup hiding inside a
// still-tolerable aggregate graph time must fail.
func TestCheckBenchFailsOnGraphSubStageRegression(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].GraphBetaMS = base.Results[0].GraphBetaMS*2 + 1
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "graph/beta stage") {
		t.Errorf("2×+ graph/beta regression not caught: %v", err)
	}
	cur = baseReport()
	// γ baseline (11ms) just above the floor: 2×+ fails.
	cur.Results[0].GraphGammaMS = 23
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "graph/gamma stage") {
		t.Errorf("2×+ graph/gamma regression not caught: %v", err)
	}
}

// Worker runs are gated like shard runs: a parallel-scaling blowup fails
// against the matching baseline entry, and the match count must reproduce
// the primary run's.
func TestCheckBenchGatesWorkerRuns(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].WorkerRuns[0].TotalMS = 99 // > 2 × max(40, floor)
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "workers=4 total") {
		t.Errorf("worker-run regression not caught: %v", err)
	}
	cur = baseReport()
	cur.Results[0].WorkerRuns[0].Matches = 49
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("worker-run match divergence not caught: %v", err)
	}
	cur = baseReport()
	cur.Results[0].WorkerRuns = nil
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "workers=4 present in baseline") {
		t.Errorf("missing worker run not caught: %v", err)
	}
	// Matching is by the REQUESTED count: an all-cores (0) baseline entry
	// from a 1-core box must match an all-cores current entry from a 4-core
	// box — the resolved counts are informational only.
	base = baseReport()
	base.Results[0].WorkerRuns[0] = WorkerRun{Workers: 0, ResolvedWorkers: 1, TotalMS: 40, Matches: 50}
	cur = baseReport()
	cur.Results[0].WorkerRuns[0] = WorkerRun{Workers: 0, ResolvedWorkers: 4, TotalMS: 35, Matches: 50}
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("all-cores worker runs with different resolved counts failed the gate: %v", err)
	}
}

func TestCheckBenchFloorsNoiseFloorStages(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// Matching baseline (4ms) is below the 10ms floor, so it is held to
	// tolerance × floor: a blip to 19ms (under 2×10) is jitter and passes...
	cur.Results[0].MatchingMS = 19
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("sub-floor stage jitter failed the gate: %v", err)
	}
	// ...but blowing past the floored threshold is a real regression.
	cur.Results[0].MatchingMS = 40
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "matching stage") {
		t.Errorf("sub-floor stage blowup not caught: %v", err)
	}
}

// Query-latency percentiles are gated like stage timings (relative to the
// floored baseline) plus an absolute p99 ceiling.
func TestCheckBenchGatesQueryRuns(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// p50 baseline (100µs) sits below the 500µs floor: a blip under 2×500
	// is jitter and passes…
	cur.Results[0].QueryRuns[0].P50US = 900
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("sub-floor query jitter failed the gate: %v", err)
	}
	// …but blowing past the floored threshold fails.
	cur = baseReport()
	cur.Results[0].QueryRuns[0].P95US = 1100 // > 2 × max(300, 500)
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "query p95") {
		t.Errorf("query p95 regression not caught: %v", err)
	}
	// p99 above the floor gates against its own baseline.
	cur = baseReport()
	cur.Results[0].QueryRuns[0].P99US = 1700 // > 2 × 800
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "query p99") {
		t.Errorf("query p99 regression not caught: %v", err)
	}
	// The absolute ceiling holds even when the relative gate would pass.
	base = baseReport()
	base.Results[0].QueryRuns[0].P99US = 4000
	cur = baseReport()
	cur.Results[0].QueryRuns[0].P99US = 5500 // < 2 × 4000, > 5000
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "ceiling") {
		t.Errorf("query p99 ceiling not enforced: %v", err)
	}
	// A baseline query run must not silently vanish from the current report.
	cur = baseReport()
	cur.Results[0].QueryRuns = nil
	err = CheckBench(cur, baseReport(), 2.0)
	if err == nil || !strings.Contains(err.Error(), "query run present in baseline") {
		t.Errorf("missing query run not caught: %v", err)
	}
}

// The server-path load runs gate their p99 per concurrency level, with the
// same floored-baseline discipline; qps and the lower percentiles are
// recorded but never gated.
func TestCheckBenchGatesLoadRuns(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// clients=4 p99 baseline (1500µs) sits below the 2000µs floor: anything
	// under 2×2000 is jitter and passes…
	cur.Results[0].LoadRuns[0].P99US = 3900
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("sub-floor load-run jitter failed the gate: %v", err)
	}
	// …past the floored threshold it fails, naming the concurrency level.
	cur = baseReport()
	cur.Results[0].LoadRuns[0].P99US = 4100 // > 2 × max(1500, 2000)
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "serve clients=4 p99") {
		t.Errorf("load-run p99 regression not caught: %v", err)
	}
	// clients=16 gates against its own (above-floor) baseline entry.
	cur = baseReport()
	cur.Results[0].LoadRuns[1].P99US = 8100 // > 2 × 4000
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "serve clients=16 p99") {
		t.Errorf("clients=16 p99 regression not caught: %v", err)
	}
	// Throughput and the lower percentiles are informational: a qps drop or
	// p50 wobble alone never fails the gate.
	cur = baseReport()
	cur.Results[0].LoadRuns[0].QPS = 10
	cur.Results[0].LoadRuns[0].P50US = 1900
	if err := CheckBench(cur, base, 2.0); err != nil {
		t.Errorf("ungated load-run fields failed the gate: %v", err)
	}
	// A baseline concurrency level must not silently vanish.
	cur = baseReport()
	cur.Results[0].LoadRuns = cur.Results[0].LoadRuns[:1]
	err = CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "load run clients=16 present in baseline") {
		t.Errorf("missing load run not caught: %v", err)
	}
}

func TestCheckBenchFailsOnF1Drop(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].F1 = base.Results[0].F1 - 0.2
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "F1") {
		t.Errorf("F1 drop not caught: %v", err)
	}
}

func TestCheckBenchFailsOnShardMismatch(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Results[0].ShardRuns[0].Matches = 49
	err := CheckBench(cur, base, 2.0)
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("sharded match-count divergence not caught: %v", err)
	}
}

func TestCheckBenchFailsOnScaleOrDatasetMismatch(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	cur.Scale = 0.5
	if err := CheckBench(cur, base, 2.0); err == nil {
		t.Error("scale mismatch not caught")
	}
	cur = baseReport()
	cur.Results = nil
	if err := CheckBench(cur, base, 2.0); err == nil {
		t.Error("missing dataset not caught")
	}
	if err := CheckBench(cur, base, 0.5); err == nil {
		t.Error("tolerance <= 1 not rejected")
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	base := baseReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := base.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBench(got, base, 2.0); err != nil {
		t.Errorf("round-tripped report failed its own gate: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0].ShardRuns[0].Shards != 8 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// The smallest preset end to end: Bench with a shard sweep produces shard
// runs whose match counts equal the monolithic run, and the report passes a
// self-check.
func TestBenchWithShardSweep(t *testing.T) {
	s, err := NewSuite(Options{ScaleFactor: 0.2, Datasets: []string{"Restaurant"}})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Bench(1, []int{1, 4}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	r := report.Results[0]
	if len(r.ShardRuns) != 2 {
		t.Fatalf("shard runs = %+v, want 2", r.ShardRuns)
	}
	for _, sr := range r.ShardRuns {
		if sr.Matches != r.Matches {
			t.Errorf("shards=%d matches %d != monolithic %d", sr.Shards, sr.Matches, r.Matches)
		}
	}
	if len(r.WorkerRuns) != 1 {
		t.Fatalf("worker runs = %+v, want 1", r.WorkerRuns)
	}
	if r.WorkerRuns[0].Matches != r.Matches {
		t.Errorf("worker run matches %d != primary %d", r.WorkerRuns[0].Matches, r.Matches)
	}
	if len(r.QueryRuns) != 1 {
		t.Fatalf("query runs = %+v, want 1", r.QueryRuns)
	}
	if qr := r.QueryRuns[0]; qr.Queries < 1000 || qr.P99US <= 0 || qr.P50US > qr.P99US {
		t.Errorf("implausible query run: %+v", qr)
	}
	if len(r.LoadRuns) != len(benchLoadClients) {
		t.Fatalf("load runs = %+v, want one per concurrency level %v", r.LoadRuns, benchLoadClients)
	}
	for i, lr := range r.LoadRuns {
		if lr.Clients != benchLoadClients[i] || lr.Queries != benchLoadQueryCount ||
			lr.QPS <= 0 || lr.P50US <= 0 || lr.P50US > lr.P99US {
			t.Errorf("implausible load run: %+v", lr)
		}
	}
	if err := CheckBench(report, report, 2.0); err != nil {
		t.Errorf("report failed self-check: %v", err)
	}
}
