package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"slices"
	"strings"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/server"
	"minoaner/internal/snapshot"
)

// BenchResult is the per-stage wall-clock record of one dataset's pipeline
// run — the data points behind the ROADMAP's performance trajectory. Times
// are the fastest of Runs repetitions, reported per Figure 4 stage.
type BenchResult struct {
	Dataset string `json:"dataset"`
	E1Size  int    `json:"e1_size"`
	E2Size  int    `json:"e2_size"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	// Stage timings in milliseconds (best of Runs, per stage independently).
	// The statistics stage also reports its three sub-stages, and the graph
	// stage its two weighting phases (β incl. name evidence, γ incl. the
	// adjacency merges), so the regression gate can pin the columnar
	// substrates per pass.
	StatisticsMS        float64 `json:"statistics_ms"`
	StatsAttributesMS   float64 `json:"stats_attributes_ms"`
	StatsRelationsMS    float64 `json:"stats_relations_ms"`
	StatsTopNeighborsMS float64 `json:"stats_topneighbors_ms"`
	// Blocking reports its two sub-clocks next to the sum: the columnar
	// name-index build and the token-index build incl. Block Purging.
	BlockingMS      float64 `json:"blocking_ms"`
	BlockingNameMS  float64 `json:"blocking_name_ms"`
	BlockingTokenMS float64 `json:"blocking_token_ms"`
	GraphMS         float64 `json:"graph_ms"`
	GraphBetaMS     float64 `json:"graph_beta_ms"`
	GraphGammaMS    float64 `json:"graph_gamma_ms"`
	MatchingMS      float64 `json:"matching_ms"`
	TotalMS         float64 `json:"total_ms"`
	// PeakHeapMB is the maximum live-heap sample observed during one extra,
	// untimed repetition (see sampleHeapPeak) — the memory trajectory
	// counterpart of the stage timings.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// Effectiveness, so a perf data point can't silently trade away quality.
	Matches int     `json:"matches"`
	F1      float64 `json:"f1"`
	// ShardRuns holds one entry per requested shard count: the same pipeline
	// under core.ResolveSharded, timed and heap-sampled the same way.
	ShardRuns []ShardRun `json:"shard_runs,omitempty"`
	// WorkerRuns holds one entry per requested extra worker count — by
	// default one data point at workers=GOMAXPROCS next to the 1-core
	// primary run, so the regression gate also watches parallel scaling.
	WorkerRuns []WorkerRun `json:"worker_runs,omitempty"`
	// QueryRuns holds the per-entity query-path data point: latency
	// percentiles of individual QueryEntity calls over a prewarmed
	// substrate — the "build once, query many" counterpart of the batch
	// stage timings.
	QueryRuns []QueryRun `json:"query_runs,omitempty"`
	// LoadRuns holds the served query path: the same prewarmed substrate
	// behind a real minoanerd HTTP server, hammered by the load-test harness
	// at each concurrency level. Where QueryRuns isolates the kernel,
	// LoadRuns adds transport, routing and encoding — the costs a serving
	// deployment actually pays per request.
	LoadRuns []LoadRun `json:"load_runs,omitempty"`
	// SnapshotRuns holds the persisted-substrate data point: the cost of
	// writing the substrate snapshot to disk and the time from a cold
	// mmap-open to the first answered query, against the rebuild path
	// (substrate build + prewarm) a restart without snapshots would pay.
	SnapshotRuns []SnapshotRun `json:"snapshot_runs,omitempty"`
}

// SnapshotRun is one persisted-substrate data point: WriteMS and FileMB
// price the save, OpenMS is the cold OpenSubstrate plus the FIRST
// QueryEntity on the mapping (time-to-first-answer from disk, best of
// reps), RebuildMS the substrate build + prewarm wall the query run of the
// same dataset measured, and SpeedupX their ratio — the warm-start claim
// the regression gate holds the format to.
type SnapshotRun struct {
	WriteMS   float64 `json:"write_ms"`
	FileMB    float64 `json:"file_mb"`
	OpenMS    float64 `json:"open_ms"`
	RebuildMS float64 `json:"rebuild_ms"`
	SpeedupX  float64 `json:"speedup_x"`
}

// LoadRun is one server-path load-test data point: Queries requests from
// Clients concurrent HTTP clients against one shared substrate, reported as
// throughput plus latency percentiles in microseconds.
type LoadRun struct {
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50US   float64 `json:"p50_us"`
	P95US   float64 `json:"p95_us"`
	P99US   float64 `json:"p99_us"`
}

// QueryRun is one query-latency data point of a dataset: Queries sequential
// QueryEntity calls cycling through E1 on one prewarmed substrate, reported
// as latency percentiles in microseconds, next to the two one-time costs a
// query-serving deployment pays up front (the substrate build and the lazy
// query-state construction).
type QueryRun struct {
	Queries     int     `json:"queries"`
	SubstrateMS float64 `json:"substrate_ms"`
	PrewarmMS   float64 `json:"prewarm_ms"`
	P50US       float64 `json:"p50_us"`
	P95US       float64 `json:"p95_us"`
	P99US       float64 `json:"p99_us"`
}

// ShardRun is one sharded-execution data point of a dataset: ResolveSharded
// with Shards E1 shards must reproduce the monolithic matches exactly while
// bounding peak memory, so the record carries both.
type ShardRun struct {
	Shards     int     `json:"shards"`
	TotalMS    float64 `json:"total_ms"`
	PeakHeapMB float64 `json:"peak_heap_mb"`
	Matches    int     `json:"matches"`
}

// WorkerRun is one parallel-scaling data point of a dataset: the same
// monolithic pipeline at a different engine size. The gate compares the
// TOTAL time against the baseline entry and requires Matches to equal the
// primary run's (worker-count determinism); the per-stage times are
// recorded for diagnosis only — on a busy CI box individual parallel
// stages jitter too much to gate.
type WorkerRun struct {
	// Workers is the REQUESTED engine size and the gate's matching key; 0
	// means "all cores", kept symbolic so a baseline recorded on one
	// machine still matches a current run on a machine with a different
	// core count. ResolvedWorkers records what the request meant on the
	// recording box (informational only, never compared).
	Workers         int     `json:"workers"`
	ResolvedWorkers int     `json:"resolved_workers,omitempty"`
	StatisticsMS    float64 `json:"statistics_ms"`
	BlockingMS      float64 `json:"blocking_ms"`
	GraphMS         float64 `json:"graph_ms"`
	MatchingMS      float64 `json:"matching_ms"`
	TotalMS         float64 `json:"total_ms"`
	Matches         int     `json:"matches"`
}

// BenchReport is the JSON document `cmd/experiments -bench` emits
// (BENCH_<date>.json): one BenchResult per dataset plus run metadata.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      float64       `json:"scale"`
	Results    []BenchResult `json:"results"`
}

// Bench runs the full pipeline reps times on every suite dataset and
// collects per-stage timings (fastest repetition per stage) plus F1 against
// the generated ground truth, and a heap-peak sample from one extra untimed
// repetition. For every entry of shardCounts it additionally benchmarks
// core.ResolveSharded at that shard count (total wall clock, heap peak, and
// the match count, which must equal the monolithic one), and for every
// entry of workerCounts (0 = all cores) the monolithic pipeline at that
// engine size — the parallel-scaling data points.
func (s *Suite) Bench(reps int, shardCounts, workerCounts []int) (*BenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	report := &BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      s.opts.ScaleFactor,
	}
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Workers = s.opts.Workers
		r := BenchResult{
			Dataset: name,
			E1Size:  d.K1.Len(),
			E2Size:  d.K2.Len(),
			Workers: runtime.GOMAXPROCS(0),
			Runs:    reps,
		}
		if s.opts.Workers > 0 {
			r.Workers = s.opts.Workers
		}
		best, first, err := resolveBest(reps, func() (*core.Output, error) {
			return core.Resolve(d.K1, d.K2, cfg)
		})
		if err != nil {
			return nil, err
		}
		r.Matches = len(first.Matches)
		pairs := make([]eval.Pair, len(first.Matches))
		for j, m := range first.Matches {
			pairs[j] = m.Pair
		}
		r.F1 = eval.Evaluate(pairs, d.GT).F1
		r.StatisticsMS = ms(best.Statistics)
		r.StatsAttributesMS = ms(best.StatsAttributes)
		r.StatsRelationsMS = ms(best.StatsRelations)
		r.StatsTopNeighborsMS = ms(best.StatsTopNeighbors)
		r.BlockingMS = ms(best.Blocking)
		r.BlockingNameMS = ms(best.BlockingName)
		r.BlockingTokenMS = ms(best.BlockingToken)
		r.GraphMS = ms(best.Graph)
		r.GraphBetaMS = ms(best.GraphBeta)
		r.GraphGammaMS = ms(best.GraphGamma)
		r.MatchingMS = ms(best.Matching)
		r.TotalMS = ms(best.Total)
		peak, err := sampleHeapPeak(func() error {
			_, err := core.Resolve(d.K1, d.K2, cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		r.PeakHeapMB = mb(peak)
		for _, p := range shardCounts {
			sr, err := s.benchSharded(d, cfg, reps, p)
			if err != nil {
				return nil, err
			}
			r.ShardRuns = append(r.ShardRuns, sr)
		}
		for _, w := range workerCounts {
			wr, err := benchWorkers(d, cfg, reps, w)
			if err != nil {
				return nil, err
			}
			r.WorkerRuns = append(r.WorkerRuns, wr)
		}
		qr, sub, err := benchQuery(d, cfg, benchQueryCount)
		if err != nil {
			return nil, err
		}
		r.QueryRuns = append(r.QueryRuns, qr)
		snr, err := benchSnapshot(d, cfg, sub, qr, reps)
		if err != nil {
			return nil, err
		}
		r.SnapshotRuns = append(r.SnapshotRuns, snr)
		lrs, err := benchLoad(d, sub, benchLoadClients)
		if err != nil {
			return nil, err
		}
		r.LoadRuns = lrs
		report.Results = append(report.Results, r)
	}
	return report, nil
}

// benchQueryCount is the minimum number of QueryEntity calls behind a
// QueryRun's percentiles — enough samples for a meaningful p99.
const benchQueryCount = 1000

// benchLoadClients are the concurrency levels of the server-path load runs,
// and benchLoadQueryCount the request total at each level.
var benchLoadClients = []int{4, 16}

const benchLoadQueryCount = 2000

// benchQuery measures the per-entity query path: BuildSubstrate once,
// prewarm the lazy query state, then time at least minQueries individual
// QueryEntity calls cycling through E1 (queries prebuilt outside the timed
// region, so a sample is the query path alone). Single-threaded on purpose —
// the percentiles describe one query's latency, not throughput. The prewarmed
// substrate is returned so the load runs can reuse it instead of building a
// third one.
func benchQuery(d *datagen.Dataset, cfg core.Config, minQueries int) (QueryRun, *core.Substrate, error) {
	ctx := context.Background()
	qr := QueryRun{}
	start := time.Now()
	sub, err := core.BuildSubstrate(ctx, d.K1, d.K2, cfg)
	if err != nil {
		return qr, nil, err
	}
	qr.SubstrateMS = ms(time.Since(start))
	start = time.Now()
	if err := sub.PrewarmQueries(ctx); err != nil {
		return qr, nil, err
	}
	qr.PrewarmMS = ms(time.Since(start))

	n := d.K1.Len()
	if n == 0 {
		return qr, nil, fmt.Errorf("experiments: dataset %s has an empty E1", d.Profile.Name)
	}
	queries := make([]core.EntityQuery, n)
	for i := range queries {
		queries[i] = core.QueryFromEntity(d.K1, kb.EntityID(i))
	}
	total := minQueries
	if rem := total % n; rem != 0 {
		total += n - rem // whole passes over E1, so every entity weighs equally
	}
	// One untimed warm-up pass populates the scratch pool.
	if _, err := core.QueryEntity(ctx, sub, queries[0], cfg); err != nil {
		return qr, nil, err
	}
	lat := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		q := queries[i%n]
		t0 := time.Now()
		if _, err := core.QueryEntity(ctx, sub, q, cfg); err != nil {
			return qr, nil, err
		}
		lat = append(lat, time.Since(t0))
	}
	slices.Sort(lat)
	qr.Queries = total
	qr.P50US = percentileUS(lat, 0.50)
	qr.P95US = percentileUS(lat, 0.95)
	qr.P99US = percentileUS(lat, 0.99)
	return qr, sub, nil
}

// benchSnapshot measures the persisted-substrate path. The substrate the
// query run prewarmed is written to a snapshot once (write wall, file
// size); then, reps times, the file is opened cold — a fresh mmap, no state
// shared with the writing substrate — and one QueryEntity answered on the
// mapping, keeping the fastest open→first-answer wall. RebuildMS reuses
// the query run's substrate + prewarm clocks so SpeedupX compares the two
// ways a restart can reach the same query-ready state.
func benchSnapshot(d *datagen.Dataset, cfg core.Config, sub *core.Substrate, qr QueryRun, reps int) (SnapshotRun, error) {
	ctx := context.Background()
	sr := SnapshotRun{RebuildMS: qr.SubstrateMS + qr.PrewarmMS}
	dir, err := os.MkdirTemp("", "minoaner-bench-snap-")
	if err != nil {
		return sr, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup
	path := filepath.Join(dir, "pair.snap")
	start := time.Now()
	if err := snapshot.WriteSubstrateFile(path, sub); err != nil {
		return sr, err
	}
	sr.WriteMS = ms(time.Since(start))
	fi, err := os.Stat(path)
	if err != nil {
		return sr, err
	}
	sr.FileMB = mb(uint64(fi.Size()))
	q := core.QueryFromEntity(d.K1, 0)
	// Warm-up open + GC before the timed reps, mirroring resolveBest: the
	// query benchmark that just ran leaves the pacer sized to its garbage,
	// which otherwise taxes the first opens with collections they didn't
	// cause.
	warm, err := snapshot.OpenSubstrate(path)
	if err != nil {
		return sr, err
	}
	if _, err := core.QueryEntity(ctx, warm.Substrate(), q, cfg); err != nil {
		warm.Close() //nolint:errcheck // the query error is the one to report
		return sr, err
	}
	if err := warm.Close(); err != nil {
		return sr, err
	}
	runtime.GC()
	for i := 0; i < max(reps, 1); i++ {
		start = time.Now()
		loaded, err := snapshot.OpenSubstrate(path)
		if err != nil {
			return sr, err
		}
		if _, err := core.QueryEntity(ctx, loaded.Substrate(), q, cfg); err != nil {
			loaded.Close() //nolint:errcheck // the query error is the one to report
			return sr, err
		}
		open := ms(time.Since(start))
		if err := loaded.Close(); err != nil {
			return sr, err
		}
		if i == 0 || open < sr.OpenMS {
			sr.OpenMS = open
		}
	}
	if sr.OpenMS > 0 {
		sr.SpeedupX = sr.RebuildMS / sr.OpenMS
	}
	return sr, nil
}

// benchLoad measures the served query path: the prewarmed substrate is
// registered in a real server.Server on a loopback port and the load-test
// harness replays E1 through POST /v1/pairs/{id}/query at each concurrency
// level. One substrate serves every run — the server's contract — so the
// data points differ only in client parallelism.
func benchLoad(d *datagen.Dataset, sub *core.Substrate, clients []int) ([]LoadRun, error) {
	srv := server.New(server.Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if _, err := srv.Registry().AddSubstrate("bench", server.LoadPairRequest{E1: "mem:e1", E2: "mem:e2"}, sub); err != nil {
		return nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + addr.String()
	reqs := make([]server.QueryRequest, d.K1.Len())
	for i := range reqs {
		reqs[i] = server.QueryRequest{URI: d.K1.Entity(kb.EntityID(i)).URI}
	}
	runs := make([]LoadRun, 0, len(clients))
	for _, c := range clients {
		res, err := server.LoadTest(context.Background(), base, "bench", reqs,
			server.LoadOptions{Clients: c, Queries: benchLoadQueryCount})
		if err != nil {
			return nil, err
		}
		runs = append(runs, LoadRun{
			Clients: res.Clients,
			Queries: res.Queries,
			QPS:     res.QPS,
			P50US:   res.P50US,
			P95US:   res.P95US,
			P99US:   res.P99US,
		})
	}
	return runs, nil
}

// percentileUS reads the p-th percentile (nearest-rank) of sorted latencies
// in microseconds.
func percentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	idx = max(0, min(idx, len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1000
}

// benchWorkers times the monolithic pipeline at one worker count (0 = all
// cores), keeping the fastest of reps per stage. The requested count is the
// record's identity; the resolved count is informational.
func benchWorkers(d *datagen.Dataset, cfg core.Config, reps, workers int) (WorkerRun, error) {
	cfg.Workers = workers
	wr := WorkerRun{Workers: workers, ResolvedWorkers: workers}
	if workers == 0 {
		wr.ResolvedWorkers = runtime.GOMAXPROCS(0)
	}
	best, first, err := resolveBest(reps, func() (*core.Output, error) {
		return core.Resolve(d.K1, d.K2, cfg)
	})
	if err != nil {
		return wr, err
	}
	wr.Matches = len(first.Matches)
	wr.StatisticsMS = ms(best.Statistics)
	wr.BlockingMS = ms(best.Blocking)
	wr.GraphMS = ms(best.Graph)
	wr.MatchingMS = ms(best.Matching)
	wr.TotalMS = ms(best.Total)
	return wr, nil
}

// benchSharded times core.ResolveSharded at one shard count (best of reps)
// and heap-samples one extra repetition.
func (s *Suite) benchSharded(d *datagen.Dataset, cfg core.Config, reps, shards int) (ShardRun, error) {
	sr := ShardRun{Shards: shards}
	best, first, err := resolveBest(reps, func() (*core.Output, error) {
		return core.ResolveSharded(context.Background(), d.K1, d.K2, cfg, shards)
	})
	if err != nil {
		return sr, err
	}
	sr.Matches = len(first.Matches)
	sr.TotalMS = ms(best.Total)
	peak, err := sampleHeapPeak(func() error {
		_, err := core.ResolveSharded(context.Background(), d.K1, d.K2, cfg, shards)
		return err
	})
	if err != nil {
		return sr, err
	}
	sr.PeakHeapMB = mb(peak)
	return sr, nil
}

// resolveBest runs one untimed warm-up repetition and an explicit GC, then
// fn reps times, returning the field-wise minimum of the per-stage timings —
// the best-of-reps rule every bench record shares — plus the warm-up's
// output (for match counts and F1; the pipeline is deterministic, so every
// repetition produces the same output). The warm-up is what makes every
// record measure STEADY state: the primary run used to execute straight
// after dataset generation with the GC pacer still sized to generation
// garbage, which inflated its blocking_ms several-fold against the
// worker-run record of the very same configuration later in the suite.
func resolveBest(reps int, fn func() (*core.Output, error)) (core.Timings, *core.Output, error) {
	first, err := fn()
	if err != nil {
		return core.Timings{}, nil, err
	}
	runtime.GC()
	var best core.Timings
	for i := 0; i < reps; i++ {
		out, err := fn()
		if err != nil {
			return best, nil, err
		}
		if i == 0 {
			best = out.Timings
			continue
		}
		minStages(&best, out.Timings)
	}
	return best, first, nil
}

// minStages lowers every stage of dst to its minimum with t.
func minStages(dst *core.Timings, t core.Timings) {
	keep := func(d *time.Duration, v time.Duration) {
		if v < *d {
			*d = v
		}
	}
	keep(&dst.Statistics, t.Statistics)
	keep(&dst.StatsAttributes, t.StatsAttributes)
	keep(&dst.StatsRelations, t.StatsRelations)
	keep(&dst.StatsTopNeighbors, t.StatsTopNeighbors)
	keep(&dst.Blocking, t.Blocking)
	keep(&dst.BlockingName, t.BlockingName)
	keep(&dst.BlockingToken, t.BlockingToken)
	keep(&dst.Graph, t.Graph)
	keep(&dst.GraphBeta, t.GraphBeta)
	keep(&dst.GraphGamma, t.GraphGamma)
	keep(&dst.Matching, t.Matching)
	keep(&dst.Total, t.Total)
}

// ms converts a duration to the report's millisecond unit.
func ms(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }

func mb(bytes uint64) float64 { return float64(bytes) / (1 << 20) }

// sampleHeapPeak runs fn while a background sampler polls the live heap
// ("/memory/classes/heap/objects:bytes" from runtime/metrics, ~1 kHz) and
// returns the maximum sample minus the pre-run floor. The run is untimed, so
// GC is temporarily made aggressive (GOGC≈20): with the default pacing the
// heap floats up to ~2× the live set between collections and the sample
// would mostly measure collector laziness, not the pipeline's working set.
// The sampler necessarily misses sub-millisecond spikes, making this a
// trajectory metric, not a bound.
func sampleHeapPeak(fn func() error) (uint64, error) {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	read := func() uint64 {
		metrics.Read(sample)
		return sample[0].Value.Uint64()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	floor := read()
	peak := floor
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
			}
			if v := read(); v > peak {
				peak = v
			}
			time.Sleep(time.Millisecond)
		}
	}()
	err := fn()
	close(done)
	<-finished
	if v := read(); v > peak {
		peak = v
	}
	if err != nil {
		return 0, err
	}
	if peak < floor {
		return 0, nil
	}
	return peak - floor, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatBench renders the report as an aligned text table, with one indented
// row per sharded run under its dataset.
func FormatBench(r *BenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline stage timings (ms, best of %s; %s, GOMAXPROCS=%d, scale=%g)\n",
		plural(r.Results), r.GoVersion, r.GOMAXPROCS, r.Scale)
	fmt.Fprintf(&sb, "%-18s %9s %9s %9s %9s %9s %9s %9s %7s\n",
		"dataset", "stats", "blocking", "graph", "matching", "total", "peakMB", "matches", "F1")
	for _, x := range r.Results {
		fmt.Fprintf(&sb, "%-18s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9d %7.3f\n",
			x.Dataset, x.StatisticsMS, x.BlockingMS, x.GraphMS, x.MatchingMS, x.TotalMS,
			x.PeakHeapMB, x.Matches, x.F1)
		for _, sr := range x.ShardRuns {
			fmt.Fprintf(&sb, "  %-16s %49.1f %9.1f %9d\n",
				fmt.Sprintf("shards=%d", sr.Shards), sr.TotalMS, sr.PeakHeapMB, sr.Matches)
		}
		for _, wr := range x.WorkerRuns {
			fmt.Fprintf(&sb, "  %-16s %9.1f %9.1f %9.1f %9.1f %9.1f %19d\n",
				"workers="+workersLabel(wr.Workers, wr.ResolvedWorkers), wr.StatisticsMS,
				wr.BlockingMS, wr.GraphMS, wr.MatchingMS, wr.TotalMS, wr.Matches)
		}
		for _, qr := range x.QueryRuns {
			fmt.Fprintf(&sb, "  %-16s p50=%.0fµs p95=%.0fµs p99=%.0fµs (substrate %.1fms + prewarm %.1fms)\n",
				fmt.Sprintf("query×%d", qr.Queries), qr.P50US, qr.P95US, qr.P99US,
				qr.SubstrateMS, qr.PrewarmMS)
		}
		for _, sn := range x.SnapshotRuns {
			fmt.Fprintf(&sb, "  %-16s write=%.1fms file=%.1fMB open→query=%.2fms rebuild=%.1fms (%.0f× faster)\n",
				"snapshot", sn.WriteMS, sn.FileMB, sn.OpenMS, sn.RebuildMS, sn.SpeedupX)
		}
		for _, lr := range x.LoadRuns {
			fmt.Fprintf(&sb, "  %-16s qps=%.0f p50=%.0fµs p95=%.0fµs p99=%.0fµs (%d queries over HTTP)\n",
				fmt.Sprintf("serve c=%d", lr.Clients), lr.QPS, lr.P50US, lr.P95US, lr.P99US, lr.Queries)
		}
	}
	return sb.String()
}

// workersLabel renders a requested worker count, keeping the symbolic
// "all cores" request readable alongside what it resolved to.
func workersLabel(requested, resolved int) string {
	if requested == 0 {
		if resolved > 0 {
			return fmt.Sprintf("all(%d)", resolved)
		}
		return "all"
	}
	return fmt.Sprint(requested)
}

func plural(rs []BenchResult) string {
	if len(rs) > 0 && rs[0].Runs == 1 {
		return "1 run"
	}
	if len(rs) > 0 {
		return fmt.Sprintf("%d runs", rs[0].Runs)
	}
	return "0 runs"
}
