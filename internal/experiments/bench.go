package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/eval"
)

// BenchResult is the per-stage wall-clock record of one dataset's pipeline
// run — the data points behind the ROADMAP's performance trajectory. Times
// are the fastest of Runs repetitions, reported per Figure 4 stage.
type BenchResult struct {
	Dataset string `json:"dataset"`
	E1Size  int    `json:"e1_size"`
	E2Size  int    `json:"e2_size"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	// Stage timings in milliseconds (best of Runs, per stage independently).
	StatisticsMS float64 `json:"statistics_ms"`
	BlockingMS   float64 `json:"blocking_ms"`
	GraphMS      float64 `json:"graph_ms"`
	MatchingMS   float64 `json:"matching_ms"`
	TotalMS      float64 `json:"total_ms"`
	// Effectiveness, so a perf data point can't silently trade away quality.
	Matches int     `json:"matches"`
	F1      float64 `json:"f1"`
}

// BenchReport is the JSON document `cmd/experiments -bench` emits
// (BENCH_<date>.json): one BenchResult per dataset plus run metadata.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      float64       `json:"scale"`
	Results    []BenchResult `json:"results"`
}

// Bench runs the full pipeline reps times on every suite dataset and
// collects per-stage timings (fastest repetition per stage) plus F1 against
// the generated ground truth.
func (s *Suite) Bench(reps int) (*BenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	report := &BenchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      s.opts.ScaleFactor,
	}
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Workers = s.opts.Workers
		r := BenchResult{
			Dataset: name,
			E1Size:  d.K1.Len(),
			E2Size:  d.K2.Len(),
			Workers: runtime.GOMAXPROCS(0),
			Runs:    reps,
		}
		if s.opts.Workers > 0 {
			r.Workers = s.opts.Workers
		}
		best := core.Timings{}
		for i := 0; i < reps; i++ {
			out, err := core.Resolve(d.K1, d.K2, cfg)
			if err != nil {
				return nil, err
			}
			t := out.Timings
			if i == 0 || t.Statistics < best.Statistics {
				best.Statistics = t.Statistics
			}
			if i == 0 || t.Blocking < best.Blocking {
				best.Blocking = t.Blocking
			}
			if i == 0 || t.Graph < best.Graph {
				best.Graph = t.Graph
			}
			if i == 0 || t.Matching < best.Matching {
				best.Matching = t.Matching
			}
			if i == 0 || t.Total < best.Total {
				best.Total = t.Total
			}
			if i == 0 {
				r.Matches = len(out.Matches)
				pairs := make([]eval.Pair, len(out.Matches))
				for j, m := range out.Matches {
					pairs[j] = m.Pair
				}
				r.F1 = eval.Evaluate(pairs, d.GT).F1
			}
		}
		ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
		r.StatisticsMS = ms(best.Statistics)
		r.BlockingMS = ms(best.Blocking)
		r.GraphMS = ms(best.Graph)
		r.MatchingMS = ms(best.Matching)
		r.TotalMS = ms(best.Total)
		report.Results = append(report.Results, r)
	}
	return report, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatBench renders the report as an aligned text table.
func FormatBench(r *BenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline stage timings (ms, best of %s; %s, GOMAXPROCS=%d, scale=%g)\n",
		plural(r.Results), r.GoVersion, r.GOMAXPROCS, r.Scale)
	fmt.Fprintf(&sb, "%-18s %9s %9s %9s %9s %9s %9s %7s\n",
		"dataset", "stats", "blocking", "graph", "matching", "total", "matches", "F1")
	for _, x := range r.Results {
		fmt.Fprintf(&sb, "%-18s %9.1f %9.1f %9.1f %9.1f %9.1f %9d %7.3f\n",
			x.Dataset, x.StatisticsMS, x.BlockingMS, x.GraphMS, x.MatchingMS, x.TotalMS, x.Matches, x.F1)
	}
	return sb.String()
}

func plural(rs []BenchResult) string {
	if len(rs) > 0 && rs[0].Runs == 1 {
		return "1 run"
	}
	if len(rs) > 0 {
		return fmt.Sprintf("%d runs", rs[0].Runs)
	}
	return "0 runs"
}
