package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Figure2Point is one ground-truth match plotted in the paper's Figure 2:
// its normalized value similarity (weighted Jaccard over EF weights, x-axis)
// and the maximum value similarity among its neighbor pairs (y-axis).
// HasName marks the bordered points (matches agreeing on a name).
type Figure2Point struct {
	Dataset     string
	Pair        eval.Pair
	ValueSim    float64
	NeighborSim float64
	HasName     bool
	Category    string
}

// Figure2 computes the similarity distribution of the ground-truth matches
// of every dataset.
func (s *Suite) Figure2() ([]Figure2Point, error) {
	eng := parallel.New(s.opts.Workers)
	var points []Figure2Point
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		ef1 := stats.BuildEF(eng, d.K1)
		ef2 := stats.BuildEF(eng, d.K2)
		wj := func(a *kb.Description, b *kb.Description) float64 {
			return weightedJaccard(a, b, ef1, ef2)
		}
		for _, p := range d.GT.Pairs() {
			d1, d2 := d.K1.Entity(p.E1), d.K2.Entity(p.E2)
			pt := Figure2Point{
				Dataset:  name,
				Pair:     p,
				ValueSim: wj(d1, d2),
			}
			// Max value similarity over the neighbor cross product.
			for _, n1 := range d.K1.Neighbors(p.E1) {
				for _, n2 := range d.K2.Neighbors(p.E2) {
					if v := wj(d.K1.Entity(n1), d.K2.Entity(n2)); v > pt.NeighborSim {
						pt.NeighborSim = v
					}
				}
			}
			mp := d.Profiles[p]
			pt.HasName = mp.HasUniqueName
			pt.Category = mp.Category.String()
			points = append(points, pt)
		}
	}
	return points, nil
}

// weightedJaccard is the normalized value similarity of Figure 2 [21]:
// Σ_{t ∈ ∩} w(t) / Σ_{t ∈ ∪} w(t) with w(t) = 1/log2(EF1·EF2+1). It walks
// the interned token IDs (ordered by token string) so nothing is
// re-materialized or re-hashed per pair.
func weightedJaccard(a, b *kb.Description, ef1, ef2 *stats.EFIndex) float64 {
	ta, tb := a.TokenIDs(), b.TokenIDs()
	d1, d2 := a.Dict(), b.Dict()
	weigh := func(dict *kb.Interner, id kb.TokenID, s string) float64 {
		return stats.TokenWeight(stats.EFOf(ef1, dict, id, s), stats.EFOf(ef2, dict, id, s))
	}
	var inter, union float64
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		sa, sb := d1.TokenString(ta[i]), d2.TokenString(tb[j])
		switch {
		case sa < sb:
			union += weigh(d1, ta[i], sa)
			i++
		case sa > sb:
			union += weigh(d2, tb[j], sb)
			j++
		default:
			w := weigh(d1, ta[i], sa)
			inter += w
			union += w
			i++
			j++
		}
	}
	for ; i < len(ta); i++ {
		union += weigh(d1, ta[i], d1.TokenString(ta[i]))
	}
	for ; j < len(tb); j++ {
		union += weigh(d2, tb[j], d2.TokenString(tb[j]))
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// FormatFigure2 renders the per-dataset summary of the similarity
// distribution (mean x / y per quadrant), plus a CSV-style sample that can
// be plotted directly.
func FormatFigure2(points []Figure2Point) string {
	var b strings.Builder
	type agg struct {
		n                  int
		sumV, sumN         float64
		strong, nearly     int
		withName, lowValue int
	}
	byDS := map[string]*agg{}
	var order []string
	for _, p := range points {
		a, ok := byDS[p.Dataset]
		if !ok {
			a = &agg{}
			byDS[p.Dataset] = a
			order = append(order, p.Dataset)
		}
		a.n++
		a.sumV += p.ValueSim
		a.sumN += p.NeighborSim
		if p.ValueSim < 0.2 {
			a.lowValue++
		}
		if p.HasName {
			a.withName++
		}
		switch p.Category {
		case "strong":
			a.strong++
		case "nearly":
			a.nearly++
		}
	}
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %10s %10s %10s\n",
		"Dataset", "matches", "meanValue", "meanNeigh", "lowValue%", "named%", "nearly%")
	for _, name := range order {
		a := byDS[name]
		fmt.Fprintf(&b, "%-18s %8d %10.3f %10.3f %10.1f %10.1f %10.1f\n",
			name, a.n, a.sumV/float64(a.n), a.sumN/float64(a.n),
			100*float64(a.lowValue)/float64(a.n),
			100*float64(a.withName)/float64(a.n),
			100*float64(a.nearly)/float64(a.n))
	}
	return b.String()
}

// Figure2CSV emits the full point series as CSV (dataset,valueSim,
// neighborSim,hasName,category) for external plotting.
func Figure2CSV(points []Figure2Point) string {
	var b strings.Builder
	b.WriteString("dataset,valueSim,neighborSim,hasName,category\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%t,%s\n", p.Dataset, p.ValueSim, p.NeighborSim, p.HasName, p.Category)
	}
	return b.String()
}

// Figure5Point is one point of the sensitivity analysis: the F1 of the full
// pipeline with one parameter varied and the rest at their defaults
// (k, K, N, θ) = (2, 15, 3, 0.6).
type Figure5Point struct {
	Dataset   string
	Parameter string
	Value     float64
	F1        float64
}

// Figure5Sweeps defines the swept values, matching the paper's ranges.
var Figure5Sweeps = map[string][]float64{
	"k":     {1, 2, 3, 4, 5},
	"K":     {5, 10, 15, 20, 25},
	"N":     {1, 2, 3, 4, 5},
	"theta": {0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
}

// Figure5 runs the sensitivity analysis of the four MinoanER parameters.
func (s *Suite) Figure5() ([]Figure5Point, error) {
	var points []Figure5Point
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		for _, param := range []string{"k", "K", "N", "theta"} {
			for _, v := range Figure5Sweeps[param] {
				cfg := core.DefaultConfig()
				cfg.Workers = s.opts.Workers
				switch param {
				case "k":
					cfg.NameK = int(v)
				case "K":
					cfg.TopK = int(v)
				case "N":
					cfg.RelN = int(v)
				case "theta":
					cfg.Theta = v
				}
				out, err := core.Resolve(d.K1, d.K2, cfg)
				if err != nil {
					return nil, err
				}
				m := eval.Evaluate(out.Pairs(), d.GT)
				points = append(points, Figure5Point{name, param, v, m.F1})
			}
		}
	}
	return points, nil
}

// FormatFigure5 renders the sensitivity series, one line per (dataset,
// parameter).
func FormatFigure5(points []Figure5Point) string {
	var b strings.Builder
	type key struct{ ds, param string }
	series := map[key][]Figure5Point{}
	var order []key
	for _, p := range points {
		k := key{p.Dataset, p.Parameter}
		if _, ok := series[k]; !ok {
			order = append(order, k)
		}
		series[k] = append(series[k], p)
	}
	for _, k := range order {
		fmt.Fprintf(&b, "%-18s %-6s", k.ds, k.param)
		for _, p := range series[k] {
			fmt.Fprintf(&b, "  %g:%.3f", p.Value, p.F1)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure6Point is one scalability measurement: wall-clock time and speedup
// of the pipeline at a given worker count, plus the share of time spent in
// the matching phase (§6.2 reports 20–45%).
type Figure6Point struct {
	Dataset       string
	Workers       int
	Seconds       float64
	Speedup       float64
	MatchingShare float64
	F1            float64
}

// Figure6Workers returns the swept worker counts: powers of two up to the
// machine's cores (the paper sweeps 1–72 cluster cores).
func Figure6Workers() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// Figure6 measures running time and speedup per worker count on every
// dataset. Results must be identical across worker counts (the determinism
// property); F1 is recorded to prove it.
func (s *Suite) Figure6() ([]Figure6Point, error) {
	var points []Figure6Point
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		var base float64
		for _, w := range Figure6Workers() {
			cfg := core.DefaultConfig()
			cfg.Workers = w
			start := time.Now()
			out, err := core.Resolve(d.K1, d.K2, cfg)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start).Seconds()
			if base == 0 {
				base = elapsed
			}
			m := eval.Evaluate(out.Pairs(), d.GT)
			share := 0.0
			if out.Timings.Total > 0 {
				share = float64(out.Timings.Matching) / float64(out.Timings.Total)
			}
			points = append(points, Figure6Point{
				Dataset: name, Workers: w, Seconds: elapsed,
				Speedup: base / elapsed, MatchingShare: share, F1: m.F1,
			})
		}
	}
	return points, nil
}

// FormatFigure6 renders the scalability series.
func FormatFigure6(points []Figure6Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %10s %9s %10s %7s\n",
		"Dataset", "workers", "time(s)", "speedup", "match%", "F1%")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18s %8d %10.3f %9.2f %10.1f %7.2f\n",
			p.Dataset, p.Workers, p.Seconds, p.Speedup, 100*p.MatchingShare, 100*p.F1)
	}
	return b.String()
}
