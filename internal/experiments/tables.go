package experiments

import (
	"fmt"
	"strings"

	"minoaner/internal/baselines"
	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// Table1 measures the dataset statistics of every suite dataset (paper
// Table 1).
func (s *Suite) Table1() ([]datagen.Table1Row, error) {
	var rows []datagen.Table1Row
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, d.Table1())
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows as fixed-width text.
func FormatTable1(rows []datagen.Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %9s %10s %10s %8s %8s %9s %7s %9s %7s %8s\n",
		"Dataset", "E1 ents", "E2 ents", "E1 trpl", "E2 trpl",
		"E1 tok", "E2 tok", "attrs", "rels", "types", "vocab", "matches")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9d %9d %10d %10d %8.2f %8.2f %4d/%-4d %3d/%-3d %5d/%-4d %3d/%-3d %8d\n",
			r.Dataset, r.E1Entities, r.E2Entities, r.E1Triples, r.E2Triples,
			r.E1AvgTokens, r.E2AvgTokens, r.E1Attrs, r.E2Attrs,
			r.E1Rels, r.E2Rels, r.E1Types, r.E2Types, r.E1Vocab, r.E2Vocab, r.Matches)
	}
	return b.String()
}

// Table2Row is one dataset's block statistics (paper Table 2).
type Table2Row struct {
	Dataset string
	blocking.Stats
}

// Table2 runs name + token blocking with purging on every dataset and
// reports |B_N|, |B_T|, ‖B_N‖, ‖B_T‖, the Cartesian baseline and blocking
// precision/recall/F1.
func (s *Suite) Table2() ([]Table2Row, error) {
	eng := parallel.New(s.opts.Workers)
	var rows []Table2Row
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		n1 := stats.NameAttributes(eng, d.K1, 2)
		n2 := stats.NameAttributes(eng, d.K2, 2)
		nameBlocks := blocking.NameBlocks(eng, d.K1, d.K2, n1, n2)
		tokenBlocks := blocking.TokenBlocks(eng, d.K1, d.K2)
		cap := int64(float64(d.K1.Len()) * float64(d.K2.Len()) * core.DefaultConfig().MaxBlockFraction)
		tokenBlocks, _ = blocking.PurgeAbove(tokenBlocks, cap)
		nl1 := stats.NewNameLookup(d.K1, n1)
		nameKeys := func(e1 kb.EntityID) []string {
			return nl1.Names(e1)
		}
		st := blocking.EvaluateBlocks(d.K1, d.K2, nameBlocks, tokenBlocks, d.GT, nameKeys)
		rows = append(rows, Table2Row{Dataset: name, Stats: st})
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %12s %14s %14s %10s %8s %8s\n",
		"Dataset", "|BN|", "|BT|", "||BN||", "||BT||", "|E1|x|E2|", "Prec%", "Recall%", "F1%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %8d %12d %14d %14d %10.4f %8.2f %8.4f\n",
			r.Dataset, r.NameBlocks, r.TokenBlocks, r.NameComparisons, r.TokenComparisons,
			r.Cartesian, 100*r.Precision, 100*r.Recall, 100*r.F1)
	}
	return b.String()
}

// Table3Row is one (dataset, system) evaluation (paper Table 3).
type Table3Row struct {
	Dataset string
	System  string
	Metrics eval.Metrics
	// Config annotates the winning configuration for BSL.
	Config string
}

// Table3Systems lists the systems compared, in the paper's order.
var Table3Systems = []string{"SiGMa", "LINDA-style", "RiMOM-IM-style", "PARIS", "BSL", "MinoanER"}

// Table3 compares MinoanER against all reimplemented baselines on every
// dataset.
func (s *Suite) Table3() ([]Table3Row, error) {
	eng := parallel.New(s.opts.Workers)
	var rows []Table3Row
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		tokenBlocks := blocking.TokenBlocks(eng, d.K1, d.K2)
		cap := int64(float64(d.K1.Len()) * float64(d.K2.Len()) * core.DefaultConfig().MaxBlockFraction)
		tokenBlocks, _ = blocking.PurgeAbove(tokenBlocks, cap)

		sig := baselines.SiGMa(eng, d.K1, d.K2, tokenBlocks, baselines.DefaultSiGMaConfig())
		rows = append(rows, Table3Row{name, "SiGMa", eval.Evaluate(sig, d.GT), ""})

		lin := baselines.SiGMa(eng, d.K1, d.K2, tokenBlocks, baselines.LINDAStyleConfig())
		rows = append(rows, Table3Row{name, "LINDA-style", eval.Evaluate(lin, d.GT), ""})

		rim := baselines.RiMOMIM(eng, d.K1, d.K2, baselines.DefaultRiMOMConfig())
		rows = append(rows, Table3Row{name, "RiMOM-IM-style", eval.Evaluate(rim, d.GT), ""})

		par := baselines.PARIS(d.K1, d.K2, baselines.DefaultPARISConfig())
		rows = append(rows, Table3Row{name, "PARIS", eval.Evaluate(par, d.GT), ""})

		cands := baselines.CandidatePairs(5_000_000, tokenBlocks)
		bsl := baselines.BSL(eng, d.K1, d.K2, cands, d.GT)
		rows = append(rows, Table3Row{name, "BSL", bsl.Best.Metrics, bsl.Best.Config.String()})

		cfg := core.DefaultConfig()
		cfg.Workers = s.opts.Workers
		out, err := core.Resolve(d.K1, d.K2, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{name, "MinoanER", eval.Evaluate(out.Pairs(), d.GT), ""})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 rows grouped by dataset.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-15s %8s %8s %8s  %s\n", "Dataset", "System", "Prec%", "Recall%", "F1%", "config")
	last := ""
	for _, r := range rows {
		if r.Dataset != last {
			if last != "" {
				b.WriteString("\n")
			}
			last = r.Dataset
		}
		fmt.Fprintf(&b, "%-18s %-15s %8.2f %8.2f %8.2f  %s\n",
			r.Dataset, r.System, 100*r.Metrics.Precision, 100*r.Metrics.Recall, 100*r.Metrics.F1, r.Config)
	}
	return b.String()
}

// Table4Row is one (dataset, configuration) rule evaluation (paper Table 4).
type Table4Row struct {
	Dataset string
	Setting string
	Metrics eval.Metrics
}

// Table4Settings lists the rule ablations, in the paper's order.
var Table4Settings = []string{"R1", "R2", "R3", "noR4", "NoNeighbors", "Full"}

// Table4 evaluates each matching rule alone, the pipeline without the
// reciprocity filter, and the pipeline without neighbor evidence.
func (s *Suite) Table4() ([]Table4Row, error) {
	configs := map[string]matching.Config{
		"R1":          {Theta: 0.6, EnableR1: true, UseNeighbors: true},
		"R2":          {Theta: 0.6, EnableR2: true, UseNeighbors: true},
		"R3":          {Theta: 0.6, EnableR3: true, UseNeighbors: true},
		"noR4":        {Theta: 0.6, EnableR1: true, EnableR2: true, EnableR3: true, UseNeighbors: true},
		"NoNeighbors": {Theta: 0.6, EnableR1: true, EnableR2: true, EnableR3: true, EnableR4: true, UseNeighbors: false},
		"Full":        matching.DefaultConfig(),
	}
	var rows []Table4Row
	for _, name := range s.Names() {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		for _, setting := range Table4Settings {
			mc := configs[setting]
			cfg := core.DefaultConfig()
			cfg.Workers = s.opts.Workers
			cfg.Rules = &mc
			out, err := core.Resolve(d.K1, d.K2, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{name, setting, eval.Evaluate(out.Pairs(), d.GT)})
		}
	}
	return rows, nil
}

// FormatTable4 renders Table 4 rows grouped by setting, mirroring the
// paper's layout (one block per rule).
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %8s %8s %8s\n", "Setting", "Dataset", "Prec%", "Recall%", "F1%")
	for _, setting := range Table4Settings {
		for _, r := range rows {
			if r.Setting != setting {
				continue
			}
			fmt.Fprintf(&b, "%-12s %-18s %8.2f %8.2f %8.2f\n",
				r.Setting, r.Dataset, 100*r.Metrics.Precision, 100*r.Metrics.Recall, 100*r.Metrics.F1)
		}
		b.WriteString("\n")
	}
	return b.String()
}
