package matching

import (
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// ScoredPair is a candidate correspondence with a similarity score, the
// input unit of Unique Mapping Clustering.
type ScoredPair struct {
	Pair  eval.Pair
	Score float64
}

// matchedSet is a dense bitset over EntityIDs — the "already matched"
// membership state of clean-clean clustering. IDs are dense and start at 0
// (the kb contract), so a word-packed bitset replaces the historical
// map[EntityID]bool with one allocation and no hashing per probe.
type matchedSet []uint64

func newMatchedSet(n kb.EntityID) matchedSet {
	return make(matchedSet, (int(n)+64)/64)
}

func (s matchedSet) has(id kb.EntityID) bool {
	return s[id>>6]&(1<<(uint(id)&63)) != 0
}

func (s matchedSet) set(id kb.EntityID) {
	s[id>>6] |= 1 << (uint(id) & 63)
}

// UniqueMappingClustering implements the clustering shared by SiGMa, LINDA,
// RiMOM-IM and MinoanER's baseline BSL (§5): all scored pairs enter a queue
// in decreasing similarity; at each step the top pair becomes a match if
// neither of its entities is already matched; the process stops when the
// top score drops below threshold.
//
// Ties are broken by (E1, E2) so results are deterministic.
func UniqueMappingClustering(pairs []ScoredPair, threshold float64) []eval.Pair {
	sorted := make([]ScoredPair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].Pair.E1 != sorted[j].Pair.E1 {
			return sorted[i].Pair.E1 < sorted[j].Pair.E1
		}
		return sorted[i].Pair.E2 < sorted[j].Pair.E2
	})
	var max1, max2 kb.EntityID
	for _, sp := range sorted {
		max1 = max(max1, sp.Pair.E1)
		max2 = max(max2, sp.Pair.E2)
	}
	matched1 := newMatchedSet(max1)
	matched2 := newMatchedSet(max2)
	var out []eval.Pair
	for _, sp := range sorted {
		if sp.Score < threshold {
			break
		}
		if matched1.has(sp.Pair.E1) || matched2.has(sp.Pair.E2) {
			continue
		}
		matched1.set(sp.Pair.E1)
		matched2.set(sp.Pair.E2)
		out = append(out, sp.Pair)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E1 != out[j].E1 {
			return out[i].E1 < out[j].E1
		}
		return out[i].E2 < out[j].E2
	})
	return out
}
