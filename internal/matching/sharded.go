package matching

import (
	"context"
	"fmt"

	"minoaner/internal/eval"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// GammaFor supplies the E1-side γ candidate rows of one contiguous entity
// shard on demand (graph.Gamma1Scope.BuildSpan behind a timing/accounting
// wrapper in the core pipeline). The returned slice must hold s.Len() rows,
// row i describing entity s.Lo+i. RunShardedCtx calls it exactly once per
// shard, in shard order, and drops the rows before requesting the next
// shard — that single-shard lifetime is what bounds the matcher's memory.
type GammaFor func(ctx context.Context, s parallel.Span) ([][]graph.Edge, error)

// RunShardedCtx executes Algorithm 2 over a graph built by
// graph.BuildShardedCtx, whose Gamma1 lists are not materialized: the γ rows
// of each E1 shard are pulled from gammaFor when rule R3 reaches the shard
// and released right after the shard's rank-aggregation picks and R4
// reciprocity evidence have been extracted.
//
// shards must be the same partition of [0, k1.Len()) into contiguous
// ascending spans that built the graph. The rule structure keeps the output
// byte-identical to RunCtx on the equivalent monolithic graph for EVERY
// shard plan: R1 and R2 are global passes exactly as in RunCtx; R3 takes its
// E2-side pick snapshot before any R3 commit and then processes E1 entities
// in ascending order (shards are ascending, commits inside a shard are
// ascending); R4 evaluates the same reciprocity predicate, with the γ
// membership bit captured while the shard's rows were live.
func RunShardedCtx(ctx context.Context, e *parallel.Engine, g *graph.Graph, k1, k2 *kb.KB, cfg Config, shards []parallel.Span, gammaFor GammaFor) (*Result, error) {
	m := &matcher{
		g: g, k1: k1, k2: k2, cfg: cfg, eng: e.Chunked(),
		matched1: make([]bool, k1.Len()),
		matched2: make([]bool, k2.Len()),
	}
	if cfg.EnableR1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.runR1()
	}
	if cfg.EnableR2 {
		if err := m.runR2(ctx); err != nil {
			return nil, err
		}
	}
	var pick2 []pick
	if cfg.EnableR3 {
		var err error
		if pick2, err = m.pick2All(ctx); err != nil {
			return nil, err
		}
	}
	// gammaHas[idx] records, for match idx, whether the directed γ edge
	// E1→E2 exists — evaluated while the γ rows of the match's shard are
	// live, standing in for the Gamma1 leg of HasDirectedEdge1.
	var gammaHas []bool
	for _, s := range shards {
		rows, err := gammaFor(ctx, s)
		if err != nil {
			return nil, err
		}
		if len(rows) != s.Len() {
			return nil, fmt.Errorf("matching: gammaFor returned %d rows for shard [%d,%d)", len(rows), s.Lo, s.Hi)
		}
		if cfg.EnableR3 {
			picks, err := parallel.MapLocalCtx(ctx, m.eng, s.Len(), newAggBoard,
				func(sb *aggBoard, i int) (pick, error) {
					return m.pick1At(sb, s.Lo+i, rows[i]), nil
				})
			if err != nil {
				return nil, err
			}
			for i, p := range picks {
				if p.to == kb.NoEntity {
					continue
				}
				if back := pick2[p.to]; back.to == kb.EntityID(s.Lo+i) {
					m.commit(eval.Pair{E1: kb.EntityID(s.Lo + i), E2: p.to}, RuleRank)
				}
			}
		}
		if cfg.EnableR4 {
			// Every match whose E1 endpoint lies in this shard — including
			// R1/R2 matches committed before the shard loop and R3 matches
			// committed just above — gets its γ membership bit now.
			for len(gammaHas) < len(m.matches) {
				gammaHas = append(gammaHas, false)
			}
			for idx := range m.matches {
				p := m.matches[idx].Pair
				if int(p.E1) >= s.Lo && int(p.E1) < s.Hi {
					gammaHas[idx] = graph.EdgeListContains(rows[int(p.E1)-s.Lo], p.E2)
				}
			}
		}
	}
	res := &Result{}
	if cfg.EnableR4 {
		for len(gammaHas) < len(m.matches) {
			gammaHas = append(gammaHas, false)
		}
		kept := m.matches[:0]
		for idx, match := range m.matches {
			p := match.Pair
			if (m.g.HasDirectedEdge1NoGamma(p.E1, p.E2) || gammaHas[idx]) && m.g.HasDirectedEdge2(p.E2, p.E1) {
				kept = append(kept, match)
			} else {
				res.RemovedByR4++
			}
		}
		m.matches = kept
	}
	sortMatches(m.matches)
	res.Matches = m.matches
	return res, nil
}
