package matching

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"minoaner/internal/graph"
	"minoaner/internal/kb"
)

// randomRow builds a pruned-looking candidate row: distinct IDs, sorted by
// decreasing weight with ties toward the lower ID (the invariant β/γ rows
// hold).
func randomRow(r *rand.Rand, maxLen, idSpace int) []graph.Edge {
	n := r.Intn(maxLen + 1)
	seen := map[kb.EntityID]bool{}
	var row []graph.Edge
	for len(row) < n {
		id := kb.EntityID(r.Intn(idSpace))
		if seen[id] {
			continue
		}
		seen[id] = true
		row = append(row, graph.Edge{To: id, Weight: 0.1 + r.Float64()*3})
	}
	sort.Slice(row, func(i, j int) bool {
		if row[i].Weight != row[j].Weight {
			return row[i].Weight > row[j].Weight
		}
		return row[i].To < row[j].To
	})
	return row
}

// RankAggregateRow's element 0 must be the exact pick of the batch
// aggregate (scoreboard and map reference alike), and the full ranking must
// cover every candidate of both rows in fused-score order, across reuses of
// one scratch.
func TestRankAggregateRowMatchesAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	sc := NewAggScratch()
	for trial := 0; trial < 300; trial++ {
		theta := 0.1 + r.Float64()*0.8
		useNgb := trial%3 != 0
		m := &matcher{cfg: Config{Theta: theta, UseNeighbors: useNgb}}
		val := randomRow(r, 8, 30)
		ngb := randomRow(r, 8, 30)

		ranking := RankAggregateRow(sc, val, ngb, theta, useNgb)
		wantTo, wantScore := m.aggregate(newAggBoard(), val, ngb)
		mapTo, mapScore := m.aggregateMap(val, ngb)
		gotTo, gotScore := BestOf(ranking)
		if gotTo != wantTo || gotScore != wantScore {
			t.Fatalf("trial %d: BestOf = (%d, %v), aggregate = (%d, %v)", trial, gotTo, gotScore, wantTo, wantScore)
		}
		if gotTo != mapTo || gotScore != mapScore {
			t.Fatalf("trial %d: BestOf = (%d, %v), aggregateMap = (%d, %v)", trial, gotTo, gotScore, mapTo, mapScore)
		}

		// Reference fused scores, candidate for candidate.
		ref := map[kb.EntityID]float64{}
		n := len(val)
		for idx, e := range val {
			ref[e.To] += theta * float64(n-idx) / float64(n)
		}
		if useNgb {
			n = len(ngb)
			for idx, e := range ngb {
				ref[e.To] += (1 - theta) * float64(n-idx) / float64(n)
			}
		}
		if len(ranking) != len(ref) {
			t.Fatalf("trial %d: ranking has %d candidates, want %d", trial, len(ranking), len(ref))
		}
		for i, e := range ranking {
			if ref[e.To] != e.Weight {
				t.Fatalf("trial %d: candidate %d fused score = %v, want %v", trial, e.To, e.Weight, ref[e.To])
			}
			if i > 0 {
				prev := ranking[i-1]
				if prev.Weight < e.Weight || (prev.Weight == e.Weight && prev.To >= e.To) {
					t.Fatalf("trial %d: ranking out of order at %d: %v then %v", trial, i, prev, e)
				}
			}
		}
	}
}

func TestRankAggregateRowEmpty(t *testing.T) {
	sc := NewAggScratch()
	if got := RankAggregateRow(sc, nil, nil, 0.6, true); got != nil {
		t.Fatalf("empty rows → %v, want nil", got)
	}
	if got := RankAggregateRow(sc, nil, []graph.Edge{{To: 3, Weight: 1}}, 0.6, false); got != nil {
		t.Fatalf("neighbors disabled with only a γ row → %v, want nil", got)
	}
	if to, s := BestOf(nil); to != kb.NoEntity || s != 0 {
		t.Fatalf("BestOf(nil) = (%d, %v)", to, s)
	}
}

// One reused scratch must not leak scores between calls — reflect.DeepEqual
// of back-to-back runs on identical inputs catches a missing reset.
func TestRankAggregateRowScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	val := randomRow(r, 6, 20)
	ngb := randomRow(r, 6, 20)
	sc := NewAggScratch()
	first := RankAggregateRow(sc, val, ngb, 0.6, true)
	for i := 0; i < 5; i++ {
		if got := RankAggregateRow(sc, val, ngb, 0.6, true); !reflect.DeepEqual(got, first) {
			t.Fatalf("reuse %d drifted: %v vs %v", i, got, first)
		}
	}
}
