// Package matching implements MinoanER's non-iterative matching process
// (§4, Algorithm 2): four generic, schema-agnostic rules applied in a fixed
// order over the pruned disjunctive blocking graph —
//
//	R1  Name rule: candidates sharing a globally unique name match.
//	R2  Value rule: the top value candidate matches when valueSim ≥ 1.
//	R3  Rank aggregation: threshold-free fusion of the value- and
//	    neighbor-ranked candidate lists with trade-off θ.
//	R4  Reciprocity: a match survives only if both directed edges exist.
//
// i.e. M = (R1 ∨ R2 ∨ R3) ∧ R4 (Def. 4.1). Clean-clean semantics are
// enforced as in the paper: entities matched by an earlier rule are not
// examined again, and the final assignment is one-to-one (the Unique
// Mapping Clustering the paper shares with SiGMa/LINDA/RiMOM-IM).
package matching

import (
	"context"
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
)

// Rule identifies which matching rule produced a match (Table 4 attribution).
type Rule uint8

// The four matching rules of Algorithm 2.
const (
	RuleNone  Rule = iota
	RuleName       // R1
	RuleValue      // R2
	RuleRank       // R3
)

// String returns the paper's rule label.
func (r Rule) String() string {
	switch r {
	case RuleName:
		return "R1"
	case RuleValue:
		return "R2"
	case RuleRank:
		return "R3"
	default:
		return "none"
	}
}

// Config controls Algorithm 2. The zero value disables everything; use
// DefaultConfig for the paper's configuration.
type Config struct {
	// Theta is the trade-off θ ∈ (0,1) between value-based ranks (weight θ)
	// and neighbor-based ranks (weight 1−θ) in R3. Paper default: 0.6.
	Theta float64
	// EnableR1..EnableR4 toggle individual rules (Table 4 ablations).
	EnableR1, EnableR2, EnableR3, EnableR4 bool
	// UseNeighbors controls whether R3 consumes the γ candidate lists.
	// Disabling it reproduces the paper's "No Neighbors" ablation.
	UseNeighbors bool
}

// DefaultConfig returns the paper's suggested global configuration (§6.1).
func DefaultConfig() Config {
	return Config{
		Theta:    0.6,
		EnableR1: true, EnableR2: true, EnableR3: true, EnableR4: true,
		UseNeighbors: true,
	}
}

// Match is one detected correspondence with its provenance.
type Match struct {
	Pair eval.Pair
	Rule Rule
}

// Result is the output of the matching process.
type Result struct {
	// Matches holds the surviving matches sorted by (E1, E2).
	Matches []Match
	// RemovedByR4 counts matches suggested by R1–R3 but discarded by the
	// reciprocity filter.
	RemovedByR4 int
}

// Pairs extracts the bare pairs of the result.
func (r *Result) Pairs() []eval.Pair {
	out := make([]eval.Pair, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.Pair
	}
	return out
}

// matcher carries the mutable state of one Algorithm 2 run.
type matcher struct {
	g        *graph.Graph
	k1, k2   *kb.KB
	cfg      Config
	eng      *parallel.Engine
	matched1 []bool
	matched2 []bool
	matches  []Match
}

// RunCtx executes Algorithm 2 on the pruned disjunctive blocking graph.
// Candidate evaluation in R2/R3 is skewed per entity, so those passes use
// the dynamic chunked scheduler; cancellation is observed between rules and
// between chunks within a rule.
func RunCtx(ctx context.Context, e *parallel.Engine, g *graph.Graph, k1, k2 *kb.KB, cfg Config) (*Result, error) {
	m := &matcher{
		g: g, k1: k1, k2: k2, cfg: cfg, eng: e.Chunked(),
		matched1: make([]bool, k1.Len()),
		matched2: make([]bool, k2.Len()),
	}
	if cfg.EnableR1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.runR1()
	}
	if cfg.EnableR2 {
		if err := m.runR2(ctx); err != nil {
			return nil, err
		}
	}
	if cfg.EnableR3 {
		if err := m.runR3(ctx); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	if cfg.EnableR4 {
		kept := m.matches[:0]
		for _, match := range m.matches {
			if m.reciprocal(match.Pair) {
				kept = append(kept, match)
			} else {
				res.RemovedByR4++
			}
		}
		m.matches = kept
	}
	sortMatches(m.matches)
	res.Matches = m.matches
	return res, nil
}

// sortMatches orders matches by (E1, E2) — the canonical output order shared
// by the monolithic and sharded runners.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Pair, ms[j].Pair
		if a.E1 != b.E1 {
			return a.E1 < b.E1
		}
		return a.E2 < b.E2
	})
}

// Run is RunCtx without cancellation.
func Run(e *parallel.Engine, g *graph.Graph, k1, k2 *kb.KB, cfg Config) *Result {
	res, _ := RunCtx(context.Background(), e, g, k1, k2, cfg)
	return res
}

// commit records a match if both endpoints are still free, preserving the
// clean-clean one-to-one invariant.
func (m *matcher) commit(p eval.Pair, rule Rule) bool {
	if m.matched1[p.E1] || m.matched2[p.E2] {
		return false
	}
	m.matched1[p.E1] = true
	m.matched2[p.E2] = true
	m.matches = append(m.matches, Match{Pair: p, Rule: rule})
	return true
}

// runR1 applies the Name Matching Rule (Algorithm 2, lines 2–4): every α=1
// edge becomes a match. Edges are visited in entity order for determinism.
func (m *matcher) runR1() {
	for i := range m.g.Alpha1 {
		for _, j := range m.g.Alpha1[i] {
			m.commit(eval.Pair{E1: kb.EntityID(i), E2: j}, RuleName)
		}
	}
}

// runR2 applies the Value Matching Rule (lines 5–9): for every unmatched
// entity of the smaller KB, take its top value candidate and accept it when
// β ≥ 1 — i.e. the pair shares one globally unique token, or several
// infrequent ones. Candidate evaluation is parallel; commits are sequential
// in entity order.
func (m *matcher) runR2(ctx context.Context) error {
	if m.k1.Len() <= m.k2.Len() {
		tops, err := parallel.MapCtx(ctx, m.eng, m.k1.Len(), func(i int) (graph.Edge, error) {
			if m.matched1[i] || len(m.g.Beta1[i]) == 0 {
				return graph.Edge{To: kb.NoEntity}, nil
			}
			return m.g.Beta1[i][0], nil
		})
		if err != nil {
			return err
		}
		for i, top := range tops {
			if top.To != kb.NoEntity && top.Weight >= 1 {
				m.commit(eval.Pair{E1: kb.EntityID(i), E2: top.To}, RuleValue)
			}
		}
		return nil
	}
	tops, err := parallel.MapCtx(ctx, m.eng, m.k2.Len(), func(j int) (graph.Edge, error) {
		if m.matched2[j] || len(m.g.Beta2[j]) == 0 {
			return graph.Edge{To: kb.NoEntity}, nil
		}
		return m.g.Beta2[j][0], nil
	})
	if err != nil {
		return err
	}
	for j, top := range tops {
		if top.To != kb.NoEntity && top.Weight >= 1 {
			m.commit(eval.Pair{E1: top.To, E2: kb.EntityID(j)}, RuleValue)
		}
	}
	return nil
}

// runR3 applies the Rank Aggregation Matching Rule (lines 10–23) to every
// remaining unmatched node of both KBs: each candidate scores
// θ·rank/|valCands| from the β list plus (1−θ)·rank/|ngbCands| from the γ
// list. A pair is matched when each side is the other's top aggregate
// candidate — the mutual-best reading of "there is no better candidate for
// ei than ej" combined with the paper's clean-clean Unique Mapping
// semantics. This interpretation is what reproduces the reported precision
// (Tables 3–4: R3 alone reaches 81–99% precision even though most entities
// of the larger KB have no true match; a single-sided top-candidate rule
// would match every such entity to noise). It also explains why the paper
// measures only marginal gains from R4: mutual agreement already implies
// reciprocal edges in almost all cases.
//
// Aggregation is parallel per node with one reusable bounded scoreboard per
// worker (the worker-local-scratch discipline of the β/γ passes); commits
// are sequential in entity order.
func (m *matcher) runR3(ctx context.Context) error {
	pick1, err := parallel.MapLocalCtx(ctx, m.eng, m.k1.Len(), newAggBoard,
		func(sb *aggBoard, i int) (pick, error) {
			return m.pick1At(sb, i, m.g.Gamma1[i]), nil
		})
	if err != nil {
		return err
	}
	pick2, err := m.pick2All(ctx)
	if err != nil {
		return err
	}
	for i, p := range pick1 {
		if p.to == kb.NoEntity {
			continue
		}
		if back := pick2[p.to]; back.to == kb.EntityID(i) {
			m.commit(eval.Pair{E1: kb.EntityID(i), E2: p.to}, RuleRank)
		}
	}
	return nil
}

// pick is one node's top aggregate candidate under R3 (NoEntity if the node
// is already matched or has no candidates).
type pick struct {
	to    kb.EntityID
	score float64
}

// aggBoard is the R3 worker scratch: a bounded sparse scoreboard over one
// node's fused candidates. Unlike β/γ — where an entity can touch
// unboundedly many candidates and the graph package uses dense per-worker
// arrays — R3's inputs are candidate rows already pruned to at most K each,
// so a linear list of ≤ 2K entries gives the same zero-allocation
// accumulation at O(K) memory per worker instead of O(|KB|).
type aggBoard struct {
	cands []graph.Edge // To = candidate, Weight = fused score so far
}

func newAggBoard() *aggBoard { return &aggBoard{cands: make([]graph.Edge, 0, 32)} }

// add accumulates a rank contribution onto a candidate (linear probe over
// the ≤ 2K live entries).
func (b *aggBoard) add(to kb.EntityID, w float64) {
	for i := range b.cands {
		if b.cands[i].To == to {
			b.cands[i].Weight += w
			return
		}
	}
	b.cands = append(b.cands, graph.Edge{To: to, Weight: w})
}

// best returns the candidate with the highest fused score, ties toward the
// lower entity ID — deterministic in any accumulation order, like the
// historical map scan. (kb.NoEntity, 0) when empty.
func (b *aggBoard) best() (kb.EntityID, float64) {
	if len(b.cands) == 0 {
		return kb.NoEntity, 0
	}
	best := kb.NoEntity
	bestScore := -1.0
	for _, c := range b.cands {
		if c.Weight > bestScore || (c.Weight == bestScore && c.To < best) {
			best, bestScore = c.To, c.Weight
		}
	}
	return best, bestScore
}

func (b *aggBoard) reset() { b.cands = b.cands[:0] }

// pick1At computes the R3 pick of E1 node i with an explicitly supplied γ
// candidate row — Gamma1[i] in the monolithic run, the shard-local row in
// the sharded run — accumulating on the caller's board.
func (m *matcher) pick1At(sb *aggBoard, i int, ngb []graph.Edge) pick {
	if m.matched1[i] {
		return pick{to: kb.NoEntity}
	}
	to, score := m.aggregate(sb, m.g.Beta1[i], ngb)
	return pick{to, score}
}

// pick2All computes the R3 picks of every E2 node against the post-R2
// matched state. Both the monolithic and the sharded matcher take this exact
// snapshot before any R3 commit.
func (m *matcher) pick2All(ctx context.Context) ([]pick, error) {
	return parallel.MapLocalCtx(ctx, m.eng, m.k2.Len(), newAggBoard,
		func(sb *aggBoard, j int) (pick, error) {
			if m.matched2[j] {
				return pick{to: kb.NoEntity}, nil
			}
			to, score := m.aggregate(sb, m.g.Beta2[j], m.g.Gamma2[j])
			return pick{to, score}, nil
		})
}

// aggregate fuses the two ranked candidate lists of one node on the given
// board and returns the top candidate with its aggregate score (NoEntity if
// the node has no candidates). Ties break toward the lower entity ID; the
// board is reset before returning. Per-candidate additions follow the same
// value-then-neighbor order as the historical map accumulation, so the
// fused float scores are bit-identical.
func (m *matcher) aggregate(sb *aggBoard, valCands, ngbCands []graph.Edge) (kb.EntityID, float64) {
	if !m.cfg.UseNeighbors {
		ngbCands = nil
	}
	if len(valCands) == 0 && len(ngbCands) == 0 {
		return kb.NoEntity, 0
	}
	n := len(valCands)
	for idx, e := range valCands {
		rank := n - idx // first candidate gets rank n → score n/n
		sb.add(e.To, m.cfg.Theta*float64(rank)/float64(n))
	}
	n = len(ngbCands)
	for idx, e := range ngbCands {
		rank := n - idx
		sb.add(e.To, (1-m.cfg.Theta)*float64(rank)/float64(n))
	}
	best, bestScore := sb.best()
	sb.reset()
	return best, bestScore
}

// aggregateMap is the retained map-based reference implementation of
// aggregate, the pin of the scoreboard property test.
func (m *matcher) aggregateMap(valCands, ngbCands []graph.Edge) (kb.EntityID, float64) {
	if !m.cfg.UseNeighbors {
		ngbCands = nil
	}
	if len(valCands) == 0 && len(ngbCands) == 0 {
		return kb.NoEntity, 0
	}
	agg := make(map[kb.EntityID]float64, len(valCands)+len(ngbCands))
	n := len(valCands)
	for idx, e := range valCands {
		rank := n - idx
		agg[e.To] += m.cfg.Theta * float64(rank) / float64(n)
	}
	n = len(ngbCands)
	for idx, e := range ngbCands {
		rank := n - idx
		agg[e.To] += (1 - m.cfg.Theta) * float64(rank) / float64(n)
	}
	best := kb.NoEntity
	bestScore := -1.0
	for to, s := range agg {
		if s > bestScore || (s == bestScore && to < best) {
			best, bestScore = to, s
		}
	}
	return best, bestScore
}

// reciprocal implements R4 (lines 24–26): both directed edges must exist in
// the pruned graph.
func (m *matcher) reciprocal(p eval.Pair) bool {
	return m.g.HasDirectedEdge1(p.E1, p.E2) && m.g.HasDirectedEdge2(p.E2, p.E1)
}
