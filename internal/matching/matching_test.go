package matching

import (
	"math/rand"
	"reflect"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/parallel"
	"minoaner/internal/testkb"
)

var seq = parallel.Sequential()

func figure1Run(t *testing.T, e *parallel.Engine, cfg Config) (*kb.KB, *kb.KB, *Result) {
	t.Helper()
	w, d := testkb.Figure1()
	in := graph.InputFor(e, w, d, 2, 5, 2)
	g := graph.Build(e, in)
	return w, d, Run(e, g, w, d, cfg)
}

func pairURIs(w, d *kb.KB, res *Result) map[[2]string]Rule {
	out := map[[2]string]Rule{}
	for _, m := range res.Matches {
		out[[2]string{w.Entity(m.Pair.E1).URI, d.Entity(m.Pair.E2).URI}] = m.Rule
	}
	return out
}

func TestFullPipelineFindsFigure1Matches(t *testing.T) {
	w, d, res := figure1Run(t, seq, DefaultConfig())
	got := pairURIs(w, d, res)
	// The chefs share a unique name → R1.
	if r, ok := got[[2]string{"w:JohnLakeA", "d:JonnyLake"}]; !ok || r != RuleName {
		t.Errorf("chefs: got %v (rule %v), want R1 match; all: %v", ok, r, got)
	}
	// The restaurants share "The Fat Duck" tokens (strong value evidence) or
	// are found via neighbors.
	if _, ok := got[[2]string{"w:Restaurant1", "d:Restaurant2"}]; !ok {
		t.Errorf("restaurants not matched; matches: %v", got)
	}
	// Bray–Berkshire (nearly similar, shared infrequent tokens).
	if _, ok := got[[2]string{"w:Bray", "d:Berkshire"}]; !ok {
		t.Logf("note: Bray–Berkshire not matched (acceptable, nearly-similar): %v", got)
	}
}

func TestR1Alone(t *testing.T) {
	cfg := Config{Theta: 0.6, EnableR1: true, UseNeighbors: true}
	w, d, res := figure1Run(t, seq, cfg)
	got := pairURIs(w, d, res)
	if len(got) != 1 {
		t.Fatalf("R1 alone found %d matches, want exactly the chefs: %v", len(got), got)
	}
	if _, ok := got[[2]string{"w:JohnLakeA", "d:JonnyLake"}]; !ok {
		t.Errorf("R1 alone must find the chefs: %v", got)
	}
	for _, m := range res.Matches {
		if m.Rule != RuleName {
			t.Errorf("R1-only run produced rule %v", m.Rule)
		}
	}
}

func TestR2Alone(t *testing.T) {
	cfg := Config{Theta: 0.6, EnableR2: true, UseNeighbors: true}
	w, d, res := figure1Run(t, seq, cfg)
	got := pairURIs(w, d, res)
	// Restaurants share the infrequent tokens "the fat duck" → β ≥ 1 → R2.
	if r, ok := got[[2]string{"w:Restaurant1", "d:Restaurant2"}]; !ok || r != RuleValue {
		t.Errorf("R2 alone: restaurants = (%v, %v), want R2 match; all: %v", ok, r, got)
	}
}

func TestR3AloneMatchesEverything(t *testing.T) {
	cfg := Config{Theta: 0.6, EnableR3: true, UseNeighbors: true}
	_, _, res := figure1Run(t, seq, cfg)
	// R3 matches every node to its best candidate — high recall, lower
	// precision. All four Wikidata entities have some candidate.
	if len(res.Matches) < 3 {
		t.Errorf("R3 alone found %d matches, want ≥ 3", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Rule != RuleRank {
			t.Errorf("rule = %v, want R3", m.Rule)
		}
	}
}

func TestR4FiltersNonReciprocal(t *testing.T) {
	// Build a graph by hand: E1 node 0 has a β-edge to E2 node 0, but E2
	// node 0's only retained edge points elsewhere → not reciprocal.
	g := &graph.Graph{
		Alpha1: make([][]kb.EntityID, 2),
		Alpha2: make([][]kb.EntityID, 2),
		Beta1:  [][]graph.Edge{{{To: 0, Weight: 2.0}}, nil},
		Beta2:  [][]graph.Edge{{{To: 1, Weight: 2.0}}, nil},
		Gamma1: make([][]graph.Edge, 2),
		Gamma2: make([][]graph.Edge, 2),
	}
	k1 := twoEntityKB("A")
	k2 := twoEntityKB("B")
	with := Run(seq, g, k1, k2, Config{Theta: 0.6, EnableR2: true, EnableR4: true, UseNeighbors: true})
	if len(with.Matches) != 0 || with.RemovedByR4 != 1 {
		t.Errorf("R4 should remove the non-reciprocal match: %+v", with)
	}
	without := Run(seq, g, k1, k2, Config{Theta: 0.6, EnableR2: true, UseNeighbors: true})
	if len(without.Matches) != 1 {
		t.Errorf("without R4 the match should survive: %+v", without)
	}
}

func twoEntityKB(name string) *kb.KB {
	b := kb.NewBuilder(name)
	e0 := b.AddEntity(name + "0")
	e1 := b.AddEntity(name + "1")
	b.AddLiteral(e0, "label", "x")
	b.AddLiteral(e1, "label", "y")
	return b.Build()
}

func TestOneToOneInvariant(t *testing.T) {
	_, _, res := figure1Run(t, seq, DefaultConfig())
	seen1 := map[kb.EntityID]bool{}
	seen2 := map[kb.EntityID]bool{}
	for _, m := range res.Matches {
		if seen1[m.Pair.E1] || seen2[m.Pair.E2] {
			t.Fatalf("entity matched twice: %+v", m)
		}
		seen1[m.Pair.E1] = true
		seen2[m.Pair.E2] = true
	}
}

func TestMatchingParallelDeterminism(t *testing.T) {
	_, _, ref := figure1Run(t, seq, DefaultConfig())
	for _, workers := range []int{2, 4, 8} {
		_, _, got := figure1Run(t, parallel.New(workers), DefaultConfig())
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("matching differs with %d workers", workers)
		}
	}
}

func TestNoNeighborsAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseNeighbors = false
	_, _, res := figure1Run(t, seq, cfg)
	// Still produces matches from names and values.
	if len(res.Matches) == 0 {
		t.Error("no-neighbors run produced nothing")
	}
}

func TestR2ScansSmallerKB(t *testing.T) {
	// k2 smaller than k1: R2 must iterate E2 side (Beta2).
	b1 := kb.NewBuilder("big")
	for _, u := range []string{"a", "b", "c"} {
		id := b1.AddEntity(u)
		b1.AddLiteral(id, "label", "token-"+u)
	}
	k1 := b1.Build()
	b2 := kb.NewBuilder("small")
	x := b2.AddEntity("x")
	b2.AddLiteral(x, "label", "token-a")
	k2 := b2.Build()
	g := graph.Build(seq, graph.InputFor(seq, k1, k2, 1, 5, 2))
	res := Run(seq, g, k1, k2, Config{Theta: 0.6, EnableR2: true, UseNeighbors: true})
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want a–x", res.Matches)
	}
	if k1.Entity(res.Matches[0].Pair.E1).URI != "a" {
		t.Errorf("matched %v, want a–x", res.Matches[0])
	}
}

func TestRuleString(t *testing.T) {
	if RuleName.String() != "R1" || RuleValue.String() != "R2" ||
		RuleRank.String() != "R3" || RuleNone.String() != "none" {
		t.Error("Rule.String labels wrong")
	}
}

func TestResultPairs(t *testing.T) {
	r := &Result{Matches: []Match{{Pair: eval.Pair{E1: 1, E2: 2}, Rule: RuleName}}}
	if got := r.Pairs(); len(got) != 1 || got[0] != (eval.Pair{E1: 1, E2: 2}) {
		t.Errorf("Pairs = %v", got)
	}
}

func TestAggregateRanks(t *testing.T) {
	m := &matcher{cfg: Config{Theta: 0.6, UseNeighbors: true}}
	sb := newAggBoard()
	val := []graph.Edge{{To: 10, Weight: 5}, {To: 11, Weight: 3}}
	ngb := []graph.Edge{{To: 11, Weight: 9}, {To: 10, Weight: 1}}
	// Scores: 10 → .6·(2/2) + .4·(1/2) = 0.8; 11 → .6·(1/2) + .4·(2/2) = 0.7.
	to, score := m.aggregate(sb, val, ngb)
	if to != 10 {
		t.Fatalf("aggregate picked %d (score %v), want 10", to, score)
	}
	if score != 0.8 {
		t.Errorf("score = %v, want 0.8", score)
	}
	// θ < 0.5 promotes neighbor evidence → 11 wins.
	m.cfg.Theta = 0.3
	to, _ = m.aggregate(sb, val, ngb)
	if to != 11 {
		t.Errorf("θ=0.3 picked %d, want 11", to)
	}
	// Empty lists → NoEntity.
	if to, _ := m.aggregate(sb, nil, nil); to != kb.NoEntity {
		t.Error("aggregate(nil,nil) must return NoEntity")
	}
	// Neighbors disabled → only value list counts.
	m.cfg.UseNeighbors = false
	to, _ = m.aggregate(sb, val, ngb)
	if to != 10 {
		t.Errorf("no-neighbors aggregate picked %d, want 10", to)
	}
}

// The scoreboard aggregate must reproduce the retained map-based reference
// — same pick, same score — on randomized candidate lists with overlapping
// value/neighbor candidates and tied ranks, across reuse of one board.
func TestAggregateScoreboardMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m := &matcher{cfg: Config{Theta: 0.6, UseNeighbors: true}}
	sb := newAggBoard()
	for trial := 0; trial < 500; trial++ {
		var val, ngb []graph.Edge
		seen := map[kb.EntityID]bool{}
		for c := r.Intn(6); c > 0; c-- {
			to := kb.EntityID(r.Intn(50))
			if seen[to] {
				continue
			}
			seen[to] = true
			val = append(val, graph.Edge{To: to, Weight: float64(c)})
		}
		seen = map[kb.EntityID]bool{}
		for c := r.Intn(6); c > 0; c-- {
			to := kb.EntityID(r.Intn(50))
			if seen[to] {
				continue
			}
			seen[to] = true
			ngb = append(ngb, graph.Edge{To: to, Weight: float64(c)})
		}
		if trial%3 == 0 {
			m.cfg.UseNeighbors = false
		} else {
			m.cfg.UseNeighbors = true
		}
		wantTo, wantScore := m.aggregateMap(val, ngb)
		gotTo, gotScore := m.aggregate(sb, val, ngb)
		if gotTo != wantTo || gotScore != wantScore {
			t.Fatalf("trial %d: aggregate = (%d, %v), reference = (%d, %v)",
				trial, gotTo, gotScore, wantTo, wantScore)
		}
		if len(sb.cands) != 0 {
			t.Fatalf("trial %d: aggregate left the board dirty (%d touched)", trial, len(sb.cands))
		}
	}
}
