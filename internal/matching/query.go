// The per-entity query form of rule R3: fuse one node's β and γ candidate
// rows into a full ranked list instead of just the single best pick the
// batch matcher commits. The substrate query path uses it to return scored
// candidates for one new description; element 0 of the ranking is exactly
// the pick the batch aggregate() would have made, which is what the
// query/batch equivalence tests pin.
package matching

import (
	"cmp"
	"slices"

	"minoaner/internal/graph"
	"minoaner/internal/kb"
)

// AggScratch is the per-query rank-aggregation scratch — the same bounded
// sparse board an R3 worker holds (≤ 2K live entries), owned by one
// in-flight query. Not safe for concurrent use; concurrent queries each
// take their own.
type AggScratch struct {
	b *aggBoard
}

// NewAggScratch returns fresh aggregation scratch.
func NewAggScratch() *AggScratch { return &AggScratch{b: newAggBoard()} }

// RankAggregateRow fuses the two pruned candidate rows of one node — β
// (value evidence) and γ (neighbor evidence) — into the full ranking R3
// scores candidates by: θ·rank/|valCands| + (1−θ)·rank/|ngbCands|, sorted
// by decreasing fused score with ties toward the lower entity ID. When
// useNeighbors is false the γ row is ignored (the "No Neighbors" ablation).
// Per-candidate additions follow the same value-then-neighbor order as the
// batch aggregate, so the fused floats are bit-identical and element 0 of
// the result IS the batch pick (same tie-break). Returns nil when both rows
// are empty; the scratch is reset before returning.
func RankAggregateRow(sb *AggScratch, valCands, ngbCands []graph.Edge, theta float64, useNeighbors bool) []graph.Edge {
	if !useNeighbors {
		ngbCands = nil
	}
	if len(valCands) == 0 && len(ngbCands) == 0 {
		return nil
	}
	b := sb.b
	n := len(valCands)
	for idx, e := range valCands {
		rank := n - idx // first candidate gets rank n → score n/n
		b.add(e.To, theta*float64(rank)/float64(n))
	}
	n = len(ngbCands)
	for idx, e := range ngbCands {
		rank := n - idx
		b.add(e.To, (1-theta)*float64(rank)/float64(n))
	}
	out := make([]graph.Edge, len(b.cands))
	copy(out, b.cands)
	slices.SortFunc(out, func(a, c graph.Edge) int {
		if a.Weight != c.Weight {
			return cmp.Compare(c.Weight, a.Weight)
		}
		return cmp.Compare(a.To, c.To)
	})
	b.reset()
	return out
}

// BestOf returns the top candidate of a fused ranking — (kb.NoEntity, 0)
// when the ranking is empty. Mirrors aggregate()'s return contract.
func BestOf(ranking []graph.Edge) (kb.EntityID, float64) {
	if len(ranking) == 0 {
		return kb.NoEntity, 0
	}
	return ranking[0].To, ranking[0].Weight
}
