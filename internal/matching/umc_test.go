package matching

import (
	"reflect"
	"testing"
	"testing/quick"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

func TestUMCGreedyBestFirst(t *testing.T) {
	pairs := []ScoredPair{
		{eval.Pair{E1: 1, E2: 1}, 0.9},
		{eval.Pair{E1: 1, E2: 2}, 0.8}, // E1=1 already taken
		{eval.Pair{E1: 2, E2: 2}, 0.7},
		{eval.Pair{E1: 3, E2: 3}, 0.2}, // below threshold
	}
	got := UniqueMappingClustering(pairs, 0.5)
	want := []eval.Pair{{E1: 1, E2: 1}, {E1: 2, E2: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UMC = %v, want %v", got, want)
	}
}

func TestUMCStopsAtThreshold(t *testing.T) {
	pairs := []ScoredPair{
		{eval.Pair{E1: 1, E2: 1}, 0.4},
		{eval.Pair{E1: 2, E2: 2}, 0.6},
	}
	got := UniqueMappingClustering(pairs, 0.5)
	if len(got) != 1 || got[0] != (eval.Pair{E1: 2, E2: 2}) {
		t.Errorf("UMC = %v, want only the 0.6 pair", got)
	}
	// Threshold 0 keeps everything with non-negative score.
	all := UniqueMappingClustering(pairs, 0)
	if len(all) != 2 {
		t.Errorf("UMC threshold 0 = %v", all)
	}
}

func TestUMCDeterministicTies(t *testing.T) {
	pairs := []ScoredPair{
		{eval.Pair{E1: 2, E2: 2}, 0.5},
		{eval.Pair{E1: 1, E2: 1}, 0.5},
		{eval.Pair{E1: 1, E2: 2}, 0.5},
	}
	a := UniqueMappingClustering(pairs, 0.1)
	b := UniqueMappingClustering([]ScoredPair{pairs[2], pairs[0], pairs[1]}, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("UMC order-dependent: %v vs %v", a, b)
	}
	// Lowest (E1,E2) wins ties: (1,1) then (2,2).
	want := []eval.Pair{{E1: 1, E2: 1}, {E1: 2, E2: 2}}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("UMC tie-break = %v, want %v", a, want)
	}
}

func TestUMCEmpty(t *testing.T) {
	if got := UniqueMappingClustering(nil, 0.5); len(got) != 0 {
		t.Errorf("UMC(nil) = %v", got)
	}
}

// Property: UMC always yields a one-to-one mapping and never includes a
// pair below the threshold.
func TestUMCProperty(t *testing.T) {
	f := func(seeds []uint16, rawThreshold uint8) bool {
		threshold := float64(rawThreshold) / 255
		var pairs []ScoredPair
		for i, s := range seeds {
			pairs = append(pairs, ScoredPair{
				Pair:  eval.Pair{E1: kb.EntityID(s % 20), E2: kb.EntityID(s / 20 % 20)},
				Score: float64(i%10) / 10,
			})
		}
		out := UniqueMappingClustering(pairs, threshold)
		seen1 := map[kb.EntityID]bool{}
		seen2 := map[kb.EntityID]bool{}
		scores := map[eval.Pair]float64{}
		for _, p := range pairs {
			if s, ok := scores[p.Pair]; !ok || p.Score > s {
				scores[p.Pair] = p.Score
			}
		}
		for _, p := range out {
			if seen1[p.E1] || seen2[p.E2] {
				return false
			}
			seen1[p.E1] = true
			seen2[p.E2] = true
			if scores[p] < threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The bitset matched-sets must size to the maximum IDs present and behave
// exactly like the historical maps, including on sparse, large IDs.
func TestUMCSparseLargeIDs(t *testing.T) {
	pairs := []ScoredPair{
		{Pair: eval.Pair{E1: 100000, E2: 5}, Score: 0.9},
		{Pair: eval.Pair{E1: 100000, E2: 70000}, Score: 0.8}, // E1 taken
		{Pair: eval.Pair{E1: 3, E2: 70000}, Score: 0.7},
		{Pair: eval.Pair{E1: 3, E2: 5}, Score: 0.6}, // both taken
		{Pair: eval.Pair{E1: 0, E2: 0}, Score: 0.5},
	}
	got := UniqueMappingClustering(pairs, 0.1)
	want := []eval.Pair{{E1: 0, E2: 0}, {E1: 3, E2: 70000}, {E1: 100000, E2: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UMC = %v, want %v", got, want)
	}
}
