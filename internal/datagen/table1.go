package datagen

import "minoaner/internal/kb"

// Table1Row holds the measured dataset statistics reported in Table 1 of
// the paper, computed from the generated KBs (not echoed from the profile).
type Table1Row struct {
	Dataset          string
	E1Entities       int
	E2Entities       int
	E1Triples        int
	E2Triples        int
	E1AvgTokens      float64
	E2AvgTokens      float64
	E1Attrs, E2Attrs int
	E1Rels, E2Rels   int
	E1Types, E2Types int
	E1Vocab, E2Vocab int
	Matches          int
}

// Table1 measures the dataset's Table 1 statistics.
func (d *Dataset) Table1() Table1Row {
	return Table1Row{
		Dataset:     d.Profile.Name,
		E1Entities:  d.K1.Len(),
		E2Entities:  d.K2.Len(),
		E1Triples:   d.K1.Triples(),
		E2Triples:   d.K2.Triples(),
		E1AvgTokens: d.K1.AverageTokens(),
		E2AvgTokens: d.K2.AverageTokens(),
		E1Attrs:     d.K1.Attributes(),
		E2Attrs:     d.K2.Attributes(),
		E1Rels:      d.K1.RelationNames(),
		E2Rels:      d.K2.RelationNames(),
		E1Types:     countTypes(d.K1, d.Profile.TypeAttr(1)),
		E2Types:     countTypes(d.K2, d.Profile.TypeAttr(2)),
		E1Vocab:     d.Profile.Vocab1,
		E2Vocab:     d.Profile.Vocab2,
		Matches:     d.GT.Len(),
	}
}

// countTypes counts the distinct values of the type attribute.
func countTypes(k *kb.KB, typeAttr string) int {
	set := make(map[string]struct{})
	for i := 0; i < k.Len(); i++ {
		for _, v := range k.Entity(kb.EntityID(i)).Values(typeAttr) {
			set[v] = struct{}{}
		}
	}
	return len(set)
}
