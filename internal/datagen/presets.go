package datagen

// The four presets mirror the structural profiles of the paper's Table 1 at
// single-machine scale. Entity counts are scaled down (the originals reach
// 5.3M entities); the scale-invariant characteristics — relative KB size
// skew, attribute/relation/type/vocabulary counts, tokens-per-entity ratios
// and the Figure 2 similarity mix of the matches — follow the paper:
//
//	                 paper E1×E2            here E1×E2      match mix
//	Restaurant       339 × 2,256            identical        strongly similar, easy
//	Rexa-DBLP        18,492 × 2,650,832     1,500 × 30,000   (1:20 skew) strong + nearly
//	BBCmusic-DBpedia 58,793 × 256,602       4,000 × 12,000   nearly similar, ~4× token skew
//	YAGO-IMDb        5,208,100 × 5,328,774  10,000 × 10,500  low norm. value sim, high neighbor sim
//
// Match-mix parameters (PName, PStrong, PNearly) are calibrated against
// Table 4 of the paper: the per-rule recalls there reveal how many matches
// are name-identifiable (R1), strongly value-similar (R2) and
// neighbor-dependent (R3) in each dataset.
//
// Pool sizes are calibrated against the default purging cap (blocks larger
// than 0.1% of the Cartesian product are stop-word blocks): common, mid,
// name-token and year blocks always exceed the cap, while planted semi/rare
// evidence stays under it. See the Profile field docs for the mechanism.

// Restaurant mirrors the OAEI Restaurant benchmark: tiny, low Variety, and
// dominated by strongly similar matches (every system scores ≈100 F1).
func Restaurant() Profile {
	return Profile{
		Name: "Restaurant", Seed: 101,
		E1Size: 339, E2Size: 2256, Matches: 89,
		PName: 0.68, PStrong: 0.97, PNearly: 0.02,
		PNeighborMirror: 0.90, NeighborsPerEntity: 2, PDistractorLink: 0,
		CommonPool: 25, MidPool: 120, NamePool: 30, YearPool: 25,
		SemiPool: 60, LowPool: 150, LowOwn1: 1, LowOwn2: 1,
		PSemiShared: 0.10, PRawValueNoise: 0.10,
		StrongRare: 5, StrongMid: 4, PHardDistractor: 0.05,
		MidOwn1: 4, MidOwn2: 4, CommonOwn1: 4, CommonOwn2: 4, RareOwn1: 3, RareOwn2: 3,
		Attrs1: 7, Attrs2: 7, Rels1: 2, Rels2: 2,
		Types1: 3, Types2: 3, Vocab1: 2, Vocab2: 2,
	}
}

// RexaDBLP mirrors the Rexa-DBLP publication benchmark: the most size-skewed
// pair (DBLP is 20× larger here, 143× in the paper), strongly similar in
// values and names, with publication→author neighbor structure.
func RexaDBLP() Profile {
	return Profile{
		Name: "Rexa-DBLP", Seed: 202,
		E1Size: 1500, E2Size: 30000, Matches: 1200,
		PName: 0.85, PStrong: 0.50, PNearly: 0.45,
		PNeighborMirror: 0.85, NeighborsPerEntity: 3, PDistractorLink: 0.15,
		CommonPool: 30, MidPool: 400, NamePool: 40, YearPool: 25,
		SemiPool: 600, LowPool: 300, LowOwn1: 2, LowOwn2: 2,
		PSemiShared: 0.10, PRawValueNoise: 0.10,
		StrongRare: 3, StrongMid: 2, PHardDistractor: 0.15,
		MidOwn1: 18, MidOwn2: 25, CommonOwn1: 6, CommonOwn2: 8, RareOwn1: 12, RareOwn2: 20,
		Attrs1: 20, Attrs2: 30, Rels1: 4, Rels2: 6,
		Types1: 4, Types2: 11, Vocab1: 4, Vocab2: 4,
	}
}

// BBCMusicDBpedia mirrors the highest-Variety pair: DBpedia uses an order of
// magnitude more attributes, far more relations/types/vocabularies, and ~4×
// more tokens per description, so normalized set similarities collapse for
// matches (§6, Table 1 discussion) — the dataset where MinoanER's margin
// over the baselines is largest.
func BBCMusicDBpedia() Profile {
	return Profile{
		Name: "BBCmusic-DBpedia", Seed: 303,
		E1Size: 4000, E2Size: 12000, Matches: 2500,
		PName: 0.66, PStrong: 0.40, PNearly: 0.55,
		PNeighborMirror: 0.85, NeighborsPerEntity: 3, PDistractorLink: 0.25,
		CommonPool: 40, MidPool: 400, NamePool: 30, YearPool: 25,
		SemiPool: 1250, LowPool: 400, LowOwn1: 2, LowOwn2: 3,
		PSemiShared: 0.10, PRawValueNoise: 0.95,
		StrongRare: 2, StrongMid: 1, PHardDistractor: 0.35,
		MidOwn1: 12, MidOwn2: 60, CommonOwn1: 5, CommonOwn2: 15, RareOwn1: 8, RareOwn2: 40,
		Attrs1: 15, Attrs2: 80, Rels1: 5, Rels2: 40,
		Types1: 4, Types2: 300, Vocab1: 4, Vocab2: 6,
	}
}

// YAGOIMDb mirrors the largest, most balanced pair: short descriptions whose
// matches share a few semi-rare tokens (absolute valueSim around 1, so R2
// fires) while a tiny mid pool makes every entity pair share noise words —
// normalized similarities cannot separate matches from non-matches, the
// regime where the fine-tuned BSL collapses. Neighbor structure is strong.
func YAGOIMDb() Profile {
	return Profile{
		Name: "YAGO-IMDb", Seed: 404,
		E1Size: 10000, E2Size: 10500, Matches: 7000,
		PName: 0.66, PStrong: 0.50, PNearly: 0.47,
		PNeighborMirror: 0.90, NeighborsPerEntity: 3, PDistractorLink: 0.25,
		CommonPool: 25, MidPool: 30, NamePool: 40, YearPool: 25,
		SemiPool: 5000, LowPool: 250, LowOwn1: 1, LowOwn2: 1,
		PSemiShared: 0.75, PRawValueNoise: 0.10,
		StrongRare: 2, StrongMid: 1, NearlyTokens: 1, PHardDistractor: 0.45,
		MidOwn1: 7, MidOwn2: 6, CommonOwn1: 3, CommonOwn2: 2, RareOwn1: 3, RareOwn2: 2,
		Attrs1: 12, Attrs2: 8, Rels1: 4, Rels2: 6,
		Types1: 300, Types2: 15, Vocab1: 3, Vocab2: 1,
	}
}

// Presets returns all four paper datasets in Table 1 order.
func Presets() []Profile {
	return []Profile{Restaurant(), RexaDBLP(), BBCMusicDBpedia(), YAGOIMDb()}
}

// Scale shrinks (or grows) a profile's entity counts by factor, keeping the
// structural profile intact — used by fast tests and the scalability sweep.
// The semi pool scales along so planted-evidence frequencies stay constant;
// the noise pools do not, because their block sizes already scale with the
// entity counts relative to the purging cap.
func Scale(p Profile, factor float64) Profile {
	scale := func(n int) int {
		s := int(float64(n) * factor)
		if s < 1 {
			s = 1
		}
		return s
	}
	p.Matches = scale(p.Matches)
	p.E1Size = maxInt(scale(p.E1Size), p.Matches)
	p.E2Size = maxInt(scale(p.E2Size), p.Matches)
	p.SemiPool = scale(p.SemiPool)
	return p
}
