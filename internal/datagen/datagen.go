// Package datagen generates synthetic clean-clean ER benchmarks whose
// structural profiles mirror the four real KB pairs of the paper's Table 1
// (Restaurant, Rexa-DBLP, BBCmusic-DBpedia, YAGO-IMDb).
//
// The paper's datasets are not redistributable at source, so this package is
// the substitution documented in DESIGN.md: every signal MinoanER and the
// baselines consume is generated under explicit control —
//
//   - token overlap between matches (strong / nearly / weak mixes of Fig. 2),
//     drawn from frequency-stratified pools (common ≈ stop words, mid, rare);
//   - globally unique shared names for a configurable fraction of matches
//     (the bordered points of Fig. 2 that rule R1 captures);
//   - mirrored relation structure between matched entities, so neighbor
//     evidence exists exactly where the profile says it should;
//   - schema heterogeneity: per-KB attribute/relation vocabularies, type
//     counts and token-volume skew (e.g. DBpedia descriptions being ~4×
//     longer than BBCmusic ones).
//
// Generation is fully deterministic for a given Profile (seeded PRNG, no
// map-order dependence).
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// TokenCategory classifies the value-similarity profile of one match,
// mirroring the regions of the paper's Figure 2.
type TokenCategory uint8

const (
	// Strong matches share several rare tokens: valueSim ≥ 1, found by R2.
	Strong TokenCategory = iota
	// Nearly matches share only a couple of mid-frequency tokens; they are
	// resolvable only with neighbor evidence (R3).
	Nearly
	// Weak matches share at most one mid token and have no mirrored
	// neighbors — the lower-left corner of Fig. 2 that every system misses.
	Weak
)

// String names the category.
func (c TokenCategory) String() string {
	switch c {
	case Strong:
		return "strong"
	case Nearly:
		return "nearly"
	default:
		return "weak"
	}
}

// MatchProfile records the evidence planted for one ground-truth pair.
type MatchProfile struct {
	Category TokenCategory
	// HasUniqueName marks pairs sharing a globally unique name (R1 bait).
	HasUniqueName bool
	// MirroredNeighbors marks pairs whose relation structure agrees.
	MirroredNeighbors bool
}

// Profile configures one synthetic benchmark.
type Profile struct {
	// Name labels the dataset in reports.
	Name string
	// Seed drives the PRNG; equal profiles generate identical datasets.
	Seed int64

	// E1Size / E2Size are the total entity counts per KB (must be ≥ Matches).
	E1Size, E2Size int
	// Matches is the number of ground-truth correspondences.
	Matches int

	// PName is the fraction of matches sharing a globally unique name.
	PName float64
	// PStrong / PNearly are the fractions of matches with strong / nearly
	// token profiles; the remainder is Weak.
	PStrong, PNearly float64
	// PNeighborMirror is the per-neighbor probability that a relation edge
	// of a matched entity is mirrored on the other side.
	PNeighborMirror float64

	// NeighborsPerEntity is the mean out-degree over the main relations.
	NeighborsPerEntity int
	// PDistractorLink is the probability that a per-KB-only entity has
	// out-edges into the matched population. Leaf-style datasets (OAEI
	// Restaurant, where non-GT entities are the addresses of matched
	// restaurants) use 0; web-scale KBs use higher values, which plants
	// realistic neighbor-evidence noise (γ edges between non-matches).
	PDistractorLink float64

	// Token pools size the shared frequency strata; they control which
	// blocks survive Block Purging, exactly like the token-frequency
	// distribution of a real KB pair:
	//
	//   - CommonPool: stop words. Tiny pool → huge blocks → always purged.
	//   - MidPool: domain words (genres, venues, cities). Sized so blocks
	//     exceed the purging cap: they dilute normalized similarities and
	//     confuse the BSL baseline (similarity functions see all tokens)
	//     while contributing no retained blocking evidence.
	//   - NamePool + YearPool: name constituents. Name *values* stay unique
	//     (the R1 signal); name *tokens* form purged blocks, so sharing a
	//     name does not imply value similarity — the bordered low-valueSim
	//     points of Fig. 2.
	//   - SemiPool: planted identity evidence with entity frequency of a
	//     handful; blocks are small and survive purging. Shared semi tokens
	//     keep absolute valueSim near 1 while normalized similarities stay
	//     inseparable from noise — the YAGO-IMDb regime.
	CommonPool, MidPool, NamePool, YearPool, SemiPool int
	// LowPool sizes the low-frequency stratum: tokens whose blocks stay
	// *under* the purging cap, so they survive into the blocking graph and
	// supply the bulk of the suggested comparisons — the reason blocking
	// precision is tiny in Table 2 while recall stays high. Each entity
	// draws LowOwn1/LowOwn2 of them.
	LowPool          int
	LowOwn1, LowOwn2 int
	// PSemiShared is the probability that a strong match's shared token is
	// drawn from the semi pool instead of being globally unique (rare).
	PSemiShared float64
	// StrongRare / StrongMid size the planted shared evidence of strong
	// matches: StrongRare + rng(0..2) rare/semi tokens plus StrongMid +
	// rng(0..1) mid tokens. Low-Variety datasets (Restaurant) share most of
	// their content, high-Variety ones only a few tokens (Figure 2's x-axis
	// spread across datasets).
	StrongRare, StrongMid int
	// NearlyTokens fixes the number of semi tokens a nearly-similar match
	// shares (0 = 1 + rng(0..1)). A value of 1 makes nearly matches
	// indistinguishable from their semi-token co-holders under any value
	// similarity — only neighbor evidence resolves them, the defining
	// property of the YAGO-IMDb regime.
	NearlyTokens int
	// PHardDistractor is the per-match probability that the larger KB also
	// contains a near-duplicate distractor ("the sequel problem" of movie
	// KBs): an entity sharing most of the match's noise tokens and one of
	// its planted evidence tokens, but not the full evidence. Normalized
	// similarities rank such distractors above the true match, which is
	// what breaks the fine-tuned BSL on YAGO-IMDb in Table 3; MinoanER's
	// absolute valueSim and reciprocity keep them apart.
	PHardDistractor float64
	// PRawValueNoise is the per-literal probability that a side-2 value is
	// mangled in casing/punctuation. Token- and name-normalizing systems
	// (MinoanER, BSL) are unaffected; systems relying on exact literal
	// equality (PARIS's seed alignment) lose their evidence — the mechanism
	// behind PARIS's collapse on BBCmusic-DBpedia in Table 3, whose BTC2012
	// literals carry heavy formatting noise.
	PRawValueNoise float64

	// Own-token counts per description (side-specific volume; BBC-DBpedia
	// style skew uses MidOwn2 ≫ MidOwn1).
	MidOwn1, MidOwn2       int
	CommonOwn1, CommonOwn2 int
	RareOwn1, RareOwn2     int

	// Schema profile (Table 1 rows): literal attributes, relation
	// predicates, entity types and vocabulary namespaces per KB.
	Attrs1, Attrs2 int
	Rels1, Rels2   int
	Types1, Types2 int
	Vocab1, Vocab2 int
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	if p.Matches <= 0 || p.E1Size < p.Matches || p.E2Size < p.Matches {
		return fmt.Errorf("datagen: sizes (%d, %d) must cover %d matches", p.E1Size, p.E2Size, p.Matches)
	}
	if p.PStrong+p.PNearly > 1+1e-9 {
		return fmt.Errorf("datagen: PStrong+PNearly = %v exceeds 1", p.PStrong+p.PNearly)
	}
	if p.Attrs1 < 2 || p.Attrs2 < 2 || p.Rels1 < 1 || p.Rels2 < 1 {
		return fmt.Errorf("datagen: need ≥2 attributes and ≥1 relation per KB")
	}
	return nil
}

// Dataset is one generated benchmark: two KBs, ground truth and the planted
// evidence profile of every match.
type Dataset struct {
	Profile  Profile
	K1, K2   *kb.KB
	GT       *eval.GroundTruth
	Profiles map[eval.Pair]MatchProfile
}

// generator carries the mutable generation state.
type generator struct {
	p   Profile
	rng *rand.Rand
	b1  *kb.Builder
	b2  *kb.Builder

	// per-identity bookkeeping (index < p.Matches ⇒ matched identity).
	cat       []TokenCategory
	hasName   []bool
	neighbors [][]int // identity index → neighbor identity indices (mirror template)

	usedNames map[string]bool
	rareSeq   int
	// sequelPlans holds near-duplicate distractors to be emitted into E2
	// (see Profile.PHardDistractor).
	sequelPlans []sequelPlan
	// perm1/perm2 map logical entity indices (0..Matches-1 are the matched
	// identities) to entity IDs. Without this shuffle the ground truth would
	// be ID-aligned, and any matcher breaking ties by entity ID — Unique
	// Mapping Clustering does — would receive artificial recall.
	perm1, perm2 []int
}

// id1/id2 translate a logical index into the entity ID of each KB.
func (g *generator) id1(logical int) kb.EntityID { return kb.EntityID(g.perm1[logical]) }
func (g *generator) id2(logical int) kb.EntityID { return kb.EntityID(g.perm2[logical]) }

// sequelPlan describes one near-duplicate E2 distractor: most of the noise
// tokens of a matched identity plus at most one of its evidence tokens, and
// optionally one of its relation targets.
type sequelPlan struct {
	identity int
	tokens   []string
	neighbor int // E2 neighbor target, -1 if none
}

// Generate builds the dataset for the profile. It panics only on internal
// invariant violations; profile errors are returned.
func Generate(p Profile) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Both KBs of the pair intern into one shared token dictionary (so the
	// resolution pipeline's TokenIndex gets the identity token space and
	// skips its cross-dictionary translation) and one shared schema
	// dictionary (so predicates, attribute names and normalized values live
	// in a single dense ID space across the pair).
	dict := kb.NewInterner()
	schema := kb.NewSchema()
	g := &generator{
		p:         p,
		rng:       rand.New(rand.NewSource(p.Seed)),
		b1:        kb.NewBuilderWithDicts(p.Name+"-E1", dict, schema),
		b2:        kb.NewBuilderWithDicts(p.Name+"-E2", dict, schema),
		usedNames: make(map[string]bool),
	}
	g.perm1 = g.rng.Perm(p.E1Size)
	g.perm2 = g.rng.Perm(p.E2Size)
	g.assignCategories()
	g.buildNeighborTemplate()
	profiles := g.emitEntities()
	d := &Dataset{
		Profile:  p,
		K1:       g.b1.Build(),
		K2:       g.b2.Build(),
		Profiles: profiles,
	}
	pairs := make([]eval.Pair, 0, p.Matches)
	for i := 0; i < p.Matches; i++ {
		pairs = append(pairs, eval.Pair{E1: g.id1(i), E2: g.id2(i)})
	}
	d.GT = eval.NewGroundTruth(pairs)
	return d, nil
}

// assignCategories draws the per-match evidence profile from the mix.
func (g *generator) assignCategories() {
	m := g.p.Matches
	g.cat = make([]TokenCategory, m)
	g.hasName = make([]bool, m)
	for i := 0; i < m; i++ {
		r := g.rng.Float64()
		switch {
		case r < g.p.PStrong:
			g.cat[i] = Strong
		case r < g.p.PStrong+g.p.PNearly:
			g.cat[i] = Nearly
		default:
			g.cat[i] = Weak
		}
		g.hasName[i] = g.rng.Float64() < g.p.PName
	}
}

// buildNeighborTemplate wires matched identities into a relation graph.
// Nearly matches point preferentially at strong matches so their neighbor
// evidence is itself resolvable — the mechanism behind rule R3.
func (g *generator) buildNeighborTemplate() {
	m := g.p.Matches
	var strongIdx []int
	for i, c := range g.cat {
		if c == Strong {
			strongIdx = append(strongIdx, i)
		}
	}
	g.neighbors = make([][]int, m)
	for i := 0; i < m; i++ {
		deg := 1 + g.rng.Intn(maxInt(g.p.NeighborsPerEntity, 1))
		seen := map[int]bool{i: true}
		for d := 0; d < deg; d++ {
			var target int
			if g.cat[i] == Nearly && len(strongIdx) > 0 && g.rng.Float64() < 0.8 {
				target = strongIdx[g.rng.Intn(len(strongIdx))]
			} else {
				target = g.rng.Intn(m)
			}
			if seen[target] {
				continue
			}
			seen[target] = true
			g.neighbors[i] = append(g.neighbors[i], target)
		}
		sort.Ints(g.neighbors[i])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
