package datagen

import (
	"reflect"
	"testing"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// tiny returns a small, fast profile for unit tests.
func tiny() Profile {
	p := Restaurant()
	p.Name = "tiny"
	p.Seed = 42
	return Scale(p, 0.5)
}

func TestGenerateBasicShape(t *testing.T) {
	p := tiny()
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.K1.Len() != p.E1Size || d.K2.Len() != p.E2Size {
		t.Fatalf("sizes = %d/%d, want %d/%d", d.K1.Len(), d.K2.Len(), p.E1Size, p.E2Size)
	}
	if d.GT.Len() != p.Matches {
		t.Fatalf("GT = %d, want %d", d.GT.Len(), p.Matches)
	}
	if len(d.Profiles) != p.Matches {
		t.Fatalf("profiles = %d, want %d", len(d.Profiles), p.Matches)
	}
	// Entity IDs are shuffled (no ID-aligned ground truth, which would leak
	// recall through ID-based tie-breaking), but URIs stay logically
	// aligned: "e1:i" matches "e2:i".
	aligned := 0
	for _, pr := range d.GT.Pairs() {
		if pr.E1 == pr.E2 {
			aligned++
		}
		if d.K1.Entity(pr.E1).URI[3:] != d.K2.Entity(pr.E2).URI[3:] {
			t.Fatalf("GT pair %v URIs misaligned", pr)
		}
	}
	if aligned == d.GT.Len() {
		t.Error("ground truth is fully ID-aligned; permutation missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.K1.Triples() != b.K1.Triples() || a.K2.Triples() != b.K2.Triples() {
		t.Fatal("triple counts differ between identical profiles")
	}
	for i := 0; i < a.K1.Len(); i++ {
		d1, d2 := a.K1.Entity(kb.EntityID(i)), b.K1.Entity(kb.EntityID(i))
		if d1.URI != d2.URI || !reflect.DeepEqual(d1.Tokens(), d2.Tokens()) {
			t.Fatalf("entity %d differs between runs", i)
		}
	}
	if !reflect.DeepEqual(a.Profiles, b.Profiles) {
		t.Fatal("match profiles differ between runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p1, p2 := tiny(), tiny()
	p2.Seed = 4242
	a, _ := Generate(p1)
	b, _ := Generate(p2)
	same := true
	for i := 0; i < a.K1.Len() && same; i++ {
		if !reflect.DeepEqual(a.K1.Entity(kb.EntityID(i)).Tokens(), b.K1.Entity(kb.EntityID(i)).Tokens()) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical KBs")
	}
}

func TestStrongMatchesShareRareTokens(t *testing.T) {
	d, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for pr, mp := range d.Profiles {
		if mp.Category != Strong {
			continue
		}
		shared := sharedTokenCount(d.K1.Entity(pr.E1), d.K2.Entity(pr.E2))
		if shared < 3 { // ≥2 rare + ≥1 mid planted
			t.Fatalf("strong match %v shares only %d tokens", pr, shared)
		}
	}
}

func sharedTokenCount(a, b *kb.Description) int {
	count := 0
	for _, t := range a.Tokens() {
		if b.HasToken(t) {
			count++
		}
	}
	return count
}

func TestNameMatchesShareUniqueName(t *testing.T) {
	d, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Collect name values (attribute v0:a0) per KB.
	nameCount1 := map[string]int{}
	nameCount2 := map[string]int{}
	for i := 0; i < d.K1.Len(); i++ {
		for _, v := range d.K1.Entity(kb.EntityID(i)).Values("v0:a0") {
			nameCount1[kb.NormalizeName(v)]++
		}
	}
	for i := 0; i < d.K2.Len(); i++ {
		for _, v := range d.K2.Entity(kb.EntityID(i)).Values("v0:a0") {
			nameCount2[kb.NormalizeName(v)]++
		}
	}
	withName := 0
	for pr, mp := range d.Profiles {
		n1 := d.K1.Entity(pr.E1).Values("v0:a0")
		n2 := d.K2.Entity(pr.E2).Values("v0:a0")
		if len(n1) != 1 || len(n2) != 1 {
			t.Fatalf("match %v: name attribute missing", pr)
		}
		same := kb.NormalizeName(n1[0]) == kb.NormalizeName(n2[0])
		if mp.HasUniqueName {
			withName++
			if !same {
				t.Fatalf("match %v flagged HasUniqueName but names differ: %q vs %q", pr, n1[0], n2[0])
			}
			key := kb.NormalizeName(n1[0])
			if nameCount1[key] != 1 || nameCount2[key] != 1 {
				t.Fatalf("shared name %q not unique: %d/%d uses", key, nameCount1[key], nameCount2[key])
			}
		} else if same {
			t.Fatalf("match %v shares a name but is not flagged", pr)
		}
	}
	if withName == 0 {
		t.Error("no name matches generated despite PName > 0")
	}
}

func TestCategoryMixApproximatesProfile(t *testing.T) {
	p := YAGOIMDb()
	p = Scale(p, 0.1)
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[TokenCategory]int{}
	for _, mp := range d.Profiles {
		counts[mp.Category]++
	}
	total := float64(d.GT.Len())
	strongFrac := float64(counts[Strong]) / total
	if strongFrac < p.PStrong-0.1 || strongFrac > p.PStrong+0.1 {
		t.Errorf("strong fraction = %v, want ≈ %v", strongFrac, p.PStrong)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{}, // no matches
		{Matches: 10, E1Size: 5, E2Size: 20, Attrs1: 5, Attrs2: 5, Rels1: 1, Rels2: 1}, // E1 < matches
		func() Profile { p := tiny(); p.PStrong = 0.9; p.PNearly = 0.9; return p }(),   // mix > 1
		func() Profile { p := tiny(); p.Attrs1 = 1; return p }(),                       // too few attrs
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("profile %d should be rejected", i)
		}
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
	}
	if len(Presets()) != 4 {
		t.Error("want 4 presets")
	}
}

func TestScale(t *testing.T) {
	p := Scale(RexaDBLP(), 0.1)
	if p.Matches != 120 || p.E1Size != 150 || p.E2Size != 3000 {
		t.Errorf("scaled sizes = %d/%d/%d", p.Matches, p.E1Size, p.E2Size)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("scaled profile invalid: %v", err)
	}
	// Extreme shrink keeps invariants.
	q := Scale(Restaurant(), 0.001)
	if q.Matches < 1 || q.E1Size < q.Matches || q.E2Size < q.Matches {
		t.Errorf("extreme scale broken: %+v", q)
	}
}

func TestTable1Measured(t *testing.T) {
	d, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	row := d.Table1()
	if row.E1Entities != d.K1.Len() || row.Matches != d.GT.Len() {
		t.Errorf("row = %+v", row)
	}
	if row.E1AvgTokens <= 0 || row.E2AvgTokens <= 0 {
		t.Error("avg tokens not measured")
	}
	if row.E1Types == 0 || row.E2Types == 0 {
		t.Error("types not measured")
	}
	// BBC profile must show the token-volume skew.
	bb, err := Generate(Scale(BBCMusicDBpedia(), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	r2 := bb.Table1()
	if r2.E2AvgTokens < 2*r2.E1AvgTokens {
		t.Errorf("BBC skew: avg tokens %v vs %v, want ≥2× skew", r2.E1AvgTokens, r2.E2AvgTokens)
	}
}

func TestCategoryString(t *testing.T) {
	if Strong.String() != "strong" || Nearly.String() != "nearly" || Weak.String() != "weak" {
		t.Error("category labels")
	}
}

func TestGroundTruthAlignment(t *testing.T) {
	d, err := Generate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// URIs of matched pairs carry the same index.
	for _, pr := range d.GT.Pairs() {
		u1 := d.K1.Entity(pr.E1).URI
		u2 := d.K2.Entity(pr.E2).URI
		if u1[3:] != u2[3:] { // strip "e1:"/"e2:"
			t.Fatalf("pair %v URIs misaligned: %s vs %s", pr, u1, u2)
		}
	}
	_ = eval.Pair{}
}
