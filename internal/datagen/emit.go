package datagen

import (
	"fmt"
	"strconv"

	"minoaner/internal/eval"
	"minoaner/internal/kb"
)

// Token emission helpers. Pool tokens are shared across both KBs (that is
// what makes them cross-KB matching evidence); rare tokens are globally
// unique unless explicitly reused for a matching pair.

func (g *generator) commonToken() string {
	return "c" + strconv.Itoa(g.rng.Intn(maxInt(g.p.CommonPool, 1)))
}
func (g *generator) midToken() string { return "m" + strconv.Itoa(g.rng.Intn(maxInt(g.p.MidPool, 1))) }
func (g *generator) nameToken() string {
	return "n" + strconv.Itoa(g.rng.Intn(maxInt(g.p.NamePool, 1)))
}

func (g *generator) rareToken() string {
	g.rareSeq++
	return "r" + strconv.Itoa(g.rareSeq)
}

func (g *generator) semiToken() string {
	return "s" + strconv.Itoa(g.rng.Intn(maxInt(g.p.SemiPool, 1)))
}

func (g *generator) lowToken() string {
	return "l" + strconv.Itoa(g.rng.Intn(maxInt(g.p.LowPool, 1)))
}

// strongSharedToken picks the identity evidence of a strong match: globally
// unique by default, or semi-rare with probability PSemiShared.
func (g *generator) strongSharedToken() string {
	if g.rng.Float64() < g.p.PSemiShared {
		return g.semiToken()
	}
	return g.rareToken()
}

// makeUniqueName builds a person/title-like name — two pool tokens plus a
// year-like numeral — that no other entity of either KB uses. All three
// constituents come from high-frequency pools whose token blocks are purged,
// so the *tokens* carry no retained value evidence while the full *value*
// stays globally unique (the signal R1 needs).
func (g *generator) makeUniqueName() string {
	for {
		name := g.nameToken() + " " + g.nameToken() + " " +
			strconv.Itoa(1900+g.rng.Intn(maxInt(g.p.YearPool, 1)))
		if !g.usedNames[name] {
			g.usedNames[name] = true
			return name
		}
	}
}

// attrName returns the i-th literal attribute of side k, namespaced into the
// side's vocabularies (Table 1's "vocab." row).
func (g *generator) attrName(side, i int) string {
	return g.p.AttrName(side, i)
}

// AttrName exposes the attribute naming scheme: attribute i of side k,
// prefixed by one of the side's vocabulary namespaces. Index 0 is the name
// attribute, index 1 the type attribute.
func (p Profile) AttrName(side, i int) string {
	vocabs := p.Vocab1
	if side == 2 {
		vocabs = p.Vocab2
	}
	return fmt.Sprintf("v%d:a%d", i%maxInt(vocabs, 1), i)
}

// NameAttr returns the designated name attribute of side k.
func (p Profile) NameAttr(side int) string { return p.AttrName(side, 0) }

// TypeAttr returns the designated type attribute of side k.
func (p Profile) TypeAttr(side int) string { return p.AttrName(side, 1) }

// relName returns the i-th relation predicate of side k.
func (g *generator) relName(side, i int) string {
	vocabs := g.p.Vocab1
	if side == 2 {
		vocabs = g.p.Vocab2
	}
	return fmt.Sprintf("v%d:r%d", i%maxInt(vocabs, 1), i)
}

// sharedTokens draws the cross-KB token evidence for one match category.
func (g *generator) sharedTokens(cat TokenCategory) []string {
	var out []string
	switch cat {
	case Strong:
		for n := maxInt(g.p.StrongRare, 2) + g.rng.Intn(3); n > 0; n-- {
			out = append(out, g.strongSharedToken())
		}
		for n := maxInt(g.p.StrongMid, 1) + g.rng.Intn(2); n > 0; n-- {
			out = append(out, g.midToken())
		}
	case Nearly:
		n := g.p.NearlyTokens
		if n <= 0 {
			n = 1 + g.rng.Intn(2)
		}
		for ; n > 0; n-- {
			out = append(out, g.semiToken())
		}
	case Weak:
		if g.rng.Intn(2) == 0 {
			out = append(out, g.semiToken())
		}
	}
	return out
}

// ownTokens draws the side-private tokens of one description. includeLow
// controls the low-frequency stratum: matched identities and E2 distractors
// draw it (supplying the blocking graph's comparison volume), while E1
// distractors do not — the small KBs of the paper's benchmarks are curated,
// and their unmatched entities end up token-isolated once frequent blocks
// are purged, which is what keeps MinoanER's precision high there.
func (g *generator) ownTokens(side int, includeLow bool) []string {
	mid, common, rare, low := g.p.MidOwn1, g.p.CommonOwn1, g.p.RareOwn1, g.p.LowOwn1
	if side == 2 {
		mid, common, rare, low = g.p.MidOwn2, g.p.CommonOwn2, g.p.RareOwn2, g.p.LowOwn2
	}
	if !includeLow {
		low = 0
	}
	var out []string
	for i := 0; i < mid; i++ {
		out = append(out, g.midToken())
	}
	for i := 0; i < common; i++ {
		out = append(out, g.commonToken())
	}
	for i := 0; i < rare; i++ {
		out = append(out, g.rareToken())
	}
	for i := 0; i < low; i++ {
		out = append(out, g.lowToken())
	}
	return out
}

// mangle perturbs a literal's casing and separators without changing its
// tokens or its normalized-name form.
func (g *generator) mangle(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == ' ':
			if g.rng.Intn(2) == 0 {
				out = append(out, '-')
			} else {
				out = append(out, ' ', ' ')
			}
		case c >= 'a' && c <= 'z' && g.rng.Intn(2) == 0:
			out = append(out, c-'a'+'A')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// emitLiterals distributes tokens over the side's non-name attributes in
// chunks of 2–4 tokens per value, plus the name and type attributes. Side-2
// values pass through the raw-noise mangler with probability PRawValueNoise.
func (g *generator) emitLiterals(b *kb.Builder, side int, id kb.EntityID, name string, tokens []string) {
	noisy := func(v string) string {
		if side == 2 && g.rng.Float64() < g.p.PRawValueNoise {
			return g.mangle(v)
		}
		return v
	}
	b.AddLiteral(id, g.attrName(side, 0), noisy(name))
	// Token order differs between independently curated KBs; shuffle before
	// chunking so shared tokens do not line up into identical value strings
	// or identical token n-grams across the two sides.
	g.rng.Shuffle(len(tokens), func(a, b int) { tokens[a], tokens[b] = tokens[b], tokens[a] })
	types := g.p.Types1
	if side == 2 {
		types = g.p.Types2
	}
	b.AddLiteral(id, g.attrName(side, 1), fmt.Sprintf("k%dtype%d", side, g.rng.Intn(maxInt(types, 1))))
	attrs := g.p.Attrs1
	if side == 2 {
		attrs = g.p.Attrs2
	}
	for len(tokens) > 0 {
		n := 3 + g.rng.Intn(2)
		if n > len(tokens) {
			n = len(tokens)
		}
		value := ""
		for _, t := range tokens[:n] {
			if value != "" {
				value += " "
			}
			value += t
		}
		tokens = tokens[n:]
		attr := 2
		if attrs > 2 {
			attr = 2 + g.rng.Intn(attrs-2)
		}
		b.AddLiteral(id, g.attrName(side, attr), noisy(value))
	}
}

// pickRelation selects a predicate for one edge: mostly the side's main
// relation (index 0, high discriminability), sometimes a secondary one.
func (g *generator) pickRelation(side int) string {
	rels := g.p.Rels1
	if side == 2 {
		rels = g.p.Rels2
	}
	if rels <= 1 || g.rng.Float64() < 0.8 {
		return g.relName(side, 0)
	}
	return g.relName(side, 1+g.rng.Intn(rels-1))
}

// hubCount is the number of hub entities per KB (targets of the
// low-discriminability relation that the importance statistics must demote).
const hubCount = 5

func uri1(i int) string { return "e1:" + strconv.Itoa(i) }
func uri2(i int) string { return "e2:" + strconv.Itoa(i) }

// emitEntities registers and fills all entities of both KBs: matched
// identities first (IDs align with ground-truth pairs), then per-KB
// distractors, with hub entities at the tail of each KB.
func (g *generator) emitEntities() map[eval.Pair]MatchProfile {
	p := g.p
	m := p.Matches
	// Register everything first so relation targets resolve at Build time.
	// Entity IDs are assigned in slot order; the slot of logical entity i is
	// perm[i], so URIs are registered through the inverse permutation and
	// all later emission code can keep addressing entities by their logical
	// URI (uri1/uri2 of the logical index).
	inv1 := make([]int, p.E1Size)
	for logical, slot := range g.perm1 {
		inv1[slot] = logical
	}
	inv2 := make([]int, p.E2Size)
	for logical, slot := range g.perm2 {
		inv2[slot] = logical
	}
	for s := 0; s < p.E1Size; s++ {
		g.b1.AddEntity(uri1(inv1[s]))
	}
	for s := 0; s < p.E2Size; s++ {
		g.b2.AddEntity(uri2(inv2[s]))
	}
	hub1Start := p.E1Size - minInt(hubCount, p.E1Size-m)
	hub2Start := p.E2Size - minInt(hubCount, p.E2Size-m)

	profiles := make(map[eval.Pair]MatchProfile, m)
	for i := 0; i < m; i++ {
		shared := g.sharedTokens(g.cat[i])
		var name1, name2 string
		if g.hasName[i] {
			name1 = g.makeUniqueName()
			name2 = name1
		} else {
			name1 = g.makeUniqueName()
			name2 = g.makeUniqueName()
		}
		own2 := g.ownTokens(2, true)
		tokens1 := append(append([]string{}, shared...), g.ownTokens(1, true)...)
		tokens2 := append(append([]string{}, shared...), own2...)
		g.emitLiterals(g.b1, 1, g.id1(i), name1, tokens1)
		g.emitLiterals(g.b2, 2, g.id2(i), name2, tokens2)
		g.planSequel(i, shared, own2)

		mirrored := g.emitMatchedRelations(i, hub1Start, hub2Start)
		profiles[eval.Pair{E1: g.id1(i), E2: g.id2(i)}] = MatchProfile{
			Category:          g.cat[i],
			HasUniqueName:     g.hasName[i],
			MirroredNeighbors: mirrored,
		}
	}
	g.emitDistractors(1, g.b1, m, p.E1Size, hub1Start)
	g.emitDistractors(2, g.b2, m, p.E2Size, hub2Start)
	return profiles
}

// emitMatchedRelations writes the relation edges of matched identity i on
// both sides, following the neighbor template. Weak matches never mirror.
// Returns whether at least one edge ended up mirrored.
func (g *generator) emitMatchedRelations(i, hub1Start, hub2Start int) bool {
	mirrored := false
	pMirror := g.p.PNeighborMirror
	if g.cat[i] == Weak {
		pMirror = 0
	}
	for _, t := range g.neighbors[i] {
		if g.rng.Float64() < pMirror {
			g.b1.AddObject(g.id1(i), g.pickRelation(1), uri1(t))
			g.b2.AddObject(g.id2(i), g.pickRelation(2), uri2(t))
			mirrored = true
			continue
		}
		if g.rng.Intn(2) == 0 {
			g.b1.AddObject(g.id1(i), g.pickRelation(1), uri1(t))
		} else {
			g.b2.AddObject(g.id2(i), g.pickRelation(2), uri2(t))
		}
	}
	// Occasional hub link: many subjects, one of few objects → the hub
	// relation has low discriminability and must lose the importance race.
	if g.rng.Float64() < 0.3 {
		if hub1Start < g.p.E1Size {
			g.b1.AddObject(g.id1(i), g.relName(1, 0)+"hub", uri1(hub1Start+g.rng.Intn(g.p.E1Size-hub1Start)))
		}
		if hub2Start < g.p.E2Size {
			g.b2.AddObject(g.id2(i), g.relName(2, 0)+"hub", uri2(hub2Start+g.rng.Intn(g.p.E2Size-hub2Start)))
		}
	}
	return mirrored
}

// planSequel records a near-duplicate E2 distractor for matched identity i
// with probability PHardDistractor: one planted evidence token, ~60% of the
// identity's E2 noise tokens, and possibly one of its neighbor targets.
func (g *generator) planSequel(i int, shared, own2 []string) {
	if g.rng.Float64() >= g.p.PHardDistractor {
		return
	}
	var tokens []string
	// Copy the semi-rare and mid evidence tokens — sequels of a franchise
	// share its title vocabulary — but never the globally unique (rare)
	// disambiguators. Absolute valueSim therefore still prefers the true
	// match (its rare tokens each contribute weight 1), while normalized
	// similarities see the sequel as at least as close as the true match.
	for _, t := range shared {
		if len(t) > 0 && t[0] != 'r' {
			tokens = append(tokens, t)
		}
	}
	for _, t := range own2 {
		if g.rng.Float64() < 0.6 {
			tokens = append(tokens, t)
		}
	}
	neighbor := -1
	if len(g.neighbors[i]) > 0 && g.rng.Intn(2) == 0 {
		neighbor = g.neighbors[i][g.rng.Intn(len(g.neighbors[i]))]
	}
	g.sequelPlans = append(g.sequelPlans, sequelPlan{identity: i, tokens: tokens, neighbor: neighbor})
}

// emitDistractors fills the per-KB-only entities: private tokens, unique
// names, random edges into the matched population (in-neighbor noise). On
// side 2, the first distractor slots realize the planned sequels.
func (g *generator) emitDistractors(side int, b *kb.Builder, from, to, hubStart int) {
	plans := g.sequelPlans
	for i := from; i < to; i++ {
		var id kb.EntityID
		if side == 1 {
			id = g.id1(i)
		} else {
			id = g.id2(i)
		}
		if side == 2 && len(plans) > 0 && i < hubStart {
			plan := plans[0]
			plans = plans[1:]
			tokens := append(append([]string{}, plan.tokens...), g.midToken(), g.lowToken())
			g.emitLiterals(b, side, id, g.makeUniqueName(), tokens)
			if plan.neighbor >= 0 {
				b.AddObject(id, g.pickRelation(side), uri2(plan.neighbor))
			}
			continue
		}
		name := g.makeUniqueName()
		g.emitLiterals(b, side, id, name, g.ownTokens(side, side == 2))
		if i >= hubStart {
			continue // hubs stay simple: label + type only
		}
		if g.rng.Float64() >= g.p.PDistractorLink {
			continue // leaf distractor (e.g. an address entity)
		}
		deg := 1 + g.rng.Intn(maxInt(g.p.NeighborsPerEntity, 1))
		for d := 0; d < deg; d++ {
			t := g.rng.Intn(g.p.Matches)
			if side == 1 {
				b.AddObject(id, g.pickRelation(side), uri1(t))
			} else {
				b.AddObject(id, g.pickRelation(side), uri2(t))
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
