package minoaner

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way the README quickstart
// does: build two KBs, resolve, evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	b1 := NewBuilder("left")
	r1 := b1.AddEntity("l:fatduck")
	b1.AddLiteral(r1, "label", "The Fat Duck")
	b1.AddLiteral(r1, "town", "Bray Berkshire")
	c1 := b1.AddEntity("l:chef")
	b1.AddLiteral(c1, "label", "Heston Blumenthal")
	b1.AddObject(r1, "chef", "l:chef")
	k1 := b1.Build()

	b2 := NewBuilder("right")
	r2 := b2.AddEntity("r:fat-duck")
	b2.AddLiteral(r2, "name", "Fat Duck restaurant")
	b2.AddLiteral(r2, "location", "Bray")
	c2 := b2.AddEntity("r:heston")
	b2.AddLiteral(c2, "name", "Heston Blumenthal")
	b2.AddObject(r2, "headChef", "r:heston")
	k2 := b2.Build()

	out, err := Resolve(context.Background(), k1, k2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gt, skipped := GroundTruthFromURIs(k1, k2, [][2]string{
		{"l:fatduck", "r:fat-duck"},
		{"l:chef", "r:heston"},
	})
	if skipped != 0 {
		t.Fatal("ground truth URIs missing")
	}
	var pairs []Pair
	for _, m := range out.Matches {
		pairs = append(pairs, m.Pair)
	}
	m := Evaluate(pairs, gt)
	if m.TruePositives < 2 {
		t.Errorf("end-to-end found %d/2 matches: %+v", m.TruePositives, out.Matches)
	}
}

func TestPublicAPIBenchmark(t *testing.T) {
	p := ScaleProfile(RestaurantProfile(), 0.3)
	d, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Resolve(context.Background(), d.K1, d.K2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs(), d.GT)
	if m.F1 < 0.8 {
		t.Errorf("benchmark F1 = %v, want ≥ 0.8", m.F1)
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	b := NewBuilder("x")
	e := b.AddEntity("u")
	b.AddLiteral(e, "p", "hello world")
	k := b.Build()
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, k); err != nil {
		t.Fatal(err)
	}
	k2, skipped, err := LoadNTriples("x", &buf, false)
	if err != nil || skipped != 0 {
		t.Fatalf("round trip: %v (skipped %d)", err, skipped)
	}
	if k2.Len() != 1 {
		t.Error("round trip lost entities")
	}
	k3, _, err := LoadTSV("y", strings.NewReader("a\tp\tv\n"), false)
	if err != nil || k3.Len() != 1 {
		t.Error("LoadTSV facade")
	}
}

func TestPublicAPIPARISBaseline(t *testing.T) {
	p := ScaleProfile(RestaurantProfile(), 0.3)
	d, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	pairs := PARISBaseline(d.K1, d.K2)
	if len(pairs) == 0 {
		t.Error("PARIS baseline found nothing")
	}
}

func TestPublicAPIRuleAblation(t *testing.T) {
	p := ScaleProfile(RestaurantProfile(), 0.3)
	d, _ := GenerateBenchmark(p)
	cfg := DefaultConfig()
	rules := RuleConfig{Theta: 0.6, EnableR1: true, UseNeighbors: true}
	cfg.Rules = &rules
	out, err := Resolve(context.Background(), d.K1, d.K2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Matches {
		if m.Rule.String() != "R1" {
			t.Errorf("R1-only config produced %v", m.Rule)
		}
	}
}

func TestPublicAPIResolveSharded(t *testing.T) {
	p := ScaleProfile(RestaurantProfile(), 0.3)
	d, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Resolve(context.Background(), d.K1, d.K2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ResolveSharded(context.Background(), d.K1, d.K2, DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded.Matches, ref.Matches) {
		t.Error("ResolveSharded matches differ from Resolve")
	}
	cfg := DefaultConfig()
	cfg.ShardCount = 3
	routed, err := Resolve(context.Background(), d.K1, d.K2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(routed.Matches, ref.Matches) {
		t.Error("ShardCount-routed Resolve matches differ from the monolithic run")
	}
}

func TestPublicAPIStreamLoaders(t *testing.T) {
	const nt = "<a> <label> \"hello world\" .\n<a> <linked> <b> .\n<b> <label> \"world two\" .\n"
	k, skipped, err := StreamNTriples("s", strings.NewReader(nt), false)
	if err != nil || skipped != 0 {
		t.Fatalf("StreamNTriples: %v (skipped %d)", err, skipped)
	}
	if k.Len() != 2 || k.Triples() != 3 {
		t.Errorf("stream KB = %v, want 2 entities / 3 triples", k)
	}
	k2, _, err := StreamTSV("t", strings.NewReader("a\tp\tv\n"), false)
	if err != nil || k2.Len() != 1 {
		t.Error("StreamTSV facade")
	}
	b := NewStreamBuilderWithInterner("x", NewInterner())
	e := b.AddEntity("u")
	b.AddLiteral(e, "p", "tok")
	if b.Build().Len() != 1 {
		t.Error("StreamBuilder facade")
	}
}

func TestPublicAPIResolveCancellation(t *testing.T) {
	p := ScaleProfile(RestaurantProfile(), 0.3)
	d, err := GenerateBenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Resolve(context.Background(), d.K1, d.K2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) == 0 {
		t.Error("Resolve found no matches")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Resolve(ctx, d.K1, d.K2, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Resolve = %v, want context.Canceled", err)
	}
	// The deprecated alias must stay a faithful thin wrapper while callers
	// migrate to the ctx-first canonical name.
	alias, err := ResolveContext(context.Background(), d.K1, d.K2, DefaultConfig()) //nolint:staticcheck // exercising the deprecated alias
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alias.Matches, out.Matches) {
		t.Error("deprecated ResolveContext alias diverged from Resolve")
	}
}
