// Package minoaner is a schema-agnostic, non-iterative, massively parallel
// entity-resolution library for Web knowledge bases — a from-scratch Go
// reproduction of "MinoanER: Schema-Agnostic, Non-Iterative, Massively
// Parallel Resolution of Web Entities" (Efthymiou, Papadakis, Stefanidis,
// Christophides; EDBT 2019).
//
// Given two clean (duplicate-free) knowledge bases, MinoanER finds the
// entity descriptions that refer to the same real-world entity without any
// schema alignment, training data or expert configuration:
//
//	k1, _, _ := minoaner.LoadNTriples("dbpedia", f1, true)
//	k2, _, _ := minoaner.LoadNTriples("wikidata", f2, true)
//	out, err := minoaner.Resolve(ctx, k1, k2, minoaner.DefaultConfig())
//	for _, m := range out.Matches {
//	    fmt.Println(k1.Entity(m.Pair.E1).URI, "=", k2.Entity(m.Pair.E2).URI, m.Rule)
//	}
//
// The pipeline follows the paper end to end: token-based value similarity
// (Def. 2.1), statistics-driven discovery of important relations and entity
// names (§2.2), composite name/token blocking with Block Purging (§3.1), a
// pruned disjunctive blocking graph (Algorithm 1), and four schema-agnostic
// matching rules — unique names (R1), strong value similarity (R2),
// threshold-free rank aggregation of value and neighbor evidence (R3) and a
// reciprocity filter (R4) — applied in one non-iterative pass (Algorithm 2).
// Every stage is data-parallel over a configurable worker pool.
//
// The exported surface is grouped into four arcs:
//
//   - Build — constructing and loading knowledge bases;
//   - Resolve — the batch pipeline over a KB pair;
//   - Query — build-once substrates and per-entity queries;
//   - Snapshots — persisted substrates with memory-mapped loading;
//   - Serve — the wire schema and server behind cmd/minoanerd.
//
// Every entry point that performs resolution work takes a context first:
// cancellation and deadlines propagate into the data-parallel kernels, which
// observe ctx between chunks and abort promptly.
//
// The library also ships the paper's full evaluation apparatus: synthetic
// benchmark generators profiled after the paper's four dataset pairs,
// reimplementations of the compared systems (BSL, PARIS, SiGMa, RiMOM-IM,
// LINDA-style), and an experiment suite that regenerates every table and
// figure of §6 (see cmd/experiments and EXPERIMENTS.md).
package minoaner

import (
	"context"
	"io"

	"minoaner/internal/baselines"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/server"
	"minoaner/internal/snapshot"
)

// ---------------------------------------------------------------------------
// Build: constructing and loading knowledge bases.

// KB is an immutable knowledge base of entity descriptions.
type KB = kb.KB

// Builder incrementally constructs a KB from entities, literal attributes
// and object (relation) statements.
type Builder = kb.Builder

// EntityID identifies a description within one KB.
type EntityID = kb.EntityID

// TokenID is a dense identifier into a token dictionary (Interner).
type TokenID = kb.TokenID

// Interner is a token dictionary that interns every distinct token string
// once. Share one Interner between the two KBs of a pair (see
// NewBuilderWithInterner) and the resolution pipeline operates on a single
// dense token-ID space end to end, skipping all cross-dictionary work.
type Interner = kb.Interner

// Description is one entity: a URI with attribute-value pairs and relations.
type Description = kb.Description

// AttributeValue is one literal attribute-value pair of a description —
// the unit EntityQuery statements are expressed in.
type AttributeValue = kb.AttributeValue

// NewBuilder starts a KB with the given display name.
func NewBuilder(name string) *Builder { return kb.NewBuilder(name) }

// NewInterner returns an empty shared token dictionary.
func NewInterner() *Interner { return kb.NewInterner() }

// NewBuilderWithInterner starts a KB that interns its tokens into the given
// shared dictionary — the fast path for resolving the resulting KB against
// another KB built over the same Interner.
func NewBuilderWithInterner(name string, dict *Interner) *Builder {
	return kb.NewBuilderWithInterner(name, dict)
}

// Schema is the schema-axis dictionary set: relation predicates, attribute
// names and normalized literal values, interned once at KB build time into
// dense IDs the statistics stage counts over. Share one Schema between the
// two KBs of a pair (see NewBuilderWithDicts) the same way the token
// Interner is shared.
type Schema = kb.Schema

// NewSchema returns an empty shared schema dictionary set.
func NewSchema() *Schema { return kb.NewSchema() }

// NewBuilderWithDicts starts a KB over a shared token dictionary AND a
// shared schema dictionary — the full dense-ID pairing for clean-clean ER.
func NewBuilderWithDicts(name string, dict *Interner, schema *Schema) *Builder {
	return kb.NewBuilderWithDicts(name, dict, schema)
}

// StreamBuilder is the memory-bounded KB construction path: statements are
// tokenized and interned as they arrive, and only forward-referenced object
// statements are held until Build — instead of queueing the whole input.
type StreamBuilder = kb.StreamBuilder

// NewStreamBuilder starts a streaming KB build with the given display name.
func NewStreamBuilder(name string) *StreamBuilder { return kb.NewStreamBuilder(name) }

// NewStreamBuilderWithInterner starts a streaming KB build over a shared
// token dictionary (see NewBuilderWithInterner).
func NewStreamBuilderWithInterner(name string, dict *Interner) *StreamBuilder {
	return kb.NewStreamBuilderWithInterner(name, dict)
}

// NewStreamBuilderWithDicts starts a streaming KB build over a shared token
// dictionary and a shared schema dictionary (see NewBuilderWithDicts).
func NewStreamBuilderWithDicts(name string, dict *Interner, schema *Schema) *StreamBuilder {
	return kb.NewStreamBuilderWithDicts(name, dict, schema)
}

// LoadNTriples reads a KB in N-Triples format; lenient skips malformed
// lines instead of failing. It returns the KB and the skipped-line count.
func LoadNTriples(name string, r io.Reader, lenient bool) (*KB, int, error) {
	return kb.LoadNTriples(name, r, lenient)
}

// StreamNTriples is LoadNTriples through the streaming construction path —
// tokens are interned incrementally instead of after a whole-file pass, so
// peak load memory tracks the KB, not the raw statement queue.
func StreamNTriples(name string, r io.Reader, lenient bool) (*KB, int, error) {
	return kb.StreamNTriples(name, r, lenient)
}

// LoadTSV reads a KB from tab-separated subject/predicate/object rows.
func LoadTSV(name string, r io.Reader, uriObjects bool) (*KB, int, error) {
	return kb.LoadTSV(name, r, uriObjects)
}

// StreamTSV is LoadTSV through the streaming construction path.
func StreamTSV(name string, r io.Reader, uriObjects bool) (*KB, int, error) {
	return kb.StreamTSV(name, r, uriObjects)
}

// WriteNTriples serializes a KB in N-Triples format.
func WriteNTriples(w io.Writer, k *KB) error { return kb.WriteNTriples(w, k) }

// ---------------------------------------------------------------------------
// Resolve: the batch pipeline over a KB pair.

// Config holds the MinoanER parameters: k (name attributes), K (candidates
// per node), N (top relations), θ (rank-aggregation trade-off), the Block
// Purging cap and the worker count.
type Config = core.Config

// RuleConfig toggles the individual matching rules (R1–R4) and neighbor
// evidence, for ablation studies.
type RuleConfig = matching.Config

// Output is the result of a pipeline run: matches with rule provenance,
// block statistics and per-stage timings.
type Output = core.Output

// Match is one detected correspondence and the rule that produced it.
type Match = matching.Match

// Rule identifies the matching rule (R1–R4) behind a match.
type Rule = matching.Rule

// NoBlockPurging disables Block Purging when assigned to
// Config.MaxBlockFraction (whose zero value selects the paper's default).
const NoBlockPurging = core.NoBlockPurging

// DefaultConfig returns the paper's suggested global configuration
// (k, K, N, θ) = (2, 15, 3, 0.6).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultRules returns the paper's rule configuration (all rules enabled).
func DefaultRules() RuleConfig { return matching.DefaultConfig() }

// Resolve runs the full MinoanER pipeline on two clean KBs. The pipeline
// observes ctx between parallel chunks and stage barriers, returning
// ctx.Err() promptly on cancellation or deadline expiry. When cfg requests
// sharded execution (Config.ShardCount or Config.MaxShardBytes), the run is
// delegated to the partitioned engine — see ResolveSharded.
func Resolve(ctx context.Context, k1, k2 *KB, cfg Config) (*Output, error) {
	return core.ResolveContext(ctx, k1, k2, cfg)
}

// ResolveSharded runs the pipeline with E1 split into the given number of
// contiguous entity shards: per-entity stages (top-neighbor rows, β/γ
// candidate rows, rank aggregation) execute one shard at a time with bounded
// transient memory over the shared blocking substrate. Output is
// byte-identical to Resolve for every shard count; shards < 1 derives the
// count from cfg.
func ResolveSharded(ctx context.Context, k1, k2 *KB, cfg Config, shards int) (*Output, error) {
	return core.ResolveSharded(ctx, k1, k2, cfg, shards)
}

// ResolveContext is the original name of the context-aware pipeline entry
// point, kept as a thin alias while callers migrate.
//
// Deprecated: ctx-first signatures are the canonical API; use Resolve.
func ResolveContext(ctx context.Context, k1, k2 *KB, cfg Config) (*Output, error) {
	return Resolve(ctx, k1, k2, cfg)
}

// ---------------------------------------------------------------------------
// Query: build-once substrates and per-entity queries.

// Substrate is the reusable, immutable pair-level state of a KB pair: name
// attributes, relation ranks, top-neighbor rows, blocking collections and
// the token index, built once by BuildSubstrate and shared by any number of
// ResolveWith runs and concurrent QueryEntity calls.
type Substrate = core.Substrate

// EntityQuery is one entity description to resolve against a Substrate —
// either a synthetic new entity or (via SelfURI / QueryFromEntity) a member
// of E1 replayed through the query path.
type EntityQuery = core.EntityQuery

// QueryObject is one relation statement of an EntityQuery.
type QueryObject = core.QueryObject

// QueryMatch is one ranked candidate returned by QueryEntity, with the
// matching-rule claim and the value/neighbor evidence behind it.
type QueryMatch = core.QueryMatch

// BuildSubstrate runs the build-once stages of the pipeline (statistics and
// blocking) and freezes the result for reuse. Resolve is exactly
// BuildSubstrate followed by ResolveWith.
func BuildSubstrate(ctx context.Context, k1, k2 *KB, cfg Config) (*Substrate, error) {
	return core.BuildSubstrate(ctx, k1, k2, cfg)
}

// ResolveWith runs the per-entity stages (blocking graph and matching) over
// a prebuilt Substrate. For any substrate built from (k1, k2, cfg), the
// output is byte-identical to Resolve(ctx, k1, k2, cfg).
func ResolveWith(ctx context.Context, sub *Substrate, cfg Config) (*Output, error) {
	return core.ResolveWith(ctx, sub, cfg)
}

// QueryEntity resolves a single entity description against a Substrate
// without rerunning the batch pipeline, returning ranked candidates from
// E2. A query replaying an E1 member (see QueryFromEntity) reproduces that
// entity's batch candidate rows and rule decisions exactly. Safe for
// concurrent use on one Substrate.
func QueryEntity(ctx context.Context, sub *Substrate, q EntityQuery, cfg Config) ([]QueryMatch, error) {
	return core.QueryEntity(ctx, sub, q, cfg)
}

// QueryFromEntity lifts an existing E1 entity into an EntityQuery that
// replays it through the per-entity query path.
func QueryFromEntity(k *KB, e EntityID) EntityQuery { return core.QueryFromEntity(k, e) }

// ---------------------------------------------------------------------------
// Snapshots: persisted substrates with memory-mapped loading.

// LoadedSnapshot is an open substrate snapshot. The substrate aliases the
// snapshot bytes (a read-only memory mapping when possible); Close unmaps
// and must only be called once all queries over the substrate have drained.
type LoadedSnapshot = snapshot.Loaded

// WriteSnapshot serializes a built substrate — including its prewarmed
// per-entity query state — into the versioned binary snapshot format.
func WriteSnapshot(w io.Writer, sub *Substrate) error { return snapshot.WriteSubstrate(w, sub) }

// WriteSnapshotFile writes a substrate snapshot to path atomically.
func WriteSnapshotFile(path string, sub *Substrate) error {
	return snapshot.WriteSubstrateFile(path, sub)
}

// OpenSnapshot memory-maps a snapshot file and reinterprets its columns in
// place: the returned substrate is query-ready (its persisted query state is
// installed) after near-zero copying work.
func OpenSnapshot(path string) (*LoadedSnapshot, error) { return snapshot.OpenSubstrate(path) }

// ReadSnapshot decodes a snapshot image from memory through the portable
// copying decoder (the cross-endian path; data must stay immutable).
func ReadSnapshot(data []byte) (*LoadedSnapshot, error) { return snapshot.ReadSubstrate(data) }

// ---------------------------------------------------------------------------
// Serve: the wire schema and server behind cmd/minoanerd.

// QueryCandidate is the shared wire form of one ranked QueryMatch — the
// JSON schema emitted both by `cmd/minoaner -query -json` and inside the
// /v1/pairs/{id}/query response of cmd/minoanerd, byte-compatible by
// construction.
type QueryCandidate = server.QueryCandidate

// QueryCandidates lowers ranked QueryMatch rows onto the shared wire
// schema; the result is never nil, so an empty ranking serializes as [].
func QueryCandidates(ms []QueryMatch) []QueryCandidate { return server.Candidates(ms) }

// Server is the resolution-as-a-service HTTP server: a registry of loaded
// KB pairs whose substrates are built once and shared across requests,
// behind the versioned /v1 query API (see cmd/minoanerd).
type Server = server.Server

// ServerOptions configures NewServer; the zero value serves on a random
// localhost port with production defaults.
type ServerOptions = server.Options

// NewServer builds a resolution server with an empty pair registry.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// ---------------------------------------------------------------------------
// Evaluate and benchmark: the paper's evaluation apparatus.

// Pair is a cross-KB correspondence.
type Pair = eval.Pair

// GroundTruth is a set of true matches used for evaluation.
type GroundTruth = eval.GroundTruth

// Metrics is the precision / recall / F1 triple.
type Metrics = eval.Metrics

// NewGroundTruth builds a GroundTruth from pairs.
func NewGroundTruth(pairs []Pair) *GroundTruth { return eval.NewGroundTruth(pairs) }

// GroundTruthFromURIs resolves URI-level correspondences against the KBs,
// returning the ground truth and the number of pairs whose URIs were absent.
func GroundTruthFromURIs(k1, k2 *KB, uriPairs [][2]string) (*GroundTruth, int) {
	pairs, skipped := eval.PairsFromURIs(k1, k2, uriPairs)
	return eval.NewGroundTruth(pairs), skipped
}

// Evaluate scores proposed matches against the ground truth.
func Evaluate(matches []Pair, gt *GroundTruth) Metrics { return eval.Evaluate(matches, gt) }

// BenchmarkProfile configures the synthetic benchmark generator.
type BenchmarkProfile = datagen.Profile

// BenchmarkDataset is a generated KB pair with ground truth.
type BenchmarkDataset = datagen.Dataset

// The four benchmark presets mirror the paper's Table 1 dataset profiles.
var (
	RestaurantProfile      = datagen.Restaurant
	RexaDBLPProfile        = datagen.RexaDBLP
	BBCMusicDBpediaProfile = datagen.BBCMusicDBpedia
	YAGOIMDbProfile        = datagen.YAGOIMDb
)

// GenerateBenchmark builds a synthetic clean-clean ER benchmark.
func GenerateBenchmark(p BenchmarkProfile) (*BenchmarkDataset, error) { return datagen.Generate(p) }

// ScaleProfile shrinks or grows a benchmark profile's entity counts.
func ScaleProfile(p BenchmarkProfile, factor float64) BenchmarkProfile {
	return datagen.Scale(p, factor)
}

// PARISBaseline runs the reimplemented PARIS matcher (Table 3 baseline).
func PARISBaseline(k1, k2 *KB) []Pair {
	return baselines.PARIS(k1, k2, baselines.DefaultPARISConfig())
}
