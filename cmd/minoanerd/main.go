// Command minoanerd is the long-running resolution server: an HTTP/JSON
// service holding a registry of loaded KB pairs whose blocking/statistics
// substrates are built once and shared across all requests — batch Resolve
// as the index build, per-entity queries as the traffic.
//
// Serve:
//
//	minoanerd [-addr 127.0.0.1:7870] [-drain 15s] [-timeout 30s]
//	          [-max-timeout 5m] [-max-body 1048576] [-pair SPEC ...]
//
// Each -pair SPEC (repeatable) preloads one pair at startup. A SPEC is
// either a JSON LoadPairRequest body — e.g.
// '{"id":"r","snapshot":"/data/pair.snap"}' — or a bare path ending in
// .snap, shorthand for a snapshot-sourced pair. Snapshot-sourced pairs are
// memory-mapped and query-ready without a rebuild, so a server restarted
// from snapshots reaches readiness in milliseconds instead of re-running
// every substrate build.
//
// The /v1 API (JSON bodies; errors use {"error":{"code","message"}}):
//
//	POST   /v1/pairs                 load/build a pair (async; poll status)
//	GET    /v1/pairs                 list loaded pairs with build timings
//	GET    /v1/pairs/{id}            one pair's status and timings
//	DELETE /v1/pairs/{id}            unload a pair (aborts an in-flight build)
//	POST   /v1/pairs/{id}/query      resolve one entity description → ranked candidates
//	POST   /v1/pairs/{id}/resolve    batch resolution over the shared substrate
//	GET    /v1/pairs/{id}/entities   E1 URI prefix (load-test corpus)
//	GET    /healthz, /readyz         liveness / readiness
//
// On SIGINT/SIGTERM the server drains: readiness flips immediately,
// in-flight queries finish (bounded by -drain), in-flight builds abort.
//
// Load test (against a running server):
//
//	minoanerd -loadtest -target http://127.0.0.1:7870 -pair ID \
//	          [-clients 4] [-queries 2000]
//
// fetches the pair's E1 URIs and hammers the query endpoint with the given
// concurrency, reporting qps and latency percentiles.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minoaner/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7870", "listen address (use :0 for an ephemeral port)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window for in-flight requests")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms deadlines")
		maxBody    = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		quiet      = flag.Bool("quiet", false, "suppress per-request access logs")

		loadtest = flag.Bool("loadtest", false, "run the load-test client instead of serving")
		target   = flag.String("target", "http://127.0.0.1:7870", "base URL of the server to load-test")
		clients  = flag.Int("clients", 4, "concurrent load-test clients")
		queries  = flag.Int("queries", 2000, "total load-test requests")

		pairs []string
	)
	flag.Func("pair", "serve: preload a pair (JSON LoadPairRequest or a .snap path; repeatable); loadtest: the pair ID to hammer",
		func(v string) error { pairs = append(pairs, v); return nil })
	flag.Parse()

	if *loadtest {
		if len(pairs) != 1 {
			fmt.Fprintln(os.Stderr, "minoanerd: -loadtest requires exactly one -pair ID")
			os.Exit(2)
		}
		runLoadtest(*target, pairs[0], *clients, *queries)
		return
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv := server.New(server.Options{
		Addr:           *addr,
		Logger:         logger,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	preloaded := make([]*server.Pair, 0, len(pairs))
	for _, raw := range pairs {
		spec, err := parsePairSpec(raw)
		exitOn(err)
		p, _, err := srv.Registry().Load(spec)
		exitOn(err)
		preloaded = append(preloaded, p)
	}

	bound, err := srv.Start()
	exitOn(err)
	// The listen line goes to stdout so harnesses (make serve-smoke) can
	// discover an ephemeral port.
	fmt.Printf("minoanerd: listening on %s\n", bound)
	for _, p := range preloaded {
		<-p.Done()
		info := srv.Registry().Info(p)
		if info.Status == server.StatusFailed {
			exitOn(fmt.Errorf("preloading pair %s: %s", info.ID, info.Error))
		}
		fmt.Printf("minoanerd: pair %s ready (load %.1fms, prewarm %.1fms)\n",
			info.ID, info.LoadMS, info.PrewarmMS)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("minoanerd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	exitOn(srv.Shutdown(dctx))
	fmt.Println("minoanerd: shutdown complete")
}

// parsePairSpec turns one -pair value into a load request: a JSON body
// verbatim, or a bare *.snap path as snapshot-source shorthand.
func parsePairSpec(raw string) (server.LoadPairRequest, error) {
	var spec server.LoadPairRequest
	if strings.HasPrefix(strings.TrimSpace(raw), "{") {
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			return spec, fmt.Errorf("parsing -pair spec: %w", err)
		}
		return spec, nil
	}
	if strings.HasSuffix(raw, ".snap") {
		spec.Snapshot = raw
		return spec, nil
	}
	return spec, fmt.Errorf("-pair %q is neither a JSON spec nor a .snap path", raw)
}

// runLoadtest fetches the pair's E1 URIs and hammers the query endpoint.
func runLoadtest(target, pairID string, clients, queries int) {
	if pairID == "" {
		fmt.Fprintln(os.Stderr, "minoanerd: -loadtest requires -pair")
		os.Exit(2)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/pairs/%s/entities?limit=0", target, pairID))
	exitOn(err)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	exitOn(err)
	if resp.StatusCode != http.StatusOK {
		exitOn(fmt.Errorf("fetching entities: status %d: %s", resp.StatusCode, body))
	}
	var ents server.EntitiesResponse
	exitOn(json.Unmarshal(body, &ents))
	if len(ents.URIs) == 0 {
		exitOn(fmt.Errorf("pair %s has no E1 entities to query", pairID))
	}
	reqs := make([]server.QueryRequest, len(ents.URIs))
	for i, uri := range ents.URIs {
		reqs[i] = server.QueryRequest{URI: uri}
	}
	res, err := server.LoadTest(context.Background(), target, pairID, reqs, server.LoadOptions{
		Clients: clients,
		Queries: queries,
	})
	fmt.Println("minoanerd loadtest:", res)
	exitOn(err)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "minoanerd:", err)
		os.Exit(1)
	}
}
