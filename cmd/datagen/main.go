// Command datagen materializes one of the synthetic benchmark presets as a
// pair of N-Triples dumps plus a tab-separated ground-truth file, so the
// benchmarks can be consumed by external tools (or fed back through
// cmd/minoaner).
//
// Usage:
//
//	datagen -preset Restaurant -out ./bench            # writes e1.nt e2.nt gt.tsv
//	datagen -preset YAGO-IMDb -scale 0.1 -seed 7 -out ./bench
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"minoaner"
	"minoaner/internal/datagen"
)

func main() {
	var (
		preset = flag.String("preset", "Restaurant", "preset name (Restaurant, Rexa-DBLP, BBCmusic-DBpedia, YAGO-IMDb)")
		scale  = flag.Float64("scale", 1.0, "entity-count scale factor")
		seed   = flag.Int64("seed", 0, "override the preset's PRNG seed (0 = keep)")
		outDir = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var profile datagen.Profile
	found := false
	for _, p := range datagen.Presets() {
		if p.Name == *preset {
			profile = p
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *scale != 1.0 {
		profile = datagen.Scale(profile, *scale)
	}
	if *seed != 0 {
		profile.Seed = *seed
	}
	d, err := datagen.Generate(profile)
	exitOn(err)

	exitOn(os.MkdirAll(*outDir, 0o755))
	writeKB := func(name string, k *minoaner.KB) string {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		exitOn(err)
		defer f.Close()
		exitOn(minoaner.WriteNTriples(f, k))
		return path
	}
	p1 := writeKB("e1.nt", d.K1)
	p2 := writeKB("e2.nt", d.K2)

	gtPath := filepath.Join(*outDir, "gt.tsv")
	f, err := os.Create(gtPath)
	exitOn(err)
	w := bufio.NewWriter(f)
	for _, p := range d.GT.Pairs() {
		fmt.Fprintf(w, "%s\t%s\n", d.K1.Entity(p.E1).URI, d.K2.Entity(p.E2).URI)
	}
	exitOn(w.Flush())
	exitOn(f.Close())

	fmt.Printf("datagen: %s → %s (%d entities, %d triples), %s (%d entities, %d triples), %s (%d matches)\n",
		profile.Name, p1, d.K1.Len(), d.K1.Triples(), p2, d.K2.Len(), d.K2.Triples(), gtPath, d.GT.Len())
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
