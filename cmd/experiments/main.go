// Command experiments regenerates the tables and figures of the MinoanER
// paper's evaluation (§6) on the synthetic benchmark presets.
//
// Usage:
//
//	experiments -all                  # everything (Tables 1–4, Figures 2, 5, 6)
//	experiments -table 3              # one table
//	experiments -figure 2 -csv f2.csv # one figure, plus raw CSV points
//	experiments -scale 0.2            # shrink datasets 5× for a quick run
//	experiments -datasets Restaurant,YAGO-IMDb
//	experiments -bench                # per-stage timings → BENCH_<date>.json
//	experiments -bench -reps 5 -benchout perf.json
//	experiments -bench -shards 1,8    # + sharded-execution data points
//	experiments -bench -parworkers 0  # + a workers=GOMAXPROCS data point
//	experiments -bench -scale 0.25 -check BENCH_baseline.json
//	                                  # CI regression gate: fail on >2× stage
//	                                  # regression against the committed baseline
//	experiments -bench -datasets Rexa-DBLP -cpuprofile cpu.pprof -memprofile mem.pprof
//	                                  # pprof CPU/heap profiles of one preset run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"minoaner/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1–4)")
		figure    = flag.Int("figure", 0, "regenerate one figure (2, 5 or 6)")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		datasets  = flag.String("datasets", "", "comma-separated preset names (default: all four)")
		csvPath   = flag.String("csv", "", "write Figure 2 points as CSV to this path")
		bench     = flag.Bool("bench", false, "run the per-stage pipeline benchmark and write a BENCH JSON report")
		reps      = flag.Int("reps", 3, "benchmark repetitions per dataset (with -bench)")
		benchout  = flag.String("benchout", "", "benchmark report path (default BENCH_<date>.json)")
		shardsCSV = flag.String("shards", "", "comma-separated shard counts to benchmark with ResolveSharded (with -bench)")
		parCSV    = flag.String("parworkers", "", "comma-separated extra worker counts to benchmark the monolithic pipeline at (0 = all cores; with -bench)")
		check     = flag.String("check", "", "baseline BENCH JSON to gate against (implies -bench; exit 1 on regression)")
		tolerance = flag.Float64("tolerance", 2.0, "bench-check failure ratio: fail when a stage exceeds baseline×tolerance")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	)
	flag.Parse()
	// Profiles flush through flushProfiles so that error exits (exitOn →
	// os.Exit, which skips defers) still produce complete, loadable files —
	// e.g. a failing -check gate with -cpuprofile set.
	if *cpuProf != "" || *memProf != "" {
		var cpuFile *os.File
		if *cpuProf != "" {
			f, err := os.Create(*cpuProf)
			exitOn(err)
			exitOn(pprof.StartCPUProfile(f))
			cpuFile = f
		}
		var once sync.Once
		flushProfiles = func() {
			once.Do(func() {
				if cpuFile != nil {
					pprof.StopCPUProfile()
					if err := cpuFile.Close(); err != nil {
						fmt.Fprintln(os.Stderr, "experiments:", err)
						return
					}
					fmt.Printf("(CPU profile written to %s)\n", *cpuProf)
				}
				if *memProf != "" {
					f, err := os.Create(*memProf)
					if err != nil {
						fmt.Fprintln(os.Stderr, "experiments:", err)
						return
					}
					runtime.GC() // profile the live set, not allocator slack
					if err := pprof.WriteHeapProfile(f); err == nil {
						fmt.Printf("(heap profile written to %s)\n", *memProf)
					} else {
						fmt.Fprintln(os.Stderr, "experiments:", err)
					}
					if err := f.Close(); err != nil {
						fmt.Fprintln(os.Stderr, "experiments:", err)
					}
				}
			})
		}
		defer flushProfiles()
	}
	if *check != "" {
		*bench = true
	}
	if !*all && *table == 0 && *figure == 0 && !*bench {
		flag.Usage()
		os.Exit(2)
	}
	shardCounts, err := parseShardCounts(*shardsCSV)
	exitOn(err)
	workerCounts, err := parseWorkerCounts(*parCSV)
	exitOn(err)
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	suite, err := experiments.NewSuite(experiments.Options{
		ScaleFactor: *scale,
		Workers:     *workers,
		Datasets:    names,
	})
	exitOn(err)

	if *bench {
		report, err := suite.Bench(*reps, shardCounts, workerCounts)
		exitOn(err)
		path := *benchout
		if path == "" {
			path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
		}
		exitOn(report.WriteJSON(path))
		fmt.Print(experiments.FormatBench(report))
		fmt.Printf("(report written to %s)\n", path)
		if *check != "" {
			baseline, err := experiments.ReadBenchJSON(*check)
			exitOn(err)
			exitOn(experiments.CheckBench(report, baseline, *tolerance))
			fmt.Printf("bench check OK against %s (tolerance ×%g)\n", *check, *tolerance)
		}
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}

	run := func(id string, f func() error) {
		fmt.Printf("==== %s ====\n", id)
		exitOn(f())
		fmt.Println()
	}
	wantTable := func(n int) bool { return *all || *table == n }
	wantFigure := func(n int) bool { return *all || *figure == n }

	if wantTable(1) {
		run("Table 1: dataset statistics", func() error {
			rows, err := suite.Table1()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(rows))
			return nil
		})
	}
	if wantTable(2) {
		run("Table 2: block statistics", func() error {
			rows, err := suite.Table2()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(rows))
			return nil
		})
	}
	if wantFigure(2) {
		run("Figure 2: value vs neighbor similarity of matches", func() error {
			points, err := suite.Figure2()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure2(points))
			if *csvPath != "" {
				if err := os.WriteFile(*csvPath, []byte(experiments.Figure2CSV(points)), 0o644); err != nil {
					return err
				}
				fmt.Printf("(points written to %s)\n", *csvPath)
			}
			return nil
		})
	}
	if wantTable(3) {
		run("Table 3: comparison with baselines", func() error {
			rows, err := suite.Table3()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable3(rows))
			return nil
		})
	}
	if wantTable(4) {
		run("Table 4: matching-rule evaluation", func() error {
			rows, err := suite.Table4()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable4(rows))
			return nil
		})
	}
	if wantFigure(5) {
		run("Figure 5: parameter sensitivity", func() error {
			points, err := suite.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure5(points))
			return nil
		})
	}
	if wantFigure(6) {
		run("Figure 6: scalability", func() error {
			points, err := suite.Figure6()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure6(points))
			return nil
		})
	}
}

// parseCounts parses a comma-separated integer list, rejecting entries
// below min — the shared parser behind -shards (min 1) and -parworkers
// (min 0, where 0 means all cores).
func parseCounts(csv, flagName, want string, min int) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("invalid %s entry %q (want %s)", flagName, part, want)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseShardCounts(csv string) ([]int, error) {
	return parseCounts(csv, "-shards", "positive integers", 1)
}

func parseWorkerCounts(csv string) ([]int, error) {
	return parseCounts(csv, "-parworkers", "non-negative integers; 0 = all cores", 0)
}

// flushProfiles finalizes any pprof profiles in flight; exitOn calls it
// because os.Exit skips deferred calls. It is idempotent (sync.Once).
var flushProfiles = func() {}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flushProfiles()
		os.Exit(1)
	}
}
