// Command minoaner resolves the entities of two knowledge bases and prints
// the matches as tab-separated URI pairs.
//
// Usage:
//
//	minoaner -e1 kb1.nt -e2 kb2.nt [-format nt|tsv] [-gt truth.tsv]
//	         [-k 2] [-K 15] [-N 3] [-theta 0.6] [-workers 0] [-rules]
//	         [-timeout 30s] [-shards 0] [-stream] [-query URI] [-json]
//	         [-save-snapshot pair.snap]
//	minoaner -snapshot pair.snap [-query URI] [-json] [...]
//
// With -gt (a TSV of uri1<TAB>uri2 true matches) it also reports precision,
// recall and F1. With -rules each output line is annotated with the
// matching rule (R1–R3) that produced it. With -timeout the resolution is
// aborted (exit status 1) once the duration elapses. With -shards P the
// per-entity stages run over P contiguous E1 shards with bounded peak
// memory (output is identical for every P). With -stream the KBs are loaded
// through the streaming ingestion path, which interns tokens incrementally
// instead of queueing the whole file.
//
// With -query URI the batch run is replaced by a single per-entity query
// against the build-once substrate: a URI present in E1 is replayed through
// the query path; any other URI describes a new entity whose statements are
// read from stdin as predicate<TAB>object lines (objects that are not E1
// URIs are treated as literal values). Candidates print as
// uri<TAB>score<TAB>rule, or as a JSON array with -json.
//
// With -save-snapshot the build-once substrate (including the prewarmed
// query state) is persisted to the given path after construction; with
// -snapshot a previously saved snapshot replaces -e1/-e2 entirely — the
// substrate is memory-mapped and query-ready without rebuilding, and both
// batch resolution and -query run against it with identical output.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"minoaner"
)

func main() {
	var (
		e1Path  = flag.String("e1", "", "path to the first KB (required)")
		e2Path  = flag.String("e2", "", "path to the second KB (required)")
		format  = flag.String("format", "nt", "input format: nt (N-Triples) or tsv")
		gtPath  = flag.String("gt", "", "optional ground truth TSV (uri1<TAB>uri2) for evaluation")
		nameK   = flag.Int("k", 2, "name attributes per KB (paper parameter k)")
		topK    = flag.Int("K", 15, "candidates per entity per weight (paper parameter K)")
		relN    = flag.Int("N", 3, "most important relations per entity (paper parameter N)")
		theta   = flag.Float64("theta", 0.6, "rank-aggregation trade-off θ in (0,1)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		rules   = flag.Bool("rules", false, "annotate matches with the producing rule")
		quiet   = flag.Bool("quiet", false, "suppress the summary on stderr")
		timeout = flag.Duration("timeout", 0, "abort resolution after this duration (0 = no limit)")
		shards  = flag.Int("shards", 0, "split E1 into this many shards for memory-bounded execution (0 = monolithic)")
		stream  = flag.Bool("stream", false, "load KBs through the streaming ingestion path")
		query   = flag.String("query", "", "resolve one entity (an E1 URI, or a new URI with statements on stdin) instead of the batch pipeline")
		jsonOut = flag.Bool("json", false, "with -query, emit candidates as a JSON array")
		snapIn  = flag.String("snapshot", "", "load the substrate from this snapshot file instead of building from -e1/-e2")
		snapOut = flag.String("save-snapshot", "", "persist the built substrate (with prewarmed query state) to this snapshot file")
	)
	flag.Parse()
	if *snapIn == "" && (*e1Path == "" || *e2Path == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *snapIn != "" && *snapOut != "" {
		exitOn(fmt.Errorf("-snapshot and -save-snapshot are mutually exclusive"))
	}

	cfg := minoaner.DefaultConfig()
	cfg.NameK = *nameK
	cfg.TopK = *topK
	cfg.RelN = *relN
	cfg.Theta = *theta
	cfg.Workers = *workers
	cfg.ShardCount = *shards

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		k1, k2 *minoaner.KB
		sub    *minoaner.Substrate
	)
	if *snapIn != "" {
		start := time.Now()
		loaded, err := minoaner.OpenSnapshot(*snapIn)
		exitOn(err)
		sub = loaded.Substrate()
		k1, k2 = sub.K1(), sub.K2()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "minoaner: snapshot %s: %s vs %s loaded in %v\n",
				*snapIn, k1.Name(), k2.Name(), time.Since(start).Round(time.Microsecond))
		}
	} else {
		var err error
		k1, err = loadKB("E1", *e1Path, *format, *stream)
		exitOn(err)
		k2, err = loadKB("E2", *e2Path, *format, *stream)
		exitOn(err)
		if *snapOut != "" || *query != "" {
			sub, err = minoaner.BuildSubstrate(ctx, k1, k2, cfg)
			exitOn(err)
		}
		if *snapOut != "" {
			exitOn(minoaner.WriteSnapshotFile(*snapOut, sub))
			if !*quiet {
				fmt.Fprintf(os.Stderr, "minoaner: snapshot saved to %s\n", *snapOut)
			}
		}
	}

	if *query != "" {
		runQuery(ctx, k1, sub, cfg, *query, *jsonOut, *quiet)
		return
	}

	var (
		out *minoaner.Output
		err error
	)
	if sub != nil {
		out, err = minoaner.ResolveWith(ctx, sub, cfg)
	} else {
		out, err = minoaner.Resolve(ctx, k1, k2, cfg)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		exitOn(fmt.Errorf("resolution exceeded -timeout %v", *timeout))
	}
	exitOn(err)

	w := bufio.NewWriter(os.Stdout)
	for _, m := range out.Matches {
		if *rules {
			fmt.Fprintf(w, "%s\t%s\t%s\n", k1.Entity(m.Pair.E1).URI, k2.Entity(m.Pair.E2).URI, m.Rule)
		} else {
			fmt.Fprintf(w, "%s\t%s\n", k1.Entity(m.Pair.E1).URI, k2.Entity(m.Pair.E2).URI)
		}
	}
	exitOn(w.Flush())

	if !*quiet {
		fmt.Fprintf(os.Stderr, "minoaner: %s vs %s: %d matches (graph %d edges, purged %d blocks) in %v\n",
			k1.Name(), k2.Name(), len(out.Matches), out.GraphEdges, out.PurgedBlocks, out.Timings.Total)
	}
	if *gtPath != "" {
		gt, skipped, err := loadGroundTruth(k1, k2, *gtPath)
		exitOn(err)
		var pairs []minoaner.Pair
		for _, m := range out.Matches {
			pairs = append(pairs, m.Pair)
		}
		m := minoaner.Evaluate(pairs, gt)
		fmt.Fprintf(os.Stderr, "minoaner: %s (skipped %d unknown ground-truth URIs)\n", m, skipped)
	}
}

// runQuery resolves a single entity against a ready substrate (built this
// run or loaded from a snapshot) through the per-entity query path.
func runQuery(ctx context.Context, k1 *minoaner.KB, sub *minoaner.Substrate, cfg minoaner.Config, uri string, jsonOut, quiet bool) {
	var q minoaner.EntityQuery
	if e := k1.Lookup(uri); e >= 0 {
		q = minoaner.QueryFromEntity(k1, e)
	} else {
		q = minoaner.EntityQuery{URI: uri}
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) != 2 {
				continue
			}
			q.Objects = append(q.Objects, minoaner.QueryObject{Predicate: parts[0], Object: parts[1]})
		}
		exitOn(sc.Err())
	}
	start := time.Now()
	ms, err := minoaner.QueryEntity(ctx, sub, q, cfg)
	exitOn(err)
	elapsed := time.Since(start)

	w := bufio.NewWriter(os.Stdout)
	if jsonOut {
		// The candidate rows use the shared wire schema, so this output is
		// byte-compatible with the candidates array inside minoanerd's
		// /v1/pairs/{id}/query response (make serve-smoke diffs the two).
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(minoaner.QueryCandidates(ms)))
	} else {
		for _, m := range ms {
			fmt.Fprintf(w, "%s\t%.4f\t%s\n", m.URI, m.Score, m.Rule)
		}
	}
	exitOn(w.Flush())
	if !quiet {
		fmt.Fprintf(os.Stderr, "minoaner: query %s: %d candidates in %v (substrate built in %v)\n",
			uri, len(ms), elapsed, sub.BuildDuration().Round(time.Millisecond))
	}
}

func loadKB(name, path, format string, stream bool) (*minoaner.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var (
		k       *minoaner.KB
		skipped int
	)
	switch {
	case format == "nt" && stream:
		k, skipped, err = minoaner.StreamNTriples(name, f, true)
	case format == "nt":
		k, skipped, err = minoaner.LoadNTriples(name, f, true)
	case format == "tsv" && stream:
		k, skipped, err = minoaner.StreamTSV(name, f, true)
	case format == "tsv":
		k, skipped, err = minoaner.LoadTSV(name, f, true)
	default:
		return nil, fmt.Errorf("unknown format %q (want nt or tsv)", format)
	}
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "minoaner: %s: skipped %d malformed lines\n", path, skipped)
	}
	return k, nil
}

func loadGroundTruth(k1, k2 *minoaner.KB, path string) (*minoaner.GroundTruth, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var uriPairs [][2]string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			continue
		}
		uriPairs = append(uriPairs, [2]string{parts[0], parts[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	gt, skipped := minoaner.GroundTruthFromURIs(k1, k2, uriPairs)
	return gt, skipped, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "minoaner:", err)
		os.Exit(1)
	}
}
