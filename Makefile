# Developer entry points. CI runs the same steps (see .github/workflows/ci.yml).

SCALE ?= 0.5
REPS  ?= 3

.PHONY: build test race fmt vet bench bench-test smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# bench emits BENCH_<date>.json with per-stage wall-clock timings for every
# Table-1 preset — the perf trajectory data points the ROADMAP asks for.
bench:
	go run ./cmd/experiments -bench -scale $(SCALE) -reps $(REPS)

# bench-test runs the Go benchmark suite (tables, figures, stages, ablations).
bench-test:
	go test -bench . -run '^$$' -benchmem .

# smoke is the fast CI variant: one small preset, one repetition.
smoke:
	go test -run '^$$' -bench '^BenchmarkPipelineRestaurant$$' -benchtime 1x .
	go run ./cmd/experiments -bench -datasets Restaurant -reps 1 -benchout /tmp/bench-smoke.json
