# Developer entry points. CI runs the same steps (see .github/workflows/ci.yml).

SCALE ?= 0.5
REPS  ?= 3
# The primary bench run is pinned to one core so data points are comparable
# across machines and over time; PAR_WORKERS adds extra monolithic data
# points at other engine sizes (0 = all cores), so the records — and the
# regression gate — also watch parallel scaling, not just 1-core speed. The
# default sweep records the {1,2,4,8} scaling curve of the overlapped
# substrate build per dataset.
BENCH_WORKERS ?= 1
PAR_WORKERS   ?= 1,2,4,8
# bench-check compares against the committed baseline, so its scale, shard
# counts and worker counts must match the ones the baseline was recorded
# with. The tolerance is deliberately loose: per-stage wall-clock on shared
# CI runners routinely swings ~2× between runs, and the gate exists to
# catch order-of-magnitude algorithmic blowups, not scheduler jitter.
CHECK_SCALE  ?= 0.25
CHECK_SHARDS ?= 1,8
TOLERANCE    ?= 3.0

.PHONY: build test race race-overlap fmt vet lint cover bench bench-test smoke smoke-examples serve-smoke bench-check bench-baseline profile

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# race-overlap exercises the overlapped substrate build and the concurrent
# sharded-γ construction under the race detector at an explicit workers=2
# engine (the smallest size where the removed barriers matter), repeated so
# goroutine interleavings vary.
race-overlap:
	go test -race -count=2 -run 'Overlap' ./internal/core ./internal/graph

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# lint mirrors the CI lint job; requires golangci-lint on PATH.
lint:
	golangci-lint run ./...

# cover writes the race-enabled coverage profile CI uploads as an artifact.
cover:
	go test -race -covermode=atomic -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -n 1

# bench emits BENCH_<date>.json with per-stage wall-clock timings for every
# Table-1 preset — the perf trajectory data points the ROADMAP asks for —
# measured at 1 core, plus a workers=GOMAXPROCS data point per dataset.
bench:
	go run ./cmd/experiments -bench -scale $(SCALE) -reps $(REPS) -shards $(CHECK_SHARDS) \
		-workers $(BENCH_WORKERS) -parworkers $(PAR_WORKERS)

# bench-test runs the Go benchmark suite (tables, figures, stages, ablations).
bench-test:
	go test -bench . -run '^$$' -benchmem .

# smoke is the fast CI variant: one small preset, one repetition, plus a
# CLI round trip through the per-entity query path (-query, both output
# formats) on a generated dataset, and a snapshot round trip: the substrate
# is persisted with -save-snapshot, reloaded with -snapshot, and the two
# query paths must emit byte-identical candidates JSON.
smoke:
	go test -run '^$$' -bench '^BenchmarkPipelineRestaurant$$' -benchtime 1x .
	go run ./cmd/experiments -bench -datasets Restaurant -reps 1 -benchout /tmp/bench-smoke.json
	go run ./cmd/datagen -preset Restaurant -scale 0.2 -out /tmp/minoaner-query-smoke
	go run ./cmd/minoaner -e1 /tmp/minoaner-query-smoke/e1.nt -e2 /tmp/minoaner-query-smoke/e2.nt \
		-query "$$(head -1 /tmp/minoaner-query-smoke/gt.tsv | cut -f1)"
	go run ./cmd/minoaner -e1 /tmp/minoaner-query-smoke/e1.nt -e2 /tmp/minoaner-query-smoke/e2.nt \
		-save-snapshot /tmp/minoaner-query-smoke/pair.snap \
		-query "$$(head -1 /tmp/minoaner-query-smoke/gt.tsv | cut -f1)" -json -quiet \
		> /tmp/minoaner-query-smoke/q-build.json
	go run ./cmd/minoaner -snapshot /tmp/minoaner-query-smoke/pair.snap \
		-query "$$(head -1 /tmp/minoaner-query-smoke/gt.tsv | cut -f1)" -json -quiet \
		> /tmp/minoaner-query-smoke/q-snap.json
	cmp /tmp/minoaner-query-smoke/q-build.json /tmp/minoaner-query-smoke/q-snap.json

# serve-smoke exercises the real minoanerd binary end to end: build both
# binaries, serve a generated dataset, load a pair, query it in both request
# formats, byte-compare the candidate rows against `cmd/minoaner -query
# -json`, then SIGTERM and assert a clean drain. Gated behind the env var so
# plain `go test ./...` stays hermetic.
serve-smoke:
	MINOANER_SERVE_SMOKE=1 go test -run '^TestServeSmoke$$' -count=1 -v .

# smoke-examples builds and runs every example program end to end (they are
# self-contained and exit non-zero on broken invariants).
smoke-examples:
	@set -e; for d in examples/*/; do echo "== $$d"; go run ./$$d >/dev/null; done

# bench-check is the CI benchmark-regression gate: re-measure at the
# baseline's scale and fail on a >$(TOLERANCE)× per-stage regression (or an
# F1/determinism break) against the committed BENCH_baseline.json.
bench-check:
	go run ./cmd/experiments -bench -scale $(CHECK_SCALE) -reps $(REPS) -shards $(CHECK_SHARDS) \
		-workers $(BENCH_WORKERS) -parworkers $(PAR_WORKERS) \
		-benchout /tmp/bench-current.json -check BENCH_baseline.json -tolerance $(TOLERANCE)

# bench-baseline refreshes the committed gate baseline on the current tree
# (run after an intentional perf change, commit the result).
bench-baseline:
	go run ./cmd/experiments -bench -scale $(CHECK_SCALE) -reps $(REPS) -shards $(CHECK_SHARDS) \
		-workers $(BENCH_WORKERS) -parworkers $(PAR_WORKERS) \
		-benchout BENCH_baseline.json

# profile emits pprof CPU and heap profiles for one preset pipeline run
# (inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`).
PROFILE_DATASET ?= Rexa-DBLP
profile:
	go run ./cmd/experiments -bench -datasets $(PROFILE_DATASET) -scale $(SCALE) -reps $(REPS) \
		-benchout /tmp/bench-profile.json -cpuprofile cpu.pprof -memprofile mem.pprof
