package minoaner

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§6). One benchmark per artifact:
//
//	BenchmarkTable1DatasetStats           Table 1  — dataset statistics
//	BenchmarkTable2BlockStats             Table 2  — block statistics
//	BenchmarkTable3Comparison             Table 3  — MinoanER vs baselines
//	BenchmarkTable4MatchingRules          Table 4  — per-rule evaluation
//	BenchmarkFigure2SimilarityDistribution Figure 2 — value/neighbor similarity of matches
//	BenchmarkFigure5Sensitivity           Figure 5 — parameter sensitivity
//	BenchmarkFigure6Scalability           Figure 6 — speedup vs workers
//
// plus per-dataset pipeline benchmarks and ablation benchmarks for the
// design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use scaled-down presets (benchScale) so a full -bench=. pass
// stays in the minutes; `go run ./cmd/experiments -all` regenerates the
// artifacts at full preset scale and prints the formatted tables.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"minoaner/internal/blocking"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/experiments"
	"minoaner/internal/graph"
	"minoaner/internal/kb"
	"minoaner/internal/matching"
	"minoaner/internal/parallel"
	"minoaner/internal/stats"
)

// benchScale shrinks the presets for the table/figure benchmarks.
const benchScale = 0.25

var (
	suiteOnce sync.Once
	suiteInst *experiments.Suite
)

// benchSuite returns a shared, pre-generated suite so the timed loop
// measures experiment computation, not dataset generation.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		s, err := experiments.NewSuite(experiments.Options{ScaleFactor: benchScale})
		if err != nil {
			panic(err)
		}
		for _, name := range s.Names() {
			if _, err := s.Dataset(name); err != nil {
				panic(err)
			}
		}
		suiteInst = s
	})
	return suiteInst
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkTable2BlockStats(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Recall < 0.9 {
				b.Fatalf("%s blocking recall %v below paper shape", r.Dataset, r.Recall)
			}
		}
	}
}

func BenchmarkTable3Comparison(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var minoanF1 float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "MinoanER" && r.Dataset == "BBCmusic-DBpedia" {
				minoanF1 = r.Metrics.F1
			}
		}
	}
	b.ReportMetric(100*minoanF1, "F1(BBC)%")
}

func BenchmarkTable4MatchingRules(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2SimilarityDistribution(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure5Sensitivity(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Scalability(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

// Per-dataset end-to-end pipeline benchmarks (the running times behind
// Figure 6 at full worker count).

func benchPipeline(b *testing.B, profile datagen.Profile, scale float64) {
	d, err := datagen.Generate(datagen.Scale(profile, scale))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	b.ResetTimer()
	var f1 float64
	for i := 0; i < b.N; i++ {
		out, err := core.Resolve(d.K1, d.K2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		f1 = eval.Evaluate(pairsOf(out), d.GT).F1
	}
	b.ReportMetric(100*f1, "F1%")
}

func pairsOf(out *core.Output) []eval.Pair {
	ps := make([]eval.Pair, len(out.Matches))
	for i, m := range out.Matches {
		ps[i] = m.Pair
	}
	return ps
}

func BenchmarkPipelineRestaurant(b *testing.B) { benchPipeline(b, datagen.Restaurant(), 1.0) }
func BenchmarkPipelineRexaDBLP(b *testing.B)   { benchPipeline(b, datagen.RexaDBLP(), 0.5) }
func BenchmarkPipelineBBCmusic(b *testing.B)   { benchPipeline(b, datagen.BBCMusicDBpedia(), 0.5) }
func BenchmarkPipelineYAGOIMDb(b *testing.B)   { benchPipeline(b, datagen.YAGOIMDb(), 0.5) }

// Component benchmarks: blocking, graph construction, matching — the three
// synchronization stages of Figure 4.

func benchComponents() (*datagen.Dataset, graph.Input, *graph.Graph) {
	d, err := datagen.Generate(datagen.Scale(datagen.YAGOIMDb(), 0.25))
	if err != nil {
		panic(err)
	}
	eng := parallel.New(0)
	in := graph.InputFor(eng, d.K1, d.K2, 2, 15, 3)
	budget := blocking.ComparisonBudget(d.K1.Len(), d.K2.Len(), 0.0005)
	in.TokenBlocks, _ = blocking.PurgeAbove(in.TokenBlocks, budget)
	in.TokenIndex, _ = in.TokenIndex.PurgeAbove(budget)
	g := graph.Build(eng, in)
	return d, in, g
}

func BenchmarkStageTokenBlocking(b *testing.B) {
	d, _, _ := benchComponents()
	eng := parallel.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := blocking.TokenBlocks(eng, d.K1, d.K2)
		if c.Len() == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkNameBlocks guards the columnar name-index rewrite against the
// retained string-grouped reference: "index" is the shipped NameIndex path
// (CSR counting pass + scatter fill over interned ValueIDs), "map" the
// historical string-keyed grouping. Allocation counts are part of the guard
// — the index path must stay free of per-name string and map-cell churn.
func BenchmarkNameBlocks(b *testing.B) {
	d := benchStatsKB(b)
	eng := parallel.New(0)
	ctx := context.Background()
	na1, err := stats.NameAttributesCtx(ctx, eng, d.K1, 2)
	if err != nil {
		b.Fatal(err)
	}
	na2, err := stats.NameAttributesCtx(ctx, eng, d.K2, 2)
	if err != nil {
		b.Fatal(err)
	}
	paths := []struct {
		name string
		fn   func() (*blocking.Collection, error)
	}{
		{"index", func() (*blocking.Collection, error) {
			return blocking.NameBlocksCtx(ctx, eng, d.K1, d.K2, na1, na2)
		}},
		{"map", func() (*blocking.Collection, error) {
			return blocking.NameBlocksMapRef(ctx, eng, d.K1, d.K2, na1, na2)
		}},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := p.fn()
				if err != nil {
					b.Fatal(err)
				}
				if c.Len() == 0 {
					b.Fatal("no name blocks")
				}
			}
		})
	}
}

func BenchmarkStageGraphConstruction(b *testing.B) {
	_, in, _ := benchComponents()
	eng := parallel.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.Build(eng, in)
		if g.Edges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkBuildBeta guards the scoreboard β pass in isolation: the heavy
// direction (the larger KB against the E1 candidate space) over the purged
// token index, K=15. Allocation counts are part of the guard — the
// per-worker scoreboard leaves one row allocation per entity.
func BenchmarkBuildBeta(b *testing.B) {
	d, in, _ := benchComponents()
	eng := parallel.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := graph.BetaRowsCtx(context.Background(), eng, in.TokenIndex, d.K2, d.K1.Len(), false, in.K)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != d.K2.Len() {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkGammaRows guards the scoreboard γ pass in isolation: E1-side
// neighbor propagation over the merged β adjacency and E2's reverse
// top-neighbor index, K=15.
func BenchmarkGammaRows(b *testing.B) {
	_, in, g := benchComponents()
	eng := parallel.New(0)
	adj1 := graph.MergeAdjacency(g.Beta1, g.Beta2, len(in.Top1))
	in2 := stats.TopInNeighbors(in.Top2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := graph.GammaRowsCtx(context.Background(), eng, in.Top1, adj1, in2, in.K)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(in.Top1) {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkStageMatching(b *testing.B) {
	d, _, g := benchComponents()
	eng := parallel.New(0)
	cfg := matching.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := matching.Run(eng, g, d.K1, d.K2, cfg)
		if len(res.Matches) == 0 {
			b.Fatal("no matches")
		}
	}
}

// Statistics sub-stage benchmarks — the §4.1 pre-processing passes the
// columnar predicate/attribute substrate keeps as fast as blocking. Each is
// a committed guard for one flat counting pass: relation importances,
// attribute importances, top-neighbor extraction and the in-neighbor
// reversal.

func benchStatsKB(b *testing.B) *datagen.Dataset {
	b.Helper()
	d, err := datagen.Generate(datagen.Scale(datagen.RexaDBLP(), 0.5))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkStatisticsRelationImportances(b *testing.B) {
	d := benchStatsKB(b)
	eng := parallel.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ri := stats.RelationImportances(eng, d.K2); len(ri) == 0 {
			b.Fatal("no relation stats")
		}
	}
}

func BenchmarkStatisticsAttributeImportances(b *testing.B) {
	d := benchStatsKB(b)
	eng := parallel.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as := stats.AttributeImportances(eng, d.K2); len(as) == 0 {
			b.Fatal("no attribute stats")
		}
	}
}

func BenchmarkStatisticsTopNeighbors(b *testing.B) {
	d := benchStatsKB(b)
	eng := parallel.New(0)
	ranks := stats.RelationRanks(d.K2, stats.RelationImportances(eng, d.K2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := stats.TopNeighborsRanksCtx(context.Background(), eng, d.K2, ranks, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(top) != d.K2.Len() {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkStatisticsTopInNeighbors(b *testing.B) {
	d := benchStatsKB(b)
	eng := parallel.New(0)
	ranks := stats.RelationRanks(d.K2, stats.RelationImportances(eng, d.K2))
	top, err := stats.TopNeighborsRanksCtx(context.Background(), eng, d.K2, ranks, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in := stats.TopInNeighbors(top); len(in) != len(top) {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkQueryEntity guards the per-entity query path: one QueryEntity
// call per iteration against a prewarmed substrate, cycling through E1 — the
// "build once, query many" latency the bench-check gate holds percentiles
// on. Allocations are part of the guard: each query should only pay for its
// own candidate rows, never for substrate state.
func BenchmarkQueryEntity(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.BBCMusicDBpedia(), 0.25))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cfg := core.DefaultConfig()
	sub, err := core.BuildSubstrate(ctx, d.K1, d.K2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sub.PrewarmQueries(ctx); err != nil {
		b.Fatal(err)
	}
	queries := make([]core.EntityQuery, d.K1.Len())
	for i := range queries {
		queries[i] = core.QueryFromEntity(d.K1, kb.EntityID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.QueryEntity(ctx, sub, queries[i%len(queries)], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices called out in DESIGN.md §6.

// BenchmarkAblationPurging compares effectiveness and cost with and without
// Block Purging: without it, stop-word blocks dominate the β computation.
func BenchmarkAblationPurging(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.Restaurant(), 1.0))
	if err != nil {
		b.Fatal(err)
	}
	for _, purge := range []struct {
		name string
		frac float64
	}{{"with", 0.0005}, {"without", core.NoBlockPurging}} {
		b.Run(purge.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MaxBlockFraction = purge.frac
			var f1 float64
			for i := 0; i < b.N; i++ {
				out, err := core.Resolve(d.K1, d.K2, cfg)
				if err != nil {
					b.Fatal(err)
				}
				f1 = eval.Evaluate(pairsOf(out), d.GT).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkAblationK sweeps the pruning parameter K, showing the cost of
// larger candidate lists (the paper's Figure 5 shows F1 is flat in K).
func BenchmarkAblationK(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.BBCMusicDBpedia(), 0.25))
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{5, 15, 25} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.TopK = k
			var f1 float64
			for i := 0; i < b.N; i++ {
				out, err := core.Resolve(d.K1, d.K2, cfg)
				if err != nil {
					b.Fatal(err)
				}
				f1 = eval.Evaluate(pairsOf(out), d.GT).F1
			}
			b.ReportMetric(100*f1, "F1%")
		})
	}
}

// BenchmarkAblationWorkers measures the raw pipeline speedup (Figure 6's
// mechanism) at 1, 2 and all workers.
func BenchmarkAblationWorkers(b *testing.B) {
	d, err := datagen.Generate(datagen.Scale(datagen.YAGOIMDb(), 0.5))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := core.Resolve(d.K1, d.K2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
