package minoaner_test

// The serve-smoke harness: an end-to-end exercise of the real minoanerd
// binary over real HTTP — generate a dataset, build both binaries, serve,
// load a pair, query it in both request formats, and byte-compare the
// server's candidate rows against `cmd/minoaner -query -json`, proving the
// two front-ends share one wire schema. Then load a second pair from a
// substrate snapshot written by the CLI, assert its candidates match the
// built pair byte for byte and that its readiness wall-clock (open +
// prewarm) beats the full rebuild path. Finally SIGTERM the server and
// assert a clean drain.
//
// The test spawns the go toolchain and a server process, so it only runs
// when MINOANER_SERVE_SMOKE=1 (the `make serve-smoke` entry point; CI sets
// it in a dedicated step) — `go test ./...` stays fast and hermetic.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"minoaner"
)

func TestServeSmoke(t *testing.T) {
	if os.Getenv("MINOANER_SERVE_SMOKE") == "" {
		t.Skip("set MINOANER_SERVE_SMOKE=1 (or run `make serve-smoke`) to exercise the minoanerd binary")
	}
	tmp := t.TempDir()

	// A small generated benchmark, serialized the way a deployment would
	// hand datasets to the server.
	d, err := minoaner.GenerateBenchmark(minoaner.ScaleProfile(minoaner.RestaurantProfile(), 0.2))
	if err != nil {
		t.Fatal(err)
	}
	e1Path := filepath.Join(tmp, "e1.nt")
	e2Path := filepath.Join(tmp, "e2.nt")
	writeKB(t, e1Path, d.K1)
	writeKB(t, e2Path, d.K2)

	serverBin := buildBinary(t, tmp, "minoanerd", "./cmd/minoanerd")
	cliBin := buildBinary(t, tmp, "minoaner", "./cmd/minoaner")

	// Start the server on an ephemeral port and discover it from the listen
	// line on stdout.
	srv := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-quiet")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill() //nolint:errcheck // last-resort cleanup; the test SIGTERMs first

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("minoanerd printed no listen line: %v", sc.Err())
	}
	listen := sc.Text()
	const prefix = "minoanerd: listening on "
	if !strings.HasPrefix(listen, prefix) {
		t.Fatalf("unexpected first stdout line %q", listen)
	}
	base := "http://" + strings.TrimPrefix(listen, prefix)
	var tail bytes.Buffer
	drained := make(chan struct{})
	go func() { // keep reading stdout so the drain messages arrive
		defer close(drained)
		for sc.Scan() {
			fmt.Fprintln(&tail, sc.Text())
		}
	}()

	// Load the pair and poll the build status until ready.
	loadBody := fmt.Sprintf(`{"id":"smoke","e1":%q,"e2":%q}`, e1Path, e2Path)
	resp := httpJSON(t, http.MethodPost, base+"/v1/pairs", loadBody)
	if resp.status != http.StatusAccepted {
		t.Fatalf("load pair = %d: %s", resp.status, resp.body)
	}
	awaitReady(t, base, "smoke")

	// Format 1 — replay: an E1 URI with a known true match (a non-GT entity
	// can legitimately rank zero candidates), server vs CLI.
	gtPairs := d.GT.Pairs()
	if len(gtPairs) == 0 {
		t.Fatal("generated benchmark has no ground-truth pairs")
	}
	probeID := gtPairs[0].E1
	replayURI := d.K1.Entity(probeID).URI
	serverReplay := queryCandidates(t, base, "smoke", fmt.Sprintf(`{"uri":%q}`, replayURI))
	cliReplay := runCLI(t, cliBin, e1Path, e2Path, replayURI, "")
	if !bytes.Equal(serverReplay, cliReplay) {
		t.Errorf("replay candidates differ between server and CLI:\n--- server ---\n%s\n--- cli ---\n%s", serverReplay, cliReplay)
	}
	if !bytes.Contains(serverReplay, []byte(`"uri"`)) {
		t.Errorf("replay query returned no candidates: %s", serverReplay)
	}

	// Format 2 — a new entity described by explicit statements. The CLI
	// takes them as predicate<TAB>object lines on stdin, the server as an
	// objects array; both demote non-E1 objects to literal values, so the
	// same statements must produce byte-identical candidate rows.
	probe := minoaner.QueryFromEntity(d.K1, probeID)
	var stdin strings.Builder
	type obj struct {
		Predicate string `json:"predicate"`
		Object    string `json:"object"`
	}
	var objs []obj
	for _, a := range probe.Attrs {
		fmt.Fprintf(&stdin, "%s\t%s\n", a.Attribute, a.Value)
		objs = append(objs, obj{a.Attribute, a.Value})
	}
	for _, o := range probe.Objects {
		fmt.Fprintf(&stdin, "%s\t%s\n", o.Predicate, o.Object)
		objs = append(objs, obj{o.Predicate, o.Object})
	}
	objsJSON, err := json.Marshal(objs)
	if err != nil {
		t.Fatal(err)
	}
	serverFresh := queryCandidates(t, base, "smoke", fmt.Sprintf(`{"uri":"smoke:probe","objects":%s}`, objsJSON))
	cliFresh := runCLI(t, cliBin, e1Path, e2Path, "smoke:probe", stdin.String())
	if !bytes.Equal(serverFresh, cliFresh) {
		t.Errorf("new-entity candidates differ between server and CLI:\n--- server ---\n%s\n--- cli ---\n%s", serverFresh, cliFresh)
	}

	// Snapshot warm start: persist the substrate with the CLI, load it as a
	// second pair, and require byte-identical candidates plus a readiness
	// time that beats the rebuild path (mmap open + instant prewarm vs KB
	// parse + substrate build + prewarm).
	snapPath := filepath.Join(tmp, "pair.snap")
	saveCmd := exec.Command(cliBin, "-e1", e1Path, "-e2", e2Path, "-save-snapshot", snapPath,
		"-query", replayURI, "-json", "-quiet")
	if out, err := saveCmd.CombinedOutput(); err != nil {
		t.Fatalf("minoaner -save-snapshot: %v\n%s", err, out)
	}
	resp = httpJSON(t, http.MethodPost, base+"/v1/pairs", fmt.Sprintf(`{"id":"snap","snapshot":%q}`, snapPath))
	if resp.status != http.StatusAccepted {
		t.Fatalf("load snapshot pair = %d: %s", resp.status, resp.body)
	}
	awaitReady(t, base, "snap")
	snapReplay := queryCandidates(t, base, "snap", fmt.Sprintf(`{"uri":%q}`, replayURI))
	if !bytes.Equal(snapReplay, serverReplay) {
		t.Errorf("snapshot-pair candidates differ from built pair:\n--- snapshot ---\n%s\n--- built ---\n%s", snapReplay, serverReplay)
	}
	var built, snap struct {
		LoadMS    float64 `json:"load_ms"`
		BuildMS   float64 `json:"build_ms"`
		PrewarmMS float64 `json:"prewarm_ms"`
	}
	if err := json.Unmarshal(httpJSON(t, http.MethodGet, base+"/v1/pairs/smoke", "").body, &built); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(httpJSON(t, http.MethodGet, base+"/v1/pairs/snap", "").body, &snap); err != nil {
		t.Fatal(err)
	}
	rebuild := built.LoadMS + built.BuildMS + built.PrewarmMS
	warm := snap.LoadMS + snap.PrewarmMS
	if warm >= rebuild {
		t.Errorf("snapshot readiness %.2fms is not faster than rebuild %.2fms (load %.2f + build %.2f + prewarm %.2f)",
			warm, rebuild, built.LoadMS, built.BuildMS, built.PrewarmMS)
	}
	t.Logf("warm start: snapshot ready in %.2fms vs rebuild %.2fms", warm, rebuild)

	// SIGTERM: the server must drain and exit cleanly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("minoanerd exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("minoanerd did not exit within 30s of SIGTERM")
	}
	<-drained
	out := tail.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "shutdown complete") {
		t.Errorf("drain messages missing from stdout:\n%s", out)
	}
}

// writeKB serializes one KB as N-Triples.
func writeKB(t *testing.T, path string, k *minoaner.KB) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := minoaner.WriteNTriples(f, k); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// buildBinary compiles one command into dir.
func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

type httpResult struct {
	status int
	body   []byte
}

func httpJSON(t *testing.T, method, url, body string) httpResult {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return httpResult{resp.StatusCode, data}
}

// awaitReady polls one pair's status until it is ready (or fails the test
// on a build failure / 60s timeout).
func awaitReady(t *testing.T, base, pair string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var info struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		r := httpJSON(t, http.MethodGet, base+"/v1/pairs/"+pair, "")
		if err := json.Unmarshal(r.body, &info); err != nil {
			t.Fatalf("pair info %s: %v", r.body, err)
		}
		if info.Status == "ready" {
			return
		}
		if info.Status == "failed" {
			t.Fatalf("pair build failed: %s", info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair still %q after 60s", info.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// queryCandidates posts one query and re-indents the raw candidates array
// exactly the way the CLI's JSON encoder prints it, preserving the original
// number literals (no decode/re-encode drift).
func queryCandidates(t *testing.T, base, pair, body string) []byte {
	t.Helper()
	r := httpJSON(t, http.MethodPost, base+"/v1/pairs/"+pair+"/query", body)
	if r.status != http.StatusOK {
		t.Fatalf("query = %d: %s", r.status, r.body)
	}
	var resp struct {
		Candidates json.RawMessage `json:"candidates"`
	}
	if err := json.Unmarshal(r.body, &resp); err != nil {
		t.Fatalf("query response %s: %v", r.body, err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, resp.Candidates, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// runCLI resolves one query through cmd/minoaner -query -json -quiet.
func runCLI(t *testing.T, bin, e1, e2, uri, stdin string) []byte {
	t.Helper()
	cmd := exec.Command(bin, "-e1", e1, "-e2", e2, "-query", uri, "-json", "-quiet")
	cmd.Stdin = strings.NewReader(stdin)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("minoaner -query %s: %v\n%s", uri, err, errb.String())
	}
	return out.Bytes()
}
