// Quickstart: resolve two tiny hand-built knowledge bases — the running
// example of the paper's Figure 1 (the Fat Duck restaurant described by a
// Wikidata-like and a DBpedia-like KB) — and print the matches with the
// rule that found each one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"minoaner"
)

func main() {
	// The Wikidata-like side: Restaurant1, its chef, its village, and the
	// country, linked through hasChef / territorial / inCountry relations.
	w := minoaner.NewBuilder("Wikidata")
	r1 := w.AddEntity("w:Restaurant1")
	w.AddLiteral(r1, "label", "The Fat Duck")
	w.AddLiteral(r1, "stars", "3 Michelin")
	w.AddObject(r1, "hasChef", "w:JohnLakeA")
	w.AddObject(r1, "territorial", "w:Bray")
	w.AddObject(r1, "inCountry", "w:UK")
	chef := w.AddEntity("w:JohnLakeA")
	w.AddLiteral(chef, "label", "John Lake A")
	w.AddLiteral(chef, "alias", "J. Lake")
	bray := w.AddEntity("w:Bray")
	w.AddLiteral(bray, "label", "Bray")
	w.AddLiteral(bray, "description", "village Berkshire England")
	uk := w.AddEntity("w:UK")
	w.AddLiteral(uk, "label", "United Kingdom")
	wikidata := w.Build()

	// The DBpedia-like side describes the same entities with a different
	// schema: other attribute names, other relation names, no alignment.
	d := minoaner.NewBuilder("DBpedia")
	r2 := d.AddEntity("d:Restaurant2")
	d.AddLiteral(r2, "name", "The Fat Duck restaurant")
	d.AddObject(r2, "headChef", "d:JonnyLake")
	d.AddObject(r2, "county", "d:Berkshire")
	jonny := d.AddEntity("d:JonnyLake")
	d.AddLiteral(jonny, "name", "Jonny Lake")
	d.AddLiteral(jonny, "nick", "J. Lake")
	berks := d.AddEntity("d:Berkshire")
	d.AddLiteral(berks, "name", "Berkshire")
	d.AddLiteral(berks, "comment", "county England Bray village")
	eng := d.AddEntity("d:England")
	d.AddLiteral(eng, "name", "England")
	d.AddLiteral(eng, "nick", "Albion")
	d.AddObject(berks, "partOf", "d:England")
	dbpedia := d.Build()

	out, err := minoaner.Resolve(context.Background(), wikidata, dbpedia, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("resolved %s against %s: %d matches\n\n", wikidata, dbpedia, len(out.Matches))
	for _, m := range out.Matches {
		fmt.Printf("  %-14s = %-14s (found by %s)\n",
			wikidata.Entity(m.Pair.E1).URI, dbpedia.Entity(m.Pair.E2).URI, m.Rule)
	}
	fmt.Printf("\ndiscovered name attributes: %v / %v\n", out.NameAttrs1, out.NameAttrs2)
	fmt.Printf("pipeline stages: stats=%v blocking=%v graph=%v matching=%v\n",
		out.Timings.Statistics, out.Timings.Blocking, out.Timings.Graph, out.Timings.Matching)
}
