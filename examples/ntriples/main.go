// N-Triples workflow: export two KBs to RDF N-Triples files, load them back
// the way a downstream user would load real dumps, resolve, and write the
// matches as a link set — the interlinking task of the Web of Data (§1).
//
// Run with: go run ./examples/ntriples
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"minoaner"
)

func main() {
	dir, err := os.MkdirTemp("", "minoaner-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Produce two publication KBs (the Rexa-DBLP profile at 1/20 scale)
	// and serialize them as N-Triples dumps.
	dataset, err := minoaner.GenerateBenchmark(
		minoaner.ScaleProfile(minoaner.RexaDBLPProfile(), 0.05))
	if err != nil {
		log.Fatal(err)
	}
	p1 := filepath.Join(dir, "rexa.nt")
	p2 := filepath.Join(dir, "dblp.nt")
	if err := writeDump(p1, dataset.K1); err != nil {
		log.Fatal(err)
	}
	if err := writeDump(p2, dataset.K2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", p1, p2)

	// Load the dumps back — lenient mode skips malformed lines, which real
	// web dumps always contain.
	k1 := loadDump(p1, "Rexa")
	k2 := loadDump(p2, "DBLP")
	fmt.Printf("loaded %v and %v\n", k1, k2)

	out, err := minoaner.Resolve(context.Background(), k1, k2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The generated KBs preserve entity URIs, so the original ground truth
	// can be re-resolved against the reloaded KBs for evaluation.
	var uriPairs [][2]string
	for _, p := range dataset.GT.Pairs() {
		uriPairs = append(uriPairs, [2]string{
			dataset.K1.Entity(p.E1).URI,
			dataset.K2.Entity(p.E2).URI,
		})
	}
	gt, skipped := minoaner.GroundTruthFromURIs(k1, k2, uriPairs)
	if skipped != 0 {
		log.Fatalf("%d ground-truth URIs lost in the round trip", skipped)
	}
	m := minoaner.Evaluate(out.Pairs(), gt)
	fmt.Printf("resolved the dumps: %d matches, %s\n", len(out.Matches), m)

	// Write the link set (owl:sameAs-style statements).
	links := filepath.Join(dir, "links.nt")
	f, err := os.Create(links)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for _, match := range out.Matches {
		fmt.Fprintf(f, "<%s> <http://www.w3.org/2002/07/owl#sameAs> <%s> .\n",
			k1.Entity(match.Pair.E1).URI, k2.Entity(match.Pair.E2).URI)
	}
	fmt.Printf("link set written to %s\n", links)
}

func writeDump(path string, k *minoaner.KB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return minoaner.WriteNTriples(f, k)
}

func loadDump(path, name string) *minoaner.KB {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	k, skipped, err := minoaner.LoadNTriples(name, f, true)
	if err != nil {
		log.Fatal(err)
	}
	if skipped > 0 {
		fmt.Printf("skipped %d malformed lines in %s\n", skipped, path)
	}
	return k
}
