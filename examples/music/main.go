// Music catalog integration: the high-Variety scenario that motivates the
// paper (§1) — a small curated music KB against a large, noisy web-extracted
// one (BBCmusic vs DBpedia in the paper's evaluation).
//
// The web KB uses ~5× more attributes, fragments its relations across many
// predicates, and describes each artist with far more (mostly irrelevant)
// text, so normalized value similarities are useless for most matches.
// MinoanER still resolves them by combining discovered names, infrequent
// shared tokens and neighbor evidence.
//
// Run with: go run ./examples/music
package main

import (
	"context"
	"fmt"
	"log"

	"minoaner"
)

func main() {
	// Generate the BBCmusic-DBpedia-profiled benchmark at 1/10 scale:
	// 400 curated artists/bands vs 1,200 web-extracted descriptions.
	profile := minoaner.ScaleProfile(minoaner.BBCMusicDBpediaProfile(), 0.1)
	dataset, err := minoaner.GenerateBenchmark(profile)
	if err != nil {
		log.Fatal(err)
	}
	k1, k2 := dataset.K1, dataset.K2
	fmt.Printf("curated KB:  %v (%d attributes, %d relations)\n", k1, k1.Attributes(), k1.RelationNames())
	fmt.Printf("web KB:      %v (%d attributes, %d relations)\n", k2, k2.Attributes(), k2.RelationNames())
	fmt.Printf("token volume per description: %.1f vs %.1f (the Variety skew)\n\n",
		k1.AverageTokens(), k2.AverageTokens())

	out, err := minoaner.Resolve(context.Background(), k1, k2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	m := minoaner.Evaluate(out.Pairs(), dataset.GT)
	fmt.Printf("MinoanER: %d matches, %s\n", len(out.Matches), m)

	// Rule attribution shows where the matches come from on high-Variety
	// data: names and neighbor evidence carry what value similarity cannot.
	byRule := map[string]int{}
	for _, match := range out.Matches {
		byRule[match.Rule.String()]++
	}
	fmt.Printf("per rule: R1(names)=%d R2(values)=%d R3(rank aggregation)=%d, R4 removed %d\n\n",
		byRule["R1"], byRule["R2"], byRule["R3"], out.RemovedByR4)

	// Contrast with a value-only view of the same data: PARIS, which seeds
	// from exact literals, collapses under the web KB's formatting noise.
	paris := minoaner.PARISBaseline(k1, k2)
	pm := minoaner.Evaluate(paris, dataset.GT)
	fmt.Printf("PARIS baseline on the same pair: %s\n", pm)
}
