// Scaling: the massively-parallel story of the paper (§4.1, Figure 6) —
// run the same resolution with 1, 2, 4, ... workers, showing that results
// are bit-identical while wall-clock time drops.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"minoaner"
)

func main() {
	// The YAGO-IMDb profile at 1/2 scale: the largest, most balanced pair,
	// where the paper's speedups are closest to linear.
	dataset, err := minoaner.GenerateBenchmark(
		minoaner.ScaleProfile(minoaner.YAGOIMDbProfile(), 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %v vs %v, %d true matches\n\n", dataset.K1, dataset.K2, dataset.GT.Len())
	fmt.Printf("%8s %10s %9s %10s %8s\n", "workers", "time", "speedup", "matching%", "F1%")

	var base time.Duration
	var refF1 float64
	for workers := 1; workers <= runtime.GOMAXPROCS(0); workers *= 2 {
		cfg := minoaner.DefaultConfig()
		cfg.Workers = workers
		start := time.Now()
		out, err := minoaner.Resolve(dataset.K1, dataset.K2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if base == 0 {
			base = elapsed
		}
		m := minoaner.Evaluate(out.Pairs(), dataset.GT)
		if refF1 == 0 {
			refF1 = m.F1
		} else if m.F1 != refF1 {
			log.Fatalf("determinism violated: F1 %v at %d workers vs %v at 1",
				m.F1, workers, refF1)
		}
		matchShare := float64(out.Timings.Matching) / float64(out.Timings.Total)
		fmt.Printf("%8d %10v %9.2fx %9.1f%% %8.2f\n",
			workers, elapsed.Round(time.Millisecond),
			float64(base)/float64(elapsed), 100*matchShare, 100*m.F1)
	}
	fmt.Println("\nresults identical at every worker count (deterministic parallel execution)")
}
