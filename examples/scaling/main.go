// Scaling: the massively-parallel story of the paper (§4.1, Figure 6) —
// run the same resolution with 1, 2, 4, ... workers, showing that results
// are bit-identical while wall-clock time drops; then the memory-bounded
// variant of the same story — split E1 into 1, 2, 4, ... shards
// (ResolveSharded) and watch peak live heap shrink while the matches stay
// bit-identical.
//
// Run with: go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"time"

	"minoaner"
)

func main() {
	// The YAGO-IMDb profile at 1/2 scale: the largest, most balanced pair,
	// where the paper's speedups are closest to linear.
	dataset, err := minoaner.GenerateBenchmark(
		minoaner.ScaleProfile(minoaner.YAGOIMDbProfile(), 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %v vs %v, %d true matches\n\n", dataset.K1, dataset.K2, dataset.GT.Len())
	fmt.Printf("%8s %10s %9s %10s %8s\n", "workers", "time", "speedup", "matching%", "F1%")

	var base time.Duration
	var refF1 float64
	for workers := 1; workers <= runtime.GOMAXPROCS(0); workers *= 2 {
		cfg := minoaner.DefaultConfig()
		cfg.Workers = workers
		start := time.Now()
		out, err := minoaner.Resolve(context.Background(), dataset.K1, dataset.K2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if base == 0 {
			base = elapsed
		}
		m := minoaner.Evaluate(out.Pairs(), dataset.GT)
		if refF1 == 0 {
			refF1 = m.F1
		} else if m.F1 != refF1 {
			log.Fatalf("determinism violated: F1 %v at %d workers vs %v at 1",
				m.F1, workers, refF1)
		}
		matchShare := float64(out.Timings.Matching) / float64(out.Timings.Total)
		fmt.Printf("%8d %10v %9.2fx %9.1f%% %8.2f\n",
			workers, elapsed.Round(time.Millisecond),
			float64(base)/float64(elapsed), 100*matchShare, 100*m.F1)
	}
	fmt.Println("\nresults identical at every worker count (deterministic parallel execution)")

	// Sharded execution: same input, same output, bounded peak memory. Every
	// per-entity stage runs one contiguous E1 shard at a time, so the
	// E1-side candidate structures never exist all at once.
	fmt.Printf("\n%8s %10s %10s %9s\n", "shards", "time", "peak heap", "matches")
	var refMatches int
	for shards := 1; shards <= 8; shards *= 2 {
		cfg := minoaner.DefaultConfig()
		cfg.ShardCount = shards
		var out *minoaner.Output
		elapsed, peak, err := timeAndPeakHeap(func() error {
			var err error
			out, err = minoaner.ResolveSharded(context.Background(), dataset.K1, dataset.K2, cfg, shards)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		if shards == 1 {
			refMatches = len(out.Matches)
		} else if len(out.Matches) != refMatches {
			log.Fatalf("determinism violated: %d matches at %d shards vs %d at 1",
				len(out.Matches), shards, refMatches)
		}
		fmt.Printf("%8d %10v %8.1fMB %9d\n",
			shards, elapsed.Round(time.Millisecond), float64(peak)/(1<<20), len(out.Matches))
	}
	fmt.Println("\nmatches identical at every shard count (sharded execution is a memory knob, not a result knob)")
}

// timeAndPeakHeap runs fn, sampling the live heap (~1 kHz) under aggressive
// GC so the peak reflects the working set rather than collector laziness. It
// mirrors the sampler behind `cmd/experiments -bench` (peak_heap_mb) so the
// example's numbers are comparable with the committed BENCH reports.
func timeAndPeakHeap(fn func() error) (time.Duration, uint64, error) {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	read := func() uint64 {
		metrics.Read(sample)
		return sample[0].Value.Uint64()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	floor := read()
	peak := floor
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
			}
			if v := read(); v > peak {
				peak = v
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	close(done)
	<-finished
	// One final read so an allocation spike after the last poll still counts.
	if v := read(); v > peak {
		peak = v
	}
	if peak < floor {
		peak = floor
	}
	return elapsed, peak - floor, err
}
